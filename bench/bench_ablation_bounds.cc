// Ablation of KARL's two bound constructions (not a paper table; see
// DESIGN.md): how much of the speedup comes from the chord upper bound
// versus the optimal-tangent lower bound, per query type. Each variant
// replaces the disabled side with the SOTA constant bound.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace {

using karl::core::BoundKind;

double Measure(const karl::bench::Workload& w,
               const karl::core::QuerySpec& spec, BoundKind bounds) {
  karl::EngineOptions options = karl::bench::DefaultOptions(w);
  options.bounds = bounds;
  return karl::bench::MeasureEngineThroughput(w, spec, options);
}

void RunRow(const char* label, const karl::bench::Workload& w,
            const karl::core::QuerySpec& spec) {
  const double sota = Measure(w, spec, BoundKind::kSota);
  const double chord = Measure(w, spec, BoundKind::kKarlChordOnly);
  const double tangent = Measure(w, spec, BoundKind::kKarlTangentOnly);
  const double full = Measure(w, spec, BoundKind::kKarl);
  karl::bench::PrintTableRow(
      {label, w.dataset, karl::bench::FormatQps(sota),
       karl::bench::FormatQps(chord), karl::bench::FormatQps(tangent),
       karl::bench::FormatQps(full)});
}

}  // namespace

int main() {
  const size_t nq = karl::bench::BenchQueries();
  std::printf("Ablation: KARL bound components, Gaussian kernel, kd-tree "
              "leaf capacity 80 (scale %.2f)\n\n",
              karl::bench::BenchScale());
  karl::bench::PrintTableHeader({"type", "dataset", "SOTA", "chord-only",
                                 "tangent-only", "KARL-full"});

  for (const char* name : {"miniboone", "home", "susy"}) {
    const karl::bench::Workload w = karl::bench::MakeTypeIWorkload(name, nq);

    karl::core::QuerySpec tau_spec;
    tau_spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    tau_spec.tau = w.tau;
    RunRow("I-tau", w, tau_spec);

    karl::core::QuerySpec eps_spec;
    eps_spec.kind = karl::core::QuerySpec::Kind::kApproximate;
    eps_spec.eps = 0.2;
    RunRow("I-eps", w, eps_spec);
  }
  for (const char* name : {"nsl-kdd", "covtype"}) {
    const karl::bench::Workload w = karl::bench::MakeTypeIIWorkload(name, nq);
    karl::core::QuerySpec spec;
    spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    RunRow("II-tau", w, spec);
  }
  return 0;
}
