#include "bench_common.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <memory>

#include "core/evaluator.h"
#include "data/normalize.h"
#include "ml/kde.h"
#include "server/json.h"
#include "telemetry/metrics.h"
#include "util/build_info.h"
#include "util/math_util.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace karl::bench {

namespace {

// FNV-1a of the dataset name: deterministic per-workload RNG seeds.
uint64_t NameSeed(const std::string& name, uint64_t salt) {
  uint64_t seed = 0xcbf29ce484222325ULL ^ salt;
  for (const char ch : name) {
    seed = (seed ^ static_cast<uint64_t>(ch)) * 0x100000001b3ULL;
  }
  return seed;
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atof(value);
}

// Generates the dataset (scaled), samples queries from it, and fills the
// workload skeleton.
Workload MakeBase(const std::string& name, size_t num_queries) {
  auto spec_result = data::FindDataset(name);
  if (!spec_result.ok()) {
    std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
    std::abort();
  }
  data::DatasetSpec spec = spec_result.value();
  spec.n = std::max<size_t>(
      1000, static_cast<size_t>(static_cast<double>(spec.n) * BenchScale()));

  Workload w;
  w.dataset = name;
  w.points = data::MakeUciLike(spec);
  w.weighting_type = spec.weighting_type;

  // Queries: sampled from the dataset, as in §V-A2.
  util::Rng rng(NameSeed(name, 0x51u));
  const auto rows = rng.SampleWithoutReplacement(
      w.points.rows(), std::min(num_queries, w.points.rows()));
  w.queries = w.points.SelectRows(rows);
  return w;
}

// Computes μ and σ of F over a probe subset of the queries by exact scan
// and sets τ = μ (the paper's default threshold).
void FillThresholdStats(Workload* w, size_t probe_count) {
  const size_t probes = std::min(probe_count, w->queries.rows());
  std::vector<double> values;
  values.reserve(probes);
  for (size_t i = 0; i < probes; ++i) {
    values.push_back(core::ExactAggregate(w->points, w->weights, w->kernel,
                                          w->queries.Row(i)));
  }
  w->mu = util::Mean(values);
  w->sigma = util::StdDev(values);
  w->tau = w->mu;
}

}  // namespace

double BenchScale() {
  static const double kScale = EnvDouble("KARL_BENCH_SCALE", 1.0);
  return kScale;
}

size_t BenchQueries() {
  static const size_t kQueries = static_cast<size_t>(
      std::max(1.0, EnvDouble("KARL_BENCH_QUERIES", 150.0)));
  return kQueries;
}

size_t BenchThreads() {
  static const size_t kThreads = static_cast<size_t>(
      std::max(1.0, EnvDouble("KARL_BENCH_THREADS", 1.0)));
  return kThreads;
}

Workload MakeTypeIWorkload(const std::string& name, size_t num_queries) {
  Workload w = MakeBase(name, num_queries);
  w.weighting_type = 1;
  w.weights.assign(w.points.rows(), 1.0 / static_cast<double>(w.points.rows()));
  w.kernel = core::KernelParams::Gaussian(
      ml::BandwidthToGamma(ml::ScottBandwidth(w.points)));
  FillThresholdStats(&w, 100);
  return w;
}

Workload MakeTypeIIWorkload(const std::string& name, size_t num_queries) {
  Workload w = MakeBase(name, num_queries);
  w.weighting_type = 2;
  // 1-class-SVM-like coefficients: most α at the box bound, a free tail —
  // the shape LIBSVM training produces. Normalised to Σα = 1.
  util::Rng rng(NameSeed(name, 2));
  w.weights.resize(w.points.rows());
  double total = 0.0;
  for (auto& alpha : w.weights) {
    alpha = rng.Uniform() < 0.7 ? 1.0 : rng.Uniform(0.05, 1.0);
    total += alpha;
  }
  for (auto& alpha : w.weights) alpha /= total;
  w.kernel = core::KernelParams::Gaussian(
      1.0 / static_cast<double>(w.points.cols()));  // LIBSVM default 1/d.
  FillThresholdStats(&w, 100);
  return w;
}

Workload MakeTypeIIIWorkload(const std::string& name, size_t num_queries) {
  Workload w = MakeBase(name, num_queries);
  w.weighting_type = 3;
  // 2-class coefficients α_i y_i: sign follows which side of a random
  // hyperplane the support vector falls on (opposing classes cluster on
  // opposite sides of the boundary), magnitude as in Type II.
  util::Rng rng(NameSeed(name, 3));
  const size_t d = w.points.cols();
  std::vector<double> normal(d);
  for (auto& v : normal) v = rng.Gaussian();
  double offset = 0.0;
  for (size_t j = 0; j < d; ++j) offset += normal[j] * 0.5;

  w.weights.resize(w.points.rows());
  for (size_t i = 0; i < w.points.rows(); ++i) {
    const double side = util::Dot(w.points.Row(i), normal) - offset;
    const double alpha =
        rng.Uniform() < 0.7 ? 1.0 : rng.Uniform(0.05, 1.0);
    w.weights[i] = side >= 0.0 ? alpha : -alpha;
  }
  w.kernel = core::KernelParams::Gaussian(1.0 / static_cast<double>(d));
  FillThresholdStats(&w, 100);
  return w;
}

Workload MakePolynomialWorkload(const std::string& name, int weighting_type,
                                size_t num_queries) {
  Workload w = weighting_type == 2 ? MakeTypeIIWorkload(name, num_queries)
                                   : MakeTypeIIIWorkload(name, num_queries);
  // §V-F: polynomial kernel, degree 3, data normalised to [−1,1]^d.
  data::NormalizationParams params =
      data::FitMinMax(w.points, -1.0, 1.0);
  data::ApplyNormalization(params, &w.points);
  data::ApplyNormalization(params, &w.queries);
  w.kernel = core::KernelParams::Polynomial(
      1.0 / static_cast<double>(w.points.cols()), 0.0, 3);
  FillThresholdStats(&w, 100);
  return w;
}

namespace {

// Renders and writes the karl-bench-v1 perf-trajectory document (see
// the KARL_BENCH_JSON_OUT doc in bench_common.h). Runs at exit.
void WriteBenchJsonSidecar(const char* path) {
  server::Json metrics = server::Json::Object();
  const telemetry::RegistrySnapshot snapshot =
      telemetry::GlobalRegistry().Snapshot();
  for (const auto& [name, value] : snapshot.gauges) {
    if (name.rfind("karl_bench_", 0) == 0) {
      metrics.Set(name, server::Json::Number(value));
    }
  }

  char host[256] = {0};
  if (::gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
  char date[32] = {0};
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }

  server::Json root = server::Json::Object();
  root.Set("schema", server::Json::Str("karl-bench-v1"));
  root.Set("bench", server::Json::Str(program_invocation_short_name));
  root.Set("version", server::Json::Str(util::BuildVersion()));
  root.Set("git_sha", server::Json::Str(util::BuildGitSha()));
  root.Set("build_type", server::Json::Str(util::BuildType()));
  root.Set("date", server::Json::Str(date));
  root.Set("host", server::Json::Str(host));
  root.Set("scale", server::Json::Number(BenchScale()));
  root.Set("queries",
           server::Json::Number(static_cast<double>(BenchQueries())));
  root.Set("threads",
           server::Json::Number(static_cast<double>(BenchThreads())));
  root.Set("metrics", std::move(metrics));

  const std::string body = root.Dump() + "\n";
  std::FILE* f = std::fopen(path, "we");
  if (f == nullptr) {
    std::fprintf(stderr, "bench json sidecar: cannot open '%s'\n", path);
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

}  // namespace

void RecordBenchMetric(const std::string& name, double value) {
  std::string metric = "karl_bench_" + name;
  for (char& ch : metric) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    if (!ok) ch = '_';
  }
  telemetry::GlobalRegistry().GetGauge(metric)->Set(value);

  const char* path = std::getenv("KARL_BENCH_METRICS_OUT");
  if (path != nullptr && *path != '\0') {
    static const bool armed = [] {
      std::atexit(+[] {
        const char* out = std::getenv("KARL_BENCH_METRICS_OUT");
        if (out == nullptr || *out == '\0') return;
        if (auto st = telemetry::WriteMetricsFile(
                telemetry::GlobalRegistry(), out);
            !st.ok()) {
          std::fprintf(stderr, "bench metrics sidecar write failed: %s\n",
                       st.ToString().c_str());
        }
      });
      return true;
    }();
    (void)armed;
  }

  const char* json_path = std::getenv("KARL_BENCH_JSON_OUT");
  if (json_path != nullptr && *json_path != '\0') {
    static const bool json_armed = [] {
      std::atexit(+[] {
        const char* out = std::getenv("KARL_BENCH_JSON_OUT");
        if (out == nullptr || *out == '\0') return;
        WriteBenchJsonSidecar(out);
      });
      return true;
    }();
    (void)json_armed;
  }
}

EngineOptions DefaultOptions(const Workload& w) {
  EngineOptions options;
  options.kernel = w.kernel;
  options.bounds = core::BoundKind::kKarl;
  options.index_kind = index::IndexKind::kKdTree;
  options.leaf_capacity = 80;
  return options;
}

double MeasureScanThroughput(const Workload& w, const core::QuerySpec& spec) {
  util::Stopwatch timer;
  volatile double sink = 0.0;
  for (size_t i = 0; i < w.queries.rows(); ++i) {
    const double f = core::ExactAggregate(w.points, w.weights, w.kernel,
                                          w.queries.Row(i));
    sink = spec.kind == core::QuerySpec::Kind::kThreshold
               ? (f > spec.tau ? 1.0 : 0.0)
               : f;
  }
  (void)sink;
  const double qps = static_cast<double>(w.queries.rows()) /
                     std::max(timer.ElapsedSeconds(), 1e-9);
  RecordBenchMetric("scan_qps_" + w.dataset, qps);
  return qps;
}

double MeasureLibsvmThroughput(const Workload& w,
                               const core::QuerySpec& spec) {
  // LibSVM's predictor: CSR-stored support vectors, sparse dot products,
  // then a threshold comparison. On dense data this tracks SCAN, as in
  // Table VII; on sparse data it runs ahead of it.
  const data::SparseMatrix sparse = data::SparseMatrix::FromDense(w.points);
  util::Stopwatch timer;
  volatile double sink = 0.0;
  for (size_t i = 0; i < w.queries.rows(); ++i) {
    const double f = core::ExactAggregateSparse(sparse, w.weights, w.kernel,
                                                w.queries.Row(i));
    sink = f > spec.tau ? 1.0 : -1.0;
  }
  (void)sink;
  const double qps = static_cast<double>(w.queries.rows()) /
                     std::max(timer.ElapsedSeconds(), 1e-9);
  RecordBenchMetric("libsvm_qps_" + w.dataset, qps);
  return qps;
}

double MeasureEngineThroughput(const Workload& w, const core::QuerySpec& spec,
                               const EngineOptions& options) {
  auto engine = Engine::Build(w.points, w.weights, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  return core::MeasureThroughput(engine.value(), w.queries, spec);
}

double MeasureBatchThroughput(const Workload& w, const core::QuerySpec& spec,
                              const EngineOptions& options, size_t threads) {
  auto engine = Engine::Build(w.points, w.weights, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  // threads == 1 runs the serial batch path (no pool, no scheduling
  // overhead) — the honest single-thread baseline for scaling ratios.
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);

  util::Stopwatch timer;
  if (spec.kind == core::QuerySpec::Kind::kThreshold) {
    const auto out =
        engine.value().TkaqBatch(w.queries, spec.tau, pool.get());
    (void)out;
  } else {
    const auto out =
        engine.value().EkaqBatch(w.queries, spec.eps, pool.get());
    (void)out;
  }
  const double qps = static_cast<double>(w.queries.rows()) /
                     std::max(timer.ElapsedSeconds(), 1e-9);
  RecordBenchMetric(
      "batch_qps_" + w.dataset + "_threads_" + std::to_string(threads), qps);
  return qps;
}

double MeasureBestOverGrid(const Workload& w, const core::QuerySpec& spec,
                           core::BoundKind bounds) {
  double best = 0.0;
  for (const auto& config : core::DefaultTuningGrid()) {
    EngineOptions options = DefaultOptions(w);
    options.bounds = bounds;
    options.index_kind = config.kind;
    options.leaf_capacity = config.leaf_capacity;
    best = std::max(best, MeasureEngineThroughput(w, spec, options));
  }
  RecordBenchMetric(
      (bounds == core::BoundKind::kKarl ? "karl_best_qps_" : "sota_best_qps_") +
          w.dataset,
      best);
  return best;
}

double MeasureKarlAuto(const Workload& w, const core::QuerySpec& spec) {
  // Tune on a sample of the query set (paper: 1000 sampled vectors; here
  // bounded by the workload's query count).
  const size_t sample = std::max<size_t>(1, w.queries.rows() / 4);
  util::Rng rng(99);
  const auto rows = rng.SampleWithoutReplacement(w.queries.rows(), sample);
  const data::Matrix sample_queries = w.queries.SelectRows(rows);

  auto tuned = core::OfflineTune(w.points, w.weights, DefaultOptions(w),
                                 sample_queries, spec,
                                 core::DefaultTuningGrid());
  if (!tuned.ok()) {
    std::fprintf(stderr, "offline tuning failed: %s\n",
                 tuned.status().ToString().c_str());
    std::abort();
  }
  EngineOptions options = DefaultOptions(w);
  options.index_kind = tuned.value().best.kind;
  options.leaf_capacity = tuned.value().best.leaf_capacity;
  const double qps = MeasureEngineThroughput(w, spec, options);
  RecordBenchMetric("karl_auto_qps_" + w.dataset, qps);
  return qps;
}

core::IndexConfig TuneConfigOnce(const Workload& w,
                                 const core::QuerySpec& spec,
                                 core::BoundKind bounds) {
  const size_t sample = std::max<size_t>(1, w.queries.rows() / 4);
  util::Rng rng(98);
  const auto rows = rng.SampleWithoutReplacement(w.queries.rows(), sample);
  const data::Matrix sample_queries = w.queries.SelectRows(rows);

  EngineOptions base = DefaultOptions(w);
  base.bounds = bounds;
  auto tuned = core::OfflineTune(w.points, w.weights, base, sample_queries,
                                 spec, core::DefaultTuningGrid());
  if (!tuned.ok()) {
    std::fprintf(stderr, "offline tuning failed: %s\n",
                 tuned.status().ToString().c_str());
    std::abort();
  }
  return tuned.value().best;
}

double MeasureWithConfig(const Workload& w, const core::QuerySpec& spec,
                         core::BoundKind bounds,
                         const core::IndexConfig& config) {
  EngineOptions options = DefaultOptions(w);
  options.bounds = bounds;
  options.index_kind = config.kind;
  options.leaf_capacity = config.leaf_capacity;
  return MeasureEngineThroughput(w, spec, options);
}

void PrintTableHeader(const std::vector<std::string>& columns) {
  for (const auto& col : columns) std::printf("%14s", col.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%14s", "------");
  std::printf("\n");
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (const auto& cell : cells) std::printf("%14s", cell.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatQps(double qps) {
  char buffer[32];
  if (qps >= 1000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", qps);
  } else if (qps >= 10.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f", qps);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f", qps);
  }
  return buffer;
}

}  // namespace karl::bench
