// Shared infrastructure for the paper-reproduction benchmarks: workload
// construction per weighting type (Table VI), method runners matching the
// paper's comparison columns (SCAN / LIBSVM / Scikit / SOTA_best /
// KARL_auto), and table printing.
//
// Environment knobs:
//   KARL_BENCH_SCALE        multiplies every dataset cardinality (default 1.0)
//   KARL_BENCH_QUERIES      query-set size per workload (default 150)
//   KARL_BENCH_THREADS      worker-thread count for batch runners
//                           (default 1 = serial; tools also accept
//                           --threads=N which takes precedence)
//   KARL_BENCH_METRICS_OUT  when set, the process writes the telemetry
//                           registry (every metric recorded via
//                           RecordBenchMetric plus any engine-level
//                           instrumentation) to this path at exit —
//                           a machine-readable sidecar next to the
//                           human-readable tables on stdout
//   KARL_BENCH_JSON_OUT     when set, the process writes a
//                           perf-trajectory document (schema
//                           "karl-bench-v1") to this path at exit:
//                           {schema, bench, version, git_sha,
//                           build_type, date (UTC ISO-8601), host,
//                           scale, queries, threads, metrics:{every
//                           karl_bench_* gauge}}. One such file per
//                           run, committed over time (BENCH_*.json at
//                           the repo root), is the throughput history
//                           of this codebase.

#ifndef KARL_BENCH_BENCH_COMMON_H_
#define KARL_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/karl.h"
#include "core/tuning.h"
#include "data/synthetic.h"

namespace karl::bench {

/// One benchmark workload: dataset + weights + kernel + query set +
/// threshold, ready for any method to run.
struct Workload {
  std::string dataset;
  data::Matrix points;
  std::vector<double> weights;
  core::KernelParams kernel;
  data::Matrix queries;
  double tau = 0.0;    ///< Threshold (μ of F over a query sample).
  double mu = 0.0;     ///< Mean of F over the probe sample.
  double sigma = 0.0;  ///< Std-dev of F over the probe sample.
  int weighting_type = 1;
};

/// Dataset scale multiplier from KARL_BENCH_SCALE (default 1.0).
double BenchScale();

/// Query count from KARL_BENCH_QUERIES (default 150).
size_t BenchQueries();

/// Batch worker-thread count from KARL_BENCH_THREADS (default 1).
size_t BenchThreads();

/// Builds the Type-I (KDE) workload for a registry dataset: uniform
/// weights 1/n, Scott's-rule γ, queries sampled from the data,
/// τ = μ = mean F over the probe sample.
Workload MakeTypeIWorkload(const std::string& name, size_t num_queries);

/// Type-II workload: synthetic 1-class-SVM-like positive coefficients
/// over the support-vector-scale dataset, γ = 1/d, τ = μ.
Workload MakeTypeIIWorkload(const std::string& name, size_t num_queries);

/// Type-III workload: signed 2-class-SVM-like coefficients, γ = 1/d,
/// τ = μ.
Workload MakeTypeIIIWorkload(const std::string& name, size_t num_queries);

/// Polynomial-kernel variant (degree 3, LIBSVM default; data re-scaled to
/// [−1,1]^d as in §V-F). weighting_type must be 2 or 3.
Workload MakePolynomialWorkload(const std::string& name, int weighting_type,
                                size_t num_queries);

/// SCAN baseline: exact sequential aggregation per query.
double MeasureScanThroughput(const Workload& w, const core::QuerySpec& spec);

/// LIBSVM-style baseline: sequential decision-function evaluation
/// (same O(nd) scan through a separate code path, mirroring the paper's
/// near-identical SCAN vs LIBSVM columns on dense data).
double MeasureLibsvmThroughput(const Workload& w,
                               const core::QuerySpec& spec);

/// Runs the query set through an engine built with `options`.
double MeasureEngineThroughput(const Workload& w, const core::QuerySpec& spec,
                               const EngineOptions& options);

/// Runs the query set through Engine::TkaqBatch / EkaqBatch fanned over
/// `threads` pool workers (1 = serial batch path, no pool). Records
/// gauge "karl_bench_batch_qps_<dataset>_threads_<N>". Results are
/// bit-identical to MeasureEngineThroughput's serial loop, so the two
/// are directly comparable.
double MeasureBatchThroughput(const Workload& w, const core::QuerySpec& spec,
                              const EngineOptions& options, size_t threads);

/// Best throughput over the paper's index grid for the given bound kind —
/// the SOTA_best / KARL_best columns. Measures each config on the full
/// query set.
double MeasureBestOverGrid(const Workload& w, const core::QuerySpec& spec,
                           core::BoundKind bounds);

/// KARL_auto: offline-tunes on a sampled query subset (§III-C), then
/// measures the recommended config on the full query set.
double MeasureKarlAuto(const Workload& w, const core::QuerySpec& spec);

/// Offline-tunes once on a query sample and returns the recommended
/// config for the given bound kind. Sweep benchmarks tune per dataset
/// (not per sweep point) and reuse the config, keeping runs tractable.
core::IndexConfig TuneConfigOnce(const Workload& w,
                                 const core::QuerySpec& spec,
                                 core::BoundKind bounds);

/// Measures a workload with a fixed (kind, leaf capacity, bounds) choice.
double MeasureWithConfig(const Workload& w, const core::QuerySpec& spec,
                         core::BoundKind bounds,
                         const core::IndexConfig& config);

/// Row printing: fixed-width columns, paper-style.
void PrintTableHeader(const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);

/// Formats a throughput like the paper ("36.1", "20668").
std::string FormatQps(double qps);

/// The base EngineOptions every method shares (kernel filled per
/// workload).
EngineOptions DefaultOptions(const Workload& w);

/// Records a benchmark result as gauge "karl_bench_<name>" (characters
/// outside [A-Za-z0-9_] are mapped to '_') in the global telemetry
/// registry. When KARL_BENCH_METRICS_OUT is set, the first call arms an
/// atexit hook that dumps the registry to that path, so bench binaries
/// emit a machine-readable metrics sidecar without any per-binary
/// plumbing. The Measure* runners call this automatically.
void RecordBenchMetric(const std::string& name, double value);

}  // namespace karl::bench

#endif  // KARL_BENCH_BENCH_COMMON_H_
