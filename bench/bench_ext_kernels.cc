// Extension benchmark (not a paper table; see DESIGN.md): KARL vs SOTA
// vs SCAN for the additional distance kernels (Laplacian, Cauchy) that
// ride the same convex-profile bound machinery as the Gaussian —
// demonstrating the paper's "extensible to different kernel functions"
// claim beyond its own evaluation.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "ml/kde.h"

namespace {

void RunRow(const char* kernel_name, karl::bench::Workload w) {
  karl::core::QuerySpec spec;
  spec.kind = karl::core::QuerySpec::Kind::kThreshold;
  spec.tau = w.tau;

  const double scan = karl::bench::MeasureScanThroughput(w, spec);
  karl::EngineOptions sota = karl::bench::DefaultOptions(w);
  sota.bounds = karl::core::BoundKind::kSota;
  const double sota_qps = karl::bench::MeasureEngineThroughput(w, spec, sota);
  karl::EngineOptions karl_options = karl::bench::DefaultOptions(w);
  const double karl_qps =
      karl::bench::MeasureEngineThroughput(w, spec, karl_options);

  karl::bench::PrintTableRow(
      {kernel_name, w.dataset, karl::bench::FormatQps(scan),
       karl::bench::FormatQps(sota_qps), karl::bench::FormatQps(karl_qps),
       karl::bench::FormatQps(karl_qps / std::max(sota_qps, 1e-9)) + "x"});
}

// Re-derives τ after swapping the kernel.
void RetargetKernel(karl::bench::Workload* w,
                    const karl::core::KernelParams& kernel) {
  w->kernel = kernel;
  std::vector<double> values;
  for (size_t i = 0; i < std::min<size_t>(80, w->queries.rows()); ++i) {
    values.push_back(karl::core::ExactAggregate(w->points, w->weights,
                                                w->kernel, w->queries.Row(i)));
  }
  double mu = 0.0;
  for (const double v : values) mu += v;
  w->mu = w->tau = mu / static_cast<double>(values.size());
}

}  // namespace

int main() {
  const size_t nq = karl::bench::BenchQueries();
  std::printf("Extension: distance-kernel family throughput (q/s), type "
              "I-tau, kd-tree leaf capacity 80 (scale %.2f)\n\n",
              karl::bench::BenchScale());
  karl::bench::PrintTableHeader(
      {"kernel", "dataset", "SCAN", "SOTA", "KARL", "KARL/SOTA"});

  for (const char* name : {"miniboone", "home"}) {
    karl::bench::Workload base = karl::bench::MakeTypeIWorkload(name, nq);
    const double gamma = base.kernel.gamma;

    RunRow("gaussian", base);

    karl::bench::Workload laplacian = base;
    RetargetKernel(&laplacian,
                   karl::core::KernelParams::Laplacian(std::sqrt(gamma)));
    RunRow("laplacian", laplacian);

    karl::bench::Workload cauchy = base;
    RetargetKernel(&cauchy, karl::core::KernelParams::Cauchy(gamma));
    RunRow("cauchy", cauchy);
  }
  return 0;
}
