// Reproduces paper Fig. 10: query throughput for type I-ε while varying
// the relative error ε in {0.05, 0.1, 0.15, 0.2, 0.25, 0.3} on
// miniboone, home and susy. Methods: SCAN, SOTA_best (= Scikit_best, the
// Gray–Moore KDE), KARL_auto.

#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  const size_t nq = karl::bench::BenchQueries();
  std::printf("Fig. 10: type I-eps throughput (q/s) vs relative error "
              "(scale %.2f)\n\n",
              karl::bench::BenchScale());

  for (const char* name : {"miniboone", "home", "susy"}) {
    const karl::bench::Workload w = karl::bench::MakeTypeIWorkload(name, nq);
    std::printf("dataset %s:\n", name);
    karl::bench::PrintTableHeader(
        {"eps", "SCAN", "SOTA_best", "KARL_auto"});

    // Tune once at ε = 0.2 and reuse the configs across the sweep.
    karl::core::QuerySpec tune_spec;
    tune_spec.kind = karl::core::QuerySpec::Kind::kApproximate;
    tune_spec.eps = 0.2;
    const auto sota_cfg = karl::bench::TuneConfigOnce(
        w, tune_spec, karl::core::BoundKind::kSota);
    const auto karl_cfg = karl::bench::TuneConfigOnce(
        w, tune_spec, karl::core::BoundKind::kKarl);

    for (const double eps : {0.05, 0.10, 0.15, 0.20, 0.25, 0.30}) {
      karl::core::QuerySpec spec;
      spec.kind = karl::core::QuerySpec::Kind::kApproximate;
      spec.eps = eps;
      const double scan = karl::bench::MeasureScanThroughput(w, spec);
      const double sota = karl::bench::MeasureWithConfig(
          w, spec, karl::core::BoundKind::kSota, sota_cfg);
      const double karl_auto = karl::bench::MeasureWithConfig(
          w, spec, karl::core::BoundKind::kKarl, karl_cfg);
      char label[16];
      std::snprintf(label, sizeof(label), "%.2f", eps);
      karl::bench::PrintTableRow({label, karl::bench::FormatQps(scan),
                                  karl::bench::FormatQps(sota),
                                  karl::bench::FormatQps(karl_auto)});
    }
    std::printf("\n");
  }
  return 0;
}
