// Reproduces paper Fig. 11: throughput on the susy dataset while varying
// its size via sampling, for (a) type I-τ with τ = μ and (b) type I-ε
// with ε = 0.2. Methods: SCAN, SOTA_best, KARL_auto.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/rng.h"

namespace {

karl::bench::Workload Subsample(const karl::bench::Workload& base,
                                double fraction) {
  karl::bench::Workload w = base;
  karl::util::Rng rng(1234);
  const size_t keep = static_cast<size_t>(
      static_cast<double>(base.points.rows()) * fraction);
  const auto rows = rng.SampleWithoutReplacement(base.points.rows(), keep);
  w.points = base.points.SelectRows(rows);
  w.weights.assign(keep, 1.0 / static_cast<double>(keep));
  // Recompute τ on the shrunk dataset: μ scales with weight normalisation.
  std::vector<double> values;
  const size_t probes = std::min<size_t>(100, w.queries.rows());
  for (size_t i = 0; i < probes; ++i) {
    values.push_back(karl::core::ExactAggregate(w.points, w.weights, w.kernel,
                                                w.queries.Row(i)));
  }
  double mu = 0.0;
  for (const double v : values) mu += v;
  w.mu = mu / static_cast<double>(values.size());
  w.tau = w.mu;
  return w;
}

void RunSweep(const karl::bench::Workload& base, bool threshold_mode) {
  karl::bench::PrintTableHeader({"size", "SCAN", "SOTA_best", "KARL_auto"});

  // Tune once on the full-size workload, reuse across the size sweep.
  karl::core::QuerySpec tune_spec;
  if (threshold_mode) {
    tune_spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    tune_spec.tau = base.tau;
  } else {
    tune_spec.kind = karl::core::QuerySpec::Kind::kApproximate;
    tune_spec.eps = 0.2;
  }
  const auto sota_cfg = karl::bench::TuneConfigOnce(
      base, tune_spec, karl::core::BoundKind::kSota);
  const auto karl_cfg = karl::bench::TuneConfigOnce(
      base, tune_spec, karl::core::BoundKind::kKarl);

  for (const double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const karl::bench::Workload w = Subsample(base, fraction);
    karl::core::QuerySpec spec;
    if (threshold_mode) {
      spec.kind = karl::core::QuerySpec::Kind::kThreshold;
      spec.tau = w.tau;
    } else {
      spec.kind = karl::core::QuerySpec::Kind::kApproximate;
      spec.eps = 0.2;
    }
    const double scan = karl::bench::MeasureScanThroughput(w, spec);
    const double sota = karl::bench::MeasureWithConfig(
        w, spec, karl::core::BoundKind::kSota, sota_cfg);
    const double karl_auto = karl::bench::MeasureWithConfig(
        w, spec, karl::core::BoundKind::kKarl, karl_cfg);
    karl::bench::PrintTableRow(
        {std::to_string(w.points.rows()), karl::bench::FormatQps(scan),
         karl::bench::FormatQps(sota), karl::bench::FormatQps(karl_auto)});
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Fig. 11: throughput (q/s) on susy vs dataset size (scale "
              "%.2f)\n\n",
              karl::bench::BenchScale());
  const karl::bench::Workload base =
      karl::bench::MakeTypeIWorkload("susy", karl::bench::BenchQueries());

  std::printf("(a) type I-tau, tau = mu:\n");
  RunSweep(base, /*threshold_mode=*/true);

  std::printf("(b) type I-eps, eps = 0.2:\n");
  RunSweep(base, /*threshold_mode=*/false);
  return 0;
}
