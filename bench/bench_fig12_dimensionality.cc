// Reproduces paper Fig. 12: throughput for query type I-τ (τ = μ) on the
// mnist dataset while varying the dimensionality via PCA reduction
// (d in {32, 64, 128, 256, 512, 784}). Methods: SCAN, SOTA_best,
// KARL_auto.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "data/pca.h"
#include "ml/kde.h"

int main() {
  const size_t nq = karl::bench::BenchQueries();
  std::printf("Fig. 12: type I-tau throughput (q/s) on mnist vs PCA "
              "dimensionality (scale %.2f)\n\n",
              karl::bench::BenchScale());

  const karl::bench::Workload base =
      karl::bench::MakeTypeIWorkload("mnist", nq);
  std::printf("fitting PCA on %zu x %zu ...\n", base.points.rows(),
              base.points.cols());
  auto pca = karl::data::PcaModel::Fit(base.points).ValueOrDie();

  karl::bench::PrintTableHeader(
      {"dim", "SCAN", "SOTA_best", "KARL_auto"});
  for (const size_t dim : {32u, 64u, 128u, 256u, 512u, 784u}) {
    if (dim > base.points.cols()) continue;
    karl::bench::Workload w = base;
    w.points = pca.Project(base.points, dim).ValueOrDie();
    w.queries = pca.Project(base.queries, dim).ValueOrDie();
    // Re-derive the bandwidth in the reduced space (as [15] does when
    // reducing with PCA) and re-estimate τ = μ.
    w.kernel = karl::core::KernelParams::Gaussian(
        karl::ml::BandwidthToGamma(karl::ml::ScottBandwidth(w.points)));
    std::vector<double> values;
    for (size_t i = 0; i < std::min<size_t>(60, w.queries.rows()); ++i) {
      values.push_back(karl::core::ExactAggregate(
          w.points, w.weights, w.kernel, w.queries.Row(i)));
    }
    double mu = 0.0;
    for (const double v : values) mu += v;
    w.mu = w.tau = mu / static_cast<double>(values.size());

    karl::core::QuerySpec spec;
    spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;

    const double scan = karl::bench::MeasureScanThroughput(w, spec);
    const double sota = karl::bench::MeasureWithConfig(
        w, spec, karl::core::BoundKind::kSota,
        karl::bench::TuneConfigOnce(w, spec, karl::core::BoundKind::kSota));
    const double karl_auto = karl::bench::MeasureWithConfig(
        w, spec, karl::core::BoundKind::kKarl,
        karl::bench::TuneConfigOnce(w, spec, karl::core::BoundKind::kKarl));
    karl::bench::PrintTableRow(
        {std::to_string(dim), karl::bench::FormatQps(scan),
         karl::bench::FormatQps(sota), karl::bench::FormatQps(karl_auto)});
  }
  return 0;
}
