// Reproduces paper Fig. 13: average tightness of the bound functions,
//
//   Error = (1/L)·Σ_l | Σ_{R ∈ level l} bound(q, R) − F_P(q) | / F_P(q)
//
// for the lower and upper bounds of SOTA and KARL over a kd-tree with
// leaf capacity 80 (the paper's setting), on the Type-I, II and III
// datasets. Lower is tighter.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/bounds.h"
#include "core/evaluator.h"
#include "index/kd_tree.h"

namespace {

using karl::bench::Workload;
using karl::core::BoundKind;

struct TightnessResult {
  double error_lb = 0.0;
  double error_ub = 0.0;
};

// Average level-wise relative bound error over the workload's queries.
// Type III splits into two positive trees, mirroring the engine.
TightnessResult MeasureTightness(const Workload& w, BoundKind kind) {
  // Split by weight sign.
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < w.weights.size(); ++i) {
    (w.weights[i] >= 0.0 ? pos : neg).push_back(i);
  }
  std::vector<double> pw, nw;
  for (const size_t i : pos) pw.push_back(w.weights[i]);
  for (const size_t i : neg) nw.push_back(-w.weights[i]);
  const karl::data::Matrix pp = w.points.SelectRows(pos);
  auto ptree = karl::index::KdTree::Build(pp, pw, 80).ValueOrDie();
  std::unique_ptr<karl::index::KdTree> ntree;
  karl::data::Matrix np;
  if (!neg.empty()) {
    np = w.points.SelectRows(neg);
    ntree = karl::index::KdTree::Build(np, nw, 80).ValueOrDie();
  }

  auto bounds = karl::core::MakeBoundFunction(w.kernel, kind).ValueOrDie();

  // Per level l: frontier = nodes at depth l plus leaves at depth < l.
  const auto level_bounds = [&](const karl::index::TreeIndex& tree,
                                const karl::core::QueryContext& ctx,
                                size_t level, double* lb, double* ub) {
    double lb_sum = 0.0, ub_sum = 0.0;
    for (size_t id = 0; id < tree.num_nodes(); ++id) {
      const auto& nd = tree.node(id);
      const bool frontier_member =
          nd.depth == level || (nd.is_leaf() && nd.depth < level);
      if (!frontier_member) continue;
      double node_lb = 0.0, node_ub = 0.0;
      bounds->NodeBounds(tree, static_cast<karl::index::NodeId>(id), ctx,
                         &node_lb, &node_ub);
      lb_sum += node_lb;
      ub_sum += node_ub;
    }
    *lb = lb_sum;
    *ub = ub_sum;
  };

  TightnessResult result;
  size_t samples = 0;
  const size_t query_count = std::min<size_t>(40, w.queries.rows());
  const size_t levels =
      std::max<size_t>(ptree->max_depth(),
                       ntree != nullptr ? ntree->max_depth() : 0);

  for (size_t qi = 0; qi < query_count; ++qi) {
    const auto q = w.queries.Row(qi);
    const karl::core::QueryContext ctx = karl::core::QueryContext::Make(q);
    const double exact = karl::core::ExactAggregate(w.points, w.weights,
                                                    w.kernel, q);
    if (std::abs(exact) < 1e-12) continue;

    for (size_t level = 1; level <= levels; ++level) {
      double plb = 0.0, pub = 0.0;
      level_bounds(*ptree, ctx,
                   std::min(level, ptree->max_depth()), &plb, &pub);
      double lb = plb, ub = pub;
      if (ntree != nullptr) {
        double nlb = 0.0, nub = 0.0;
        level_bounds(*ntree, ctx,
                     std::min(level, ntree->max_depth()), &nlb, &nub);
        lb = plb - nub;
        ub = pub - nlb;
      }
      result.error_lb += std::abs(lb - exact) / std::abs(exact);
      result.error_ub += std::abs(ub - exact) / std::abs(exact);
      ++samples;
    }
  }
  if (samples > 0) {
    result.error_lb /= static_cast<double>(samples);
    result.error_ub /= static_cast<double>(samples);
  }
  return result;
}

void RunRow(const char* type_label, const Workload& w) {
  const TightnessResult sota = MeasureTightness(w, BoundKind::kSota);
  const TightnessResult karl_r = MeasureTightness(w, BoundKind::kKarl);
  const auto fmt = [](double v) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.3e", v);
    return std::string(buffer);
  };
  karl::bench::PrintTableRow({type_label, w.dataset, fmt(sota.error_lb),
                              fmt(karl_r.error_lb), fmt(sota.error_ub),
                              fmt(karl_r.error_ub)});
}

}  // namespace

int main() {
  const size_t nq = karl::bench::BenchQueries();
  std::printf("Fig. 13: average bound tightness (lower = tighter), kd-tree "
              "leaf capacity 80 (scale %.2f)\n\n",
              karl::bench::BenchScale());
  karl::bench::PrintTableHeader({"type", "dataset", "ErrLB_SOTA",
                                 "ErrLB_KARL", "ErrUB_SOTA", "ErrUB_KARL"});

  for (const char* name : {"miniboone", "home", "susy"}) {
    RunRow("I", karl::bench::MakeTypeIWorkload(name, nq));
  }
  for (const char* name : {"nsl-kdd", "kdd99", "covtype"}) {
    RunRow("II", karl::bench::MakeTypeIIWorkload(name, nq));
  }
  for (const char* name : {"ijcnn1", "a9a", "covtype-b"}) {
    RunRow("III", karl::bench::MakeTypeIIIWorkload(name, nq));
  }
  return 0;
}
