// Reproduces paper Fig. 6: lower/upper bound values of SOTA and KARL
// versus refinement iteration for a type I-τ query on the home dataset,
// with the iteration at which each method terminates.
//
// Prints the two (lb, ub) series side by side plus the stopping
// iterations — the paper's plot as a table.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/evaluator.h"

namespace {

struct Series {
  std::vector<double> lb, ub;
  size_t stop_iteration = 0;
};

Series TraceQuery(const karl::bench::Workload& w,
                  karl::core::BoundKind bounds,
                  std::span<const double> q, double tau) {
  karl::EngineOptions options = karl::bench::DefaultOptions(w);
  options.bounds = bounds;
  auto engine = karl::Engine::Build(w.points, w.weights, options).ValueOrDie();

  Series series;
  karl::core::TraceFn trace = [&](size_t, double lb, double ub) {
    series.lb.push_back(lb);
    series.ub.push_back(ub);
  };

  // Stopping iteration: run the real TKAQ with the trace attached.
  engine.evaluator().QueryThreshold(q, tau, nullptr, &trace);
  series.stop_iteration = series.lb.empty() ? 0 : series.lb.size() - 1;

  // Then extend the series to full convergence for the plot.
  Series full;
  karl::core::TraceFn full_trace = [&](size_t, double lb, double ub) {
    full.lb.push_back(lb);
    full.ub.push_back(ub);
  };
  double lb = 0.0, ub = 0.0;
  engine.evaluator().RefineToConvergence(q, 1u << 22, &lb, &ub, &full_trace);
  full.stop_iteration = series.stop_iteration;
  return full;
}

}  // namespace

int main() {
  std::printf("Fig. 6: bound values vs iteration, type I-tau query, home "
              "dataset (scale %.2f)\n\n",
              karl::bench::BenchScale());
  const karl::bench::Workload w =
      karl::bench::MakeTypeIWorkload("home", karl::bench::BenchQueries());
  const auto qspan = w.queries.Row(0);
  const std::vector<double> q(qspan.begin(), qspan.end());

  const Series sota = TraceQuery(w, karl::core::BoundKind::kSota, q, w.tau);
  const Series karl_series =
      TraceQuery(w, karl::core::BoundKind::kKarl, q, w.tau);

  std::printf("threshold tau = %.6g\n", w.tau);
  std::printf("KARL stops at iteration %zu; SOTA stops at iteration %zu "
              "(%.1fx fewer iterations)\n\n",
              karl_series.stop_iteration, sota.stop_iteration,
              sota.stop_iteration /
                  std::max<double>(1.0, karl_series.stop_iteration));

  karl::bench::PrintTableHeader(
      {"iteration", "LB_SOTA", "UB_SOTA", "LB_KARL", "UB_KARL"});
  const size_t total =
      std::max(sota.lb.size(), karl_series.lb.size());
  // ~24 sample rows across the full convergence horizon.
  const size_t step = std::max<size_t>(1, total / 24);
  for (size_t i = 0; i < total; i += step) {
    const auto cell = [](const std::vector<double>& v, size_t i) {
      // Series that already converged hold their final value.
      if (v.empty()) return std::string("-");
      const double value = i < v.size() ? v[i] : v.back();
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.5g", value);
      return std::string(buffer);
    };
    karl::bench::PrintTableRow({std::to_string(i), cell(sota.lb, i),
                                cell(sota.ub, i), cell(karl_series.lb, i),
                                cell(karl_series.ub, i)});
  }
  return 0;
}
