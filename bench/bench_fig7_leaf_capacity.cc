// Reproduces paper Fig. 7: KARL's throughput for query type I-τ while
// varying the leaf capacity (10..640) on the kd-tree and the ball-tree,
// for the home and susy datasets. Shows why automatic tuning matters:
// best/worst gaps of several x, with the optimum differing per dataset.

#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  const size_t nq = karl::bench::BenchQueries();
  std::printf("Fig. 7: KARL throughput (q/s) for type I-tau vs leaf "
              "capacity (scale %.2f)\n\n",
              karl::bench::BenchScale());

  for (const char* name : {"home", "susy"}) {
    const karl::bench::Workload w =
        karl::bench::MakeTypeIWorkload(name, nq);
    karl::core::QuerySpec spec;
    spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;

    std::printf("dataset %s (n=%zu, d=%zu):\n", name, w.points.rows(),
                w.points.cols());
    karl::bench::PrintTableHeader(
        {"leaf cap", "KARL_kd", "KARL_ball"});
    double best = 0.0, worst = 1e300;
    for (const size_t cap : {10, 20, 40, 80, 160, 320, 640}) {
      karl::EngineOptions kd = karl::bench::DefaultOptions(w);
      kd.leaf_capacity = cap;
      kd.index_kind = karl::index::IndexKind::kKdTree;
      const double kd_qps = karl::bench::MeasureEngineThroughput(w, spec, kd);

      karl::EngineOptions ball = kd;
      ball.index_kind = karl::index::IndexKind::kBallTree;
      const double ball_qps =
          karl::bench::MeasureEngineThroughput(w, spec, ball);

      best = std::max({best, kd_qps, ball_qps});
      worst = std::min({worst, kd_qps, ball_qps});
      karl::bench::PrintTableRow({std::to_string(cap),
                                  karl::bench::FormatQps(kd_qps),
                                  karl::bench::FormatQps(ball_qps)});
    }
    std::printf("best/worst gap: %.1fx\n\n", best / worst);
  }
  return 0;
}
