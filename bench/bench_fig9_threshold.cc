// Reproduces paper Fig. 9: query throughput for type I-τ while varying
// the threshold τ from μ−2σ to μ+4σ on miniboone, home and susy
// (negative thresholds are skipped, as the paper does for miniboone).
// Methods: SCAN, SOTA_best, KARL_auto.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

int main() {
  const size_t nq = karl::bench::BenchQueries();
  std::printf("Fig. 9: type I-tau throughput (q/s) vs threshold (scale "
              "%.2f)\n\n",
              karl::bench::BenchScale());

  const std::vector<std::pair<std::string, double>> offsets = {
      {"mu-2s", -2.0}, {"mu-1s", -1.0}, {"mu", 0.0},   {"mu+1s", 1.0},
      {"mu+2s", 2.0},  {"mu+3s", 3.0},  {"mu+4s", 4.0}};

  for (const char* name : {"miniboone", "home", "susy"}) {
    const karl::bench::Workload w = karl::bench::MakeTypeIWorkload(name, nq);
    std::printf("dataset %s (mu=%.4g, sigma=%.4g):\n", name, w.mu, w.sigma);
    karl::bench::PrintTableHeader(
        {"tau", "SCAN", "SOTA_best", "KARL_auto"});

    // Tune once at τ = μ and reuse the configs across the sweep.
    karl::core::QuerySpec tune_spec;
    tune_spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    tune_spec.tau = w.mu;
    const auto sota_cfg = karl::bench::TuneConfigOnce(
        w, tune_spec, karl::core::BoundKind::kSota);
    const auto karl_cfg = karl::bench::TuneConfigOnce(
        w, tune_spec, karl::core::BoundKind::kKarl);

    for (const auto& [label, k] : offsets) {
      const double tau = w.mu + k * w.sigma;
      if (tau <= 0.0) {
        karl::bench::PrintTableRow({label, "skip", "skip", "skip"});
        continue;  // Paper skips negative thresholds (μ−σ, μ−2σ on miniboone).
      }
      karl::core::QuerySpec spec;
      spec.kind = karl::core::QuerySpec::Kind::kThreshold;
      spec.tau = tau;
      const double scan = karl::bench::MeasureScanThroughput(w, spec);
      const double sota = karl::bench::MeasureWithConfig(
          w, spec, karl::core::BoundKind::kSota, sota_cfg);
      const double karl_auto = karl::bench::MeasureWithConfig(
          w, spec, karl::core::BoundKind::kKarl, karl_cfg);
      karl::bench::PrintTableRow({label, karl::bench::FormatQps(scan),
                                  karl::bench::FormatQps(sota),
                                  karl::bench::FormatQps(karl_auto)});
    }
    std::printf("\n");
  }
  return 0;
}
