// google-benchmark micro-benchmarks for the library's hot primitives:
// kernel evaluation, node-bound computation (SOTA vs KARL), tree
// construction, and single queries. Not a paper table — these guard
// against performance regressions in the building blocks.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/karl.h"
#include "data/synthetic.h"
#include "index/ball_tree.h"
#include "index/kd_tree.h"
#include "telemetry/metrics.h"
#include "util/rng.h"

namespace {

using karl::core::BoundKind;
using karl::core::KernelParams;

karl::data::Matrix MakePoints(size_t n, size_t d) {
  karl::util::Rng rng(5);
  return karl::data::SampleClustered(n, d, 4, 0.06, rng);
}

void BM_KernelValueGaussian(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(2, d);
  const auto kernel = KernelParams::Gaussian(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        karl::core::KernelValue(kernel, pts.Row(0), pts.Row(1)));
  }
}
BENCHMARK(BM_KernelValueGaussian)->Arg(10)->Arg(50)->Arg(200);

void BM_KernelValuePolynomial(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(2, d);
  const auto kernel = KernelParams::Polynomial(0.1, 0.0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        karl::core::KernelValue(kernel, pts.Row(0), pts.Row(1)));
  }
}
BENCHMARK(BM_KernelValuePolynomial)->Arg(10)->Arg(50);

template <BoundKind kKind>
void BM_GaussianNodeBounds(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(4096, d);
  const std::vector<double> weights(pts.rows(), 1.0);
  auto tree = karl::index::KdTree::Build(pts, weights, 64).ValueOrDie();
  const auto kernel = KernelParams::Gaussian(4.0);
  auto bounds = karl::core::MakeBoundFunction(kernel, kKind).ValueOrDie();
  const std::vector<double> q(d, 0.5);
  const auto ctx = karl::core::QueryContext::Make(q);
  double lb = 0.0, ub = 0.0;
  for (auto _ : state) {
    bounds->NodeBounds(*tree, tree->root(), ctx, &lb, &ub);
    benchmark::DoNotOptimize(lb);
    benchmark::DoNotOptimize(ub);
  }
}
BENCHMARK(BM_GaussianNodeBounds<BoundKind::kSota>)->Arg(10)->Arg(50);
BENCHMARK(BM_GaussianNodeBounds<BoundKind::kKarl>)->Arg(10)->Arg(50);

template <BoundKind kKind>
void BM_SigmoidNodeBounds(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(4096, d);
  const std::vector<double> weights(pts.rows(), 1.0);
  auto tree = karl::index::KdTree::Build(pts, weights, 64).ValueOrDie();
  const auto kernel = KernelParams::Sigmoid(0.5, -0.2);
  auto bounds = karl::core::MakeBoundFunction(kernel, kKind).ValueOrDie();
  const std::vector<double> q(d, 0.5);
  const auto ctx = karl::core::QueryContext::Make(q);
  double lb = 0.0, ub = 0.0;
  for (auto _ : state) {
    bounds->NodeBounds(*tree, tree->root(), ctx, &lb, &ub);
    benchmark::DoNotOptimize(lb);
  }
}
BENCHMARK(BM_SigmoidNodeBounds<BoundKind::kSota>)->Arg(20);
BENCHMARK(BM_SigmoidNodeBounds<BoundKind::kKarl>)->Arg(20);

void BM_KdTreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 18);
  const std::vector<double> weights(pts.rows(), 1.0);
  for (auto _ : state) {
    auto tree = karl::index::KdTree::Build(pts, weights, 80).ValueOrDie();
    benchmark::DoNotOptimize(tree->num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KdTreeBuild)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_BallTreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 18);
  const std::vector<double> weights(pts.rows(), 1.0);
  for (auto _ : state) {
    auto tree = karl::index::BallTree::Build(pts, weights, 80).ValueOrDie();
    benchmark::DoNotOptimize(tree->num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BallTreeBuild)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

template <BoundKind kKind>
void BM_TkaqQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 18);
  karl::EngineOptions options;
  options.kernel = KernelParams::Gaussian(8.0);
  options.bounds = kKind;
  auto engine = karl::Engine::BuildUniform(pts, 1.0, options).ValueOrDie();
  const std::vector<double> q(18, 0.5);
  const double tau = engine.Exact(q) * 1.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Tkaq(q, tau));
  }
}
BENCHMARK(BM_TkaqQuery<BoundKind::kSota>)->Arg(100000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TkaqQuery<BoundKind::kKarl>)->Arg(100000)->Unit(benchmark::kMicrosecond);

// Same query with the telemetry registry attached — compare against
// BM_TkaqQuery<kKarl> to see the cost of the enabled instrumentation
// path (the disabled path is what BM_TkaqQuery itself measures).
void BM_TkaqQueryInstrumented(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 18);
  karl::telemetry::Registry registry;
  karl::EngineOptions options;
  options.kernel = KernelParams::Gaussian(8.0);
  options.bounds = BoundKind::kKarl;
  options.metrics = &registry;
  auto engine = karl::Engine::BuildUniform(pts, 1.0, options).ValueOrDie();
  const std::vector<double> q(18, 0.5);
  const double tau = engine.Exact(q) * 1.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Tkaq(q, tau));
  }
}
BENCHMARK(BM_TkaqQueryInstrumented)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_ExactScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 18);
  const std::vector<double> weights(pts.rows(), 1.0);
  const auto kernel = KernelParams::Gaussian(8.0);
  const std::vector<double> q(18, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        karl::core::ExactAggregate(pts, weights, kernel, q));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExactScan)->Arg(100000)->Unit(benchmark::kMicrosecond);

}  // namespace
