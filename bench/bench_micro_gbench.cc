// google-benchmark micro-benchmarks for the library's hot primitives:
// kernel evaluation, node-bound computation (SOTA vs KARL), tree
// construction, and single queries. Not a paper table — these guard
// against performance regressions in the building blocks.
//
// Custom main (instead of benchmark_main): strips a leading --threads=N
// flag, which adds a BM_BatchTkaq instance at that worker count on top
// of the built-in {1, 2, 8} sweep.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/bounds.h"
#include "core/evaluator.h"
#include "core/karl.h"
#include "core/simd/simd.h"
#include "core/simd/soa_block.h"
#include "data/synthetic.h"
#include "index/ball_tree.h"
#include "index/kd_tree.h"
#include "telemetry/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using karl::core::BoundKind;
using karl::core::KernelParams;

karl::data::Matrix MakePoints(size_t n, size_t d) {
  karl::util::Rng rng(5);
  return karl::data::SampleClustered(n, d, 4, 0.06, rng);
}

void BM_KernelValueGaussian(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(2, d);
  const auto kernel = KernelParams::Gaussian(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        karl::core::KernelValue(kernel, pts.Row(0), pts.Row(1)));
  }
}
BENCHMARK(BM_KernelValueGaussian)->Arg(10)->Arg(50)->Arg(200);

void BM_KernelValuePolynomial(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(2, d);
  const auto kernel = KernelParams::Polynomial(0.1, 0.0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        karl::core::KernelValue(kernel, pts.Row(0), pts.Row(1)));
  }
}
BENCHMARK(BM_KernelValuePolynomial)->Arg(10)->Arg(50);

template <BoundKind kKind>
void BM_GaussianNodeBounds(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(4096, d);
  const std::vector<double> weights(pts.rows(), 1.0);
  auto tree = karl::index::KdTree::Build(pts, weights, 64).ValueOrDie();
  const auto kernel = KernelParams::Gaussian(4.0);
  auto bounds = karl::core::MakeBoundFunction(kernel, kKind).ValueOrDie();
  const std::vector<double> q(d, 0.5);
  const auto ctx = karl::core::QueryContext::Make(q);
  double lb = 0.0, ub = 0.0;
  for (auto _ : state) {
    bounds->NodeBounds(*tree, tree->root(), ctx, &lb, &ub);
    benchmark::DoNotOptimize(lb);
    benchmark::DoNotOptimize(ub);
  }
}
BENCHMARK(BM_GaussianNodeBounds<BoundKind::kSota>)->Arg(10)->Arg(50);
BENCHMARK(BM_GaussianNodeBounds<BoundKind::kKarl>)->Arg(10)->Arg(50);

template <BoundKind kKind>
void BM_SigmoidNodeBounds(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(4096, d);
  const std::vector<double> weights(pts.rows(), 1.0);
  auto tree = karl::index::KdTree::Build(pts, weights, 64).ValueOrDie();
  const auto kernel = KernelParams::Sigmoid(0.5, -0.2);
  auto bounds = karl::core::MakeBoundFunction(kernel, kKind).ValueOrDie();
  const std::vector<double> q(d, 0.5);
  const auto ctx = karl::core::QueryContext::Make(q);
  double lb = 0.0, ub = 0.0;
  for (auto _ : state) {
    bounds->NodeBounds(*tree, tree->root(), ctx, &lb, &ub);
    benchmark::DoNotOptimize(lb);
  }
}
BENCHMARK(BM_SigmoidNodeBounds<BoundKind::kSota>)->Arg(20);
BENCHMARK(BM_SigmoidNodeBounds<BoundKind::kKarl>)->Arg(20);

void BM_KdTreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 18);
  const std::vector<double> weights(pts.rows(), 1.0);
  for (auto _ : state) {
    auto tree = karl::index::KdTree::Build(pts, weights, 80).ValueOrDie();
    benchmark::DoNotOptimize(tree->num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KdTreeBuild)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_BallTreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 18);
  const std::vector<double> weights(pts.rows(), 1.0);
  for (auto _ : state) {
    auto tree = karl::index::BallTree::Build(pts, weights, 80).ValueOrDie();
    benchmark::DoNotOptimize(tree->num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BallTreeBuild)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

template <BoundKind kKind>
void BM_TkaqQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 18);
  karl::EngineOptions options;
  options.kernel = KernelParams::Gaussian(8.0);
  options.bounds = kKind;
  auto engine = karl::Engine::BuildUniform(pts, 1.0, options).ValueOrDie();
  const std::vector<double> q(18, 0.5);
  const double tau = engine.Exact(q) * 1.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Tkaq(q, tau));
  }
}
BENCHMARK(BM_TkaqQuery<BoundKind::kSota>)->Arg(100000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TkaqQuery<BoundKind::kKarl>)->Arg(100000)->Unit(benchmark::kMicrosecond);

// Same query with the telemetry registry attached — compare against
// BM_TkaqQuery<kKarl> to see the cost of the enabled instrumentation
// path (the disabled path is what BM_TkaqQuery itself measures).
void BM_TkaqQueryInstrumented(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 18);
  karl::telemetry::Registry registry;
  karl::EngineOptions options;
  options.kernel = KernelParams::Gaussian(8.0);
  options.bounds = BoundKind::kKarl;
  options.metrics = &registry;
  auto engine = karl::Engine::BuildUniform(pts, 1.0, options).ValueOrDie();
  const std::vector<double> q(18, 0.5);
  const double tau = engine.Exact(q) * 1.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Tkaq(q, tau));
  }
}
BENCHMARK(BM_TkaqQueryInstrumented)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_ExactScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(n, 18);
  const std::vector<double> weights(pts.rows(), 1.0);
  const auto kernel = KernelParams::Gaussian(8.0);
  const std::vector<double> q(18, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        karl::core::ExactAggregate(pts, weights, kernel, q));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExactScan)->Arg(100000)->Unit(benchmark::kMicrosecond);

// Parallel batch engine: one query block fanned over a worker pool.
// Arg = worker-thread count (1 = serial batch path, no pool); items/s is
// queries per second, so the ratio across args is the batch speedup.
void BM_BatchTkaq(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const auto pts = MakePoints(50000, 18);
  karl::EngineOptions options;
  options.kernel = KernelParams::Gaussian(8.0);
  auto engine = karl::Engine::BuildUniform(pts, 1.0, options).ValueOrDie();
  karl::util::Rng rng(17);
  karl::data::Matrix queries(128, 18);
  for (size_t i = 0; i < queries.rows(); ++i) {
    for (double& v : queries.MutableRow(i)) v = rng.Uniform(0.0, 1.0);
  }
  const std::vector<double> probe(18, 0.5);
  const double tau = engine.Exact(probe) * 1.2;

  std::unique_ptr<karl::util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<karl::util::ThreadPool>(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.TkaqBatch(queries, tau, pool.get()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.rows()));
}
BENCHMARK(BM_BatchTkaq)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

// SIMD hot-path micro-kernels, registered per reachable tier from
// main() (see below): the exact-leaf aggregate over the blocked SoA
// layout and the linear-bound dot product — the two inner loops the
// core/simd tiers vectorize. Compare scalar vs avx2/avx512 instances of
// the same benchmark to read off the tier speedup.

void BM_SimdLeafAggregate(benchmark::State& state, karl::core::simd::Tier tier,
                          size_t d) {
  namespace simd = karl::core::simd;
  const simd::Tier saved = simd::ActiveTier();
  simd::ForceTier(tier);
  const size_t n = 4096;
  const auto pts = MakePoints(n, d);
  const std::vector<double> weights(n, 0.7);
  simd::SoaLeafBlocks soa;
  soa.Build(pts, weights);
  const auto kernel = KernelParams::Gaussian(3.0 / static_cast<double>(d));
  const std::vector<double> q(d, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        simd::LeafAggregate(kernel, soa, 0, static_cast<uint32_t>(n), q));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  simd::ForceTier(saved);
}

void BM_SimdLinearBoundDot(benchmark::State& state,
                           karl::core::simd::Tier tier, size_t d) {
  namespace simd = karl::core::simd;
  const simd::Tier saved = simd::ActiveTier();
  simd::ForceTier(tier);
  karl::util::Rng rng(3);
  std::vector<double> q(d), summary(d);
  for (size_t j = 0; j < d; ++j) {
    q[j] = rng.Uniform(-1.0, 1.0);
    summary[j] = rng.Uniform(-1.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::Dot(q, summary));
  }
  simd::ForceTier(saved);
}

void RegisterSimdBenchmarks() {
  namespace simd = karl::core::simd;
  for (const simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (!simd::TierSupported(tier)) continue;
    const std::string suffix(simd::TierName(tier));
    for (const size_t d : {8, 16, 33, 64, 100}) {
      benchmark::RegisterBenchmark(
          ("BM_SimdLeafAggregate/" + suffix + "/d" + std::to_string(d))
              .c_str(),
          BM_SimdLeafAggregate, tier, d)
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(
          ("BM_SimdLinearBoundDot/" + suffix + "/d" + std::to_string(d))
              .c_str(),
          BM_SimdLinearBoundDot, tier, d);
    }
  }
}

}  // namespace

// benchmark_main replacement so the binary accepts --threads=N (an
// extra BM_BatchTkaq instance at that count) before handing the rest of
// the command line to google-benchmark, which rejects unknown flags.
int main(int argc, char** argv) {
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<size_t>(argc));
  passthrough.push_back(argv[0]);
  long extra_threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      extra_threads = std::atol(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      extra_threads = std::atol(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (extra_threads > 0) {
    benchmark::RegisterBenchmark("BM_BatchTkaq/requested", BM_BatchTkaq)
        ->Arg(extra_threads)
        ->Unit(benchmark::kMillisecond);
  }
  RegisterSimdBenchmarks();
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
