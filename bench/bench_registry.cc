// Registry cold-start harness: measures how fast a model becomes
// servable from disk via the mmap snapshot path (MappedSnapshot::Map +
// AttachEngine, which rebuilds only the derived SoA leaf mirror) versus
// the legacy path (LoadEngineModel + Engine::Build, which re-runs full
// index construction and bound precomputation), at three model sizes.
//
// Records gauges (dumped to the karl-bench-v1 JSON via
// KARL_BENCH_JSON_OUT, committed as BENCH_registry.json at the repo
// root):
//   karl_bench_registry_legacy_coldstart_us_n<N>   LoadEngineModel+Build
//   karl_bench_registry_mmap_coldstart_us_n<N>     Map+AttachEngine
//   karl_bench_registry_coldstart_speedup_n<N>     legacy / mmap
//   karl_bench_registry_snapshot_bytes_n<N>        .snap file size
//   karl_bench_registry_model_bytes_n<N>           legacy .bin file size
//
// The acceptance bar for the registry PR — and the CI bench-smoke
// assertion — is speedup >= 5.0 at the largest size: attach skips tree
// construction and node-aggregate precomputation entirely, so the gap
// widens with n. Both paths are checked for agreeing exact aggregates
// before timing.

#include <cstdint>
#include <cstdio>
#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/engine_io.h"
#include "core/kernel.h"
#include "registry/snapshot.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;
using karl::Engine;
using karl::EngineOptions;

volatile double g_sink = 0.0;

// Best wall-clock of `repeats` runs of f() — same noise filter as the
// SIMD micro harness. Cold-start here means "process already warm, file
// in page cache": the steady-state cost a registry pays on first Acquire
// or hot reload, not a cold-page-cache boot.
template <typename F>
double BestSeconds(F&& f, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

karl::core::EngineModel MakeModel(size_t rows) {
  karl::util::Rng rng(0x6b61726cull + rows);
  karl::core::EngineModel model;
  model.points = karl::data::SampleClustered(rows, 8, 5, 0.08, rng);
  model.weights.assign(rows, 1.0);  // Type I.
  model.options.kernel =
      karl::core::KernelParams::Gaussian(3.0 / 8.0);
  model.options.leaf_capacity = 32;
  return model;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int main() {
  const fs::path dir = fs::temp_directory_path() / "karl_bench_registry";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir);

  karl::bench::PrintTableHeader({"points", "legacy ms", "mmap ms", "speedup",
                                 "snap MiB"});
  for (const size_t rows : {20000, 80000, 320000}) {
    const karl::core::EngineModel model = MakeModel(rows);
    auto built = Engine::Build(model.points, model.weights, model.options);
    if (!built.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    const std::string bin = (dir / (std::to_string(rows) + ".bin")).string();
    const std::string snap = (dir / (std::to_string(rows) + ".snap")).string();
    if (auto st = karl::core::SaveEngineModel(bin, model); !st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (auto st = karl::registry::WriteSnapshot(snap, built.value());
        !st.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n", st.ToString().c_str());
      return 1;
    }

    // Agreement check: both cold-start paths must reproduce the builder's
    // exact aggregate before their timings mean anything.
    std::vector<double> q(model.points.Row(rows / 2).begin(),
                          model.points.Row(rows / 2).end());
    const double expected = built.value().Exact(q);
    {
      auto legacy = karl::core::LoadEngine(bin);
      auto mapped = karl::registry::MappedSnapshot::Map(snap);
      if (!legacy.ok() || !mapped.ok()) {
        std::fprintf(stderr, "reload failed for n=%zu\n", rows);
        return 1;
      }
      auto attached =
          karl::registry::AttachEngine(mapped.value(), nullptr, nullptr);
      if (!attached.ok() || legacy.value().Exact(q) != expected ||
          attached.value().Exact(q) != expected) {
        std::fprintf(stderr, "cold-start paths disagree for n=%zu\n", rows);
        return 1;
      }
    }

    const int repeats = rows >= 320000 ? 3 : 5;
    const double legacy_s = BestSeconds(
        [&] {
          auto loaded = karl::core::LoadEngineModel(bin);
          auto engine = Engine::Build(loaded.value().points,
                                      loaded.value().weights,
                                      loaded.value().options);
          g_sink = engine.value().Exact(q);
        },
        repeats);
    const double mmap_s = BestSeconds(
        [&] {
          auto mapped = karl::registry::MappedSnapshot::Map(snap);
          auto engine =
              karl::registry::AttachEngine(mapped.value(), nullptr, nullptr);
          g_sink = engine.value().Exact(q);
        },
        repeats);

    const double speedup = legacy_s / mmap_s;
    const double snap_bytes = static_cast<double>(fs::file_size(snap));
    const std::string suffix = "_n" + std::to_string(rows);
    karl::bench::RecordBenchMetric("registry_legacy_coldstart_us" + suffix,
                                   legacy_s * 1e6);
    karl::bench::RecordBenchMetric("registry_mmap_coldstart_us" + suffix,
                                   mmap_s * 1e6);
    karl::bench::RecordBenchMetric("registry_coldstart_speedup" + suffix,
                                   speedup);
    karl::bench::RecordBenchMetric("registry_snapshot_bytes" + suffix,
                                   snap_bytes);
    karl::bench::RecordBenchMetric(
        "registry_model_bytes" + suffix,
        static_cast<double>(fs::file_size(bin)));
    karl::bench::PrintTableRow({std::to_string(rows), Fmt(legacy_s * 1e3),
                                Fmt(mmap_s * 1e3), Fmt(speedup),
                                Fmt(snap_bytes / (1024.0 * 1024.0))});
  }

  fs::remove_all(dir, ec);
  return 0;
}
