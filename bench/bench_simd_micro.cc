// SIMD hot-path speedup harness: measures the vectorized evaluator
// micro-kernels (exact-leaf aggregation over the blocked SoA layout and
// the linear-bound dot product) under the scalar tier and under the best
// tier the host supports, and prints the speedup per dimensionality.
//
// Records gauges (dumped to the karl-bench-v1 JSON via
// KARL_BENCH_JSON_OUT, committed as BENCH_simd.json at the repo root):
//   karl_bench_simd_leaf_<kernel>_d<d>_scalar_mpps   scalar tier, Mpoints/s
//   karl_bench_simd_leaf_<kernel>_d<d>_vector_mpps   best tier, Mpoints/s
//   karl_bench_simd_leaf_<kernel>_d<d>_speedup       vector / scalar
//   karl_bench_simd_dot_d<d>_speedup                 linear-bound dot
//   karl_bench_simd_best_tier                        numeric Tier value
//
// The acceptance bar for the SIMD PR — and the CI bench-smoke assertion
// — is speedup >= 1.0 (never slower than scalar) on every row, with the
// leaf and dot kernels expected well above 2x for d >= 8 on AVX2+
// hardware.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/kernel.h"
#include "core/simd/simd.h"
#include "core/simd/soa_block.h"
#include "util/rng.h"

namespace {

namespace simd = karl::core::simd;
using karl::core::KernelParams;

// Defeats dead-code elimination across timed loops.
volatile double g_sink = 0.0;

// Best wall-clock of `repeats` runs of f() — the usual micro-benchmark
// noise filter on a single-core box.
template <typename F>
double BestSeconds(F&& f, int repeats) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct LeafFixture {
  karl::data::Matrix pts;
  std::vector<double> weights;
  simd::SoaLeafBlocks soa;
  std::vector<double> q;

  LeafFixture(size_t n, size_t d) : pts(n, d), weights(n, 0.7), q(d) {
    karl::util::Rng rng(42 + static_cast<uint64_t>(d));
    for (size_t i = 0; i < n; ++i) {
      for (double& v : pts.MutableRow(i)) v = rng.Uniform(-1.0, 1.0);
    }
    for (auto& v : q) v = rng.Uniform(-1.0, 1.0);
    soa.Build(pts, weights);
  }
};

// Mpoints/s of LeafAggregate over the full range under `tier`.
double MeasureLeaf(simd::Tier tier, const KernelParams& kernel,
                   const LeafFixture& fx, int iters) {
  simd::ForceTier(tier);
  const auto n = static_cast<uint32_t>(fx.soa.rows());
  const auto run = [&] {
    double acc = 0.0;
    for (int it = 0; it < iters; ++it) {
      acc += simd::LeafAggregate(kernel, fx.soa, 0, n, fx.q);
    }
    g_sink = acc;
  };
  run();  // Warm-up.
  const double secs = BestSeconds(run, 3);
  return static_cast<double>(iters) * static_cast<double>(n) / secs / 1e6;
}

// Mdots/s of the linear-bound dot product under `tier`.
double MeasureDot(simd::Tier tier, size_t d, int iters) {
  simd::ForceTier(tier);
  karl::util::Rng rng(7 + static_cast<uint64_t>(d));
  std::vector<double> q(d), summary(d);
  for (size_t j = 0; j < d; ++j) {
    q[j] = rng.Uniform(-1.0, 1.0);
    summary[j] = rng.Uniform(-1.0, 1.0);
  }
  // Four independent accumulator chains: traversal computes bounds for
  // independent frontier nodes, so throughput — not the latency of one
  // serially-chained dot — is what the evaluator sees.
  const auto run = [&] {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (int it = 0; it + 4 <= iters; it += 4) {
      a0 += simd::Dot(q, summary);
      a1 += simd::Dot(q, summary);
      a2 += simd::Dot(q, summary);
      a3 += simd::Dot(q, summary);
    }
    g_sink = a0 + a1 + a2 + a3;
  };
  run();
  const double secs = BestSeconds(run, 3);
  return static_cast<double>(iters) / secs / 1e6;
}

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

int main() {
  const simd::Tier best = simd::DetectBestTier();
  karl::bench::RecordBenchMetric("simd_best_tier",
                                 static_cast<double>(best));
  std::printf("SIMD micro-kernel speedup: scalar vs %s\n",
              std::string(simd::TierName(best)).c_str());
  if (best == simd::Tier::kScalar) {
    std::printf("host has no vector tier; nothing to compare\n");
    return 0;
  }

  const size_t n = 8192;
  const int kLeafIters = 60;
  karl::bench::PrintTableHeader(
      {"kernel", "d", "scalar Mpts/s", "vector Mpts/s", "speedup"});
  for (const size_t d : {8, 16, 33, 64, 100}) {
    const LeafFixture fx(n, d);
    const double dd = static_cast<double>(d);
    const struct {
      const char* name;
      KernelParams kernel;
    } kernels[] = {
        {"gaussian", KernelParams::Gaussian(3.0 / dd)},
        {"laplacian", KernelParams::Laplacian(2.0 / std::sqrt(dd))},
        {"poly3", KernelParams::Polynomial(0.4 / dd, 0.1, 3)},
    };
    for (const auto& k : kernels) {
      const double scalar = MeasureLeaf(simd::Tier::kScalar, k.kernel, fx,
                                        kLeafIters);
      const double vector = MeasureLeaf(best, k.kernel, fx, kLeafIters);
      const double speedup = vector / scalar;
      const std::string key =
          std::string("simd_leaf_") + k.name + "_d" + std::to_string(d);
      karl::bench::RecordBenchMetric(key + "_scalar_mpps", scalar);
      karl::bench::RecordBenchMetric(key + "_vector_mpps", vector);
      karl::bench::RecordBenchMetric(key + "_speedup", speedup);
      karl::bench::PrintTableRow({k.name, std::to_string(d), Fmt(scalar),
                                  Fmt(vector), Fmt(speedup)});
    }
  }

  std::printf("\nlinear-bound dot product\n");
  karl::bench::PrintTableHeader(
      {"d", "scalar Mdot/s", "vector Mdot/s", "speedup"});
  for (const size_t d : {8, 16, 33, 64, 100}) {
    const int iters = 2000000 / static_cast<int>(d);
    const double scalar = MeasureDot(simd::Tier::kScalar, d, iters);
    const double vector = MeasureDot(best, d, iters);
    const double speedup = vector / scalar;
    karl::bench::RecordBenchMetric("simd_dot_d" + std::to_string(d) +
                                       "_speedup",
                                   speedup);
    karl::bench::PrintTableRow(
        {std::to_string(d), Fmt(scalar), Fmt(vector), Fmt(speedup)});
  }
  simd::ForceTier(best);
  return 0;
}
