// Reproduces paper Table X: query throughput with the polynomial kernel
// (degree 3, LIBSVM default), data normalised to [−1,1]^d, for query
// types II-τ and III-τ. Methods: baseline (scan), SOTA_best, KARL_auto.

#include <cstdio>
#include <vector>

#include "bench_common.h"

namespace {

void RunRow(const char* type_label, const karl::bench::Workload& w) {
  karl::core::QuerySpec spec;
  spec.kind = karl::core::QuerySpec::Kind::kThreshold;
  spec.tau = w.tau;

  const double baseline = karl::bench::MeasureScanThroughput(w, spec);
  const double sota = karl::bench::MeasureBestOverGrid(
      w, spec, karl::core::BoundKind::kSota);
  const double karl_auto = karl::bench::MeasureKarlAuto(w, spec);
  karl::bench::PrintTableRow(
      {type_label, w.dataset, karl::bench::FormatQps(baseline),
       karl::bench::FormatQps(sota), karl::bench::FormatQps(karl_auto),
       karl::bench::FormatQps(karl_auto / std::max(sota, 1e-9)) + "x"});
}

}  // namespace

int main() {
  const size_t nq = karl::bench::BenchQueries();
  std::printf("Table X: polynomial kernel (degree 3) throughput (q/s), "
              "data in [-1,1]^d (scale %.2f)\n\n",
              karl::bench::BenchScale());
  karl::bench::PrintTableHeader({"type", "dataset", "baseline", "SOTA_best",
                                 "KARL_auto", "KARL/SOTA"});

  for (const char* name : {"nsl-kdd", "kdd99", "covtype"}) {
    RunRow("II-tau", karl::bench::MakePolynomialWorkload(name, 2, nq));
  }
  for (const char* name : {"ijcnn1", "a9a", "covtype-b"}) {
    RunRow("III-tau", karl::bench::MakePolynomialWorkload(name, 3, nq));
  }
  return 0;
}
