// Reproduces paper Table VII: throughput (queries/second) of SCAN,
// LIBSVM, Scikit_best, SOTA_best and KARL_auto for the four query types
// (I-ε, I-τ, II-τ, III-τ) across the benchmark datasets.
//
// Column mapping (see DESIGN.md §5):
//   SCAN        — exact sequential aggregation
//   LIBSVM      — sequential decision-function evaluation (τ queries only)
//   Scikit_best — the SOTA algorithm+bounds over the best index
//                 (Scikit-learn's KDE implements [Gray&Moore]; only the
//                 I-ε row, as in the paper; its τ path wraps LibSVM)
//   SOTA_best   — SOTA bounds, best index/leaf-capacity over the grid
//   KARL_auto   — KARL bounds, automatically tuned index
//
// The paper's datasets are simulated (scaled) — see DESIGN.md; compare
// method ORDER and speedup factors, not absolute numbers.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using karl::bench::FormatQps;
using karl::bench::Workload;
using karl::core::BoundKind;
using karl::core::QuerySpec;

void RunRow(const std::string& type_label, const Workload& w,
            const QuerySpec& spec, bool libsvm_applicable,
            bool scikit_applicable) {
  const double scan = karl::bench::MeasureScanThroughput(w, spec);
  const double libsvm =
      libsvm_applicable ? karl::bench::MeasureLibsvmThroughput(w, spec) : 0.0;
  const double scikit =
      scikit_applicable
          ? karl::bench::MeasureBestOverGrid(w, spec, BoundKind::kSota)
          : 0.0;
  const double sota =
      karl::bench::MeasureBestOverGrid(w, spec, BoundKind::kSota);
  const double karl_auto = karl::bench::MeasureKarlAuto(w, spec);

  karl::bench::PrintTableRow(
      {type_label, w.dataset, FormatQps(scan),
       libsvm_applicable ? FormatQps(libsvm) : "n/a",
       scikit_applicable ? FormatQps(scikit) : "n/a", FormatQps(sota),
       FormatQps(karl_auto),
       FormatQps(sota > 0 ? karl_auto / sota : 0.0) + "x"});
}

}  // namespace

int main() {
  const size_t nq = karl::bench::BenchQueries();
  std::printf("Table VII: query throughput (queries/s), %zu queries per "
              "cell, scale %.2f\n\n",
              nq, karl::bench::BenchScale());
  karl::bench::PrintTableHeader({"type", "dataset", "SCAN", "LIBSVM",
                                 "Scikit_best", "SOTA_best", "KARL_auto",
                                 "KARL/SOTA"});

  // Type I-ε (ε = 0.2): kernel density, approximate queries.
  for (const char* name : {"miniboone", "home", "susy"}) {
    const Workload w = karl::bench::MakeTypeIWorkload(name, nq);
    QuerySpec spec;
    spec.kind = QuerySpec::Kind::kApproximate;
    spec.eps = 0.2;
    RunRow("I-eps", w, spec, /*libsvm=*/false, /*scikit=*/true);
  }

  // Type I-τ (τ = μ).
  for (const char* name : {"miniboone", "home", "susy"}) {
    const Workload w = karl::bench::MakeTypeIWorkload(name, nq);
    QuerySpec spec;
    spec.kind = QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    RunRow("I-tau", w, spec, /*libsvm=*/true, /*scikit=*/false);
  }

  // Type II-τ: 1-class SVM workloads.
  for (const char* name : {"nsl-kdd", "kdd99", "covtype"}) {
    const Workload w = karl::bench::MakeTypeIIWorkload(name, nq);
    QuerySpec spec;
    spec.kind = QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    RunRow("II-tau", w, spec, /*libsvm=*/true, /*scikit=*/false);
  }

  // Type III-τ: 2-class SVM workloads.
  for (const char* name : {"ijcnn1", "a9a", "covtype-b"}) {
    const Workload w = karl::bench::MakeTypeIIIWorkload(name, nq);
    QuerySpec spec;
    spec.kind = QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    RunRow("III-tau", w, spec, /*libsvm=*/true, /*scikit=*/false);
  }

  return 0;
}
