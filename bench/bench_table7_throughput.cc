// Reproduces paper Table VII: throughput (queries/second) of SCAN,
// LIBSVM, Scikit_best, SOTA_best and KARL_auto for the four query types
// (I-ε, I-τ, II-τ, III-τ) across the benchmark datasets.
//
// Column mapping (see DESIGN.md §5):
//   SCAN        — exact sequential aggregation
//   LIBSVM      — sequential decision-function evaluation (τ queries only)
//   Scikit_best — the SOTA algorithm+bounds over the best index
//                 (Scikit-learn's KDE implements [Gray&Moore]; only the
//                 I-ε row, as in the paper; its τ path wraps LibSVM)
//   SOTA_best   — SOTA bounds, best index/leaf-capacity over the grid
//   KARL_auto   — KARL bounds, automatically tuned index
//
// The paper's datasets are simulated (scaled) — see DESIGN.md; compare
// method ORDER and speedup factors, not absolute numbers.
//
// A trailing "Batch scaling" section measures the parallel batch engine
// (Engine::TkaqBatch over a worker pool) on the Type-I Gaussian "home"
// workload at 1 thread vs --threads=N (or KARL_BENCH_THREADS; default
// 1 skips the section) and reports the speedup.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"
#include "telemetry/metrics.h"
#include "telemetry/rolling.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

using karl::bench::FormatQps;
using karl::bench::Workload;
using karl::core::BoundKind;
using karl::core::QuerySpec;

void RunRow(const std::string& type_label, const Workload& w,
            const QuerySpec& spec, bool libsvm_applicable,
            bool scikit_applicable) {
  const double scan = karl::bench::MeasureScanThroughput(w, spec);
  const double libsvm =
      libsvm_applicable ? karl::bench::MeasureLibsvmThroughput(w, spec) : 0.0;
  const double scikit =
      scikit_applicable
          ? karl::bench::MeasureBestOverGrid(w, spec, BoundKind::kSota)
          : 0.0;
  const double sota =
      karl::bench::MeasureBestOverGrid(w, spec, BoundKind::kSota);
  const double karl_auto = karl::bench::MeasureKarlAuto(w, spec);

  karl::bench::PrintTableRow(
      {type_label, w.dataset, FormatQps(scan),
       libsvm_applicable ? FormatQps(libsvm) : "n/a",
       scikit_applicable ? FormatQps(scikit) : "n/a", FormatQps(sota),
       FormatQps(karl_auto),
       FormatQps(sota > 0 ? karl_auto / sota : 0.0) + "x"});
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = karl::util::ParsedArgs::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  auto threads_flag = parsed.value().GetInt(
      "threads", static_cast<int64_t>(karl::bench::BenchThreads()));
  if (!threads_flag.ok()) {
    std::fprintf(stderr, "%s\n", threads_flag.status().ToString().c_str());
    return 1;
  }
  const size_t batch_threads =
      static_cast<size_t>(std::max<int64_t>(1, threads_flag.value()));

  const size_t nq = karl::bench::BenchQueries();
  std::printf("Table VII: query throughput (queries/s), %zu queries per "
              "cell, scale %.2f\n\n",
              nq, karl::bench::BenchScale());
  karl::bench::PrintTableHeader({"type", "dataset", "SCAN", "LIBSVM",
                                 "Scikit_best", "SOTA_best", "KARL_auto",
                                 "KARL/SOTA"});

  // Type I-ε (ε = 0.2): kernel density, approximate queries.
  for (const char* name : {"miniboone", "home", "susy"}) {
    const Workload w = karl::bench::MakeTypeIWorkload(name, nq);
    QuerySpec spec;
    spec.kind = QuerySpec::Kind::kApproximate;
    spec.eps = 0.2;
    RunRow("I-eps", w, spec, /*libsvm=*/false, /*scikit=*/true);
  }

  // Type I-τ (τ = μ).
  for (const char* name : {"miniboone", "home", "susy"}) {
    const Workload w = karl::bench::MakeTypeIWorkload(name, nq);
    QuerySpec spec;
    spec.kind = QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    RunRow("I-tau", w, spec, /*libsvm=*/true, /*scikit=*/false);
  }

  // Type II-τ: 1-class SVM workloads.
  for (const char* name : {"nsl-kdd", "kdd99", "covtype"}) {
    const Workload w = karl::bench::MakeTypeIIWorkload(name, nq);
    QuerySpec spec;
    spec.kind = QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    RunRow("II-tau", w, spec, /*libsvm=*/true, /*scikit=*/false);
  }

  // Type III-τ: 2-class SVM workloads.
  for (const char* name : {"ijcnn1", "a9a", "covtype-b"}) {
    const Workload w = karl::bench::MakeTypeIIIWorkload(name, nq);
    QuerySpec spec;
    spec.kind = QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    RunRow("III-tau", w, spec, /*libsvm=*/true, /*scikit=*/false);
  }

  // Batch scaling: the parallel batch engine on the Type-I Gaussian
  // threshold workload, serial batch vs an N-worker pool. Identical
  // results by construction (see core/batch.h), so the ratio is pure
  // scheduling/throughput.
  if (batch_threads > 1) {
    std::printf("\nBatch scaling (TkaqBatch, Type I Gaussian, \"home\")\n\n");
    karl::bench::PrintTableHeader(
        {"dataset", "threads=1", "threads=N", "N", "speedup"});
    const Workload w = karl::bench::MakeTypeIWorkload("home", nq);
    QuerySpec spec;
    spec.kind = QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    const karl::EngineOptions options = karl::bench::DefaultOptions(w);
    const double serial =
        karl::bench::MeasureBatchThroughput(w, spec, options, 1);
    const double parallel =
        karl::bench::MeasureBatchThroughput(w, spec, options, batch_threads);
    const double speedup = serial > 0.0 ? parallel / serial : 0.0;
    karl::bench::RecordBenchMetric("batch_speedup_home", speedup);
    karl::bench::PrintTableRow({w.dataset, FormatQps(serial),
                                FormatQps(parallel),
                                std::to_string(batch_threads),
                                FormatQps(speedup) + "x"});
  }

  // Serving stage breakdown: the Type-I Gaussian "home" workload pushed
  // through the full network stack (epoll loop -> coalescer -> pool) on
  // loopback, reported per pipeline stage from the server's stage
  // histograms. Each quantile lands in the KARL_BENCH_METRICS_OUT
  // sidecar, so CI can track where serving latency goes, not just how
  // much there is.
  {
    std::printf("\nServing stage breakdown (single I-eps queries over "
                "loopback, \"home\")\n\n");
    const Workload w = karl::bench::MakeTypeIWorkload("home", nq);
    auto engine = karl::Engine::Build(w.points, w.weights,
                                      karl::bench::DefaultOptions(w));
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 1;
    }
    karl::telemetry::Registry registry;
    karl::server::ServerOptions server_options;
    server_options.port = 0;
    server_options.threads = std::max<size_t>(batch_threads, 2);
    server_options.metrics = &registry;
    auto server = karl::server::Server::Start(engine.value(), server_options);
    if (!server.ok()) {
      std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
      return 1;
    }
    auto client =
        karl::server::Client::Connect("127.0.0.1", server.value()->port());
    if (!client.ok()) {
      std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
      return 1;
    }
    karl::util::Stopwatch watch;
    size_t answered = 0;
    for (size_t i = 0; i < w.queries.rows(); ++i) {
      if (client.value().Ekaq(w.queries.Row(i), 0.2).ok()) ++answered;
    }
    const double elapsed = watch.ElapsedSeconds();
    const double qps =
        elapsed > 0.0 ? static_cast<double>(answered) / elapsed : 0.0;
    karl::bench::RecordBenchMetric("serving_qps_home", qps);
    std::printf("end-to-end: %s queries/s (%zu queries)\n\n",
                FormatQps(qps).c_str(), answered);

    karl::bench::PrintTableHeader({"stage", "p50_us", "p95_us"});
    for (const char* stage :
         {"read", "parse", "queue_wait", "coalesce_wait", "eval",
          "serialize", "write", "total"}) {
      const auto h =
          registry
              .GetRollingHistogram(std::string("karl_server_") + stage +
                                   "_us")
              ->CumulativeSnapshot();
      const double p50 = h.Quantile(0.5);
      const double p95 = h.Quantile(0.95);
      karl::bench::RecordBenchMetric(
          std::string("serving_") + stage + "_p50_us", p50);
      karl::bench::RecordBenchMetric(
          std::string("serving_") + stage + "_p95_us", p95);
      char p50_text[32];
      char p95_text[32];
      std::snprintf(p50_text, sizeof(p50_text), "%.1f", p50);
      std::snprintf(p95_text, sizeof(p95_text), "%.1f", p95);
      karl::bench::PrintTableRow({stage, p50_text, p95_text});
    }
    server.value()->Shutdown();
    server.value()->Wait();
  }

  return 0;
}
