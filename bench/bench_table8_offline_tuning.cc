// Reproduces paper Table VIII: query throughput of KARL_worst, KARL_auto
// and KARL_best — showing the offline tuner (sampled queries, §III-C)
// recommends a configuration close to the true optimum.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/rng.h"

namespace {

using karl::bench::Workload;

void RunRow(const char* type_label, const Workload& w,
            const karl::core::QuerySpec& spec) {
  // Measure every grid configuration on the FULL query set to get the
  // true best and worst.
  double best = 0.0, worst = 1e300;
  std::vector<std::pair<karl::core::IndexConfig, double>> measured;
  for (const auto& config : karl::core::DefaultTuningGrid()) {
    karl::EngineOptions options = karl::bench::DefaultOptions(w);
    options.index_kind = config.kind;
    options.leaf_capacity = config.leaf_capacity;
    const double qps =
        karl::bench::MeasureEngineThroughput(w, spec, options);
    best = std::max(best, qps);
    worst = std::min(worst, qps);
  }

  // KARL_auto: tune on a sample, then measure the recommendation on the
  // full set.
  const double auto_qps = karl::bench::MeasureKarlAuto(w, spec);

  karl::bench::PrintTableRow(
      {type_label, w.dataset, karl::bench::FormatQps(worst),
       karl::bench::FormatQps(auto_qps), karl::bench::FormatQps(best),
       karl::bench::FormatQps(100.0 * auto_qps / best) + "%"});
}

}  // namespace

int main() {
  const size_t nq = karl::bench::BenchQueries();
  std::printf("Table VIII: KARL_worst / KARL_auto / KARL_best throughput "
              "(q/s), offline tuning on sampled queries (scale %.2f)\n\n",
              karl::bench::BenchScale());
  karl::bench::PrintTableHeader({"type", "dataset", "KARL_worst",
                                 "KARL_auto", "KARL_best", "auto/best"});

  for (const char* name : {"miniboone", "home", "susy"}) {
    const Workload w = karl::bench::MakeTypeIWorkload(name, nq);
    karl::core::QuerySpec eps_spec;
    eps_spec.kind = karl::core::QuerySpec::Kind::kApproximate;
    eps_spec.eps = 0.2;
    RunRow("I-eps", w, eps_spec);

    karl::core::QuerySpec tau_spec;
    tau_spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    tau_spec.tau = w.tau;
    RunRow("I-tau", w, tau_spec);
  }
  for (const char* name : {"nsl-kdd", "kdd99", "covtype"}) {
    const Workload w = karl::bench::MakeTypeIIWorkload(name, nq);
    karl::core::QuerySpec spec;
    spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    RunRow("II-tau", w, spec);
  }
  for (const char* name : {"ijcnn1", "a9a", "covtype-b"}) {
    const Workload w = karl::bench::MakeTypeIIIWorkload(name, nq);
    karl::core::QuerySpec spec;
    spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    RunRow("III-tau", w, spec);
  }
  return 0;
}
