// Reproduces paper Table IX: in-situ (online learning) end-to-end
// throughput, where index construction and tuning time count. Methods:
// baseline (no index, sequential scan), SOTA_insitu (online-tuned kd-tree
// with SOTA bounds), KARL_insitu (same with KARL bounds).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/stopwatch.h"

namespace {

using karl::bench::Workload;

double BaselineEndToEnd(const Workload& w, const karl::core::QuerySpec& spec) {
  karl::util::Stopwatch timer;
  volatile double sink = 0.0;
  for (size_t i = 0; i < w.queries.rows(); ++i) {
    const double f = karl::core::ExactAggregate(w.points, w.weights, w.kernel,
                                                w.queries.Row(i));
    sink = spec.kind == karl::core::QuerySpec::Kind::kThreshold
               ? (f > spec.tau ? 1.0 : 0.0)
               : f;
  }
  (void)sink;
  return static_cast<double>(w.queries.rows()) /
         std::max(timer.ElapsedSeconds(), 1e-9);
}

double InsituEndToEnd(const Workload& w, const karl::core::QuerySpec& spec,
                      karl::core::BoundKind bounds) {
  karl::EngineOptions base = karl::bench::DefaultOptions(w);
  base.bounds = bounds;
  auto result = karl::core::InsituRun(w.points, w.weights, base, w.queries,
                                      spec, /*sample_fraction=*/0.05);
  if (!result.ok()) {
    std::fprintf(stderr, "in-situ run failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return result.value().end_to_end_throughput;
}

void RunRow(const char* type_label, const Workload& w,
            const karl::core::QuerySpec& spec) {
  const double baseline = BaselineEndToEnd(w, spec);
  const double sota = InsituEndToEnd(w, spec, karl::core::BoundKind::kSota);
  const double karl_insitu =
      InsituEndToEnd(w, spec, karl::core::BoundKind::kKarl);
  karl::bench::PrintTableRow(
      {type_label, w.dataset, karl::bench::FormatQps(baseline),
       karl::bench::FormatQps(sota), karl::bench::FormatQps(karl_insitu),
       karl::bench::FormatQps(karl_insitu / std::max(baseline, 1e-9)) + "x"});
}

}  // namespace

int main() {
  // In-situ amortises the build over the query batch; the paper runs 10k
  // queries. Use a batch several times the usual bench query count.
  const size_t nq = karl::bench::BenchQueries() * 8;
  std::printf("Table IX: in-situ end-to-end throughput (q/s), index build "
              "+ tuning + queries all on the clock, %zu queries "
              "(scale %.2f)\n\n",
              nq, karl::bench::BenchScale());
  karl::bench::PrintTableHeader({"type", "dataset", "baseline",
                                 "SOTA_insitu", "KARL_insitu",
                                 "KARL/base"});

  for (const char* name : {"miniboone", "home", "susy"}) {
    const Workload w = karl::bench::MakeTypeIWorkload(name, nq);
    karl::core::QuerySpec eps_spec;
    eps_spec.kind = karl::core::QuerySpec::Kind::kApproximate;
    eps_spec.eps = 0.2;
    RunRow("I-eps", w, eps_spec);

    karl::core::QuerySpec tau_spec;
    tau_spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    tau_spec.tau = w.tau;
    RunRow("I-tau", w, tau_spec);
  }
  for (const char* name : {"nsl-kdd", "kdd99", "covtype"}) {
    const Workload w = karl::bench::MakeTypeIIWorkload(name, nq);
    karl::core::QuerySpec spec;
    spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    RunRow("II-tau", w, spec);
  }
  for (const char* name : {"ijcnn1", "a9a", "covtype-b"}) {
    const Workload w = karl::bench::MakeTypeIIIWorkload(name, nq);
    karl::core::QuerySpec spec;
    spec.kind = karl::core::QuerySpec::Kind::kThreshold;
    spec.tau = w.tau;
    RunRow("III-tau", w, spec);
  }
  return 0;
}
