file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_kernels.dir/bench_ext_kernels.cc.o"
  "CMakeFiles/bench_ext_kernels.dir/bench_ext_kernels.cc.o.d"
  "bench_ext_kernels"
  "bench_ext_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
