file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_dimensionality.dir/bench_fig12_dimensionality.cc.o"
  "CMakeFiles/bench_fig12_dimensionality.dir/bench_fig12_dimensionality.cc.o.d"
  "bench_fig12_dimensionality"
  "bench_fig12_dimensionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dimensionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
