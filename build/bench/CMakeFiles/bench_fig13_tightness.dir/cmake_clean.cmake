file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_tightness.dir/bench_fig13_tightness.cc.o"
  "CMakeFiles/bench_fig13_tightness.dir/bench_fig13_tightness.cc.o.d"
  "bench_fig13_tightness"
  "bench_fig13_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
