# Empty dependencies file for bench_fig13_tightness.
# This may be replaced when dependencies are built.
