# Empty dependencies file for bench_fig9_threshold.
# This may be replaced when dependencies are built.
