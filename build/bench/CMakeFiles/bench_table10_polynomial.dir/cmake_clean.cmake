file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_polynomial.dir/bench_table10_polynomial.cc.o"
  "CMakeFiles/bench_table10_polynomial.dir/bench_table10_polynomial.cc.o.d"
  "bench_table10_polynomial"
  "bench_table10_polynomial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_polynomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
