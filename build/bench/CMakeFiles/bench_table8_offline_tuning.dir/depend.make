# Empty dependencies file for bench_table8_offline_tuning.
# This may be replaced when dependencies are built.
