file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_insitu.dir/bench_table9_insitu.cc.o"
  "CMakeFiles/bench_table9_insitu.dir/bench_table9_insitu.cc.o.d"
  "bench_table9_insitu"
  "bench_table9_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
