file(REMOVE_RECURSE
  "CMakeFiles/kde_particle_search.dir/kde_particle_search.cpp.o"
  "CMakeFiles/kde_particle_search.dir/kde_particle_search.cpp.o.d"
  "kde_particle_search"
  "kde_particle_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kde_particle_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
