# Empty compiler generated dependencies file for kde_particle_search.
# This may be replaced when dependencies are built.
