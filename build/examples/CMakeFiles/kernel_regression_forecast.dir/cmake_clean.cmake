file(REMOVE_RECURSE
  "CMakeFiles/kernel_regression_forecast.dir/kernel_regression_forecast.cpp.o"
  "CMakeFiles/kernel_regression_forecast.dir/kernel_regression_forecast.cpp.o.d"
  "kernel_regression_forecast"
  "kernel_regression_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_regression_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
