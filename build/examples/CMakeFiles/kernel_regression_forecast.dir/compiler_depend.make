# Empty compiler generated dependencies file for kernel_regression_forecast.
# This may be replaced when dependencies are built.
