file(REMOVE_RECURSE
  "CMakeFiles/online_learning_insitu.dir/online_learning_insitu.cpp.o"
  "CMakeFiles/online_learning_insitu.dir/online_learning_insitu.cpp.o.d"
  "online_learning_insitu"
  "online_learning_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_learning_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
