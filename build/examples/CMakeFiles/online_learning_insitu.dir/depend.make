# Empty dependencies file for online_learning_insitu.
# This may be replaced when dependencies are built.
