file(REMOVE_RECURSE
  "CMakeFiles/svm_intrusion_detection.dir/svm_intrusion_detection.cpp.o"
  "CMakeFiles/svm_intrusion_detection.dir/svm_intrusion_detection.cpp.o.d"
  "svm_intrusion_detection"
  "svm_intrusion_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svm_intrusion_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
