# Empty compiler generated dependencies file for svm_intrusion_detection.
# This may be replaced when dependencies are built.
