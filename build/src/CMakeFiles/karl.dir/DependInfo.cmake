
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cc" "src/CMakeFiles/karl.dir/core/bounds.cc.o" "gcc" "src/CMakeFiles/karl.dir/core/bounds.cc.o.d"
  "/root/repo/src/core/dynamic_engine.cc" "src/CMakeFiles/karl.dir/core/dynamic_engine.cc.o" "gcc" "src/CMakeFiles/karl.dir/core/dynamic_engine.cc.o.d"
  "/root/repo/src/core/engine_io.cc" "src/CMakeFiles/karl.dir/core/engine_io.cc.o" "gcc" "src/CMakeFiles/karl.dir/core/engine_io.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/CMakeFiles/karl.dir/core/evaluator.cc.o" "gcc" "src/CMakeFiles/karl.dir/core/evaluator.cc.o.d"
  "/root/repo/src/core/karl.cc" "src/CMakeFiles/karl.dir/core/karl.cc.o" "gcc" "src/CMakeFiles/karl.dir/core/karl.cc.o.d"
  "/root/repo/src/core/kernel.cc" "src/CMakeFiles/karl.dir/core/kernel.cc.o" "gcc" "src/CMakeFiles/karl.dir/core/kernel.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/CMakeFiles/karl.dir/core/tuning.cc.o" "gcc" "src/CMakeFiles/karl.dir/core/tuning.cc.o.d"
  "/root/repo/src/data/csv_io.cc" "src/CMakeFiles/karl.dir/data/csv_io.cc.o" "gcc" "src/CMakeFiles/karl.dir/data/csv_io.cc.o.d"
  "/root/repo/src/data/libsvm_io.cc" "src/CMakeFiles/karl.dir/data/libsvm_io.cc.o" "gcc" "src/CMakeFiles/karl.dir/data/libsvm_io.cc.o.d"
  "/root/repo/src/data/matrix.cc" "src/CMakeFiles/karl.dir/data/matrix.cc.o" "gcc" "src/CMakeFiles/karl.dir/data/matrix.cc.o.d"
  "/root/repo/src/data/normalize.cc" "src/CMakeFiles/karl.dir/data/normalize.cc.o" "gcc" "src/CMakeFiles/karl.dir/data/normalize.cc.o.d"
  "/root/repo/src/data/pca.cc" "src/CMakeFiles/karl.dir/data/pca.cc.o" "gcc" "src/CMakeFiles/karl.dir/data/pca.cc.o.d"
  "/root/repo/src/data/sparse_matrix.cc" "src/CMakeFiles/karl.dir/data/sparse_matrix.cc.o" "gcc" "src/CMakeFiles/karl.dir/data/sparse_matrix.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/karl.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/karl.dir/data/synthetic.cc.o.d"
  "/root/repo/src/index/ball_tree.cc" "src/CMakeFiles/karl.dir/index/ball_tree.cc.o" "gcc" "src/CMakeFiles/karl.dir/index/ball_tree.cc.o.d"
  "/root/repo/src/index/bounding_ball.cc" "src/CMakeFiles/karl.dir/index/bounding_ball.cc.o" "gcc" "src/CMakeFiles/karl.dir/index/bounding_ball.cc.o.d"
  "/root/repo/src/index/bounding_box.cc" "src/CMakeFiles/karl.dir/index/bounding_box.cc.o" "gcc" "src/CMakeFiles/karl.dir/index/bounding_box.cc.o.d"
  "/root/repo/src/index/kd_tree.cc" "src/CMakeFiles/karl.dir/index/kd_tree.cc.o" "gcc" "src/CMakeFiles/karl.dir/index/kd_tree.cc.o.d"
  "/root/repo/src/index/tree_index.cc" "src/CMakeFiles/karl.dir/index/tree_index.cc.o" "gcc" "src/CMakeFiles/karl.dir/index/tree_index.cc.o.d"
  "/root/repo/src/ml/kde.cc" "src/CMakeFiles/karl.dir/ml/kde.cc.o" "gcc" "src/CMakeFiles/karl.dir/ml/kde.cc.o.d"
  "/root/repo/src/ml/model_io.cc" "src/CMakeFiles/karl.dir/ml/model_io.cc.o" "gcc" "src/CMakeFiles/karl.dir/ml/model_io.cc.o.d"
  "/root/repo/src/ml/multiclass.cc" "src/CMakeFiles/karl.dir/ml/multiclass.cc.o" "gcc" "src/CMakeFiles/karl.dir/ml/multiclass.cc.o.d"
  "/root/repo/src/ml/regression.cc" "src/CMakeFiles/karl.dir/ml/regression.cc.o" "gcc" "src/CMakeFiles/karl.dir/ml/regression.cc.o.d"
  "/root/repo/src/ml/svm.cc" "src/CMakeFiles/karl.dir/ml/svm.cc.o" "gcc" "src/CMakeFiles/karl.dir/ml/svm.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/karl.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/karl.dir/util/flags.cc.o.d"
  "/root/repo/src/util/math_util.cc" "src/CMakeFiles/karl.dir/util/math_util.cc.o" "gcc" "src/CMakeFiles/karl.dir/util/math_util.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/karl.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/karl.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/karl.dir/util/status.cc.o" "gcc" "src/CMakeFiles/karl.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
