file(REMOVE_RECURSE
  "libkarl.a"
)
