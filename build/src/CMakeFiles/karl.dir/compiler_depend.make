# Empty compiler generated dependencies file for karl.
# This may be replaced when dependencies are built.
