file(REMOVE_RECURSE
  "CMakeFiles/dynamic_engine_test.dir/dynamic_engine_test.cc.o"
  "CMakeFiles/dynamic_engine_test.dir/dynamic_engine_test.cc.o.d"
  "dynamic_engine_test"
  "dynamic_engine_test.pdb"
  "dynamic_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
