# Empty dependencies file for dynamic_engine_test.
# This may be replaced when dependencies are built.
