# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/bounds_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_engine_test[1]_include.cmake")
include("/root/repo/build/tests/engine_io_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
