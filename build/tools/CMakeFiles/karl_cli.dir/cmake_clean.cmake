file(REMOVE_RECURSE
  "CMakeFiles/karl_cli.dir/karl_cli.cpp.o"
  "CMakeFiles/karl_cli.dir/karl_cli.cpp.o.d"
  "karl"
  "karl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/karl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
