# Empty compiler generated dependencies file for karl_cli.
# This may be replaced when dependencies are built.
