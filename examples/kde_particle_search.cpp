// Particle-search-by-density (paper Fig. 1 / §I): kernel density
// estimation on a miniboone-like dataset, then a sweep over a 2-d grid in
// the first two dimensions reporting which cells are "dense" (TKAQ) —
// the operation particle physicists run to localise signal regions.
//
//   $ ./kde_particle_search

#include <cstdio>
#include <vector>

#include "core/tuning.h"
#include "data/synthetic.h"
#include "ml/kde.h"
#include "util/rng.h"
#include "util/stopwatch.h"

int main() {
  // miniboone-like: d = 50 clustered physics features (scaled n).
  auto spec = karl::data::FindDataset("miniboone").ValueOrDie();
  spec.n = 20000;
  const karl::data::Matrix events = karl::data::MakeUciLike(spec);
  std::printf("dataset: %zu simulated events, %zu features\n", events.rows(),
              events.cols());

  // The paper's Fig. 1 estimates density over the 1st and 2nd dimensions;
  // project down and fit the KDE (Scott's-rule bandwidth) there.
  const karl::data::Matrix events2d = events.TruncateColumns(2);
  karl::EngineOptions options;
  options.leaf_capacity = 80;
  auto kde = karl::ml::KdeModel::Fit(events2d, options);
  if (!kde.ok()) {
    std::fprintf(stderr, "KDE fit failed: %s\n",
                 kde.status().ToString().c_str());
    return 1;
  }
  std::printf("KDE fitted, gamma = %.3f (Scott's rule)\n",
              kde.value().gamma());

  // Density threshold: the mean density over a sample of events.
  karl::util::Rng rng(11);
  const auto sample_rows = rng.SampleWithoutReplacement(events2d.rows(), 200);
  double mean_density = 0.0;
  for (const size_t row : sample_rows) {
    mean_density += kde.value().Density(events2d.Row(row), 0.05);
  }
  mean_density /= static_cast<double>(sample_rows.size());
  std::printf("mean event density = %.3e (threshold for 'dense')\n\n",
              mean_density);

  // Sweep a 24x24 grid over the 2-d feature plane and mark dense cells —
  // the yellow region of the paper's Fig. 1.
  std::printf("density map over dims 1-2 ('#' = density > mean):\n");
  karl::util::Stopwatch timer;
  std::vector<double> probe(2, 0.0);
  size_t queries = 0;
  for (int gy = 23; gy >= 0; --gy) {
    std::fputs("  ", stdout);
    for (int gx = 0; gx < 24; ++gx) {
      probe[0] = (gx + 0.5) / 24.0;
      probe[1] = (gy + 0.5) / 24.0;
      const bool dense = kde.value().DensityAbove(probe, mean_density);
      ++queries;
      std::fputc(dense ? '#' : '.', stdout);
    }
    std::fputc('\n', stdout);
  }
  const double elapsed = timer.ElapsedSeconds();
  std::printf("\n%zu TKAQ density tests in %.3f s (%.0f queries/s)\n",
              queries, elapsed, queries / elapsed);
  return 0;
}
