// Kernel regression + multi-class classification — the paper's §VII
// future-work directions, built on KARL engines.
//
// Part 1: Nadaraya–Watson regression of a nonlinear response surface,
// comparing KARL-accelerated predictions against exact scans.
// Part 2: one-vs-one multi-class kernel SVM whose pairwise votes run as
// TKAQs.
//
//   $ ./kernel_regression_forecast

#include <cmath>
#include <cstdio>
#include <vector>

#include "data/synthetic.h"
#include "ml/multiclass.h"
#include "ml/regression.h"
#include "util/rng.h"
#include "util/stopwatch.h"

int main() {
  karl::util::Rng rng(41);

  // ---- Part 1: kernel regression --------------------------------------
  // Response surface: energy demand as a nonlinear function of two
  // normalised drivers (temperature, hour-of-day).
  const size_t n = 20000;
  karl::data::Matrix drivers = karl::data::SampleUniform(n, 2, 0.0, 1.0, rng);
  std::vector<double> demand(n);
  for (size_t i = 0; i < n; ++i) {
    demand[i] = 50.0 + 30.0 * std::sin(2.0 * M_PI * drivers(i, 1)) +
                20.0 * (drivers(i, 0) - 0.5) * (drivers(i, 0) - 0.5) +
                rng.Gaussian(0.0, 1.0);
  }

  karl::EngineOptions options;
  options.leaf_capacity = 80;
  auto reg = karl::ml::KernelRegression::Fit(drivers, demand, options,
                                             /*gamma=*/400.0);
  if (!reg.ok()) {
    std::fprintf(stderr, "regression fit failed: %s\n",
                 reg.status().ToString().c_str());
    return 1;
  }
  std::printf("kernel regression fitted on %zu observations (gamma=%.0f)\n",
              n, reg.value().gamma());

  // Predict along an hour-of-day sweep at fixed temperature.
  std::printf("\n  hour   truth   KARL-predicted\n");
  double worst = 0.0;
  for (int hour = 0; hour < 8; ++hour) {
    const double x1 = (hour + 0.5) / 8.0;
    const std::vector<double> q{0.3, x1};
    const double truth =
        50.0 + 30.0 * std::sin(2.0 * M_PI * x1) + 20.0 * 0.04;
    const double predicted = reg.value().Predict(q, 0.05);
    worst = std::max(worst, std::abs(predicted - truth));
    std::printf("  %4.2f  %6.2f   %6.2f\n", x1, truth, predicted);
  }
  std::printf("max |error| vs noiseless truth: %.2f\n", worst);

  // Speed: approximate vs exact prediction.
  karl::util::Stopwatch fast_timer;
  volatile double sink = 0.0;
  const int kProbes = 400;
  for (int i = 0; i < kProbes; ++i) {
    const std::vector<double> q{rng.Uniform(), rng.Uniform()};
    sink = reg.value().Predict(q, 0.05);
  }
  const double fast = fast_timer.ElapsedSeconds();
  karl::util::Stopwatch exact_timer;
  for (int i = 0; i < kProbes; ++i) {
    const std::vector<double> q{rng.Uniform(), rng.Uniform()};
    sink = reg.value().PredictExact(q);
  }
  const double exact = exact_timer.ElapsedSeconds();
  (void)sink;
  std::printf("prediction throughput: %.0f/s approximate vs %.0f/s exact "
              "(%.1fx)\n",
              kProbes / fast, kProbes / exact, exact / fast);

  // ---- Part 2: multi-class SVM ----------------------------------------
  // Three operating regimes (classes) in a 4-d feature space.
  karl::data::LabeledDataset regimes;
  regimes.points = karl::data::Matrix(0, 4);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 120; ++i) {
      std::vector<double> p(4);
      for (auto& v : p) v = rng.Gaussian(0.2 + 0.3 * c, 0.06);
      regimes.points.AppendRow(p);
      regimes.labels.push_back(c);
    }
  }
  auto svm = karl::ml::MulticlassSvm::Train(
      regimes, karl::core::KernelParams::Gaussian(4.0),
      karl::ml::TwoClassSvmParams{});
  if (!svm.ok()) {
    std::fprintf(stderr, "multiclass training failed: %s\n",
                 svm.status().ToString().c_str());
    return 1;
  }
  karl::ml::MulticlassSvm classifier = std::move(svm).ValueOrDie();
  std::printf("\nmulticlass SVM: %zu pairwise models, train accuracy "
              "%.1f%%\n",
              classifier.models().size(),
              100.0 * classifier.Accuracy(regimes.points, regimes.labels));

  if (auto st = classifier.BuildEngines(options); !st.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  size_t mismatches = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    mismatches += classifier.PredictFast(q) != classifier.PredictScan(q);
  }
  std::printf("TKAQ-vote predictions vs scan predictions: %zu/200 "
              "mismatches\n",
              mismatches);
  return mismatches == 0 ? 0 : 1;
}
