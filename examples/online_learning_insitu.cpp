// In-situ / online-learning scenario (paper §III-C, Table IX): the point
// set arrives together with the query batch, so index construction and
// tuning count toward end-to-end time. KARL's online tuner builds one
// deep kd-tree, picks the best traversal level from a 1% query sample,
// and runs the rest there — compared against the no-index baseline.
//
//   $ ./online_learning_insitu

#include <cstdio>
#include <vector>

#include "core/evaluator.h"
#include "core/tuning.h"
#include "data/synthetic.h"
#include "ml/kde.h"
#include "util/rng.h"
#include "util/stopwatch.h"

int main() {
  // A fresh model snapshot just arrived from the online learner.
  karl::util::Rng rng(31);
  const karl::data::Matrix points =
      karl::data::SampleClustered(60000, 8, 6, 0.05, rng);
  std::vector<double> weights(points.rows(), 1.0);

  // The query batch that must be answered now.
  const auto query_rows = rng.SampleWithoutReplacement(points.rows(), 2000);
  const karl::data::Matrix queries = points.SelectRows(query_rows);

  const double gamma = karl::ml::BandwidthToGamma(
      karl::ml::ScottBandwidth(points));
  karl::EngineOptions base;
  base.kernel = karl::core::KernelParams::Gaussian(gamma);

  // Threshold: mean aggregate over a tiny probe sample (computed by scan;
  // charged to neither method).
  double tau = 0.0;
  for (size_t i = 0; i < 20; ++i) {
    tau += karl::core::ExactAggregate(points, weights, base.kernel,
                                      queries.Row(i));
  }
  tau /= 20.0;

  karl::core::QuerySpec spec;
  spec.kind = karl::core::QuerySpec::Kind::kThreshold;
  spec.tau = tau;
  std::printf("in-situ workload: n = %zu, d = %zu, %zu queries, tau = %.4f\n",
              points.rows(), points.cols(), queries.rows(), tau);

  // Baseline: no index, straight scans.
  karl::util::Stopwatch scan_timer;
  volatile size_t above = 0;
  for (size_t i = 0; i < queries.rows(); ++i) {
    above = above + (karl::core::ExactAggregate(points, weights, base.kernel,
                                                queries.Row(i)) > tau);
  }
  const double scan_seconds = scan_timer.ElapsedSeconds();
  std::printf("\nbaseline scan      : %7.1f q/s end-to-end\n",
              queries.rows() / scan_seconds);

  // KARL in-situ: build + tune + query, all on the clock.
  auto result = karl::core::InsituRun(points, weights, base, queries, spec,
                                      /*sample_fraction=*/0.01);
  if (!result.ok()) {
    std::fprintf(stderr, "in-situ run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const auto& r = result.value();
  std::printf("KARL in-situ       : %7.1f q/s end-to-end  (speedup %.1fx)\n",
              r.end_to_end_throughput,
              r.end_to_end_throughput * scan_seconds / queries.rows());
  std::printf("  build   %.3f s\n  tuning  %.3f s (picked level %d)\n"
              "  queries %.3f s\n",
              r.build_seconds, r.tuning_seconds, r.best_level,
              r.query_seconds);
  return 0;
}
