// Quickstart: build a KARL engine over a small weighted point set and run
// the three query flavours (exact, TKAQ, eKAQ).
//
//   $ ./quickstart

#include <cstdio>
#include <vector>

#include "core/karl.h"
#include "data/synthetic.h"
#include "util/rng.h"

int main() {
  // 1. Some clustered data in [0,1]^4 (stand in your own matrix here).
  karl::util::Rng rng(7);
  const karl::data::Matrix points =
      karl::data::SampleClustered(/*n=*/20000, /*d=*/4, /*k=*/3,
                                  /*cluster_stddev=*/0.05, rng);

  // 2. Build the engine: Gaussian kernel, KARL bounds, kd-tree index.
  karl::EngineOptions options;
  options.kernel = karl::core::KernelParams::Gaussian(/*gamma=*/8.0);
  options.bounds = karl::core::BoundKind::kKarl;
  options.index_kind = karl::index::IndexKind::kKdTree;
  options.leaf_capacity = 80;

  auto built = karl::Engine::BuildUniform(points, /*common_weight=*/1.0,
                                          options);
  if (!built.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const karl::Engine& engine = built.value();
  std::printf("engine built: %zu points, %s weighting, %.1f MiB index\n",
              points.rows(),
              std::string(WeightingTypeToString(engine.weighting_type()))
                  .c_str(),
              engine.MemoryUsageBytes() / (1024.0 * 1024.0));

  // 3. Query it.
  const std::vector<double> q{0.45, 0.5, 0.55, 0.5};

  const double exact = engine.Exact(q);
  std::printf("exact   F_P(q)            = %.6f\n", exact);

  karl::core::EvalStats stats;
  const double approx = engine.Ekaq(q, /*eps=*/0.1, &stats);
  std::printf("eKAQ    F (eps=0.1)       = %.6f  (%zu iterations, %zu "
              "kernel evals vs %zu for a scan)\n",
              approx, stats.iterations, stats.kernel_evals, points.rows());

  const double tau = exact * 1.5;
  stats = {};
  const bool above = engine.Tkaq(q, tau, &stats);
  std::printf("TKAQ    F > %.4f ?       = %s  (%zu iterations)\n", tau,
              above ? "yes" : "no", stats.iterations);

  return 0;
}
