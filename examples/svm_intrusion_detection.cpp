// Network intrusion detection (paper §I / nsl-kdd workload): train a
// 1-class SVM on normal traffic, then classify a live stream of packets
// with TKAQ — comparing KARL's engine against the LibSVM-style sequential
// scan it replaces.
//
//   $ ./svm_intrusion_detection

#include <cstdio>
#include <vector>

#include "core/karl.h"
#include "data/synthetic.h"
#include "ml/model_io.h"
#include "ml/svm.h"
#include "util/rng.h"
#include "util/stopwatch.h"

int main() {
  // Simulated nsl-kdd-style traffic: 41 features, inliers = normal
  // connections, outliers = attacks.
  karl::util::Rng rng(23);
  const auto traffic =
      karl::data::MakeOneClassDataset(/*n=*/1200, /*n_outliers=*/300,
                                      /*d=*/41, rng);

  // Train only on the normal traffic (the paper's 1-class setup, default
  // kernel gamma = 1/d as in LIBSVM).
  std::vector<size_t> normal_rows;
  for (size_t i = 0; i < traffic.labels.size(); ++i) {
    if (traffic.labels[i] > 0) normal_rows.push_back(i);
  }
  const karl::data::Matrix train = traffic.points.SelectRows(normal_rows);

  karl::ml::OneClassSvmParams params;
  params.nu = 0.1;
  auto model = karl::ml::TrainOneClassSvm(
      train, karl::core::KernelParams::Gaussian(1.0 / 41.0), params);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("1-class SVM trained: %zu support vectors, rho = %.4f "
              "(%zu SMO iterations)\n",
              model.value().support_vectors.rows(), model.value().rho,
              model.value().training_iterations);

  // Persist and reload, as a deployed detector would.
  const std::string model_path = "/tmp/karl_intrusion_model.txt";
  if (auto st = karl::ml::SaveSvmModel(model_path, model.value()); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto loaded = karl::ml::LoadSvmModel(model_path).ValueOrDie();

  // Detection accuracy on the mixed stream.
  const double acc =
      karl::ml::SvmAccuracy(loaded, traffic.points, traffic.labels);
  std::printf("stream accuracy (normal vs attack): %.1f%%\n", 100.0 * acc);

  // Build the KARL engine over the support vectors; TKAQ with tau = rho
  // reproduces the decision function.
  karl::EngineOptions options;
  options.leaf_capacity = 40;
  double tau = 0.0;
  auto engine = karl::ml::MakeEngineFromSvm(loaded, options, &tau);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // Replay the stream many times through both paths and compare speed.
  const int kRepeats = 40;
  size_t mismatches = 0;

  karl::util::Stopwatch scan_timer;
  size_t scan_flags = 0;
  for (int r = 0; r < kRepeats; ++r) {
    for (size_t i = 0; i < traffic.points.rows(); ++i) {
      scan_flags += karl::ml::SvmDecision(loaded, traffic.points.Row(i)) <= 0.0;
    }
  }
  const double scan_seconds = scan_timer.ElapsedSeconds();

  karl::util::Stopwatch karl_timer;
  size_t karl_flags = 0;
  for (int r = 0; r < kRepeats; ++r) {
    for (size_t i = 0; i < traffic.points.rows(); ++i) {
      karl_flags += !engine.value().Tkaq(traffic.points.Row(i), tau);
    }
  }
  const double karl_seconds = karl_timer.ElapsedSeconds();

  if (karl_flags != scan_flags) ++mismatches;
  const double total =
      static_cast<double>(traffic.points.rows()) * kRepeats;
  std::printf("\nscan  (LibSVM-style): %8.0f packets/s, %zu flagged\n",
              total / scan_seconds, scan_flags / kRepeats);
  std::printf("KARL  (TKAQ engine) : %8.0f packets/s, %zu flagged  "
              "(speedup %.1fx)\n",
              total / karl_seconds, karl_flags / kRepeats,
              scan_seconds / karl_seconds);
  std::printf("decision mismatches : %zu\n", mismatches);
  return mismatches == 0 ? 0 : 1;
}
