#include "core/batch.h"

#include <optional>
#include <utility>

#include "telemetry/context.h"
#include "telemetry/metrics.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace karl::core {

void BatchEvaluator::ResolveInstruments(telemetry::Registry* registry) {
  if (registry == nullptr) return;
  instruments_.batches = registry->GetCounter("karl_batch_batches_total");
  instruments_.queries = registry->GetCounter("karl_batch_queries_total");
  instruments_.batch_usec = registry->GetHistogram("karl_batch_usec");
  instruments_.executors = registry->GetGauge("karl_batch_executors");
  if (!options_.metric_model.empty()) {
    const telemetry::LabelSet labels{{"model", options_.metric_model}};
    instruments_.model_batches =
        registry->GetCounter("karl_batch_batches_total", labels);
    instruments_.model_queries =
        registry->GetCounter("karl_batch_queries_total", labels);
    instruments_.model_batch_usec =
        registry->GetHistogram("karl_batch_usec", labels);
  }
}

BatchEvaluator::BatchEvaluator(const Engine& engine,
                               const BatchOptions& options)
    : engine_(&engine), options_(options) {
  ResolveInstruments(engine.options().metrics);
}

BatchEvaluator::BatchEvaluator(const DynamicEngine& engine,
                               const BatchOptions& options)
    : dynamic_(&engine), options_(options) {
  ResolveInstruments(engine.options().engine.metrics);
}

template <typename T, typename PerQuery>
std::vector<T> BatchEvaluator::Run(const data::Matrix& queries,
                                   EvalStats* stats,
                                   const PerQuery& per_query) const {
  const size_t n = queries.rows();
  std::vector<T> out(n);
  std::optional<util::Stopwatch> timer;
  if (instruments_.batches != nullptr) timer.emplace();

  // Runs one row, attributing its clock time and stats delta to the
  // row_observer when one is set; the un-observed path stays exactly the
  // bare per_query call.
  const auto& observer = options_.row_observer;
  const auto run_row = [&per_query, &observer](size_t i,
                                               std::span<const double> q,
                                               EvalStats* work) -> T {
    if (!observer) return per_query(q, work);
    const uint64_t begin_us = telemetry::MonotonicMicros();
    const EvalStats before = *work;
    T result = per_query(q, work);
    const uint64_t end_us = telemetry::MonotonicMicros();
    EvalStats delta;
    delta.iterations = work->iterations - before.iterations;
    delta.nodes_expanded = work->nodes_expanded - before.nodes_expanded;
    delta.kernel_evals = work->kernel_evals - before.kernel_evals;
    observer(i, begin_us, end_us, delta);
    return result;
  };

  util::ThreadPool* const pool = options_.pool;
  size_t executors = 1;
  if (pool == nullptr) {
    // Serial path: the caller's stats are the single accumulator, so a
    // pool-less batch is operation-for-operation the plain query loop.
    EvalStats local;
    EvalStats* const work = stats != nullptr ? stats : &local;
    for (size_t i = 0; i < n; ++i) {
      out[i] = run_row(i, queries.Row(i), work);
    }
  } else {
    // One EvalStats per executor slot: workers never share a work
    // accumulator (sharing the caller's EvalStats across workers is a
    // plain-integer data race), and the slot sums merge into the
    // caller's stats exactly once per batch.
    executors = pool->num_threads() + 1;
    std::vector<EvalStats> slot_stats(executors);
    pool->ParallelFor(
        n, options_.chunk,
        [&queries, &out, &slot_stats, &run_row](size_t begin, size_t end,
                                                size_t slot) {
          EvalStats& local = slot_stats[slot];
          for (size_t i = begin; i < end; ++i) {
            out[i] = run_row(i, queries.Row(i), &local);
          }
        });
    if (stats != nullptr) {
      for (const EvalStats& s : slot_stats) {
        stats->iterations += s.iterations;
        stats->nodes_expanded += s.nodes_expanded;
        stats->kernel_evals += s.kernel_evals;
      }
    }
  }

  if (instruments_.batches != nullptr) {
    const double usec = timer->ElapsedSeconds() * 1e6;
    instruments_.batches->Increment();
    instruments_.queries->Add(n);
    instruments_.batch_usec->Record(usec);
    instruments_.executors->Set(static_cast<double>(executors));
    if (instruments_.model_batches != nullptr) {
      instruments_.model_batches->Increment();
      instruments_.model_queries->Add(n);
      instruments_.model_batch_usec->Record(usec);
    }
  }
  return out;
}

std::vector<uint8_t> BatchEvaluator::Tkaq(const data::Matrix& queries,
                                          double tau,
                                          EvalStats* stats) const {
  const auto per_query = [this, tau](std::span<const double> q,
                                     EvalStats* work) -> uint8_t {
    const bool above = engine_ != nullptr ? engine_->Tkaq(q, tau, work)
                                          : dynamic_->Tkaq(q, tau, work);
    return above ? 1 : 0;
  };
  return Run<uint8_t>(queries, stats, per_query);
}

std::vector<double> BatchEvaluator::Ekaq(const data::Matrix& queries,
                                         double eps,
                                         EvalStats* stats) const {
  const auto per_query = [this, eps](std::span<const double> q,
                                     EvalStats* work) {
    return engine_ != nullptr ? engine_->Ekaq(q, eps, work)
                              : dynamic_->Ekaq(q, eps, work);
  };
  return Run<double>(queries, stats, per_query);
}

std::vector<double> BatchEvaluator::Exact(const data::Matrix& queries,
                                          EvalStats* stats) const {
  const auto per_query = [this](std::span<const double> q, EvalStats* work) {
    return engine_ != nullptr ? engine_->Exact(q, work)
                              : dynamic_->Exact(q, work);
  };
  return Run<double>(queries, stats, per_query);
}

std::vector<uint8_t> DynamicEngine::TkaqBatch(const data::Matrix& queries,
                                              double tau,
                                              util::ThreadPool* pool,
                                              EvalStats* stats) const {
  BatchOptions options;
  options.pool = pool;
  return BatchEvaluator(*this, options).Tkaq(queries, tau, stats);
}

std::vector<double> DynamicEngine::EkaqBatch(const data::Matrix& queries,
                                             double eps,
                                             util::ThreadPool* pool,
                                             EvalStats* stats) const {
  BatchOptions options;
  options.pool = pool;
  return BatchEvaluator(*this, options).Ekaq(queries, eps, stats);
}

std::vector<double> DynamicEngine::ExactBatch(const data::Matrix& queries,
                                              util::ThreadPool* pool,
                                              EvalStats* stats) const {
  BatchOptions options;
  options.pool = pool;
  return BatchEvaluator(*this, options).Exact(queries, stats);
}

}  // namespace karl::core

namespace karl {

std::vector<uint8_t> Engine::TkaqBatch(const data::Matrix& queries,
                                       double tau, util::ThreadPool* pool,
                                       core::EvalStats* stats) const {
  core::BatchOptions options;
  options.pool = pool;
  return core::BatchEvaluator(*this, options).Tkaq(queries, tau, stats);
}

std::vector<double> Engine::EkaqBatch(const data::Matrix& queries, double eps,
                                      util::ThreadPool* pool,
                                      core::EvalStats* stats) const {
  core::BatchOptions options;
  options.pool = pool;
  return core::BatchEvaluator(*this, options).Ekaq(queries, eps, stats);
}

std::vector<double> Engine::ExactBatch(const data::Matrix& queries,
                                       util::ThreadPool* pool,
                                       core::EvalStats* stats) const {
  core::BatchOptions options;
  options.pool = pool;
  return core::BatchEvaluator(*this, options).Exact(queries, stats);
}

}  // namespace karl
