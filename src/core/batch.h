// Parallel batch-query execution over a shared engine.
//
// KARL's per-query refinement (paper §V) is embarrassingly parallel
// across query points: a built Engine (and the const query surface of
// DynamicEngine) is immutable, so a batch of queries fans out across a
// work-stealing thread pool with zero coordination on the hot path.
//
// Determinism contract: each query runs the identical single-threaded
// refinement it would run in a serial loop, and results are stored by
// query index — so batch output is bit-identical to the serial loop for
// every thread count and chunk size. That holds whichever SIMD tier
// (core/simd) the process runs under, because the tier is process-wide
// and every row executes the same per-row code path; only *across*
// tiers (e.g. a KARL_SIMD=scalar run vs an avx2 run) do results differ,
// within the tolerance contract of core/simd/simd.h.
//
// Stats & telemetry: each executor accumulates work counters into its
// own slot-local EvalStats and the slots are summed once per batch into
// the caller's EvalStats. Fanning one caller-supplied EvalStats pointer
// across workers instead would be a data race (plain size_t increments;
// TSan flags it) — the slot-local merge is the supported pattern, and
// batch_evaluator_test pins it under TSan. Batch-level metrics
// (karl_batch_*) land in the engine's registry once per batch, never per
// query.

#ifndef KARL_CORE_BATCH_H_
#define KARL_CORE_BATCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dynamic_engine.h"
#include "core/karl.h"

namespace karl::util {
class ThreadPool;
}  // namespace karl::util

namespace karl::core {

/// How a batch is scheduled.
struct BatchOptions {
  /// Pool to fan queries across; null runs the batch serially on the
  /// calling thread (still through the same code path, so serial and
  /// parallel results are directly comparable). Non-owning.
  util::ThreadPool* pool = nullptr;
  /// Queries per dynamically-scheduled chunk; 0 picks ~8 chunks per
  /// executor. Chunking only affects scheduling, never results.
  size_t chunk = 0;
  /// Per-row completion hook, invoked on the executing thread right
  /// after each row finishes with the row's index, its begin/end stamps
  /// (telemetry::MonotonicMicros domain), and the engine work that row
  /// alone performed. This is how the serving stack attributes eval time
  /// and EvalStats back to individual coalesced requests. Must be
  /// thread-safe when `pool` is set (rows complete concurrently); rows
  /// are observed exactly once, in no particular order. Leaving it empty
  /// keeps the hot path free of per-row clock reads.
  std::function<void(size_t row, uint64_t begin_us, uint64_t end_us,
                     const EvalStats& stats)>
      row_observer;
  /// When non-empty, the batch metrics additionally record into their
  /// `{model="<metric_model>"}` labeled series, so a multi-model server
  /// can attribute evaluator work per model. The unlabeled totals keep
  /// recording either way.
  std::string metric_model;
};

/// Batch-query front end over one engine. Cheap to construct (resolves
/// telemetry handles once); the engine must outlive it. Safe to use from
/// one thread at a time; the engine itself may be shared by any number
/// of BatchEvaluators.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(const Engine& engine,
                          const BatchOptions& options = {});
  explicit BatchEvaluator(const DynamicEngine& engine,
                          const BatchOptions& options = {});

  /// TKAQ per row of `queries`: out[i] = (F(q_i) > tau). uint8_t instead
  /// of bool so rows can be written concurrently (std::vector<bool> bits
  /// share bytes — a data race under concurrent writers).
  std::vector<uint8_t> Tkaq(const data::Matrix& queries, double tau,
                            EvalStats* stats = nullptr) const;

  /// eKAQ per row: out[i] = F̂(q_i) within relative error eps
  /// (Type I/II weighting only, as in the serial API).
  std::vector<double> Ekaq(const data::Matrix& queries, double eps,
                           EvalStats* stats = nullptr) const;

  /// Exact F(q_i) per row by full scan.
  std::vector<double> Exact(const data::Matrix& queries,
                            EvalStats* stats = nullptr) const;

 private:
  // Shared fan-out skeleton: runs `per_query(q, slot_stats)` for every
  // row, writing by index; merges slot stats; records batch metrics.
  template <typename T, typename PerQuery>
  std::vector<T> Run(const data::Matrix& queries, EvalStats* stats,
                     const PerQuery& per_query) const;

  // Batch-level metric handles; null when the engine has no registry.
  // The labeled twins are null unless BatchOptions::metric_model is set.
  struct Instruments {
    telemetry::Counter* batches = nullptr;
    telemetry::Counter* queries = nullptr;
    telemetry::Histogram* batch_usec = nullptr;
    telemetry::Gauge* executors = nullptr;
    telemetry::Counter* model_batches = nullptr;
    telemetry::Counter* model_queries = nullptr;
    telemetry::Histogram* model_batch_usec = nullptr;
  };

  void ResolveInstruments(telemetry::Registry* registry);

  const Engine* engine_ = nullptr;          // Exactly one of these two
  const DynamicEngine* dynamic_ = nullptr;  // is non-null.
  BatchOptions options_;
  Instruments instruments_;
};

}  // namespace karl::core

#endif  // KARL_CORE_BATCH_H_
