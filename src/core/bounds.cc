#include "core/bounds.h"

#include <algorithm>
#include <cmath>

#include "core/simd/simd.h"
#include "util/check.h"
#include "util/math_util.h"

namespace karl::core {

namespace {

// Below this interval width the profile is numerically constant on the
// interval and linear constructions would divide by ~0.
constexpr double kDegenerateInterval = 1e-12;

}  // namespace

std::string_view BoundKindToString(BoundKind kind) {
  switch (kind) {
    case BoundKind::kSota:
      return "SOTA";
    case BoundKind::kKarl:
      return "KARL";
    case BoundKind::kKarlChordOnly:
      return "KARL-chord-only";
    case BoundKind::kKarlTangentOnly:
      return "KARL-tangent-only";
  }
  return "unknown";
}

QueryContext QueryContext::Make(std::span<const double> q) {
  QueryContext ctx;
  ctx.q = q;
  // Tier-dispatched: the scalar tier is bit-identical to
  // util::SquaredNorm (see core/simd/simd.h for the contract).
  ctx.q_sqnorm = simd::SquaredNorm(q);
  return ctx;
}

LinearFn ExpChord(double lo, double hi) {
  KARL_DCHECK(hi > lo) << ": chord needs a proper interval, got [" << lo
                       << ", " << hi << "]";
  const double flo = std::exp(-lo);
  const double fhi = std::exp(-hi);
  LinearFn line;
  line.m = (fhi - flo) / (hi - lo);
  line.c = (hi * flo - lo * fhi) / (hi - lo);
  return line;
}

LinearFn ExpTangent(double t) {
  const double e = std::exp(-t);
  return LinearFn{-e, (1.0 + t) * e};
}

LinearFn ProfileChord(const KernelParams& params, double lo, double hi) {
  KARL_DCHECK(hi > lo) << ": chord needs a proper interval, got [" << lo
                       << ", " << hi << "]";
  const double flo = KernelProfile(params, lo);
  const double fhi = KernelProfile(params, hi);
  LinearFn line;
  line.m = (fhi - flo) / (hi - lo);
  line.c = flo - line.m * lo;
  return line;
}

LinearFn ProfileTangent(const KernelParams& params, double t) {
  const double f = KernelProfile(params, t);
  const double df = KernelProfileDerivative(params, t);
  return LinearFn{df, f - df * t};
}

Curvature ClassifyProfile(const KernelParams& params, double lo, double hi) {
  switch (params.type) {
    case KernelType::kGaussian:
    case KernelType::kLaplacian:
    case KernelType::kCauchy:
      // All distance profiles are convex on their domain x >= 0.
      return Curvature::kConvex;
    case KernelType::kPolynomial:
      if (params.degree == 1) return Curvature::kLinear;
      if (params.degree % 2 == 0) return Curvature::kConvex;
      // Odd degree >= 3: f'' = deg(deg−1)x^{deg−2} has the sign of x.
      if (lo >= 0.0) return Curvature::kConvex;
      if (hi <= 0.0) return Curvature::kConcave;
      return Curvature::kMixedConcaveConvex;
    case KernelType::kSigmoid:
      // tanh'' = −2·tanh·sech² has the opposite sign of x.
      if (hi <= 0.0) return Curvature::kConvex;
      if (lo >= 0.0) return Curvature::kConcave;
      return Curvature::kMixedConvexConcave;
  }
  return Curvature::kConvex;
}

LinearFn PivotLine(const KernelParams& params, double lo, double hi,
                   bool pivot_at_right, bool upper) {
  KARL_DCHECK(hi > lo) << ": pivot line needs a proper interval, got [" << lo
                       << ", " << hi << "]";
  const double px = pivot_at_right ? hi : lo;
  const double py = KernelProfile(params, px);

  // Tangency residual: tangent at t, evaluated at the pivot, minus the
  // pivot value. h(t) = 0 <=> the tangent at t passes through the pivot,
  // i.e. t is the paper's rotation contact point.
  const auto h = [&](double t) {
    return KernelProfile(params, t) +
           KernelProfileDerivative(params, t) * (px - t) - py;
  };

  // The contact point lives on the branch whose curvature matches the
  // bound side: the branch on the opposite side of the inflection (0)
  // from the pivot. A tangent at ANY branch point t̂ whose h(t̂) lies on
  // the bound's safe side (h >= 0 for upper, <= 0 for lower) is a valid
  // bound on the whole interval: on its own branch by tangency, at the
  // pivot by the sign of h, and on the remaining convex/concave segment
  // because a line that dominates a convex (or is dominated by a concave)
  // function at both segment endpoints dominates it throughout.
  double branch_lo, branch_hi;
  if (pivot_at_right) {
    branch_lo = lo;
    branch_hi = std::min(0.0, hi);
  } else {
    branch_lo = std::max(0.0, lo);
    branch_hi = hi;
  }
  const double safe_sign = upper ? +1.0 : -1.0;
  const auto is_safe = [safe_sign](double value) {
    return value * safe_sign >= 0.0;
  };

  if (branch_hi - branch_lo < kDegenerateInterval) {
    return ProfileChord(params, lo, hi);  // No opposite branch: secant.
  }

  // Closed form for the cubic (LIBSVM's default degree): the tangent from
  // the pivot (p, p^3) touches x^3 at t = -p/2 exactly
  // (2t^3 - 3pt^2 + p^3 = (t - p)^2 (2t + p)).
  if (params.type == KernelType::kPolynomial && params.degree == 3) {
    const double t_star = -0.5 * px;
    if (t_star >= branch_lo && t_star <= branch_hi) {
      return ProfileTangent(params, t_star);
    }
  }

  double a = branch_lo, b = branch_hi;
  double ha = h(a), hb = h(b);
  if (!is_safe(ha) && !is_safe(hb)) {
    // No rotation contact inside the branch: the line rotates all the way
    // to the endpoint secant (valid: it is the extremal secant slope).
    return ProfileChord(params, lo, hi);
  }
  if (is_safe(ha) && is_safe(hb)) {
    // Whole branch is safe; the tighter end is the one nearer tangency.
    return ProfileTangent(params, std::abs(ha) <= std::abs(hb) ? a : b);
  }

  // Bracketing bisection, always retaining the safe end; the returned
  // tangent is taken at the safe end, so early termination stays valid.
  const bool a_safe = is_safe(ha);
  for (int iter = 0; iter < 48; ++iter) {
    const double mid = 0.5 * (a + b);
    const double hm = h(mid);
    if (is_safe(hm) == a_safe) {
      a = mid;
      ha = hm;
    } else {
      b = mid;
      hb = hm;
    }
  }
  return ProfileTangent(params, a_safe ? a : b);
}

namespace {

// ---------------------------------------------------------------------
// Distance-kernel bounds (Gaussian, Laplacian, Cauchy). Profile
// argument: x = DistanceArgScale·dist(q,p)², on which every distance
// profile is convex decreasing.
// ---------------------------------------------------------------------

// SOTA (§II-B): w_P·f(x_hi) <= Σ <= w_P·f(x_lo), f decreasing.
class SotaDistanceBounds final : public BoundFunction {
 public:
  explicit SotaDistanceBounds(const KernelParams& params)
      : params_(params), scale_(DistanceArgScale(params)) {}

  void NodeBounds(const index::TreeIndex& tree, index::NodeId id,
                  const QueryContext& ctx, double* lb,
                  double* ub) const override {
    double min_sq = 0.0, max_sq = 0.0;
    tree.DistanceBounds(id, ctx.q, &min_sq, &max_sq);
    const double w = tree.weight_sum(id);
    *lb = w * KernelProfile(params_, scale_ * max_sq);
    *ub = w * KernelProfile(params_, scale_ * min_sq);
  }

 private:
  KernelParams params_;
  double scale_;
};

// KARL (§III): chord upper bound + optimal-tangent lower bound, each
// aggregated in O(d) via the node sums. The tangent point at the
// weighted mean is optimal for ANY convex profile (Theorem 1/2's proof
// uses only H'(t) = f''(t)·(X − t·w_P)). The constructor flags disable
// one side (replacing it with the SOTA constant) for ablation studies.
class KarlDistanceBounds final : public BoundFunction {
 public:
  KarlDistanceBounds(const KernelParams& params, bool use_chord_upper,
                     bool use_tangent_lower)
      : params_(params),
        scale_(DistanceArgScale(params)),
        use_chord_upper_(use_chord_upper),
        use_tangent_lower_(use_tangent_lower) {}

  void NodeBounds(const index::TreeIndex& tree, index::NodeId id,
                  const QueryContext& ctx, double* lb,
                  double* ub) const override {
    double min_sq = 0.0, max_sq = 0.0;
    tree.DistanceBounds(id, ctx.q, &min_sq, &max_sq);
    const double x_lo = scale_ * min_sq;
    const double x_hi = scale_ * max_sq;
    const double w = tree.weight_sum(id);
    const bool gaussian = params_.type == KernelType::kGaussian;

    if (x_hi - x_lo < kDegenerateInterval) {
      // Numerically constant profile over the node.
      *lb = w * KernelProfile(params_, x_hi);
      *ub = w * KernelProfile(params_, x_lo);
      return;
    }

    // X = Σ w_i·x_i = s·(w_P‖q‖² − 2 q·a_P + b_P)  (Lemma 2/5), clamped
    // into its mathematically feasible range for numerical robustness.
    // The q·a_P dot is the O(d) linear-bound hot spot — tier-dispatched.
    const double sum_x =
        util::Clamp(scale_ * (w * ctx.q_sqnorm -
                              2.0 * simd::Dot(ctx.q,
                                              tree.weighted_point_sum(id)) +
                              tree.weighted_sqnorm_sum(id)),
                    w * x_lo, w * x_hi);

    if (use_chord_upper_) {
      const LinearFn chord =
          gaussian ? ExpChord(x_lo, x_hi) : ProfileChord(params_, x_lo, x_hi);
      *ub = chord.m * sum_x + chord.c * w;
    } else {
      *ub = w * KernelProfile(params_, x_lo);
    }

    if (use_tangent_lower_) {
      // Optimal tangent point (Theorem 1/2): the weighted mean of the
      // x_i. The Laplacian profile's derivative is singular at 0; keep
      // the tangent point strictly positive (any tangent point is valid,
      // the mean is merely optimal).
      double t_opt = util::Clamp(sum_x / w, x_lo, x_hi);
      if (!gaussian) t_opt = std::max(t_opt, 1e-12 * (1.0 + x_hi));
      const LinearFn tangent =
          gaussian ? ExpTangent(t_opt) : ProfileTangent(params_, t_opt);
      *lb = std::max(0.0, tangent.m * sum_x + tangent.c * w);
    } else {
      *lb = w * KernelProfile(params_, x_hi);
    }
    *lb = std::min(*lb, *ub);
  }

 private:
  KernelParams params_;
  double scale_;
  bool use_chord_upper_;
  bool use_tangent_lower_;
};

// ---------------------------------------------------------------------
// Inner-product kernel bounds (polynomial, sigmoid).
// Profile argument: x = γ·(q·p) + β over [x_lo, x_hi].
// ---------------------------------------------------------------------

// Computes the node's profile-argument interval and aggregate
// X = Σ w_i·x_i = γ·(q·a_P) + β·w_P.
struct IpNodeState {
  double x_lo = 0.0;
  double x_hi = 0.0;
  double sum_x = 0.0;
  double w = 0.0;
};

IpNodeState MakeIpState(const KernelParams& params,
                        const index::TreeIndex& tree, index::NodeId id,
                        const QueryContext& ctx) {
  IpNodeState st;
  double ip_min = 0.0, ip_max = 0.0;
  tree.InnerProductBounds(id, ctx.q, &ip_min, &ip_max);
  st.x_lo = params.gamma * ip_min + params.beta;
  st.x_hi = params.gamma * ip_max + params.beta;
  st.w = tree.weight_sum(id);
  st.sum_x = util::Clamp(
      params.gamma * simd::Dot(ctx.q, tree.weighted_point_sum(id)) +
          params.beta * st.w,
      st.w * st.x_lo, st.w * st.x_hi);
  return st;
}

// SOTA-style constant bounds for inner-product kernels: w_P times the
// min/max of the profile on [x_lo, x_hi].
class SotaInnerProductBounds final : public BoundFunction {
 public:
  explicit SotaInnerProductBounds(const KernelParams& params)
      : params_(params) {}

  void NodeBounds(const index::TreeIndex& tree, index::NodeId id,
                  const QueryContext& ctx, double* lb,
                  double* ub) const override {
    const IpNodeState st = MakeIpState(params_, tree, id, ctx);
    const double flo = KernelProfile(params_, st.x_lo);
    const double fhi = KernelProfile(params_, st.x_hi);
    double f_min = std::min(flo, fhi);
    double f_max = std::max(flo, fhi);
    // Even-degree polynomials dip to 0 inside a straddling interval.
    if (params_.type == KernelType::kPolynomial && params_.degree % 2 == 0 &&
        st.x_lo < 0.0 && st.x_hi > 0.0) {
      f_min = 0.0;
    }
    *lb = st.w * f_min;
    *ub = st.w * f_max;
  }

 private:
  KernelParams params_;
};

// KARL linear bounds for inner-product kernels, dispatching on curvature
// (§IV-B): chord/tangent for convex or concave intervals, the Fig. 8
// pivot construction for mixed monotone intervals.
class KarlInnerProductBounds final : public BoundFunction {
 public:
  explicit KarlInnerProductBounds(const KernelParams& params)
      : params_(params) {}

  void NodeBounds(const index::TreeIndex& tree, index::NodeId id,
                  const QueryContext& ctx, double* lb,
                  double* ub) const override {
    const IpNodeState st = MakeIpState(params_, tree, id, ctx);

    if (st.x_hi - st.x_lo < kDegenerateInterval) {
      const double flo = KernelProfile(params_, st.x_lo);
      const double fhi = KernelProfile(params_, st.x_hi);
      *lb = st.w * std::min(flo, fhi);
      *ub = st.w * std::max(flo, fhi);
      return;
    }

    LinearFn lower, upper;
    const double t_opt = util::Clamp(st.sum_x / st.w, st.x_lo, st.x_hi);
    switch (ClassifyProfile(params_, st.x_lo, st.x_hi)) {
      case Curvature::kLinear:
        // Degree-1 polynomial: the aggregate is exact.
        lower = upper = LinearFn{1.0, 0.0};
        break;
      case Curvature::kConvex:
        upper = ProfileChord(params_, st.x_lo, st.x_hi);
        lower = ProfileTangent(params_, t_opt);
        break;
      case Curvature::kConcave:
        lower = ProfileChord(params_, st.x_lo, st.x_hi);
        upper = ProfileTangent(params_, t_opt);
        break;
      case Curvature::kMixedConcaveConvex:
        // Odd x^deg: rotate down about the right endpoint for the upper
        // bound, rotate up about the left endpoint for the lower bound.
        upper = PivotLine(params_, st.x_lo, st.x_hi, /*pivot_at_right=*/true,
                          /*upper=*/true);
        lower = PivotLine(params_, st.x_lo, st.x_hi, /*pivot_at_right=*/false,
                          /*upper=*/false);
        break;
      case Curvature::kMixedConvexConcave:
        // tanh: the pivots swap sides.
        upper = PivotLine(params_, st.x_lo, st.x_hi, /*pivot_at_right=*/false,
                          /*upper=*/true);
        lower = PivotLine(params_, st.x_lo, st.x_hi, /*pivot_at_right=*/true,
                          /*upper=*/false);
        break;
    }

    *lb = lower.m * st.sum_x + lower.c * st.w;
    *ub = upper.m * st.sum_x + upper.c * st.w;

    // Clamp against the constant (SOTA-style) bounds: a single line on a
    // mixed monotone interval can be looser than the constant bound on
    // part of the interval, and the clamp guarantees KARL never loses to
    // SOTA (cheap, and preserves validity).
    const double flo = KernelProfile(params_, st.x_lo);
    const double fhi = KernelProfile(params_, st.x_hi);
    double f_min = std::min(flo, fhi);
    const double f_max = std::max(flo, fhi);
    if (params_.type == KernelType::kPolynomial && params_.degree % 2 == 0 &&
        st.x_lo < 0.0 && st.x_hi > 0.0) {
      f_min = 0.0;
    }
    *lb = std::max(*lb, st.w * f_min);
    *ub = std::min(*ub, st.w * f_max);
    *lb = std::min(*lb, *ub);
  }

 private:
  KernelParams params_;
};

// Auditing decorator: forwards to the wrapped BoundFunction, then
// verifies the produced interval against the exact leaf-level aggregate
// (see MakeAuditingBoundFunction in bounds.h).
class AuditingBoundFunction final : public BoundFunction {
 public:
  AuditingBoundFunction(std::unique_ptr<BoundFunction> inner,
                        const KernelParams& params, double rel_tolerance)
      : inner_(std::move(inner)),
        params_(params),
        rel_tolerance_(rel_tolerance) {}

  void NodeBounds(const index::TreeIndex& tree, index::NodeId id,
                  const QueryContext& ctx, double* lb,
                  double* ub) const override {
    inner_->NodeBounds(tree, id, ctx, lb, ub);
    const double exact = ExactNodeAggregate(params_, tree, id, ctx.q);
    const double tol = rel_tolerance_ * (1.0 + std::abs(exact));
    const auto& nd = tree.node(id);
    KARL_CHECK(*lb <= *ub + tol)
        << ": inverted node bounds; kernel=" << KernelTypeToString(params_.type)
        << " node=" << id << " range=[" << nd.begin << "," << nd.end
        << ") lb=" << *lb << " ub=" << *ub;
    KARL_CHECK(*lb <= exact + tol && *ub >= exact - tol)
        << ": node bounds exclude the exact aggregate; kernel="
        << KernelTypeToString(params_.type) << " gamma=" << params_.gamma
        << " node=" << id << " range=[" << nd.begin << "," << nd.end
        << ") lb=" << *lb << " exact=" << exact << " ub=" << *ub;
  }

 private:
  std::unique_ptr<BoundFunction> inner_;
  KernelParams params_;
  double rel_tolerance_;
};

}  // namespace

double ExactNodeAggregate(const KernelParams& params,
                          const index::TreeIndex& tree, index::NodeId id,
                          std::span<const double> q) {
  const auto& nd = tree.node(id);
  const auto weights = tree.weights();
  util::KahanAccumulator acc;
  for (uint32_t i = nd.begin; i < nd.end; ++i) {
    acc.Add(weights[i] * KernelValue(params, q, tree.points().Row(i)));
  }
  return acc.Total();
}

std::unique_ptr<BoundFunction> MakeAuditingBoundFunction(
    std::unique_ptr<BoundFunction> inner, const KernelParams& params,
    double rel_tolerance) {
  KARL_CHECK(inner != nullptr) << ": auditor needs a bound function to wrap";
  return std::make_unique<AuditingBoundFunction>(std::move(inner), params,
                                                 rel_tolerance);
}

util::Result<std::unique_ptr<BoundFunction>> MakeBoundFunction(
    const KernelParams& params, BoundKind kind) {
  KARL_RETURN_NOT_OK(params.Validate());
  std::unique_ptr<BoundFunction> fn;
  if (!IsInnerProductKernel(params.type)) {
    switch (kind) {
      case BoundKind::kSota:
        fn = std::make_unique<SotaDistanceBounds>(params);
        break;
      case BoundKind::kKarl:
        fn = std::make_unique<KarlDistanceBounds>(params, true, true);
        break;
      case BoundKind::kKarlChordOnly:
        fn = std::make_unique<KarlDistanceBounds>(params, true, false);
        break;
      case BoundKind::kKarlTangentOnly:
        fn = std::make_unique<KarlDistanceBounds>(params, false, true);
        break;
    }
  } else {
    // The ablation split is distance-kernel-specific; inner-product
    // kernels use the full KARL construction for any kKarl* kind.
    if (kind == BoundKind::kSota) {
      fn = std::make_unique<SotaInnerProductBounds>(params);
    } else {
      fn = std::make_unique<KarlInnerProductBounds>(params);
    }
  }
  return fn;
}

}  // namespace karl::core
