// Lower/upper bound functions on per-node kernel aggregates — the paper's
// central contribution (§III-A, §III-B, §IV-B).
//
// For a tree node covering points {p_i} with positive weights {w_i}, a
// BoundFunction computes [lb, ub] enclosing Σ w_i·K(q, p_i) in O(d) time:
//
//  * SOTA bounds (§II-B): constant bounds w_P·f(x_hi), w_P·f(x_lo) from
//    the extreme profile arguments reachable inside the node region.
//  * KARL bounds (§III-B): linear functions E(x) = m·x + c sandwiching
//    the kernel profile f(x) on [x_lo, x_hi]; aggregating a linear
//    function needs only the node's precomputed sums (Lemma 2/5):
//        Σ w_i (m·x_i + c) = m·X + c·w_P,
//    where X = Σ w_i·x_i follows from (w_P, a_P, b_P).
//    - convex profiles: chord above (Lemma 3), optimal tangent below at
//      the weighted mean t_opt = X / w_P (Theorems 1–2);
//    - concave profiles: the mirror image;
//    - monotone single-inflection profiles (odd-degree polynomial,
//      sigmoid) on a mixed interval: the paper's "rotate" construction
//      (Fig. 8) — the tightest line through the appropriate endpoint,
//      found as the extremum of secant slopes from that pivot.

#ifndef KARL_CORE_BOUNDS_H_
#define KARL_CORE_BOUNDS_H_

#include <memory>
#include <span>

#include "core/kernel.h"
#include "index/tree_index.h"

namespace karl::core {

/// Which bound family to use during query evaluation.
enum class BoundKind {
  kSota,  ///< State-of-the-art constant bounds [Gray&Moore'03, Gan&Bailis'17].
  kKarl,  ///< This paper's linear bounds.
  /// Ablation variants (Gaussian kernel; inner-product kernels fall back
  /// to full KARL): only one of the two linear constructions is active,
  /// the other side uses the SOTA constant bound.
  kKarlChordOnly,    ///< Chord upper bound + SOTA lower bound.
  kKarlTangentOnly,  ///< SOTA upper bound + optimal-tangent lower bound.
};

/// Human-readable name ("SOTA" / "KARL").
std::string_view BoundKindToString(BoundKind kind);

/// A linear function m·x + c.
struct LinearFn {
  double m = 0.0;
  double c = 0.0;

  /// Evaluates the line at x.
  double At(double x) const { return m * x + c; }
};

/// Per-query precomputed state shared across node-bound evaluations.
struct QueryContext {
  std::span<const double> q;
  double q_sqnorm = 0.0;  ///< ||q||², used by the Gaussian fast path.

  /// Builds the context (computes ||q||²).
  static QueryContext Make(std::span<const double> q);
};

/// Computes [*lb, *ub] enclosing Σ_{i∈node} w_i·K(q, p_i). Requires all
/// node weights to be positive (Type III splits into two positive-weight
/// trees before reaching here).
class BoundFunction {
 public:
  virtual ~BoundFunction() = default;

  /// Bound computation for one node; O(d) time.
  virtual void NodeBounds(const index::TreeIndex& tree, index::NodeId id,
                          const QueryContext& ctx, double* lb,
                          double* ub) const = 0;
};

/// Creates the bound implementation for the kernel/bound-kind pair.
/// Fails for invalid kernel parameters.
util::Result<std::unique_ptr<BoundFunction>> MakeBoundFunction(
    const KernelParams& params, BoundKind kind);

// ---------------------------------------------------------------------
// Bound-invariant auditing (the KARL_AUDIT_BOUNDS correctness tooling).
// ---------------------------------------------------------------------

/// Exact Σ_{i∈node} w_i·K(q, p_i) over the node's permuted point range —
/// the ground truth the auditor compares node bounds against. O(count·d),
/// so audit paths only.
double ExactNodeAggregate(const KernelParams& params,
                          const index::TreeIndex& tree, index::NodeId id,
                          std::span<const double> q);

/// Wraps `inner` with the bound-invariant auditor: every NodeBounds call
/// additionally recomputes the exact node aggregate and aborts via
/// KARL_CHECK — with the node id, point range, kernel, bounds and exact
/// value in the message — if `lb ≤ exact ≤ ub` or `lb ≤ ub` is violated
/// beyond `rel_tolerance·(1 + |exact|)`. Each call costs O(count·d);
/// intended for the KARL_AUDIT_BOUNDS mode, fuzz drivers, and tests.
std::unique_ptr<BoundFunction> MakeAuditingBoundFunction(
    std::unique_ptr<BoundFunction> inner, const KernelParams& params,
    double rel_tolerance = 1e-7);

// ---------------------------------------------------------------------
// Pure bound-construction math, exposed for unit and property testing.
// ---------------------------------------------------------------------

/// Chord of exp(−x) through (lo, e^{−lo}) and (hi, e^{−hi}) — a valid
/// upper bound of exp(−x) on [lo, hi] by convexity (paper Eq. 6–7).
/// Requires hi > lo.
LinearFn ExpChord(double lo, double hi);

/// Tangent of exp(−x) at t — a valid lower bound of exp(−x) everywhere.
LinearFn ExpTangent(double t);

/// Chord of the kernel profile f through its endpoint values on [lo, hi].
/// Requires hi > lo.
LinearFn ProfileChord(const KernelParams& params, double lo, double hi);

/// Tangent of the kernel profile f at t.
LinearFn ProfileTangent(const KernelParams& params, double t);

/// The paper's Fig. 8 "rotate" construction: the tightest line through
/// the pivot endpoint (`pivot_at_right` picks hi vs lo) that bounds the
/// profile f from above (`upper` = true) or below on [lo, hi]. Valid for
/// the library's single-inflection profiles. Requires hi > lo.
LinearFn PivotLine(const KernelParams& params, double lo, double hi,
                   bool pivot_at_right, bool upper);

/// Curvature of a profile on an interval.
enum class Curvature {
  kConvex,
  kConcave,
  kMixedConcaveConvex,  ///< concave for x<=0, convex for x>=0 (odd x^deg)
  kMixedConvexConcave,  ///< convex for x<=0, concave for x>=0 (tanh)
  kLinear,
};

/// Classifies the kernel profile's curvature on [lo, hi].
Curvature ClassifyProfile(const KernelParams& params, double lo, double hi);

}  // namespace karl::core

#endif  // KARL_CORE_BOUNDS_H_
