#include "core/dynamic_engine.h"

#include <cmath>
#include <optional>

#include "core/evaluator.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/math_util.h"
#include "util/stopwatch.h"

namespace karl::core {

util::Result<std::unique_ptr<DynamicEngine>> DynamicEngine::Create(
    size_t dimensions, const Options& options) {
  if (dimensions == 0) {
    return util::Status::InvalidArgument("dimensionality must be positive");
  }
  if (options.rebuild_fraction <= 0.0 || options.rebuild_fraction > 1.0) {
    return util::Status::InvalidArgument(
        "rebuild_fraction must be in (0, 1]");
  }
  KARL_RETURN_NOT_OK(options.engine.kernel.Validate());
  std::unique_ptr<DynamicEngine> engine(new DynamicEngine());
  engine->options_ = options;
  engine->dimensions_ = dimensions;
  if (options.engine.metrics != nullptr) {
    telemetry::Registry& reg = *options.engine.metrics;
    engine->instruments_.delta_points =
        reg.GetGauge("karl_dynamic_delta_points");
    engine->instruments_.tombstones = reg.GetGauge("karl_dynamic_tombstones");
    engine->instruments_.live_points =
        reg.GetGauge("karl_dynamic_live_points");
    engine->instruments_.inserts =
        reg.GetCounter("karl_dynamic_inserts_total");
    engine->instruments_.removes =
        reg.GetCounter("karl_dynamic_removes_total");
    engine->instruments_.rebuilds =
        reg.GetCounter("karl_dynamic_rebuilds_total");
    engine->instruments_.rebuild_usec =
        reg.GetHistogram("karl_dynamic_rebuild_usec");
  }
  return engine;
}

void DynamicEngine::UpdateGauges() const {
  if (instruments_.delta_points == nullptr) return;
  instruments_.delta_points->Set(static_cast<double>(buffer_ids_.size()));
  instruments_.tombstones->Set(static_cast<double>(tombstones_.size()));
  instruments_.live_points->Set(static_cast<double>(live_count_));
}

util::Result<PointId> DynamicEngine::Insert(std::span<const double> point,
                                            double weight) {
  if (point.size() != dimensions_) {
    return util::Status::InvalidArgument(
        "point dimensionality " + std::to_string(point.size()) +
        " does not match engine dimensionality " +
        std::to_string(dimensions_));
  }
  if (weight == 0.0) {
    return util::Status::InvalidArgument("weight must be non-zero");
  }
  const util::WriterMutexLock lock(&mu_);
  const PointId id = next_id_++;
  StoredPoint stored;
  stored.values.assign(point.begin(), point.end());
  stored.weight = weight;
  stored.alive = true;
  stored.indexed = false;
  points_.emplace(id, std::move(stored));
  buffer_ids_.push_back(id);
  ++live_count_;
  if (instruments_.inserts != nullptr) instruments_.inserts->Increment();
  MaybeRebuild();
  UpdateGauges();
  return id;
}

util::Status DynamicEngine::Remove(PointId id) {
  const util::WriterMutexLock lock(&mu_);
  auto it = points_.find(id);
  if (it == points_.end() || !it->second.alive) {
    return util::Status::NotFound("no live point with id " +
                                  std::to_string(id));
  }
  it->second.alive = false;
  --live_count_;
  if (it->second.indexed) {
    tombstones_.push_back(id);
  } else {
    // Drop from the pending buffer; O(|buffer|) but buffers are small by
    // construction.
    for (size_t i = 0; i < buffer_ids_.size(); ++i) {
      if (buffer_ids_[i] == id) {
        buffer_ids_[i] = buffer_ids_.back();
        buffer_ids_.pop_back();
        break;
      }
    }
    points_.erase(it);
  }
  if (instruments_.removes != nullptr) instruments_.removes->Increment();
  MaybeRebuild();
  UpdateGauges();
  return util::Status::OK();
}

double DynamicEngine::DeltaAggregate(std::span<const double> q,
                                     EvalStats* stats) const {
  util::KahanAccumulator acc;
  const auto& kernel = options_.engine.kernel;
  for (const PointId id : buffer_ids_) {
    const StoredPoint& p = points_.at(id);
    acc.Add(p.weight * KernelValue(kernel, q, p.values));
  }
  for (const PointId id : tombstones_) {
    const StoredPoint& p = points_.at(id);
    acc.Add(-p.weight * KernelValue(kernel, q, p.values));
  }
  if (stats != nullptr) {
    stats->kernel_evals += buffer_ids_.size() + tombstones_.size();
  }
  return acc.Total();
}

bool DynamicEngine::Tkaq(std::span<const double> q, double tau,
                         EvalStats* stats) const {
  // F = F_indexed + delta, computed exactly for the delta; the indexed
  // part answers the shifted threshold.
  const util::ReaderMutexLock lock(&mu_);
  const double delta = DeltaAggregate(q, stats);
  if (snapshot_ == nullptr) return delta > tau;
  return snapshot_->Tkaq(q, tau - delta, stats);
}

double DynamicEngine::Ekaq(std::span<const double> q, double eps,
                           EvalStats* stats) const {
  const util::ReaderMutexLock lock(&mu_);
  const double delta = DeltaAggregate(q, stats);
  if (snapshot_ == nullptr) return delta;
  return snapshot_->Ekaq(q, eps, stats) + delta;
}

double DynamicEngine::Exact(std::span<const double> q,
                            EvalStats* stats) const {
  const util::ReaderMutexLock lock(&mu_);
  const double delta = DeltaAggregate(q, stats);
  if (snapshot_ == nullptr) return delta;
  return snapshot_->Exact(q, stats) + delta;
}

void DynamicEngine::MaybeRebuild() {
  const size_t delta = DeltaSizeLocked();
  if (snapshot_ == nullptr) {
    if (live_count_ >= options_.min_index_size) Rebuild();
    return;
  }
  if (static_cast<double>(delta) >
      options_.rebuild_fraction * static_cast<double>(snapshot_size_)) {
    Rebuild();
  }
}

void DynamicEngine::Rebuild() {
  if (live_count_ < options_.min_index_size) return;

  std::optional<util::Stopwatch> rebuild_timer;
  if (instruments_.rebuilds != nullptr ||
      options_.engine.tracer != nullptr) {
    rebuild_timer.emplace();
  }
  const uint64_t trace_start = options_.engine.tracer != nullptr
                                   ? options_.engine.tracer->NowMicros()
                                   : 0;

  data::Matrix points(0, dimensions_);
  std::vector<double> weights;
  std::vector<PointId> live_ids;
  weights.reserve(live_count_);
  live_ids.reserve(live_count_);
  for (const auto& [id, stored] : points_) {
    if (!stored.alive) continue;
    points.AppendRow(stored.values);
    weights.push_back(stored.weight);
    live_ids.push_back(id);
  }

  auto engine = Engine::Build(points, weights, options_.engine);
  // Build fails only when no live weight is positive (Engine requires a
  // non-empty positive side); keep the current snapshot + delta state in
  // that case — queries remain correct, just unaccelerated.
  if (!engine.ok()) return;

  // Commit: flip index flags, drop fully-dead entries, reset the delta.
  for (const PointId id : live_ids) points_.at(id).indexed = true;
  for (const PointId id : tombstones_) points_.erase(id);
  tombstones_.clear();
  buffer_ids_.clear();
  snapshot_ = std::make_unique<Engine>(std::move(engine).ValueOrDie());
  snapshot_size_ = weights.size();
  ++rebuild_count_;

  if (instruments_.rebuilds != nullptr) {
    instruments_.rebuilds->Increment();
    instruments_.rebuild_usec->Record(rebuild_timer->ElapsedSeconds() * 1e6);
  }
  if (options_.engine.tracer != nullptr) {
    telemetry::TraceRecorder& tracer = *options_.engine.tracer;
    tracer.CompleteEvent(
        "dynamic_rebuild", trace_start, tracer.NowMicros() - trace_start,
        {{"indexed_points", static_cast<double>(snapshot_size_)},
         {"rebuild_count", static_cast<double>(rebuild_count_)}});
  }
  UpdateGauges();
}

}  // namespace karl::core
