// Mutable kernel-aggregation engine for online kernel learning (paper §I,
// research issue 4: "the model would be updated frequently").
//
// Inserts land in an unindexed delta buffer that queries scan exactly;
// removals of indexed points become tombstones whose contribution is
// subtracted exactly. When the delta state outgrows a configurable
// fraction of the indexed snapshot, the index is rebuilt over the live
// points. Every query is therefore answered against the *current*
// multiset, with the indexed bulk pruned by KARL bounds and only the
// recent churn paid for linearly.
//
// Rebuilds go through Engine::Build, so the indexed snapshot always
// carries the blocked SoA leaf layout the vectorized evaluator
// (core/simd) reads; the delta buffer and tombstone scans stay scalar —
// they are bounded by rebuild_fraction and never dominate.

#ifndef KARL_CORE_DYNAMIC_ENGINE_H_
#define KARL_CORE_DYNAMIC_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/karl.h"
#include "util/mutex.h"
#include "util/status.h"

namespace karl::util {
class ThreadPool;
}  // namespace karl::util

namespace karl::core {

/// Stable identifier of an inserted point.
using PointId = uint64_t;

/// Mutable engine over a weighted point multiset.
///
/// Thread safety: internally synchronised by a reader/writer lock.
/// Queries (Tkaq/Ekaq/Exact and their *Batch forms) take the lock
/// shared, so any number of threads may query concurrently;
/// Insert/Remove take it exclusively and may interleave with queries
/// from other threads. A *Batch call locks per row (never across the
/// pool fan-out — holding a reader lock across ParallelFor while a
/// writer is queued would deadlock the pool), so a batch overlapping a
/// mutation sees each row against the multiset current at that row.
/// As with Engine, one EvalStats object must not be shared across
/// concurrent callers; the *Batch methods merge per-worker
/// accumulators instead.
class DynamicEngine {
 public:
  struct Options {
    EngineOptions engine;
    /// Rebuild when (buffered inserts + tombstones) exceeds this fraction
    /// of the indexed snapshot size. In (0, 1]; default 0.25.
    double rebuild_fraction = 0.25;
    /// Snapshot size below which no index is kept (pure scanning).
    size_t min_index_size = 256;
  };

  /// Creates an engine of dimensionality `dimensions`. Weights may be
  /// any sign but not zero. Returned by pointer: the engine embeds its
  /// reader/writer lock, so it is neither movable nor copyable.
  static util::Result<std::unique_ptr<DynamicEngine>> Create(
      size_t dimensions, const Options& options);

  DynamicEngine(const DynamicEngine&) = delete;
  DynamicEngine& operator=(const DynamicEngine&) = delete;

  /// Inserts a point; returns its stable id. Fails on dimension mismatch
  /// or zero weight.
  util::Result<PointId> Insert(std::span<const double> point, double weight)
      KARL_EXCLUDES(mu_);

  /// Removes a previously inserted point. Fails if the id is unknown or
  /// already removed.
  util::Status Remove(PointId id) KARL_EXCLUDES(mu_);

  /// TKAQ over the current multiset: F(q) > tau? `stats` (optional)
  /// accumulates the work done, counting every delta-buffer and
  /// tombstone kernel evaluation alongside the indexed refinement work.
  bool Tkaq(std::span<const double> q, double tau,
            EvalStats* stats = nullptr) const KARL_EXCLUDES(mu_);

  /// εKAQ over the current multiset. The delta buffer and tombstones are
  /// aggregated exactly, so the relative-error guarantee applies to the
  /// indexed portion (the exact delta adds no error of its own).
  double Ekaq(std::span<const double> q, double eps,
              EvalStats* stats = nullptr) const KARL_EXCLUDES(mu_);

  /// Exact F(q) over the current multiset.
  double Exact(std::span<const double> q, EvalStats* stats = nullptr) const
      KARL_EXCLUDES(mu_);

  /// Batch TKAQ over every row of `queries`, fanned across `pool` (null
  /// runs serially); bit-identical to the serial loop for any thread
  /// count. See core::BatchEvaluator (core/batch.h).
  std::vector<uint8_t> TkaqBatch(const data::Matrix& queries, double tau,
                                 util::ThreadPool* pool = nullptr,
                                 EvalStats* stats = nullptr) const;

  /// Batch eKAQ over the current multiset.
  std::vector<double> EkaqBatch(const data::Matrix& queries, double eps,
                                util::ThreadPool* pool = nullptr,
                                EvalStats* stats = nullptr) const;

  /// Batch exact aggregation over the current multiset.
  std::vector<double> ExactBatch(const data::Matrix& queries,
                                 util::ThreadPool* pool = nullptr,
                                 EvalStats* stats = nullptr) const;

  /// Options the engine was created with (immutable, lock-free).
  const Options& options() const { return options_; }

  /// Number of live points.
  size_t size() const KARL_EXCLUDES(mu_) {
    const util::ReaderMutexLock lock(&mu_);
    return live_count_;
  }

  /// Points currently answered by linear scanning (buffer + tombstones).
  size_t delta_size() const KARL_EXCLUDES(mu_) {
    const util::ReaderMutexLock lock(&mu_);
    return DeltaSizeLocked();
  }

  /// Total index rebuilds performed so far.
  size_t rebuild_count() const KARL_EXCLUDES(mu_) {
    const util::ReaderMutexLock lock(&mu_);
    return rebuild_count_;
  }

 private:
  DynamicEngine() = default;

  struct StoredPoint {
    std::vector<double> values;
    double weight = 0.0;
    bool alive = false;
    bool indexed = false;  // Lives in the current snapshot engine.
  };

  // Metric handles resolved at Create from options.engine.metrics; all
  // null when telemetry is disabled. The snapshot Engine carries the
  // same registry pointer, so indexed-query work lands in the shared
  // evaluator metrics automatically.
  struct Instruments {
    telemetry::Gauge* delta_points = nullptr;
    telemetry::Gauge* tombstones = nullptr;
    telemetry::Gauge* live_points = nullptr;
    telemetry::Counter* inserts = nullptr;
    telemetry::Counter* removes = nullptr;
    telemetry::Counter* rebuilds = nullptr;
    telemetry::Histogram* rebuild_usec = nullptr;
  };

  // Exact aggregate of the un-indexed delta: + buffered inserts,
  // − tombstoned snapshot points.
  double DeltaAggregate(std::span<const double> q, EvalStats* stats) const
      KARL_REQUIRES_SHARED(mu_);

  size_t DeltaSizeLocked() const KARL_REQUIRES_SHARED(mu_) {
    return buffer_ids_.size() + tombstones_.size();
  }

  // Rebuilds the snapshot engine over all live points if the delta has
  // outgrown the configured fraction. Only called from Insert/Remove,
  // under the exclusive lock.
  void MaybeRebuild() KARL_REQUIRES(mu_);
  void Rebuild() KARL_REQUIRES(mu_);

  // Refreshes the delta/tombstone/live gauges (no-op when disabled).
  void UpdateGauges() const KARL_REQUIRES_SHARED(mu_);

  // options_, dimensions_, and instruments_ are set once in Create and
  // immutable afterwards; the metric objects are internally atomic.
  Options options_;
  size_t dimensions_ = 0;
  Instruments instruments_;

  mutable util::SharedMutex mu_;
  std::unordered_map<PointId, StoredPoint> points_ KARL_GUARDED_BY(mu_);
  PointId next_id_ KARL_GUARDED_BY(mu_) = 0;
  size_t live_count_ KARL_GUARDED_BY(mu_) = 0;

  // Null when below min_index_size.
  std::unique_ptr<Engine> snapshot_ KARL_GUARDED_BY(mu_);
  size_t snapshot_size_ KARL_GUARDED_BY(mu_) = 0;
  // Live, not yet indexed.
  std::vector<PointId> buffer_ids_ KARL_GUARDED_BY(mu_);
  // Removed but still indexed.
  std::vector<PointId> tombstones_ KARL_GUARDED_BY(mu_);
  size_t rebuild_count_ KARL_GUARDED_BY(mu_) = 0;
};

}  // namespace karl::core

#endif  // KARL_CORE_DYNAMIC_ENGINE_H_
