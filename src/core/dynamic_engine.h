// Mutable kernel-aggregation engine for online kernel learning (paper §I,
// research issue 4: "the model would be updated frequently").
//
// Inserts land in an unindexed delta buffer that queries scan exactly;
// removals of indexed points become tombstones whose contribution is
// subtracted exactly. When the delta state outgrows a configurable
// fraction of the indexed snapshot, the index is rebuilt over the live
// points. Every query is therefore answered against the *current*
// multiset, with the indexed bulk pruned by KARL bounds and only the
// recent churn paid for linearly.

#ifndef KARL_CORE_DYNAMIC_ENGINE_H_
#define KARL_CORE_DYNAMIC_ENGINE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/karl.h"
#include "util/status.h"

namespace karl::util {
class ThreadPool;
}  // namespace karl::util

namespace karl::core {

/// Stable identifier of an inserted point.
using PointId = uint64_t;

/// Mutable engine over a weighted point multiset.
///
/// Thread safety: the const query methods (Tkaq/Ekaq/Exact and their
/// *Batch forms) only read, so any number of threads may query
/// concurrently — but Insert/Remove mutate the snapshot and delta state
/// and require exclusive access (no queries in flight). As with Engine,
/// one EvalStats object must not be shared across concurrent callers;
/// the *Batch methods merge per-worker accumulators instead.
class DynamicEngine {
 public:
  struct Options {
    EngineOptions engine;
    /// Rebuild when (buffered inserts + tombstones) exceeds this fraction
    /// of the indexed snapshot size. In (0, 1]; default 0.25.
    double rebuild_fraction = 0.25;
    /// Snapshot size below which no index is kept (pure scanning).
    size_t min_index_size = 256;
  };

  /// Creates an engine of dimensionality `dimensions`, optionally seeded
  /// with an initial batch. Weights may be any sign but not zero.
  static util::Result<DynamicEngine> Create(size_t dimensions,
                                            const Options& options);

  DynamicEngine(DynamicEngine&&) = default;
  DynamicEngine& operator=(DynamicEngine&&) = default;

  /// Inserts a point; returns its stable id. Fails on dimension mismatch
  /// or zero weight.
  util::Result<PointId> Insert(std::span<const double> point, double weight);

  /// Removes a previously inserted point. Fails if the id is unknown or
  /// already removed.
  util::Status Remove(PointId id);

  /// TKAQ over the current multiset: F(q) > tau? `stats` (optional)
  /// accumulates the work done, counting every delta-buffer and
  /// tombstone kernel evaluation alongside the indexed refinement work.
  bool Tkaq(std::span<const double> q, double tau,
            EvalStats* stats = nullptr) const;

  /// εKAQ over the current multiset. The delta buffer and tombstones are
  /// aggregated exactly, so the relative-error guarantee applies to the
  /// indexed portion (the exact delta adds no error of its own).
  double Ekaq(std::span<const double> q, double eps,
              EvalStats* stats = nullptr) const;

  /// Exact F(q) over the current multiset.
  double Exact(std::span<const double> q, EvalStats* stats = nullptr) const;

  /// Batch TKAQ over every row of `queries`, fanned across `pool` (null
  /// runs serially); bit-identical to the serial loop for any thread
  /// count. See core::BatchEvaluator (core/batch.h).
  std::vector<uint8_t> TkaqBatch(const data::Matrix& queries, double tau,
                                 util::ThreadPool* pool = nullptr,
                                 EvalStats* stats = nullptr) const;

  /// Batch eKAQ over the current multiset.
  std::vector<double> EkaqBatch(const data::Matrix& queries, double eps,
                                util::ThreadPool* pool = nullptr,
                                EvalStats* stats = nullptr) const;

  /// Batch exact aggregation over the current multiset.
  std::vector<double> ExactBatch(const data::Matrix& queries,
                                 util::ThreadPool* pool = nullptr,
                                 EvalStats* stats = nullptr) const;

  /// Options the engine was created with.
  const Options& options() const { return options_; }

  /// Number of live points.
  size_t size() const { return live_count_; }

  /// Points currently answered by linear scanning (buffer + tombstones).
  size_t delta_size() const {
    return buffer_ids_.size() + tombstones_.size();
  }

  /// Total index rebuilds performed so far.
  size_t rebuild_count() const { return rebuild_count_; }

 private:
  DynamicEngine() = default;

  struct StoredPoint {
    std::vector<double> values;
    double weight = 0.0;
    bool alive = false;
    bool indexed = false;  // Lives in the current snapshot engine.
  };

  // Metric handles resolved at Create from options.engine.metrics; all
  // null when telemetry is disabled. The snapshot Engine carries the
  // same registry pointer, so indexed-query work lands in the shared
  // evaluator metrics automatically.
  struct Instruments {
    telemetry::Gauge* delta_points = nullptr;
    telemetry::Gauge* tombstones = nullptr;
    telemetry::Gauge* live_points = nullptr;
    telemetry::Counter* inserts = nullptr;
    telemetry::Counter* removes = nullptr;
    telemetry::Counter* rebuilds = nullptr;
    telemetry::Histogram* rebuild_usec = nullptr;
  };

  // Exact aggregate of the un-indexed delta: + buffered inserts,
  // − tombstoned snapshot points.
  double DeltaAggregate(std::span<const double> q, EvalStats* stats) const;

  // Rebuilds the snapshot engine over all live points if the delta has
  // outgrown the configured fraction.
  void MaybeRebuild();
  void Rebuild();

  // Refreshes the delta/tombstone/live gauges (no-op when disabled).
  void UpdateGauges() const;

  Options options_;
  size_t dimensions_ = 0;
  std::unordered_map<PointId, StoredPoint> points_;
  PointId next_id_ = 0;
  size_t live_count_ = 0;

  std::unique_ptr<Engine> snapshot_;  // Null when below min_index_size.
  size_t snapshot_size_ = 0;
  std::vector<PointId> buffer_ids_;      // Live, not yet indexed.
  std::vector<PointId> tombstones_;      // Removed but still indexed.
  size_t rebuild_count_ = 0;
  Instruments instruments_;
};

}  // namespace karl::core

#endif  // KARL_CORE_DYNAMIC_ENGINE_H_
