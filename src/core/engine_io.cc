#include "core/engine_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>

#include "util/errno.h"

namespace karl::core {

namespace {

constexpr char kMagic[4] = {'K', 'A', 'R', 'L'};
constexpr uint32_t kFormatVersion = 1;

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::istream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool ReadU64(std::istream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool ReadF64(std::istream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

util::Status WriteEngineModel(std::ostream& out, const EngineModel& model) {
  if (model.weights.size() != model.points.rows()) {
    return util::Status::InvalidArgument(
        "weight count does not match point count");
  }
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kFormatVersion);

  // Options.
  WriteU32(out, static_cast<uint32_t>(model.options.kernel.type));
  WriteF64(out, model.options.kernel.gamma);
  WriteF64(out, model.options.kernel.beta);
  WriteU32(out, static_cast<uint32_t>(model.options.kernel.degree));
  WriteU32(out, static_cast<uint32_t>(model.options.bounds));
  WriteU32(out, static_cast<uint32_t>(model.options.index_kind));
  WriteU64(out, model.options.leaf_capacity);

  // Data.
  WriteU64(out, model.points.rows());
  WriteU64(out, model.points.cols());
  const auto values = model.points.Flat();
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
  out.write(reinterpret_cast<const char*>(model.weights.data()),
            static_cast<std::streamsize>(model.weights.size() *
                                         sizeof(double)));
  if (!out) return util::Status::IOError("engine model write failed");
  return util::Status::OK();
}

util::Result<EngineModel> ReadEngineModel(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument("not a KARL engine model file");
  }
  uint32_t version = 0;
  if (!ReadU32(in, &version) || version != kFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported engine model format version");
  }

  EngineModel model;
  uint32_t kernel_type = 0, degree = 0, bounds = 0, index_kind = 0;
  uint64_t leaf_capacity = 0;
  if (!ReadU32(in, &kernel_type) || !ReadF64(in, &model.options.kernel.gamma) ||
      !ReadF64(in, &model.options.kernel.beta) || !ReadU32(in, &degree) ||
      !ReadU32(in, &bounds) || !ReadU32(in, &index_kind) ||
      !ReadU64(in, &leaf_capacity)) {
    return util::Status::InvalidArgument("truncated engine model header");
  }
  if (kernel_type > static_cast<uint32_t>(KernelType::kSigmoid) ||
      bounds > static_cast<uint32_t>(BoundKind::kKarlTangentOnly) ||
      index_kind > static_cast<uint32_t>(index::IndexKind::kBallTree)) {
    return util::Status::InvalidArgument("corrupt engine model header");
  }
  model.options.kernel.type = static_cast<KernelType>(kernel_type);
  model.options.kernel.degree = static_cast<int>(degree);
  model.options.bounds = static_cast<BoundKind>(bounds);
  model.options.index_kind = static_cast<index::IndexKind>(index_kind);
  model.options.leaf_capacity = leaf_capacity;

  uint64_t rows = 0, cols = 0;
  if (!ReadU64(in, &rows) || !ReadU64(in, &cols)) {
    return util::Status::InvalidArgument("truncated engine model header");
  }
  // Sanity cap: refuse absurd allocations from corrupt headers.
  if (cols == 0 || rows > (1ull << 40) / std::max<uint64_t>(1, cols)) {
    return util::Status::InvalidArgument("corrupt engine model dimensions");
  }

  std::vector<double> values(rows * cols);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(double)));
  model.weights.resize(rows);
  in.read(reinterpret_cast<char*>(model.weights.data()),
          static_cast<std::streamsize>(rows * sizeof(double)));
  if (!in.good()) {
    return util::Status::InvalidArgument("truncated engine model data");
  }
  model.points = data::Matrix(rows, cols, std::move(values));
  return model;
}

util::Status SaveEngineModel(const std::string& path,
                             const EngineModel& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return util::Status::IOError("cannot open " + path + " for writing: " +
                                 util::ErrnoString(errno));
  }
  return WriteEngineModel(out, model);
}

util::Result<EngineModel> LoadEngineModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open " + path + ": " +
                                 util::ErrnoString(errno));
  }
  auto model = ReadEngineModel(in);
  if (!model.ok()) {
    // Corruption diagnostics must name the file, not just the defect.
    return util::Status(model.status().code(),
                        path + ": " + model.status().message());
  }
  return model;
}

util::Result<Engine> LoadEngine(const std::string& path) {
  auto model = LoadEngineModel(path);
  if (!model.ok()) return model.status();
  return Engine::Build(model.value().points, model.value().weights,
                       model.value().options);
}

}  // namespace karl::core
