// Engine persistence: save a built engine's model (kernel, index
// configuration, points, weights) to a compact binary file and restore
// it later. Index construction is deterministic, so the restored engine
// answers queries identically to the saved one — when both processes
// run the same SIMD tier (core/simd). The blocked SoA leaf layout is
// derived state: LoadEngine rebuilds it from the points, so the format
// needs no SIMD-era version bump, and a model saved on an AVX-512 host
// loads fine on a scalar-only one (answers then agree within the
// core/simd tolerance contract, not bit-exactly).

#ifndef KARL_CORE_ENGINE_IO_H_
#define KARL_CORE_ENGINE_IO_H_

#include <iosfwd>
#include <string>

#include "core/karl.h"
#include "util/status.h"

namespace karl::core {

/// The model an engine is built from; SaveEngineModel/LoadEngineModel
/// round-trip this exactly.
struct EngineModel {
  data::Matrix points;
  std::vector<double> weights;
  EngineOptions options;
};

/// Serializes a model to a binary stream.
util::Status WriteEngineModel(std::ostream& out, const EngineModel& model);

/// Parses a model from a binary stream. Rejects corrupt or truncated
/// input and unknown format versions.
util::Result<EngineModel> ReadEngineModel(std::istream& in);

/// Saves a model to disk.
util::Status SaveEngineModel(const std::string& path,
                             const EngineModel& model);

/// Loads a model from disk.
util::Result<EngineModel> LoadEngineModel(const std::string& path);

/// Loads a model and builds the engine in one step.
util::Result<Engine> LoadEngine(const std::string& path);

}  // namespace karl::core

#endif  // KARL_CORE_ENGINE_IO_H_
