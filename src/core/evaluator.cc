#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "util/check.h"
#include "util/math_util.h"

namespace karl::core {

namespace {

// One frontier entry: an index node of one side (+1 / −1) with its signed
// contribution bounds to F_P(q).
struct Entry {
  double gap = 0.0;  // ub − lb; the refinement priority.
  double lb = 0.0;   // Signed contribution lower bound.
  double ub = 0.0;   // Signed contribution upper bound.
  index::NodeId node = index::kInvalidNode;
  int8_t side = +1;  // +1: plus tree, −1: minus tree.
};

struct EntryLess {
  bool operator()(const Entry& a, const Entry& b) const {
    return a.gap < b.gap;  // Largest gap on top.
  }
};

using Frontier = std::priority_queue<Entry, std::vector<Entry>, EntryLess>;

}  // namespace

util::Result<Evaluator> Evaluator::Create(const index::TreeIndex* plus_tree,
                                          const index::TreeIndex* minus_tree,
                                          const KernelParams& kernel,
                                          const Options& options) {
  auto bound_fn = MakeBoundFunction(kernel, options.bounds);
  if (!bound_fn.ok()) return bound_fn.status();
  return CreateWithBounds(plus_tree, minus_tree, kernel, options,
                          std::move(bound_fn).ValueOrDie());
}

util::Result<Evaluator> Evaluator::CreateWithBounds(
    const index::TreeIndex* plus_tree, const index::TreeIndex* minus_tree,
    const KernelParams& kernel, const Options& options,
    std::unique_ptr<BoundFunction> bound_fn) {
  if (plus_tree == nullptr) {
    return util::Status::InvalidArgument("plus tree is required");
  }
  if (bound_fn == nullptr) {
    return util::Status::InvalidArgument("bound function is required");
  }
  KARL_RETURN_NOT_OK(kernel.Validate());

  Evaluator ev;
  ev.plus_tree_ = plus_tree;
  ev.minus_tree_ = minus_tree;
  ev.kernel_ = kernel;
  ev.options_ = options;
  ev.bound_fn_ = options.audit_bounds
                     ? MakeAuditingBoundFunction(std::move(bound_fn), kernel)
                     : std::move(bound_fn);
  return ev;
}

double Evaluator::LeafAggregate(const index::TreeIndex& tree, uint32_t begin,
                                uint32_t end,
                                std::span<const double> q) const {
  const auto& points = tree.points();
  const auto weights = tree.weights();
  util::KahanAccumulator acc;
  for (uint32_t i = begin; i < end; ++i) {
    acc.Add(weights[i] * KernelValue(kernel_, q, points.Row(i)));
  }
  return acc.Total();
}

void Evaluator::Refine(std::span<const double> q, const StopFn& stop,
                       double* out_lb, double* out_ub, EvalStats* stats,
                       const TraceFn* trace) const {
  const QueryContext ctx = QueryContext::Make(q);
  Frontier frontier;
  double lb = 0.0;
  double ub = 0.0;
  size_t iterations = 0;

  // Bound-invariant auditor state (Options::audit_bounds). The exact
  // answer is the ground truth every global [lb, ub] must enclose; the
  // per-iteration monotonicity check only applies where monotone
  // refinement is a theorem: nested kd-tree boxes with the pointwise
  // interval-monotone constructions on convex distance profiles
  // (ball-tree child balls are not nested in the parent, and the
  // mixed-interval pivot line is not interval-monotone).
  const bool audit = options_.audit_bounds;
  double audit_exact = 0.0;
  double audit_tol = 0.0;
  bool audit_monotone = false;
  if (audit) {
    audit_exact = QueryExact(q);
    audit_tol = 1e-6 * (1.0 + std::abs(audit_exact));
    audit_monotone =
        !IsInnerProductKernel(kernel_.type) &&
        plus_tree_->kind() == index::IndexKind::kKdTree &&
        (minus_tree_ == nullptr ||
         minus_tree_->kind() == index::IndexKind::kKdTree);
  }

  // Treats a node as a leaf when it has no children or sits at the level
  // cap (the in-situ tuner's T_i simulation).
  const auto is_effective_leaf = [&](const index::TreeIndex& tree,
                                     index::NodeId id) {
    const auto& nd = tree.node(id);
    if (nd.is_leaf()) return true;
    return options_.max_level >= 0 &&
           nd.depth >= static_cast<uint16_t>(options_.max_level);
  };

  // Bounds one node (signed) and either folds the exact leaf value into
  // [lb, ub] or pushes a frontier entry.
  const auto admit = [&](const index::TreeIndex& tree, int8_t side,
                         index::NodeId id) {
    if (is_effective_leaf(tree, id)) {
      const auto& nd = tree.node(id);
      const double exact =
          static_cast<double>(side) * LeafAggregate(tree, nd.begin, nd.end, q);
      if (stats != nullptr) stats->kernel_evals += nd.count();
      lb += exact;
      ub += exact;
      return;
    }
    double node_lb = 0.0, node_ub = 0.0;
    bound_fn_->NodeBounds(tree, id, ctx, &node_lb, &node_ub);
    Entry e;
    e.node = id;
    e.side = side;
    if (side > 0) {
      e.lb = node_lb;
      e.ub = node_ub;
    } else {
      // P⁻ node: Σ w_i K ∈ [node_lb, node_ub] contributes its negation.
      e.lb = -node_ub;
      e.ub = -node_lb;
    }
    e.gap = e.ub - e.lb;
    if (audit) {
      // Signed-space node check: catches a Type III split whose negated
      // P⁻ interval crosses its positive-space (Type II) parts, on top of
      // the positive-space check the auditing bound wrapper already ran.
      const double exact_node = static_cast<double>(side) *
                                ExactNodeAggregate(kernel_, tree, id, q);
      const double tol = 1e-7 * (1.0 + std::abs(exact_node));
      KARL_CHECK(e.lb <= exact_node + tol && e.ub >= exact_node - tol)
          << ": signed node bounds exclude the exact contribution; side="
          << static_cast<int>(side) << " node=" << id << " lb=" << e.lb
          << " exact=" << exact_node << " ub=" << e.ub;
    }
    lb += e.lb;
    ub += e.ub;
    frontier.push(e);
  };

  // Global-invariant audit, run after the initial admissions and after
  // every refinement iteration (bounds move transiently inside one).
  double audit_prev_lb = -std::numeric_limits<double>::infinity();
  double audit_prev_ub = std::numeric_limits<double>::infinity();
  const auto audit_globals = [&]() {
    KARL_CHECK(lb <= ub + audit_tol)
        << ": global bounds inverted at iteration " << iterations
        << "; lb=" << lb << " ub=" << ub;
    KARL_CHECK(lb <= audit_exact + audit_tol && ub >= audit_exact - audit_tol)
        << ": global bounds exclude the exact answer at iteration "
        << iterations << "; lb=" << lb << " exact=" << audit_exact
        << " ub=" << ub;
    if (audit_monotone) {
      const double slack = 1e-7 * (1.0 + std::abs(lb) + std::abs(ub));
      KARL_CHECK(lb >= audit_prev_lb - slack && ub <= audit_prev_ub + slack)
          << ": refinement not monotone at iteration " << iterations
          << "; lb " << audit_prev_lb << " -> " << lb << ", ub "
          << audit_prev_ub << " -> " << ub;
    }
    audit_prev_lb = lb;
    audit_prev_ub = ub;
  };

  admit(*plus_tree_, +1, plus_tree_->root());
  if (minus_tree_ != nullptr) admit(*minus_tree_, -1, minus_tree_->root());
  if (audit) audit_globals();
  if (trace != nullptr && *trace) (*trace)(iterations, lb, ub);

  while (!frontier.empty() && !stop(lb, ub)) {
    const Entry top = frontier.top();
    frontier.pop();
    ++iterations;
    lb -= top.lb;
    ub -= top.ub;

    const index::TreeIndex& tree =
        top.side > 0 ? *plus_tree_ : *minus_tree_;
    const auto& nd = tree.node(top.node);
    KARL_DCHECK(!nd.is_leaf())
        << ": leaf node " << top.node << " reached the frontier";
    if (stats != nullptr) ++stats->nodes_expanded;
    admit(tree, top.side, nd.left);
    admit(tree, top.side, nd.right);

    if (audit) audit_globals();
    if (trace != nullptr && *trace) (*trace)(iterations, lb, ub);
  }

  if (stats != nullptr) stats->iterations += iterations;
  // Drained frontier means [lb, ub] collapsed to the exact value (modulo
  // floating-point accumulation); guard against a tiny inversion.
  if (frontier.empty() && lb > ub) lb = ub = 0.5 * (lb + ub);
  *out_lb = lb;
  *out_ub = ub;
}

bool Evaluator::QueryThreshold(std::span<const double> q, double tau,
                               EvalStats* stats, const TraceFn* trace) const {
  double lb = 0.0, ub = 0.0;
  const StopFn stop = [tau](double l, double u) { return l > tau || u <= tau; };
  Refine(q, stop, &lb, &ub, stats, trace);
  if (lb > tau) return true;
  if (ub <= tau) return false;
  // Frontier drained without a decision: lb ≈ ub ≈ exact value.
  return 0.5 * (lb + ub) > tau;
}

double Evaluator::QueryApproximate(std::span<const double> q, double eps,
                                   EvalStats* stats,
                                   const TraceFn* trace) const {
  KARL_CHECK(eps > 0.0) << ": eKAQ needs a positive epsilon, got " << eps;
  double lb = 0.0, ub = 0.0;
  // Terminate when ub <= (1+ε)·lb (paper §II-B); returning lb then
  // guarantees (1−ε)F <= lb <= (1+ε)F given lb <= F <= ub. The mirrored
  // clause covers negative aggregates (possible for polynomial/sigmoid
  // kernels even under positive weights). The final clause
  // short-circuits only when F is provably (numerically) zero — any
  // looser absolute cutoff would break the relative guarantee for tiny
  // densities.
  const StopFn stop = [eps](double l, double u) {
    if (l >= 0.0 && u <= (1.0 + eps) * l) return true;
    if (u <= 0.0 && l >= (1.0 + eps) * u) return true;
    return u <= 1e-300 && l >= -1e-300;
  };
  Refine(q, stop, &lb, &ub, stats, trace);
  if (lb >= 0.0 && ub <= (1.0 + eps) * lb) return lb;
  if (ub <= 0.0 && lb >= (1.0 + eps) * ub) return ub;
  return 0.5 * (lb + ub);
}

double Evaluator::QueryExact(std::span<const double> q,
                             EvalStats* stats) const {
  double total = LeafAggregate(*plus_tree_, 0,
                               static_cast<uint32_t>(plus_tree_->points().rows()), q);
  if (stats != nullptr) stats->kernel_evals += plus_tree_->points().rows();
  if (minus_tree_ != nullptr) {
    total -= LeafAggregate(
        *minus_tree_, 0, static_cast<uint32_t>(minus_tree_->points().rows()),
        q);
    if (stats != nullptr) stats->kernel_evals += minus_tree_->points().rows();
  }
  return total;
}

void Evaluator::RefineToConvergence(std::span<const double> q,
                                    size_t max_iterations, double* lb,
                                    double* ub, const TraceFn* trace) const {
  size_t seen = 0;
  const StopFn stop = [&seen, max_iterations](double, double) {
    return seen++ >= max_iterations;
  };
  Refine(q, stop, lb, ub, nullptr, trace);
}

double ExactAggregate(const data::Matrix& points,
                      std::span<const double> weights,
                      const KernelParams& kernel, std::span<const double> q) {
  KARL_DCHECK(weights.size() == points.rows())
      << ": " << weights.size() << " weights for " << points.rows()
      << " points";
  util::KahanAccumulator acc;
  for (size_t i = 0; i < points.rows(); ++i) {
    acc.Add(weights[i] * KernelValue(kernel, q, points.Row(i)));
  }
  return acc.Total();
}

double ExactAggregateSparse(const data::SparseMatrix& points,
                            std::span<const double> weights,
                            const KernelParams& kernel,
                            std::span<const double> q) {
  KARL_DCHECK(weights.size() == points.rows())
      << ": " << weights.size() << " weights for " << points.rows()
      << " points";
  const double q_sqnorm = util::SquaredNorm(q);
  util::KahanAccumulator acc;
  const double dist_scale = DistanceArgScale(kernel);
  for (size_t i = 0; i < points.rows(); ++i) {
    const double ip = points.DotDense(i, q);
    double value;
    if (IsInnerProductKernel(kernel.type)) {
      value = KernelProfile(kernel, kernel.gamma * ip + kernel.beta);
    } else {
      const double sq_dist =
          std::max(0.0, q_sqnorm - 2.0 * ip + points.RowSquaredNorm(i));
      value = KernelProfile(kernel, dist_scale * sq_dist);
    }
    acc.Add(weights[i] * value);
  }
  return acc.Total();
}

}  // namespace karl::core
