#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "core/simd/simd.h"
#include "telemetry/metrics.h"
#include "telemetry/rolling.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/stopwatch.h"

namespace karl::core {

namespace {

// One frontier entry: an index node of one side (+1 / −1) with its signed
// contribution bounds to F_P(q).
struct Entry {
  double gap = 0.0;  // ub − lb; the refinement priority.
  double lb = 0.0;   // Signed contribution lower bound.
  double ub = 0.0;   // Signed contribution upper bound.
  index::NodeId node = index::kInvalidNode;
  int8_t side = +1;  // +1: plus tree, −1: minus tree.
};

struct EntryLess {
  bool operator()(const Entry& a, const Entry& b) const {
    return a.gap < b.gap;  // Largest gap on top.
  }
};

using Frontier = std::priority_queue<Entry, std::vector<Entry>, EntryLess>;

// Grows the per-level vector on demand; depths arrive in traversal
// order, so this amortizes to nothing.
TraversalProfile::Level& ProfileLevel(TraversalProfile* profile,
                                      uint16_t depth) {
  if (profile->levels.size() <= depth) {
    profile->levels.resize(static_cast<size_t>(depth) + 1);
  }
  return profile->levels[depth];
}

}  // namespace

const char* BoundFamilyName(BoundKind kind) {
  switch (kind) {
    case BoundKind::kSota:
      return "constant";
    case BoundKind::kKarl:
      return "linear";
    case BoundKind::kKarlChordOnly:
      return "linear(chord)";
    case BoundKind::kKarlTangentOnly:
      return "linear(tangent)";
  }
  return "unknown";
}

util::Result<Evaluator> Evaluator::Create(const index::TreeIndex* plus_tree,
                                          const index::TreeIndex* minus_tree,
                                          const KernelParams& kernel,
                                          const Options& options) {
  auto bound_fn = MakeBoundFunction(kernel, options.bounds);
  if (!bound_fn.ok()) return bound_fn.status();
  return CreateWithBounds(plus_tree, minus_tree, kernel, options,
                          std::move(bound_fn).ValueOrDie());
}

util::Result<Evaluator> Evaluator::CreateWithBounds(
    const index::TreeIndex* plus_tree, const index::TreeIndex* minus_tree,
    const KernelParams& kernel, const Options& options,
    std::unique_ptr<BoundFunction> bound_fn) {
  if (plus_tree == nullptr) {
    return util::Status::InvalidArgument("plus tree is required");
  }
  if (bound_fn == nullptr) {
    return util::Status::InvalidArgument("bound function is required");
  }
  KARL_RETURN_NOT_OK(kernel.Validate());

  Evaluator ev;
  ev.plus_tree_ = plus_tree;
  ev.minus_tree_ = minus_tree;
  ev.kernel_ = kernel;
  ev.options_ = options;
  ev.bound_fn_ = options.audit_bounds
                     ? MakeAuditingBoundFunction(std::move(bound_fn), kernel)
                     : std::move(bound_fn);
  if (options.metrics != nullptr) {
    telemetry::Registry& reg = *options.metrics;
    ev.instruments_.latency_usec =
        reg.GetRollingHistogram("karl_query_latency_usec");
    ev.instruments_.prune_ratio =
        reg.GetRollingHistogram("karl_query_prune_ratio");
    ev.instruments_.queries_tkaq = reg.GetCounter("karl_tkaq_queries_total");
    ev.instruments_.queries_ekaq = reg.GetCounter("karl_ekaq_queries_total");
    ev.instruments_.queries_exact = reg.GetCounter("karl_exact_queries_total");
    ev.instruments_.iterations = reg.GetCounter("karl_refine_iterations_total");
    ev.instruments_.nodes_expanded =
        reg.GetCounter("karl_nodes_expanded_total");
    ev.instruments_.kernel_evals = reg.GetCounter("karl_kernel_evals_total");
    ev.instruments_.scan_point_evals =
        reg.GetCounter("karl_scan_point_evals_total");
    ev.instruments_.overall_prune_ratio = reg.GetGauge("karl_prune_ratio");
    ev.instrumented_ = true;
  }
  return ev;
}

size_t Evaluator::TotalPoints() const {
  size_t total = plus_tree_->points().rows();
  if (minus_tree_ != nullptr) total += minus_tree_->points().rows();
  return total;
}

void Evaluator::RecordQueryMetrics(telemetry::Counter* query_counter,
                                   const EvalStats& work,
                                   double elapsed_usec) const {
  query_counter->Increment();
  instruments_.iterations->Add(work.iterations);
  instruments_.nodes_expanded->Add(work.nodes_expanded);
  instruments_.kernel_evals->Add(work.kernel_evals);
  const size_t total = TotalPoints();
  instruments_.scan_point_evals->Add(total);
  instruments_.latency_usec->Record(elapsed_usec);
  if (total > 0) {
    const double per_query =
        1.0 - static_cast<double>(work.kernel_evals) /
                  static_cast<double>(total);
    instruments_.prune_ratio->Record(std::clamp(per_query, 0.0, 1.0));
    const double scanned =
        static_cast<double>(instruments_.scan_point_evals->value());
    const double evaluated =
        static_cast<double>(instruments_.kernel_evals->value());
    instruments_.overall_prune_ratio->Set(
        std::clamp(1.0 - evaluated / scanned, 0.0, 1.0));
  }
}

double Evaluator::LeafAggregate(const index::TreeIndex& tree, uint32_t begin,
                                uint32_t end,
                                std::span<const double> q) const {
  // Vector tiers run over the tree's blocked SoA mirror; see the
  // accuracy contract in core/simd/simd.h. The scalar tier keeps the
  // literal pre-SIMD loop below so it stays the bit-exact oracle the
  // differential tests (and KARL_SIMD=scalar runs) compare against.
  if (simd::ActiveTier() != simd::Tier::kScalar) {
    return simd::LeafAggregate(kernel_, tree.soa(), begin, end, q);
  }
  const auto& points = tree.points();
  const auto weights = tree.weights();
  util::KahanAccumulator acc;
  for (uint32_t i = begin; i < end; ++i) {
    acc.Add(weights[i] * KernelValue(kernel_, q, points.Row(i)));
  }
  return acc.Total();
}

void Evaluator::Refine(std::span<const double> q, const StopFn& stop,
                       double* out_lb, double* out_ub, EvalStats* stats,
                       const TraceFn* trace,
                       TraversalProfile* profile) const {
  const QueryContext ctx = QueryContext::Make(q);
  if (profile != nullptr) {
    profile->Clear();
    profile->bounds = options_.bounds;
  }
  Frontier frontier;
  double lb = 0.0;
  double ub = 0.0;
  size_t iterations = 0;
  size_t nodes_expanded = 0;
  size_t kernel_evals = 0;
  telemetry::TraceRecorder* const tracer = options_.tracer;

  // Bound-invariant auditor state (Options::audit_bounds). The exact
  // answer is the ground truth every global [lb, ub] must enclose; the
  // per-iteration monotonicity check only applies where monotone
  // refinement is a theorem: nested kd-tree boxes with the pointwise
  // interval-monotone constructions on convex distance profiles
  // (ball-tree child balls are not nested in the parent, and the
  // mixed-interval pivot line is not interval-monotone).
  const bool audit = options_.audit_bounds;
  double audit_exact = 0.0;
  double audit_tol = 0.0;
  bool audit_monotone = false;
  if (audit) {
    audit_exact = QueryExact(q);
    audit_tol = 1e-6 * (1.0 + std::abs(audit_exact));
    audit_monotone =
        !IsInnerProductKernel(kernel_.type) &&
        plus_tree_->kind() == index::IndexKind::kKdTree &&
        (minus_tree_ == nullptr ||
         minus_tree_->kind() == index::IndexKind::kKdTree);
  }

  // Treats a node as a leaf when it has no children or sits at the level
  // cap (the in-situ tuner's T_i simulation).
  const auto is_effective_leaf = [&](const index::TreeIndex& tree,
                                     index::NodeId id) {
    const auto& nd = tree.node(id);
    if (nd.is_leaf()) return true;
    return options_.max_level >= 0 &&
           nd.depth >= static_cast<uint16_t>(options_.max_level);
  };

  // Bounds one node (signed) and either folds the exact leaf value into
  // [lb, ub] or pushes a frontier entry.
  const auto admit = [&](const index::TreeIndex& tree, int8_t side,
                         index::NodeId id) {
    if (is_effective_leaf(tree, id)) {
      const auto& nd = tree.node(id);
      const double exact =
          static_cast<double>(side) * LeafAggregate(tree, nd.begin, nd.end, q);
      kernel_evals += nd.count();
      if (profile != nullptr) {
        TraversalProfile::Level& level = ProfileLevel(profile, nd.depth);
        ++level.visited;
        ++level.exact_leaves;
        level.kernel_evals += nd.count();
      }
      lb += exact;
      ub += exact;
      return;
    }
    if (profile != nullptr) {
      ++ProfileLevel(profile, tree.node(id).depth).visited;
    }
    double node_lb = 0.0, node_ub = 0.0;
    bound_fn_->NodeBounds(tree, id, ctx, &node_lb, &node_ub);
    Entry e;
    e.node = id;
    e.side = side;
    if (side > 0) {
      e.lb = node_lb;
      e.ub = node_ub;
    } else {
      // P⁻ node: Σ w_i K ∈ [node_lb, node_ub] contributes its negation.
      e.lb = -node_ub;
      e.ub = -node_lb;
    }
    e.gap = e.ub - e.lb;
    if (audit) {
      // Signed-space node check: catches a Type III split whose negated
      // P⁻ interval crosses its positive-space (Type II) parts, on top of
      // the positive-space check the auditing bound wrapper already ran.
      const double exact_node = static_cast<double>(side) *
                                ExactNodeAggregate(kernel_, tree, id, q);
      const double tol = 1e-7 * (1.0 + std::abs(exact_node));
      KARL_CHECK(e.lb <= exact_node + tol && e.ub >= exact_node - tol)
          << ": signed node bounds exclude the exact contribution; side="
          << static_cast<int>(side) << " node=" << id << " lb=" << e.lb
          << " exact=" << exact_node << " ub=" << e.ub;
    }
    lb += e.lb;
    ub += e.ub;
    frontier.push(e);
  };

  // Global-invariant audit, run after the initial admissions and after
  // every refinement iteration (bounds move transiently inside one).
  double audit_prev_lb = -std::numeric_limits<double>::infinity();
  double audit_prev_ub = std::numeric_limits<double>::infinity();
  const auto audit_globals = [&]() {
    KARL_CHECK(lb <= ub + audit_tol)
        << ": global bounds inverted at iteration " << iterations
        << "; lb=" << lb << " ub=" << ub;
    KARL_CHECK(lb <= audit_exact + audit_tol && ub >= audit_exact - audit_tol)
        << ": global bounds exclude the exact answer at iteration "
        << iterations << "; lb=" << lb << " exact=" << audit_exact
        << " ub=" << ub;
    if (audit_monotone) {
      const double slack = 1e-7 * (1.0 + std::abs(lb) + std::abs(ub));
      KARL_CHECK(lb >= audit_prev_lb - slack && ub <= audit_prev_ub + slack)
          << ": refinement not monotone at iteration " << iterations
          << "; lb " << audit_prev_lb << " -> " << lb << ", ub "
          << audit_prev_ub << " -> " << ub;
    }
    audit_prev_lb = lb;
    audit_prev_ub = ub;
  };

  // Streams the refinement state to an attached trace recorder as two
  // counter tracks: the bound interval and the cumulative work.
  const auto emit_trace_counters = [&]() {
    if (tracer == nullptr) return;
    const uint64_t now = tracer->NowMicros();
    tracer->CounterEvent("karl.bounds", now,
                         {{"lb", lb}, {"ub", ub}, {"gap", ub - lb}});
    tracer->CounterEvent(
        "karl.work", now,
        {{"iteration", static_cast<double>(iterations)},
         {"nodes_expanded", static_cast<double>(nodes_expanded)},
         {"kernel_evals", static_cast<double>(kernel_evals)}});
  };

  // Appends one bound-convergence point (entry 0: post-admission state).
  const auto record_timeline = [&]() {
    if (profile == nullptr) return;
    if (profile->timeline.size() >= TraversalProfile::kMaxTimeline) {
      profile->timeline_truncated = true;
      return;
    }
    profile->timeline.push_back({lb, ub, kernel_evals});
  };

  admit(*plus_tree_, +1, plus_tree_->root());
  if (minus_tree_ != nullptr) admit(*minus_tree_, -1, minus_tree_->root());
  if (audit) audit_globals();
  if (trace != nullptr && *trace) (*trace)(iterations, lb, ub);
  record_timeline();
  emit_trace_counters();

  while (!frontier.empty() && !stop(lb, ub)) {
    const Entry top = frontier.top();
    frontier.pop();
    ++iterations;
    lb -= top.lb;
    ub -= top.ub;

    const index::TreeIndex& tree =
        top.side > 0 ? *plus_tree_ : *minus_tree_;
    const auto& nd = tree.node(top.node);
    KARL_DCHECK(!nd.is_leaf())
        << ": leaf node " << top.node << " reached the frontier";
    ++nodes_expanded;
    if (profile != nullptr) {
      ++ProfileLevel(profile, nd.depth).expanded;
    }
    admit(tree, top.side, nd.left);
    admit(tree, top.side, nd.right);

    if (audit) audit_globals();
    if (trace != nullptr && *trace) (*trace)(iterations, lb, ub);
    record_timeline();
    emit_trace_counters();
  }

  // Captured before the profile drain below empties the queue.
  const bool frontier_drained = frontier.empty();

  if (profile != nullptr) {
    // Whatever is left on the frontier was never expanded: the bound was
    // tight enough to decide the query without opening these subtrees.
    // Draining the queue is profile-only work, off every normal path.
    while (!frontier.empty()) {
      const Entry rest = frontier.top();
      frontier.pop();
      const index::TreeIndex& tree =
          rest.side > 0 ? *plus_tree_ : *minus_tree_;
      ++ProfileLevel(profile, tree.node(rest.node).depth).pruned;
    }
    profile->iterations = iterations;
    profile->nodes_expanded = nodes_expanded;
    profile->kernel_evals = kernel_evals;
  }

  if (stats != nullptr) {
    stats->iterations += iterations;
    stats->nodes_expanded += nodes_expanded;
    stats->kernel_evals += kernel_evals;
  }
  // Drained frontier means [lb, ub] collapsed to the exact value (modulo
  // floating-point accumulation); guard against a tiny inversion.
  if (frontier_drained && lb > ub) lb = ub = 0.5 * (lb + ub);
  *out_lb = lb;
  *out_ub = ub;
}

bool Evaluator::QueryThreshold(std::span<const double> q, double tau,
                               EvalStats* stats, const TraceFn* trace,
                               TraversalProfile* profile) const {
  telemetry::TraceRecorder* const tracer = options_.tracer;
  const bool observed = instrumented_ || tracer != nullptr;
  // The sinks need this query's work even when the caller passed no
  // stats; when the caller did, snapshot so only the delta is recorded.
  EvalStats local;
  EvalStats* work = stats != nullptr ? stats : (observed ? &local : nullptr);
  const EvalStats before = work != nullptr ? *work : EvalStats{};
  std::optional<util::Stopwatch> timer;
  if (instrumented_) timer.emplace();
  const uint64_t trace_start = tracer != nullptr ? tracer->NowMicros() : 0;

  double lb = 0.0, ub = 0.0;
  const StopFn stop = [tau](double l, double u) { return l > tau || u <= tau; };
  Refine(q, stop, &lb, &ub, work, trace, profile);
  bool result;
  if (lb > tau) {
    result = true;
  } else if (ub <= tau) {
    result = false;
  } else {
    // Frontier drained without a decision: lb ≈ ub ≈ exact value.
    result = 0.5 * (lb + ub) > tau;
  }

  if (observed) {
    const EvalStats delta{work->iterations - before.iterations,
                          work->nodes_expanded - before.nodes_expanded,
                          work->kernel_evals - before.kernel_evals};
    if (instrumented_) {
      RecordQueryMetrics(instruments_.queries_tkaq, delta,
                         timer->ElapsedSeconds() * 1e6);
    }
    if (tracer != nullptr) {
      tracer->CompleteEvent(
          "tkaq", trace_start, tracer->NowMicros() - trace_start,
          {{"tau", tau},
           {"result", result ? 1.0 : 0.0},
           {"lb", lb},
           {"ub", ub},
           {"iterations", static_cast<double>(delta.iterations)},
           {"nodes_expanded", static_cast<double>(delta.nodes_expanded)},
           {"kernel_evals", static_cast<double>(delta.kernel_evals)}});
    }
  }
  return result;
}

double Evaluator::QueryApproximate(std::span<const double> q, double eps,
                                   EvalStats* stats, const TraceFn* trace,
                                   TraversalProfile* profile) const {
  KARL_CHECK(eps > 0.0) << ": eKAQ needs a positive epsilon, got " << eps;
  telemetry::TraceRecorder* const tracer = options_.tracer;
  const bool observed = instrumented_ || tracer != nullptr;
  EvalStats local;
  EvalStats* work = stats != nullptr ? stats : (observed ? &local : nullptr);
  const EvalStats before = work != nullptr ? *work : EvalStats{};
  std::optional<util::Stopwatch> timer;
  if (instrumented_) timer.emplace();
  const uint64_t trace_start = tracer != nullptr ? tracer->NowMicros() : 0;

  double lb = 0.0, ub = 0.0;
  // Terminate when ub <= (1+ε)·lb (paper §II-B); returning lb then
  // guarantees (1−ε)F <= lb <= (1+ε)F given lb <= F <= ub. The mirrored
  // clause covers negative aggregates (possible for polynomial/sigmoid
  // kernels even under positive weights). The final clause
  // short-circuits only when F is provably (numerically) zero — any
  // looser absolute cutoff would break the relative guarantee for tiny
  // densities.
  const StopFn stop = [eps](double l, double u) {
    if (l >= 0.0 && u <= (1.0 + eps) * l) return true;
    if (u <= 0.0 && l >= (1.0 + eps) * u) return true;
    return u <= 1e-300 && l >= -1e-300;
  };
  Refine(q, stop, &lb, &ub, work, trace, profile);
  double result;
  if (lb >= 0.0 && ub <= (1.0 + eps) * lb) {
    result = lb;
  } else if (ub <= 0.0 && lb >= (1.0 + eps) * ub) {
    result = ub;
  } else {
    result = 0.5 * (lb + ub);
  }

  if (observed) {
    const EvalStats delta{work->iterations - before.iterations,
                          work->nodes_expanded - before.nodes_expanded,
                          work->kernel_evals - before.kernel_evals};
    if (instrumented_) {
      RecordQueryMetrics(instruments_.queries_ekaq, delta,
                         timer->ElapsedSeconds() * 1e6);
    }
    if (tracer != nullptr) {
      tracer->CompleteEvent(
          "ekaq", trace_start, tracer->NowMicros() - trace_start,
          {{"eps", eps},
           {"value", result},
           {"iterations", static_cast<double>(delta.iterations)},
           {"nodes_expanded", static_cast<double>(delta.nodes_expanded)},
           {"kernel_evals", static_cast<double>(delta.kernel_evals)}});
    }
  }
  return result;
}

double Evaluator::QueryExact(std::span<const double> q,
                             EvalStats* stats) const {
  telemetry::TraceRecorder* const tracer = options_.tracer;
  std::optional<util::Stopwatch> timer;
  if (instrumented_) timer.emplace();
  const uint64_t trace_start = tracer != nullptr ? tracer->NowMicros() : 0;

  double total = LeafAggregate(*plus_tree_, 0,
                               static_cast<uint32_t>(plus_tree_->points().rows()), q);
  size_t evals = plus_tree_->points().rows();
  if (minus_tree_ != nullptr) {
    total -= LeafAggregate(
        *minus_tree_, 0, static_cast<uint32_t>(minus_tree_->points().rows()),
        q);
    evals += minus_tree_->points().rows();
  }
  if (stats != nullptr) stats->kernel_evals += evals;

  if (instrumented_) {
    EvalStats delta;
    delta.kernel_evals = evals;
    RecordQueryMetrics(instruments_.queries_exact, delta,
                       timer->ElapsedSeconds() * 1e6);
  }
  if (tracer != nullptr) {
    tracer->CompleteEvent(
        "exact", trace_start, tracer->NowMicros() - trace_start,
        {{"value", total}, {"kernel_evals", static_cast<double>(evals)}});
  }
  return total;
}

void Evaluator::RefineToConvergence(std::span<const double> q,
                                    size_t max_iterations, double* lb,
                                    double* ub, const TraceFn* trace) const {
  size_t seen = 0;
  const StopFn stop = [&seen, max_iterations](double, double) {
    return seen++ >= max_iterations;
  };
  Refine(q, stop, lb, ub, nullptr, trace);
}

double ExactAggregate(const data::Matrix& points,
                      std::span<const double> weights,
                      const KernelParams& kernel, std::span<const double> q) {
  KARL_DCHECK(weights.size() == points.rows())
      << ": " << weights.size() << " weights for " << points.rows()
      << " points";
  util::KahanAccumulator acc;
  for (size_t i = 0; i < points.rows(); ++i) {
    acc.Add(weights[i] * KernelValue(kernel, q, points.Row(i)));
  }
  return acc.Total();
}

double ExactAggregateSparse(const data::SparseMatrix& points,
                            std::span<const double> weights,
                            const KernelParams& kernel,
                            std::span<const double> q) {
  KARL_DCHECK(weights.size() == points.rows())
      << ": " << weights.size() << " weights for " << points.rows()
      << " points";
  const double q_sqnorm = util::SquaredNorm(q);
  util::KahanAccumulator acc;
  const double dist_scale = DistanceArgScale(kernel);
  for (size_t i = 0; i < points.rows(); ++i) {
    const double ip = points.DotDense(i, q);
    double value;
    if (IsInnerProductKernel(kernel.type)) {
      value = KernelProfile(kernel, kernel.gamma * ip + kernel.beta);
    } else {
      const double sq_dist =
          std::max(0.0, q_sqnorm - 2.0 * ip + points.RowSquaredNorm(i));
      value = KernelProfile(kernel, dist_scale * sq_dist);
    }
    acc.Add(weights[i] * value);
  }
  return acc.Total();
}

}  // namespace karl::core
