// Best-first bound-refinement engine for kernel aggregation queries
// (paper §II-B Table V; shared by SOTA and KARL, which differ only in the
// plugged-in BoundFunction).
//
// The evaluator maintains global [lb, ub] on F_P(q) as the sum of
// per-entry bounds over a frontier of index nodes, kept in a priority
// queue ordered by bound gap. Each iteration pops the widest entry and
// replaces it with its children's bounds (or the exact leaf aggregate),
// monotonically tightening [lb, ub] until the query's termination
// condition holds.
//
// Type III weighting is handled by evaluating two positive-weight trees
// (P⁺ and P⁻, split by the caller) in one interleaved refinement: a P⁻
// node with positive-space bounds [l, u] contributes [−u, −l] to F.

#ifndef KARL_CORE_EVALUATOR_H_
#define KARL_CORE_EVALUATOR_H_

#include <functional>
#include <memory>
#include <span>

#include "core/bounds.h"
#include "core/kernel.h"
#include "core/traversal_profile.h"
#include "data/sparse_matrix.h"
#include "index/tree_index.h"
#include "util/status.h"

namespace karl::telemetry {
class Counter;
class Gauge;
class Histogram;
class Registry;
class RollingHistogram;
class TraceRecorder;
}  // namespace karl::telemetry

namespace karl::core {

/// Per-query work counters.
struct EvalStats {
  size_t iterations = 0;      ///< Priority-queue pops.
  size_t nodes_expanded = 0;  ///< Internal nodes whose children were bounded.
  size_t kernel_evals = 0;    ///< Exact kernel evaluations at leaves.
};

/// Observes every refinement iteration: (iteration, lb, ub). Used by the
/// Fig. 6 convergence study.
using TraceFn = std::function<void(size_t iteration, double lb, double ub)>;

/// Kernel aggregation query evaluator over one or two trees.
class Evaluator {
 public:
  struct Options {
    BoundKind bounds = BoundKind::kKarl;
    /// Treat nodes at this depth as leaves (compute their range exactly);
    /// < 0 means no cap. Level 0 caps at the root, i.e. a full scan.
    /// Used by the in-situ tuner to simulate the top-i-levels tree T_i.
    int max_level = -1;
    /// Runtime bound-invariant auditor. When on, every query first
    /// computes the exact answer by full scan, every admitted node's
    /// bounds are verified against its exact leaf-level aggregate (in
    /// signed Type III space too), and every refinement iteration checks
    /// that [lb, ub] still encloses the exact answer, that lb ≤ ub, and —
    /// where monotone refinement is a theorem (kd-tree, distance kernels)
    /// — that lb never decreases and ub never increases. Any violation
    /// aborts with full diagnostics via KARL_CHECK. Orders of magnitude
    /// slower than a normal query; compile with -DKARL_AUDIT_BOUNDS (the
    /// `debug-asan` preset does) to flip the default to true everywhere.
#ifdef KARL_AUDIT_BOUNDS
    bool audit_bounds = true;
#else
    bool audit_bounds = false;
#endif
    /// Metrics registry recording per-query work: a latency histogram
    /// (karl_query_latency_usec), iteration / node-expansion /
    /// kernel-eval counters, and the prune ratio versus a full scan
    /// (karl_query_prune_ratio histogram + karl_prune_ratio gauge).
    /// Non-owning and runtime-only; must outlive the evaluator. Null
    /// disables metrics — the cost of the disabled path is one branch
    /// per query, nothing per refinement iteration.
    telemetry::Registry* metrics = nullptr;
    /// Trace recorder receiving one Chrome-trace complete event per
    /// query plus per-iteration counter events tracking lb / ub / gap
    /// and cumulative expansions / kernel evals. Non-owning and
    /// runtime-only; null disables tracing.
    telemetry::TraceRecorder* tracer = nullptr;
  };

  /// Creates an evaluator. `plus_tree` is required and must carry positive
  /// weights; `minus_tree` is optional (Type III) and carries |w_i| of the
  /// negative-weight points. Both pointers must outlive the evaluator.
  static util::Result<Evaluator> Create(const index::TreeIndex* plus_tree,
                                        const index::TreeIndex* minus_tree,
                                        const KernelParams& kernel,
                                        const Options& options);

  /// Like Create, but evaluates with the caller-supplied bound function
  /// instead of MakeBoundFunction(kernel, options.bounds). The audit seam:
  /// lets tests and fuzz drivers inject deliberately broken bounds and
  /// prove the auditor fires. `options.audit_bounds` wraps `bound_fn`
  /// with the node-level auditor exactly as Create does.
  static util::Result<Evaluator> CreateWithBounds(
      const index::TreeIndex* plus_tree, const index::TreeIndex* minus_tree,
      const KernelParams& kernel, const Options& options,
      std::unique_ptr<BoundFunction> bound_fn);

  Evaluator(Evaluator&&) = default;
  Evaluator& operator=(Evaluator&&) = default;

  /// TKAQ (Problem 1): returns whether F_P(q) > tau.
  ///
  /// Like the original KARL/SOTA algorithms, the global bounds are
  /// maintained incrementally, so decisions carry an absolute noise
  /// floor of roughly machine-epsilon times the root bound magnitude;
  /// margins |F_P(q) − tau| below that floor may be misreported.
  /// `profile`, when non-null, is cleared and filled with the query's
  /// EXPLAIN traversal profile (see core/traversal_profile.h); null (the
  /// default) skips collection entirely.
  bool QueryThreshold(std::span<const double> q, double tau,
                      EvalStats* stats = nullptr,
                      const TraceFn* trace = nullptr,
                      TraversalProfile* profile = nullptr) const;

  /// eKAQ (Problem 2): returns F̂ with relative error at most eps
  /// (requires eps > 0 and F_P(q) >= 0, i.e. Type I/II weighting).
  /// `profile` as in QueryThreshold.
  double QueryApproximate(std::span<const double> q, double eps,
                          EvalStats* stats = nullptr,
                          const TraceFn* trace = nullptr,
                          TraversalProfile* profile = nullptr) const;

  /// Exact F_P(q) via full scan of both trees (the SCAN baseline).
  double QueryExact(std::span<const double> q,
                    EvalStats* stats = nullptr) const;

  /// Refines bounds to completion or `max_iterations`, reporting the final
  /// [lb, ub]; exposed for bound-convergence studies.
  void RefineToConvergence(std::span<const double> q, size_t max_iterations,
                           double* lb, double* ub,
                           const TraceFn* trace = nullptr) const;

  /// The options this evaluator was created with.
  const Options& options() const { return options_; }

 private:
  Evaluator() = default;

  // Termination decision callback: examines (lb, ub), returns true to stop.
  using StopFn = std::function<bool(double lb, double ub)>;

  // Metric handles resolved once at creation when Options::metrics is
  // set; all null (and instrumented_ false) otherwise, so the disabled
  // path never touches the registry.
  struct Instruments {
    telemetry::RollingHistogram* latency_usec = nullptr;
    telemetry::RollingHistogram* prune_ratio = nullptr;
    telemetry::Counter* queries_tkaq = nullptr;
    telemetry::Counter* queries_ekaq = nullptr;
    telemetry::Counter* queries_exact = nullptr;
    telemetry::Counter* iterations = nullptr;
    telemetry::Counter* nodes_expanded = nullptr;
    telemetry::Counter* kernel_evals = nullptr;
    telemetry::Counter* scan_point_evals = nullptr;
    telemetry::Gauge* overall_prune_ratio = nullptr;
  };

  // Runs the refinement loop; outputs the final bounds. `profile`, when
  // non-null, receives the per-level / per-iteration EXPLAIN counters.
  void Refine(std::span<const double> q, const StopFn& stop, double* lb,
              double* ub, EvalStats* stats, const TraceFn* trace,
              TraversalProfile* profile = nullptr) const;

  // Exact aggregate of the permuted range [begin, end) of `tree`.
  double LeafAggregate(const index::TreeIndex& tree, uint32_t begin,
                       uint32_t end, std::span<const double> q) const;

  // Points across both trees — the work a full scan would do per query.
  size_t TotalPoints() const;

  // Flushes one finished query's deltas into the metrics registry.
  void RecordQueryMetrics(telemetry::Counter* query_counter,
                          const EvalStats& work, double elapsed_usec) const;

  const index::TreeIndex* plus_tree_ = nullptr;
  const index::TreeIndex* minus_tree_ = nullptr;  // May be null.
  KernelParams kernel_;
  Options options_;
  std::unique_ptr<BoundFunction> bound_fn_;
  Instruments instruments_;
  bool instrumented_ = false;  // True iff options_.metrics != nullptr.
};

/// Exact F_P(q) = Σ w_i K(q, p_i) by sequential scan over raw data
/// (weights signed). The reference implementation everything is tested
/// against, and the SCAN baseline of the experiments.
double ExactAggregate(const data::Matrix& points,
                      std::span<const double> weights,
                      const KernelParams& kernel, std::span<const double> q);

/// Exact F_P(q) over CSR-stored points via sparse dot products — the
/// LIBSVM evaluation code path (dist² = ‖q‖² − 2·q·p + ‖p‖² with cached
/// row norms).
double ExactAggregateSparse(const data::SparseMatrix& points,
                            std::span<const double> weights,
                            const KernelParams& kernel,
                            std::span<const double> q);

}  // namespace karl::core

#endif  // KARL_CORE_EVALUATOR_H_
