#include "core/karl.h"

#include <cmath>
#include <optional>
#include <vector>

#include "core/simd/simd.h"
#include "index/ball_tree.h"
#include "index/kd_tree.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/stopwatch.h"

namespace karl {

namespace {

// Builds the configured index kind over (points, weights).
util::Result<std::unique_ptr<index::TreeIndex>> BuildIndex(
    const data::Matrix& points, std::span<const double> weights,
    const EngineOptions& options) {
  if (options.index_kind == index::IndexKind::kKdTree) {
    auto tree = index::KdTree::Build(points, weights, options.leaf_capacity);
    if (!tree.ok()) return tree.status();
    return std::unique_ptr<index::TreeIndex>(std::move(tree).ValueOrDie());
  }
  auto tree = index::BallTree::Build(points, weights, options.leaf_capacity);
  if (!tree.ok()) return tree.status();
  return std::unique_ptr<index::TreeIndex>(std::move(tree).ValueOrDie());
}

}  // namespace

std::string_view WeightingTypeToString(WeightingType type) {
  switch (type) {
    case WeightingType::kTypeI:
      return "I";
    case WeightingType::kTypeII:
      return "II";
    case WeightingType::kTypeIII:
      return "III";
  }
  return "?";
}

WeightingType ClassifyWeights(std::span<const double> weights) {
  bool all_equal = true;
  bool all_positive = true;
  const double first = weights.empty() ? 0.0 : weights.front();
  for (const double w : weights) {
    if (w != first) all_equal = false;
    if (w <= 0.0) all_positive = false;
  }
  if (all_positive && all_equal) return WeightingType::kTypeI;
  if (all_positive) return WeightingType::kTypeII;
  return WeightingType::kTypeIII;
}

util::Result<Engine> Engine::Build(const data::Matrix& points,
                                   std::span<const double> weights,
                                   const EngineOptions& options) {
  if (points.empty()) {
    return util::Status::InvalidArgument("cannot build engine on empty data");
  }
  if (weights.size() != points.rows()) {
    return util::Status::InvalidArgument(
        "weight count does not match point count");
  }
  KARL_RETURN_NOT_OK(options.kernel.Validate());

  std::optional<util::Stopwatch> build_timer;
  if (options.metrics != nullptr || options.tracer != nullptr) {
    build_timer.emplace();
  }
  const uint64_t trace_start =
      options.tracer != nullptr ? options.tracer->NowMicros() : 0;

  // Split into positive and negative sides (§IV-A2); the minus tree
  // stores |w_i| so both trees carry positive weights.
  std::vector<size_t> pos_rows, neg_rows;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) {
      pos_rows.push_back(i);
    } else if (weights[i] < 0.0) {
      neg_rows.push_back(i);
    }
  }
  if (pos_rows.empty()) {
    return util::Status::InvalidArgument(
        "engine requires at least one positive-weight point");
  }

  Engine engine;
  engine.options_ = options;
  engine.weighting_type_ = ClassifyWeights(weights);

  data::Matrix pos_points = points.SelectRows(pos_rows);
  std::vector<double> pos_weights;
  pos_weights.reserve(pos_rows.size());
  for (const size_t i : pos_rows) pos_weights.push_back(weights[i]);
  auto plus = BuildIndex(pos_points, pos_weights, options);
  if (!plus.ok()) return plus.status();
  engine.plus_tree_ = std::move(plus).ValueOrDie();

  if (!neg_rows.empty()) {
    data::Matrix neg_points = points.SelectRows(neg_rows);
    std::vector<double> neg_weights;
    neg_weights.reserve(neg_rows.size());
    for (const size_t i : neg_rows) neg_weights.push_back(-weights[i]);
    auto minus = BuildIndex(neg_points, neg_weights, options);
    if (!minus.ok()) return minus.status();
    engine.minus_tree_ = std::move(minus).ValueOrDie();
  }

  core::Evaluator::Options eval_options;
  eval_options.bounds = options.bounds;
  eval_options.max_level = options.max_level;
  eval_options.audit_bounds = options.audit_bounds;
  eval_options.metrics = options.metrics;
  eval_options.tracer = options.tracer;
  auto evaluator =
      core::Evaluator::Create(engine.plus_tree_.get(),
                              engine.minus_tree_.get(), options.kernel,
                              eval_options);
  if (!evaluator.ok()) return evaluator.status();
  engine.evaluator_ = std::make_unique<core::Evaluator>(
      std::move(evaluator).ValueOrDie());

  if (options.metrics != nullptr) {
    telemetry::Registry& reg = *options.metrics;
    // Which SIMD tier the evaluator hot path runs under (0 = scalar,
    // 1 = avx2, 2 = avx512); see core/simd/simd.h.
    reg.GetGauge("karl_simd_tier")
        ->Set(static_cast<double>(core::simd::ActiveTier()));
    reg.GetCounter("karl_engine_builds_total")->Increment();
    reg.GetHistogram("karl_engine_build_usec")
        ->Record(build_timer->ElapsedSeconds() * 1e6);
    reg.GetGauge("karl_engine_index_bytes")
        ->Set(static_cast<double>(engine.MemoryUsageBytes()));
    reg.GetGauge("karl_engine_points")
        ->Set(static_cast<double>(pos_rows.size() + neg_rows.size()));
    switch (engine.weighting_type_) {
      case WeightingType::kTypeI:
        reg.GetCounter("karl_engine_weighting_type_i_total")->Increment();
        break;
      case WeightingType::kTypeII:
        reg.GetCounter("karl_engine_weighting_type_ii_total")->Increment();
        break;
      case WeightingType::kTypeIII:
        reg.GetCounter("karl_engine_weighting_type_iii_total")->Increment();
        break;
    }
  }
  if (options.tracer != nullptr) {
    options.tracer->CompleteEvent(
        "engine_build", trace_start,
        options.tracer->NowMicros() - trace_start,
        {{"points",
          static_cast<double>(pos_rows.size() + neg_rows.size())},
         {"index_bytes", static_cast<double>(engine.MemoryUsageBytes())},
         {"weighting_type",
          static_cast<double>(static_cast<int>(engine.weighting_type_))}});
  }
  return engine;
}

util::Result<Engine> Engine::Attach(
    std::unique_ptr<index::TreeIndex> plus_tree,
    std::unique_ptr<index::TreeIndex> minus_tree, WeightingType weighting,
    const EngineOptions& options) {
  if (plus_tree == nullptr) {
    return util::Status::InvalidArgument(
        "attach requires a positive-side tree");
  }
  if (weighting == WeightingType::kTypeIII && minus_tree == nullptr) {
    return util::Status::InvalidArgument(
        "Type III weighting requires a negative-side tree");
  }
  KARL_RETURN_NOT_OK(options.kernel.Validate());

  std::optional<util::Stopwatch> attach_timer;
  if (options.metrics != nullptr) attach_timer.emplace();

  Engine engine;
  engine.options_ = options;
  engine.weighting_type_ = weighting;
  engine.plus_tree_ = std::move(plus_tree);
  engine.minus_tree_ = std::move(minus_tree);

  core::Evaluator::Options eval_options;
  eval_options.bounds = options.bounds;
  eval_options.max_level = options.max_level;
  eval_options.audit_bounds = options.audit_bounds;
  eval_options.metrics = options.metrics;
  eval_options.tracer = options.tracer;
  auto evaluator =
      core::Evaluator::Create(engine.plus_tree_.get(),
                              engine.minus_tree_.get(), options.kernel,
                              eval_options);
  if (!evaluator.ok()) return evaluator.status();
  engine.evaluator_ = std::make_unique<core::Evaluator>(
      std::move(evaluator).ValueOrDie());

  if (options.metrics != nullptr) {
    telemetry::Registry& reg = *options.metrics;
    reg.GetGauge("karl_simd_tier")
        ->Set(static_cast<double>(core::simd::ActiveTier()));
    reg.GetCounter("karl_engine_attaches_total")->Increment();
    reg.GetHistogram("karl_engine_attach_usec")
        ->Record(attach_timer->ElapsedSeconds() * 1e6);
    reg.GetGauge("karl_engine_index_bytes")
        ->Set(static_cast<double>(engine.MemoryUsageBytes()));
  }
  return engine;
}

util::Result<Engine> Engine::BuildUniform(const data::Matrix& points,
                                          double common_weight,
                                          const EngineOptions& options) {
  if (common_weight <= 0.0) {
    return util::Status::InvalidArgument(
        "Type I weighting requires a positive common weight");
  }
  const std::vector<double> weights(points.rows(), common_weight);
  return Build(points, weights, options);
}

size_t Engine::MemoryUsageBytes() const {
  size_t bytes = plus_tree_->MemoryUsageBytes();
  if (minus_tree_ != nullptr) bytes += minus_tree_->MemoryUsageBytes();
  return bytes;
}

}  // namespace karl
