// KARL public API: build an engine over a weighted point set, then run
// TKAQ / eKAQ / exact kernel aggregation queries against it.
//
// Quickstart:
//
//   karl::EngineOptions options;
//   options.kernel = karl::core::KernelParams::Gaussian(0.5);
//   auto engine = karl::Engine::Build(points, weights, options);
//   bool above = engine.value().Tkaq(q, /*tau=*/10.0);
//
// The engine detects the weighting type (paper Table I) from the weights
// and, for Type III, transparently splits the data into positive- and
// negative-weight trees (§IV-A2).

#ifndef KARL_CORE_KARL_H_
#define KARL_CORE_KARL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/evaluator.h"
#include "core/kernel.h"
#include "index/tree_index.h"
#include "util/status.h"

namespace karl::util {
class ThreadPool;
}  // namespace karl::util

namespace karl {

/// Weighting taxonomy of paper Table I.
enum class WeightingType {
  kTypeI = 1,    ///< Identical positive weights (kernel density).
  kTypeII = 2,   ///< Arbitrary positive weights (1-class SVM).
  kTypeIII = 3,  ///< Unrestricted weights (2-class SVM).
};

/// Human-readable weighting name ("I" / "II" / "III").
std::string_view WeightingTypeToString(WeightingType type);

/// Classifies a weight vector per paper Table I.
WeightingType ClassifyWeights(std::span<const double> weights);

/// Engine construction parameters.
struct EngineOptions {
  core::KernelParams kernel;
  core::BoundKind bounds = core::BoundKind::kKarl;
  index::IndexKind index_kind = index::IndexKind::kKdTree;
  size_t leaf_capacity = 80;
  /// Level cap forwarded to the evaluator (in-situ T_i simulation);
  /// < 0 disables.
  int max_level = -1;
  /// Runtime bound-invariant auditor (see core::Evaluator::Options::
  /// audit_bounds): verifies every node bound and every refinement step
  /// against exact aggregates, aborting with diagnostics on violation.
  /// Orders of magnitude slower; defaults ON when compiled with
  /// -DKARL_AUDIT_BOUNDS.
#ifdef KARL_AUDIT_BOUNDS
  bool audit_bounds = true;
#else
  bool audit_bounds = false;
#endif
  /// Telemetry sinks, forwarded to the evaluator and also fed by
  /// Engine::Build itself (build time, index memory, weighting-type
  /// counts). Non-owning, runtime-only — engine_io does not serialize
  /// them — and null disables instrumentation entirely.
  telemetry::Registry* metrics = nullptr;
  telemetry::TraceRecorder* tracer = nullptr;
};

/// A built kernel-aggregation engine: indexes + evaluator over one
/// weighted dataset.
///
/// Thread safety: an Engine is immutable after Build, and every const
/// query method (Tkaq/Ekaq/Exact and their *Batch forms) is safe to call
/// concurrently from any number of threads. Concurrent callers must not
/// share one EvalStats object across threads (its counters are plain
/// integers); the *Batch methods handle this with per-worker
/// accumulators merged once per batch.
class Engine {
 public:
  /// Builds indexes over `points` with per-point `weights` (any weighting
  /// type; zero-weight points are dropped). Fails on empty/mismatched
  /// input or invalid kernel parameters.
  static util::Result<Engine> Build(const data::Matrix& points,
                                    std::span<const double> weights,
                                    const EngineOptions& options);

  /// Type-I convenience: every point carries `common_weight`.
  static util::Result<Engine> BuildUniform(const data::Matrix& points,
                                           double common_weight,
                                           const EngineOptions& options);

  /// Wires an engine over trees that are already materialised — the mmap
  /// snapshot attach path (registry/snapshot.h). Takes ownership of the
  /// tree objects; any external memory the trees view (e.g. a mapping)
  /// must outlive the engine. `minus_tree` may be null (Type I/II);
  /// `weighting` is trusted from the snapshot header rather than
  /// re-derived (the weights may live in mapped memory).
  static util::Result<Engine> Attach(
      std::unique_ptr<index::TreeIndex> plus_tree,
      std::unique_ptr<index::TreeIndex> minus_tree, WeightingType weighting,
      const EngineOptions& options);

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;

  /// TKAQ: is F_P(q) > tau?
  bool Tkaq(std::span<const double> q, double tau,
            core::EvalStats* stats = nullptr) const {
    return evaluator_->QueryThreshold(q, tau, stats);
  }

  /// eKAQ: F̂ within relative error eps (Type I/II only).
  double Ekaq(std::span<const double> q, double eps,
              core::EvalStats* stats = nullptr) const {
    return evaluator_->QueryApproximate(q, eps, stats);
  }

  /// Exact F_P(q) by full scan.
  double Exact(std::span<const double> q,
               core::EvalStats* stats = nullptr) const {
    return evaluator_->QueryExact(q, stats);
  }

  /// Batch TKAQ over every row of `queries`, fanned across `pool`
  /// (null runs serially): out[i] = (F(q_i) > tau). Results are
  /// bit-identical to the serial loop for any thread count; see
  /// core::BatchEvaluator (core/batch.h) for chunk control and the
  /// determinism/stats contract.
  std::vector<uint8_t> TkaqBatch(const data::Matrix& queries, double tau,
                                 util::ThreadPool* pool = nullptr,
                                 core::EvalStats* stats = nullptr) const;

  /// Batch eKAQ: out[i] = F̂(q_i) within relative error eps.
  std::vector<double> EkaqBatch(const data::Matrix& queries, double eps,
                                util::ThreadPool* pool = nullptr,
                                core::EvalStats* stats = nullptr) const;

  /// Batch exact aggregation by full scan per query.
  std::vector<double> ExactBatch(const data::Matrix& queries,
                                 util::ThreadPool* pool = nullptr,
                                 core::EvalStats* stats = nullptr) const;

  /// The detected weighting type.
  WeightingType weighting_type() const { return weighting_type_; }

  /// The underlying evaluator (trace hooks, level-capped queries).
  const core::Evaluator& evaluator() const { return *evaluator_; }

  /// Positive-weight tree (always present).
  const index::TreeIndex& plus_tree() const { return *plus_tree_; }

  /// Negative-weight tree, or nullptr for Type I/II data.
  const index::TreeIndex* minus_tree() const { return minus_tree_.get(); }

  /// Options the engine was built with.
  const EngineOptions& options() const { return options_; }

  /// Total index memory footprint in bytes.
  size_t MemoryUsageBytes() const;

 private:
  Engine() = default;

  EngineOptions options_;
  WeightingType weighting_type_ = WeightingType::kTypeI;
  std::unique_ptr<index::TreeIndex> plus_tree_;
  std::unique_ptr<index::TreeIndex> minus_tree_;
  // unique_ptr so the Engine stays movable with stable evaluator address.
  std::unique_ptr<core::Evaluator> evaluator_;
};

}  // namespace karl

#endif  // KARL_CORE_KARL_H_
