#include "core/kernel.h"

#include <cmath>

#include "util/check.h"
#include "util/math_util.h"

namespace karl::core {

std::string_view KernelTypeToString(KernelType type) {
  switch (type) {
    case KernelType::kGaussian:
      return "gaussian";
    case KernelType::kLaplacian:
      return "laplacian";
    case KernelType::kCauchy:
      return "cauchy";
    case KernelType::kPolynomial:
      return "polynomial";
    case KernelType::kSigmoid:
      return "sigmoid";
  }
  return "unknown";
}

util::Status KernelParams::Validate() const {
  if (!(gamma > 0.0)) {
    return util::Status::InvalidArgument("kernel gamma must be positive");
  }
  if (type == KernelType::kPolynomial && degree < 1) {
    return util::Status::InvalidArgument(
        "polynomial kernel degree must be >= 1");
  }
  return util::Status::OK();
}

double IntPow(double x, int e) {
  KARL_DCHECK(e >= 0) << ": IntPow exponent must be non-negative, got "
                      << e;
  double result = 1.0;
  double base = x;
  while (e > 0) {
    if (e & 1) result *= base;
    base *= base;
    e >>= 1;
  }
  return result;
}

double KernelValue(const KernelParams& params, std::span<const double> q,
                   std::span<const double> p) {
  switch (params.type) {
    case KernelType::kGaussian:
      return std::exp(-params.gamma * util::SquaredDistance(q, p));
    case KernelType::kLaplacian:
      return std::exp(-params.gamma * std::sqrt(util::SquaredDistance(q, p)));
    case KernelType::kCauchy:
      return 1.0 / (1.0 + params.gamma * util::SquaredDistance(q, p));
    case KernelType::kPolynomial:
      return IntPow(params.gamma * util::Dot(q, p) + params.beta,
                    params.degree);
    case KernelType::kSigmoid:
      return std::tanh(params.gamma * util::Dot(q, p) + params.beta);
  }
  return 0.0;
}

double KernelProfile(const KernelParams& params, double x) {
  switch (params.type) {
    case KernelType::kGaussian:
      return std::exp(-x);
    case KernelType::kLaplacian:
      return std::exp(-std::sqrt(std::max(0.0, x)));
    case KernelType::kCauchy:
      return 1.0 / (1.0 + x);
    case KernelType::kPolynomial:
      return IntPow(x, params.degree);
    case KernelType::kSigmoid:
      return std::tanh(x);
  }
  return 0.0;
}

double KernelProfileDerivative(const KernelParams& params, double x) {
  switch (params.type) {
    case KernelType::kGaussian:
      return -std::exp(-x);
    case KernelType::kLaplacian: {
      // d/dx e^{−√x} = −e^{−√x} / (2√x); singular at x = 0.
      const double root = std::sqrt(std::max(x, 1e-300));
      return -std::exp(-root) / (2.0 * root);
    }
    case KernelType::kCauchy: {
      const double denom = 1.0 + x;
      return -1.0 / (denom * denom);
    }
    case KernelType::kPolynomial:
      return params.degree * IntPow(x, params.degree - 1);
    case KernelType::kSigmoid: {
      const double t = std::tanh(x);
      return 1.0 - t * t;
    }
  }
  return 0.0;
}

bool IsInnerProductKernel(KernelType type) {
  return type == KernelType::kPolynomial || type == KernelType::kSigmoid;
}

double DistanceArgScale(const KernelParams& params) {
  // Laplacian: K = e^{−γ·dist} = e^{−√(γ²·dist²)}, so x = γ²·dist².
  return params.type == KernelType::kLaplacian ? params.gamma * params.gamma
                                               : params.gamma;
}

}  // namespace karl::core
