// Kernel functions (paper §II): Gaussian, polynomial, sigmoid.
//
// The Gaussian kernel is a function of the squared distance
// x = γ·dist(q,p)²; the polynomial and sigmoid kernels are functions of
// the shifted inner product x = γ·(q·p) + β. KARL's bounds operate on
// these scalar "kernel profiles" (see bounds.h), so the profile functions
// are exposed here too.

#ifndef KARL_CORE_KERNEL_H_
#define KARL_CORE_KERNEL_H_

#include <span>
#include <string_view>

#include "util/status.h"

namespace karl::core {

/// Supported kernel families.
///
/// Gaussian, Laplacian and Cauchy are *distance kernels*: convex
/// decreasing functions of the (scaled) squared distance, so the full
/// KARL chord/tangent machinery applies to all three. Polynomial and
/// sigmoid are *inner-product kernels* (§IV-B).
enum class KernelType {
  kGaussian,    ///< K(q,p) = exp(−γ·dist(q,p)²)
  kLaplacian,   ///< K(q,p) = exp(−γ·dist(q,p))
  kCauchy,      ///< K(q,p) = 1 / (1 + γ·dist(q,p)²)
  kPolynomial,  ///< K(q,p) = (γ·q·p + β)^degree
  kSigmoid,     ///< K(q,p) = tanh(γ·q·p + β)
};

/// Human-readable kernel family name.
std::string_view KernelTypeToString(KernelType type);

/// Kernel family plus its scalar parameters.
struct KernelParams {
  KernelType type = KernelType::kGaussian;
  double gamma = 1.0;  ///< Smoothing / scale parameter (> 0).
  double beta = 0.0;   ///< Shift (polynomial, sigmoid only).
  int degree = 3;      ///< Polynomial degree (>= 1; polynomial only).

  /// Gaussian kernel with the given γ.
  static KernelParams Gaussian(double gamma) {
    return {KernelType::kGaussian, gamma, 0.0, 0};
  }
  /// Laplacian kernel exp(−γ·dist).
  static KernelParams Laplacian(double gamma) {
    return {KernelType::kLaplacian, gamma, 0.0, 0};
  }
  /// Cauchy kernel 1/(1 + γ·dist²).
  static KernelParams Cauchy(double gamma) {
    return {KernelType::kCauchy, gamma, 0.0, 0};
  }
  /// Polynomial kernel (γ·q·p + β)^degree.
  static KernelParams Polynomial(double gamma, double beta, int degree) {
    return {KernelType::kPolynomial, gamma, beta, degree};
  }
  /// Sigmoid kernel tanh(γ·q·p + β).
  static KernelParams Sigmoid(double gamma, double beta) {
    return {KernelType::kSigmoid, gamma, beta, 0};
  }

  /// Validates parameter ranges (γ > 0; degree >= 1 for polynomial).
  util::Status Validate() const;
};

/// Evaluates K(q, p) for the given kernel.
///
/// This scalar form is the reference the vectorized leaf kernels
/// (core/simd) are tested against: the SIMD tiers must reproduce
/// Σ wᵢ·KernelValue(...) within the tolerance contract stated in
/// core/simd/simd.h, and any change to the argument constructions here
/// must be mirrored there (simd_test's differential suite catches a
/// divergence).
double KernelValue(const KernelParams& params, std::span<const double> q,
                   std::span<const double> p);

/// The kernel profile f(x) such that K(q,p) = f(x) with
///   x = DistanceArgScale(params)·dist²   (distance kernels), or
///   x = γ·q·p + β                        (inner-product kernels).
/// Profiles: Gaussian e^{−x}, Laplacian e^{−√x} (with x = γ²·dist²),
/// Cauchy 1/(1+x), polynomial x^deg, sigmoid tanh(x). All distance
/// profiles are convex decreasing on x ≥ 0, which is what makes the
/// chord/tangent bounds applicable. Exposed because the bound
/// constructions work on f directly.
double KernelProfile(const KernelParams& params, double x);

/// First derivative f'(x) of the kernel profile. The Laplacian profile
/// has an integrable singularity at x = 0 (vertical tangent); callers
/// must not request the derivative at exactly 0 for it.
double KernelProfileDerivative(const KernelParams& params, double x);

/// True iff the profile is a function of the inner product (polynomial /
/// sigmoid); false for distance kernels.
bool IsInnerProductKernel(KernelType type);

/// The multiplier s such that the profile argument is x = s·dist² for a
/// distance kernel (γ for Gaussian/Cauchy, γ² for Laplacian).
double DistanceArgScale(const KernelParams& params);

/// Integer power x^e by binary exponentiation (e >= 0).
double IntPow(double x, int e);

}  // namespace karl::core

#endif  // KARL_CORE_KERNEL_H_
