// AVX2+FMA tier. Built with -mavx2 -mfma when the toolchain supports
// them (src/CMakeLists.txt defines KARL_SIMD_TU_AVX2); otherwise this
// translation unit degenerates to a stub reporting the tier as not
// compiled, and dispatch (simd.cc) refuses to select it.

#include "core/simd/simd.h"

#if defined(KARL_SIMD_TU_AVX2) && defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "core/simd/kernels_impl.h"

namespace karl::core::simd::internal {

namespace {

struct Avx2Ops {
  using Vec = __m256d;
  static constexpr size_t kLanes = 4;

  static Vec Load(const double* p) { return _mm256_loadu_pd(p); }
  static void Store(double* p, Vec v) { _mm256_storeu_pd(p, v); }
  static Vec Set1(double x) { return _mm256_set1_pd(x); }
  static Vec Zero() { return _mm256_setzero_pd(); }
  static Vec Add(Vec a, Vec b) { return _mm256_add_pd(a, b); }
  static Vec Sub(Vec a, Vec b) { return _mm256_sub_pd(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm256_mul_pd(a, b); }
  static Vec Div(Vec a, Vec b) { return _mm256_div_pd(a, b); }
  static Vec Fma(Vec a, Vec b, Vec c) { return _mm256_fmadd_pd(a, b, c); }
  static Vec Fnma(Vec a, Vec b, Vec c) { return _mm256_fnmadd_pd(a, b, c); }
  static Vec Min(Vec a, Vec b) { return _mm256_min_pd(a, b); }
  static Vec Max(Vec a, Vec b) { return _mm256_max_pd(a, b); }
  static Vec Sqrt(Vec a) { return _mm256_sqrt_pd(a); }
  static Vec Round(Vec a) {
    return _mm256_round_pd(a, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  static Vec Ldexpk(Vec p, Vec k) {
    // k is integral in [-1022, 1023]: build 2^k directly in the
    // exponent field via the 32-bit conversion path.
    const __m128i k32 = _mm256_cvtpd_epi32(k);
    const __m256i k64 = _mm256_cvtepi32_epi64(k32);
    const __m256i bits =
        _mm256_slli_epi64(_mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
    return _mm256_mul_pd(p, _mm256_castsi256_pd(bits));
  }
  static double ReduceAdd(Vec v) {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d pair = _mm_add_pd(lo, hi);
    const __m128d swapped = _mm_unpackhi_pd(pair, pair);
    return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
  }
};

constexpr Ops kAvx2OpsTable = {
    DotN<Avx2Ops>,
    SqnormN<Avx2Ops>,
    LeafAggregateN<Avx2Ops>,
    ExpBlockN<Avx2Ops>,
};

}  // namespace

const Ops* GetAvx2Ops() { return &kAvx2OpsTable; }

}  // namespace karl::core::simd::internal

#else  // stub: tier not compiled into this binary

namespace karl::core::simd::internal {

const Ops* GetAvx2Ops() { return nullptr; }

}  // namespace karl::core::simd::internal

#endif
