// AVX-512F tier: one full 8-point SoA block per vector. Built with
// -mavx512f when the toolchain supports it (KARL_SIMD_TU_AVX512);
// otherwise a stub, exactly like kernels_avx2.cc. Only the F subset is
// used (the Ldexpk exponent build goes through the 32-bit conversion
// path), so any AVX-512 machine qualifies.

#include "core/simd/simd.h"

#if defined(KARL_SIMD_TU_AVX512) && defined(__AVX512F__)

#include <immintrin.h>

#include "core/simd/kernels_impl.h"

namespace karl::core::simd::internal {

namespace {

struct Avx512Ops {
  using Vec = __m512d;
  static constexpr size_t kLanes = 8;

  static Vec Load(const double* p) { return _mm512_loadu_pd(p); }
  static void Store(double* p, Vec v) { _mm512_storeu_pd(p, v); }
  static Vec Set1(double x) { return _mm512_set1_pd(x); }
  static Vec Zero() { return _mm512_setzero_pd(); }
  static Vec Add(Vec a, Vec b) { return _mm512_add_pd(a, b); }
  static Vec Sub(Vec a, Vec b) { return _mm512_sub_pd(a, b); }
  static Vec Mul(Vec a, Vec b) { return _mm512_mul_pd(a, b); }
  static Vec Div(Vec a, Vec b) { return _mm512_div_pd(a, b); }
  static Vec Fma(Vec a, Vec b, Vec c) { return _mm512_fmadd_pd(a, b, c); }
  static Vec Fnma(Vec a, Vec b, Vec c) { return _mm512_fnmadd_pd(a, b, c); }
  static Vec Min(Vec a, Vec b) { return _mm512_min_pd(a, b); }
  static Vec Max(Vec a, Vec b) { return _mm512_max_pd(a, b); }
  static Vec Sqrt(Vec a) { return _mm512_sqrt_pd(a); }
  static Vec Round(Vec a) {
    return _mm512_roundscale_pd(a,
                                _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  }
  static Vec Ldexpk(Vec p, Vec k) {
    // maskz form: the plain _mm512_cvtpd_epi32 routes through an
    // undefined-source builtin that trips -Wmaybe-uninitialized.
    const __m256i k32 = _mm512_maskz_cvtpd_epi32(0xFF, k);
    const __m512i k64 = _mm512_cvtepi32_epi64(k32);
    const __m512i bits =
        _mm512_slli_epi64(_mm512_add_epi64(k64, _mm512_set1_epi64(1023)), 52);
    return _mm512_mul_pd(p, _mm512_castsi512_pd(bits));
  }
  static double ReduceAdd(Vec v) {
    // Hand-rolled instead of _mm512_reduce_add_pd: the builtin reduce
    // goes through an undefined-source extract that trips
    // -Wmaybe-uninitialized under -Werror.
    const __m256d lo = _mm512_castpd512_pd256(v);
    const __m256d hi = _mm512_maskz_extractf64x4_pd(0xF, v, 1);
    const __m256d quad = _mm256_add_pd(lo, hi);
    const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(quad),
                                    _mm256_extractf128_pd(quad, 1));
    const __m128d swapped = _mm_unpackhi_pd(pair, pair);
    return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
  }
};

constexpr Ops kAvx512OpsTable = {
    DotN<Avx512Ops>,
    SqnormN<Avx512Ops>,
    LeafAggregateN<Avx512Ops>,
    ExpBlockN<Avx512Ops>,
};

}  // namespace

const Ops* GetAvx512Ops() { return &kAvx512OpsTable; }

}  // namespace karl::core::simd::internal

#else  // stub: tier not compiled into this binary

namespace karl::core::simd::internal {

const Ops* GetAvx512Ops() { return nullptr; }

}  // namespace karl::core::simd::internal

#endif
