// Width-generic SIMD kernel bodies, instantiated once per ISA
// translation unit (kernels_avx2.cc, kernels_avx512.cc) against a
// vector-ops policy `O`:
//
//   using Vec;                          // __m256d / __m512d
//   static constexpr size_t kLanes;     // 4 / 8
//   Vec  Load(const double*);           // unaligned
//   void Store(double*, Vec);
//   Vec  Set1(double);  Vec Zero();
//   Vec  Add/Sub/Mul/Div(Vec, Vec);
//   Vec  Fma(a, b, c)  = a*b + c;       // fused
//   Vec  Fnma(a, b, c) = c - a*b;       // fused
//   Vec  Min/Max(Vec, Vec);  Vec Sqrt(Vec);
//   Vec  Round(Vec);                    // to nearest integer
//   Vec  Ldexpk(Vec p, Vec k);          // p·2^k, k integral ∈ [-1022,1023]
//   double ReduceAdd(Vec);
//
// Only the ISA translation units include this header; it must be
// compiled with the matching -m flags.

#ifndef KARL_CORE_SIMD_KERNELS_IMPL_H_
#define KARL_CORE_SIMD_KERNELS_IMPL_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "core/kernel.h"
#include "core/simd/soa_block.h"

namespace karl::core::simd::internal {

// Two-part Cody–Waite ln2 split: kLn2Hi has 21 trailing zero bits, so
// k·kLn2Hi is exact for the |k| ≤ 1024 range the [-708, 709] clamp
// allows, making the reduction r = x − k·ln2 accurate to an ulp of r.
inline constexpr double kInvLn2 = 1.4426950408889634;
inline constexpr double kLn2Hi = 6.93145751953125e-1;
inline constexpr double kLn2Lo = 1.42860682030941723212e-6;

// Reciprocal factorials for the degree-13 Taylor expansion of exp on
// |r| ≤ ln2/2; truncation there is ≈ r¹⁴/14! < 5e-18 relative.
inline constexpr double kExpTaylor[14] = {
    1.0,
    1.0,
    1.0 / 2,
    1.0 / 6,
    1.0 / 24,
    1.0 / 120,
    1.0 / 720,
    1.0 / 5040,
    1.0 / 40320,
    1.0 / 362880,
    1.0 / 3628800,
    1.0 / 39916800,
    1.0 / 479001600,
    1.0 / 6227020800.0,
};

// exp(x) ≈ 2^k·P(r), k = round(x/ln2), r = x − k·ln2 — accurate to a
// couple of ulp (contract: kVectorExpUlpBound). Arguments are clamped
// to [-708, 709]: below the clamp the true result is subnormal or zero
// and the clamped value ≤ 3.4e-308 (contract: kVectorExpUnderflowAbs);
// above it the true result overflows and callers never produce it
// (kernel profiles are ≤ 1).
template <typename O>
inline typename O::Vec VExp(typename O::Vec x) {
  using V = typename O::Vec;
  const V xc = O::Min(O::Max(x, O::Set1(-708.0)), O::Set1(709.0));
  const V k = O::Round(O::Mul(xc, O::Set1(kInvLn2)));
  V r = O::Fnma(k, O::Set1(kLn2Hi), xc);
  r = O::Fnma(k, O::Set1(kLn2Lo), r);
  V p = O::Set1(kExpTaylor[13]);
  for (int i = 12; i >= 0; --i) p = O::Fma(p, r, O::Set1(kExpTaylor[i]));
  return O::Ldexpk(p, k);
}

// x^e per lane with the same multiply sequence as scalar IntPow, so
// every lane is bit-identical to the scalar kernel term.
template <typename O>
inline typename O::Vec IntPowV(typename O::Vec x, int e) {
  typename O::Vec result = O::Set1(1.0);
  typename O::Vec base = x;
  while (e > 0) {
    if (e & 1) result = O::Mul(result, base);
    base = O::Mul(base, base);
    e >>= 1;
  }
  return result;
}

// Kernel profile per lane. `arg` is scale·dist² for distance kernels
// (scale = DistanceArgScale) and γ·(q·p)+β for inner-product kernels.
// Sigmoid falls back to per-lane std::tanh: the vectorized win there is
// the dot product, and a branch-free vector tanh accurate near 0 is not
// worth the extra contract surface.
template <typename O>
inline typename O::Vec ProfileV(const KernelParams& kernel,
                                typename O::Vec arg) {
  using V = typename O::Vec;
  const V zero = O::Zero();
  const V one = O::Set1(1.0);
  switch (kernel.type) {
    case KernelType::kGaussian:
      return VExp<O>(O::Sub(zero, arg));
    case KernelType::kLaplacian:
      return VExp<O>(O::Sub(zero, O::Sqrt(O::Max(arg, zero))));
    case KernelType::kCauchy:
      return O::Div(one, O::Add(one, arg));
    case KernelType::kPolynomial:
      return IntPowV<O>(arg, kernel.degree);
    case KernelType::kSigmoid: {
      alignas(64) double lanes[O::kLanes];
      O::Store(lanes, arg);
      for (size_t l = 0; l < O::kLanes; ++l) lanes[l] = std::tanh(lanes[l]);
      return O::Load(lanes);
    }
  }
  return zero;
}

// Σ wᵢ·K(q,pᵢ) over SoA rows [begin, end). D fixes the dimensionality at
// compile time for the common dims (full unroll of the j-loops); D = -1
// is the runtime-dim fallback.
template <typename O, int D>
double LeafAggregateImpl(const KernelParams& kernel, const SoaLeafBlocks& soa,
                         uint32_t begin, uint32_t end, const double* q) {
  using V = typename O::Vec;
  constexpr size_t kB = SoaLeafBlocks::kBlockPoints;
  constexpr size_t kVecs = kB / O::kLanes;
  const size_t d = D >= 0 ? static_cast<size_t>(D) : soa.dims();
  const bool inner_product = IsInnerProductKernel(kernel.type);
  const double scale =
      inner_product ? kernel.gamma : DistanceArgScale(kernel);

  V acc = O::Zero();
  const size_t first_block = begin / kB;
  const size_t last_block = (end - 1) / kB;
  alignas(64) double masked_weights[kB];
  for (size_t b = first_block; b <= last_block; ++b) {
    const size_t row0 = b * kB;
    const double* w = soa.BlockWeights(b);
    if (row0 < begin || row0 + kB > end) {
      // Partial head/tail block: zero the out-of-range lanes' weights —
      // a zero weight kills the lane's contribution exactly.
      for (size_t l = 0; l < kB; ++l) {
        const size_t row = row0 + l;
        masked_weights[l] = (row >= begin && row < end) ? w[l] : 0.0;
      }
      w = masked_weights;
    }
    for (size_t v = 0; v < kVecs; ++v) {
      const size_t off = v * O::kLanes;
      V arg;
      if (inner_product) {
        V dot = O::Zero();
        for (size_t j = 0; j < d; ++j) {
          dot = O::Fma(O::Set1(q[j]), O::Load(soa.BlockDim(b, j) + off), dot);
        }
        arg = O::Fma(O::Set1(scale), dot, O::Set1(kernel.beta));
      } else {
        V sq = O::Zero();
        for (size_t j = 0; j < d; ++j) {
          const V diff =
              O::Sub(O::Set1(q[j]), O::Load(soa.BlockDim(b, j) + off));
          sq = O::Fma(diff, diff, sq);
        }
        arg = O::Mul(O::Set1(scale), sq);
      }
      acc = O::Fma(O::Load(w + off), ProfileV<O>(kernel, arg), acc);
    }
  }
  return O::ReduceAdd(acc);
}

// Fixed-dim dispatch over the dims the registry datasets actually use
// (home 8/16, susy 18, higgs 28, plus the small synthetic dims).
template <typename O>
double LeafAggregateN(const KernelParams& kernel, const SoaLeafBlocks& soa,
                      uint32_t begin, uint32_t end, const double* q) {
  switch (soa.dims()) {
    case 2:
      return LeafAggregateImpl<O, 2>(kernel, soa, begin, end, q);
    case 3:
      return LeafAggregateImpl<O, 3>(kernel, soa, begin, end, q);
    case 4:
      return LeafAggregateImpl<O, 4>(kernel, soa, begin, end, q);
    case 8:
      return LeafAggregateImpl<O, 8>(kernel, soa, begin, end, q);
    case 16:
      return LeafAggregateImpl<O, 16>(kernel, soa, begin, end, q);
    case 18:
      return LeafAggregateImpl<O, 18>(kernel, soa, begin, end, q);
    case 28:
      return LeafAggregateImpl<O, 28>(kernel, soa, begin, end, q);
    case 32:
      return LeafAggregateImpl<O, 32>(kernel, soa, begin, end, q);
    case 64:
      return LeafAggregateImpl<O, 64>(kernel, soa, begin, end, q);
    default:
      return LeafAggregateImpl<O, -1>(kernel, soa, begin, end, q);
  }
}

// Dot product: two independent accumulators hide FMA latency; the < one
// vector tail runs scalar (for d below the lane width this degenerates
// to the plain scalar loop).
template <typename O, int N>
double DotImpl(const double* a, const double* b, size_t runtime_n) {
  using V = typename O::Vec;
  constexpr size_t W = O::kLanes;
  const size_t n = N >= 0 ? static_cast<size_t>(N) : runtime_n;
  V acc0 = O::Zero();
  V acc1 = O::Zero();
  size_t j = 0;
  for (; j + 2 * W <= n; j += 2 * W) {
    acc0 = O::Fma(O::Load(a + j), O::Load(b + j), acc0);
    acc1 = O::Fma(O::Load(a + j + W), O::Load(b + j + W), acc1);
  }
  if (j + W <= n) {
    acc0 = O::Fma(O::Load(a + j), O::Load(b + j), acc0);
    j += W;
  }
  double total = O::ReduceAdd(O::Add(acc0, acc1));
  // < W elements remain; the explicit t < W bound keeps the unroller
  // from inventing unbounded trip counts for fixed-N instantiations.
  for (size_t t = 0; t < W && j + t < n; ++t) total += a[j + t] * b[j + t];
  return total;
}

template <typename O, int N>
double SqnormImpl(const double* a, size_t runtime_n) {
  using V = typename O::Vec;
  constexpr size_t W = O::kLanes;
  const size_t n = N >= 0 ? static_cast<size_t>(N) : runtime_n;
  V acc0 = O::Zero();
  V acc1 = O::Zero();
  size_t j = 0;
  for (; j + 2 * W <= n; j += 2 * W) {
    const V v0 = O::Load(a + j);
    const V v1 = O::Load(a + j + W);
    acc0 = O::Fma(v0, v0, acc0);
    acc1 = O::Fma(v1, v1, acc1);
  }
  if (j + W <= n) {
    const V v = O::Load(a + j);
    acc0 = O::Fma(v, v, acc0);
    j += W;
  }
  double total = O::ReduceAdd(O::Add(acc0, acc1));
  for (size_t t = 0; t < W && j + t < n; ++t) total += a[j + t] * a[j + t];
  return total;
}

template <typename O>
double DotN(const double* a, const double* b, size_t n) {
  switch (n) {
    case 8:
      return DotImpl<O, 8>(a, b, n);
    case 16:
      return DotImpl<O, 16>(a, b, n);
    case 18:
      return DotImpl<O, 18>(a, b, n);
    case 28:
      return DotImpl<O, 28>(a, b, n);
    case 32:
      return DotImpl<O, 32>(a, b, n);
    case 64:
      return DotImpl<O, 64>(a, b, n);
    default:
      return DotImpl<O, -1>(a, b, n);
  }
}

template <typename O>
double SqnormN(const double* a, size_t n) {
  switch (n) {
    case 8:
      return SqnormImpl<O, 8>(a, n);
    case 16:
      return SqnormImpl<O, 16>(a, n);
    case 18:
      return SqnormImpl<O, 18>(a, n);
    case 28:
      return SqnormImpl<O, 28>(a, n);
    case 32:
      return SqnormImpl<O, 32>(a, n);
    case 64:
      return SqnormImpl<O, 64>(a, n);
    default:
      return SqnormImpl<O, -1>(a, n);
  }
}

template <typename O>
void ExpBlockN(const double* in, double* out, size_t n) {
  constexpr size_t W = O::kLanes;
  size_t i = 0;
  for (; i + W <= n; i += W) O::Store(out + i, VExp<O>(O::Load(in + i)));
  if (i < n) {
    alignas(64) double buf[W] = {0.0};
    for (size_t l = 0; l < W; ++l) buf[l] = i + l < n ? in[i + l] : 0.0;
    alignas(64) double res[W];
    O::Store(res, VExp<O>(O::Load(buf)));
    for (size_t l = 0; l < W; ++l) {
      if (i + l < n) out[i + l] = res[l];
    }
  }
}

}  // namespace karl::core::simd::internal

#endif  // KARL_CORE_SIMD_KERNELS_IMPL_H_
