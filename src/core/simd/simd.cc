#include "core/simd/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "util/check.h"
#include "util/math_util.h"

namespace karl::core::simd {

namespace {

// -----------------------------------------------------------------------
// Scalar tier: the reference oracle. These are deliberately the plain
// ascending loops of util::Dot / util::SquaredNorm and the legacy Kahan
// leaf loop of Evaluator::LeafAggregate, so KARL_SIMD=scalar reproduces
// pre-SIMD results bit-for-bit.
// -----------------------------------------------------------------------

double ScalarDot(const double* a, const double* b, size_t n) {
  return util::Dot({a, n}, {b, n});
}

double ScalarSqnorm(const double* a, size_t n) {
  return util::SquaredNorm({a, n});
}

double ScalarLeafAggregate(const KernelParams& kernel,
                           const SoaLeafBlocks& soa, uint32_t begin,
                           uint32_t end, const double* q) {
  const size_t d = soa.dims();
  util::KahanAccumulator acc;
  for (uint32_t i = begin; i < end; ++i) {
    double value;
    if (IsInnerProductKernel(kernel.type)) {
      double ip = 0.0;
      for (size_t j = 0; j < d; ++j) ip += q[j] * soa.At(i, j);
      value = KernelProfile(kernel, kernel.gamma * ip + kernel.beta);
    } else {
      double sq = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double diff = q[j] - soa.At(i, j);
        sq += diff * diff;
      }
      // Matches KernelValue's argument construction per family exactly.
      value = kernel.type == KernelType::kLaplacian
                  ? std::exp(-kernel.gamma * std::sqrt(sq))
                  : KernelProfile(kernel, kernel.gamma * sq);
    }
    acc.Add(soa.WeightAt(i) * value);
  }
  return acc.Total();
}

void ScalarExpBlock(const double* in, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = std::exp(in[i]);
}

constexpr internal::Ops kScalarOps = {ScalarDot, ScalarSqnorm,
                                      ScalarLeafAggregate, ScalarExpBlock};

const internal::Ops& OpsForTier(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return kScalarOps;
    case Tier::kAvx2: {
      const internal::Ops* ops = internal::GetAvx2Ops();
      KARL_CHECK(ops != nullptr) << ": avx2 tier active but not compiled";
      return *ops;
    }
    case Tier::kAvx512: {
      const internal::Ops* ops = internal::GetAvx512Ops();
      KARL_CHECK(ops != nullptr) << ": avx512 tier active but not compiled";
      return *ops;
    }
  }
  return kScalarOps;
}

bool CpuSupports(Tier tier) {
#if defined(__x86_64__) || defined(__i386__)
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return tier == Tier::kScalar;
#endif
}

// -1 = not yet resolved from the environment.
std::atomic<int> g_active_tier{-1};

}  // namespace

namespace internal {

std::atomic<const Ops*> g_active_ops{nullptr};

const Ops& ResolveActiveOps() {
  const Ops& resolved = OpsForTier(ActiveTier());
  g_active_ops.store(&resolved, std::memory_order_release);
  return resolved;
}

}  // namespace internal

std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Tier ParseTier(std::string_view name) {
  if (name == "scalar") return Tier::kScalar;
  if (name == "avx2") return Tier::kAvx2;
  if (name == "avx512") return Tier::kAvx512;
  KARL_CHECK(false) << ": invalid KARL_SIMD value \"" << name
                    << "\"; expected scalar|avx2|avx512";
  return Tier::kScalar;
}

bool TierCompiled(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return internal::GetAvx2Ops() != nullptr;
    case Tier::kAvx512:
      return internal::GetAvx512Ops() != nullptr;
  }
  return false;
}

bool TierSupported(Tier tier) { return TierCompiled(tier) && CpuSupports(tier); }

Tier DetectBestTier() {
  if (TierSupported(Tier::kAvx512)) return Tier::kAvx512;
  if (TierSupported(Tier::kAvx2)) return Tier::kAvx2;
  return Tier::kScalar;
}

Tier ResolveTier(const char* env_value) {
  if (env_value == nullptr || env_value[0] == '\0') return DetectBestTier();
  const Tier tier = ParseTier(env_value);
  KARL_CHECK(TierSupported(tier))
      << ": KARL_SIMD=" << env_value
      << " requests a tier this build/CPU cannot run (compiled="
      << TierCompiled(tier) << ")";
  return tier;
}

Tier ActiveTier() {
  const int cached = g_active_tier.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<Tier>(cached);
  // A concurrent first call resolves to the same value, so the race is
  // benign.
  const Tier resolved = ResolveTier(std::getenv("KARL_SIMD"));
  g_active_tier.store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

void ForceTier(Tier tier) {
  KARL_CHECK(TierSupported(tier))
      << ": cannot force unsupported tier " << TierName(tier);
  g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
  internal::g_active_ops.store(&OpsForTier(tier), std::memory_order_release);
}

void ExpBlock(std::span<const double> in, std::span<double> out) {
  KARL_CHECK(in.size() == out.size())
      << ": ExpBlock of mismatched lengths " << in.size() << " vs "
      << out.size();
  internal::ActiveOps().exp_block(in.data(), out.data(), in.size());
}

}  // namespace karl::core::simd
