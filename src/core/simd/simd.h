// Runtime-dispatched SIMD kernels for the evaluator hot path: the O(d)
// linear-bound aggregation (dot products against node summaries) and the
// exact leaf kernel sums over the blocked SoA layout (soa_block.h).
//
// Three tiers — scalar / AVX2+FMA / AVX-512F — selected once per process
// by CPUID, overridable via the KARL_SIMD environment variable
// ("scalar" | "avx2" | "avx512"). Requesting a tier the build or the CPU
// cannot run, or any other value, crashes loudly via KARL_CHECK; silent
// fallback would invalidate benchmark comparisons.
//
// Accuracy contract (the exact statement DESIGN.md §14 documents and
// tests/simd_test.cc pins):
//
//  * The scalar tier is the oracle: bit-identical to the pre-SIMD code
//    (plain ascending loops, Kahan leaf accumulation). KARL_SIMD=scalar
//    therefore reproduces historical results exactly.
//  * Vector tiers reorder reductions and use a polynomial vector exp, so
//    results are NOT bit-identical; they agree with the scalar oracle
//    within the relative tolerances below, measured against the sum of
//    ABSOLUTE contributions (the natural conditioning scale for a
//    reordered sum — cancellation can make the signed result arbitrarily
//    smaller than the mass that produced it).
//  * Bounds remain bounds: lb ≤ exact ≤ ub invariants are checked by the
//    auditor against whatever tier is active, and keep holding because
//    the evaluator's audit tolerances (1e-6/1e-7 relative) dominate the
//    contract tolerances below by orders of magnitude.

#ifndef KARL_CORE_SIMD_SIMD_H_
#define KARL_CORE_SIMD_SIMD_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>

#include "core/kernel.h"
#include "core/simd/soa_block.h"
#include "util/check.h"

namespace karl::core::simd {

/// Instruction-set tiers, ordered by preference. Values are stable: the
/// karl_simd_tier gauge exports them numerically.
enum class Tier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// |vector − scalar| ≤ this × Σ|wᵢ·K(q,pᵢ)| for every leaf-range
/// aggregate. Budget: reordered accumulation over ≤ ~10⁶ terms
/// (n·ε ≈ 1e-10) plus per-term profile-argument rounding amplified by
/// the profile derivative (≤ ~1e-12 for arguments that keep the kernel
/// above underflow).
inline constexpr double kLeafSumRelTolerance = 1e-9;

/// |vector − scalar| ≤ this × Σ|aᵢ·bᵢ| for Dot / SquaredNorm (pure
/// reordering of ≤ ~10³-dim reductions: d·ε plus slack).
inline constexpr double kDotRelTolerance = 1e-12;

/// Vector exp error vs std::exp in units-in-last-place, for arguments in
/// [-708, 709] with normal (non-subnormal) results. Arguments below
/// -708 are clamped, so results smaller than ~3.3e-308 carry an
/// absolute error of at most kVectorExpUnderflowAbs instead.
inline constexpr int kVectorExpUlpBound = 4;
inline constexpr double kVectorExpUnderflowAbs = 1e-307;

/// Human-readable tier name ("scalar" / "avx2" / "avx512").
std::string_view TierName(Tier tier);

/// Parses a KARL_SIMD value. Crashes via KARL_CHECK on anything other
/// than "scalar" / "avx2" / "avx512".
Tier ParseTier(std::string_view name);

/// True iff this binary contains a real (intrinsics) implementation of
/// the tier. The scalar tier is always compiled.
bool TierCompiled(Tier tier);

/// True iff the tier is compiled in AND the running CPU supports it.
bool TierSupported(Tier tier);

/// Best tier the host can run: avx512 ≻ avx2 ≻ scalar.
Tier DetectBestTier();

/// Resolves the tier from a KARL_SIMD-style value; nullptr means
/// auto-detect. Crashes via KARL_CHECK when the value is invalid or
/// names an unsupported tier.
Tier ResolveTier(const char* env_value);

/// The process-wide active tier, resolved from getenv("KARL_SIMD") on
/// first use and cached. Thread-safe.
Tier ActiveTier();

/// Test/bench seam: overrides the active tier (must be supported).
/// Takes effect for every subsequent hot-path call in the process.
void ForceTier(Tier tier);

namespace internal {

/// Per-tier implementation table. One instance per compiled tier;
/// re-read through the cached pointer below on every hot-path call so
/// ForceTier takes effect immediately.
struct Ops {
  double (*dot)(const double* a, const double* b, size_t n);
  double (*sqnorm)(const double* a, size_t n);
  double (*leaf_aggregate)(const KernelParams& kernel,
                           const SoaLeafBlocks& soa, uint32_t begin,
                           uint32_t end, const double* q);
  void (*exp_block)(const double* in, double* out, size_t n);
};

/// Defined in kernels_avx2.cc / kernels_avx512.cc; null when that
/// translation unit was built without the ISA (stub fallback).
const Ops* GetAvx2Ops();
const Ops* GetAvx512Ops();

/// Ops table of the active tier; null until first resolution. Written
/// by ResolveActiveOps and ForceTier only. The hot-path wrappers below
/// are header-inline reading this one atomic: a d=8 linear-bound dot is
/// ~10 cycles of real work, so an extra call layer plus a dispatch
/// switch per call would eat most of the vector win.
extern std::atomic<const Ops*> g_active_ops;

/// Slow path: resolves the tier (env / CPUID), caches its Ops table.
const Ops& ResolveActiveOps();

inline const Ops& ActiveOps() {
  const Ops* ops = g_active_ops.load(std::memory_order_acquire);
  return ops != nullptr ? *ops : ResolveActiveOps();
}

}  // namespace internal

/// Dot product of two equal-length vectors under the active tier.
/// Scalar tier is bit-identical to util::Dot.
inline double Dot(std::span<const double> a, std::span<const double> b) {
  KARL_DCHECK(a.size() == b.size())
      << ": Dot of mismatched lengths " << a.size() << " vs " << b.size();
  return internal::ActiveOps().dot(a.data(), b.data(), a.size());
}

/// ‖a‖² under the active tier; scalar tier matches util::SquaredNorm.
inline double SquaredNorm(std::span<const double> a) {
  return internal::ActiveOps().sqnorm(a.data(), a.size());
}

/// Σ wᵢ·K(q, pᵢ) over SoA rows [begin, end) under the active tier.
/// Scalar tier is bit-identical to the legacy Kahan row loop.
inline double LeafAggregate(const KernelParams& kernel,
                            const SoaLeafBlocks& soa, uint32_t begin,
                            uint32_t end, std::span<const double> q) {
  KARL_DCHECK(q.size() == soa.dims())
      << ": query dim " << q.size() << " vs SoA dim " << soa.dims();
  KARL_DCHECK(end <= soa.rows())
      << ": range end " << end << " past " << soa.rows() << " rows";
  if (begin >= end) return 0.0;
  return internal::ActiveOps().leaf_aggregate(kernel, soa, begin, end,
                                              q.data());
}

/// out[i] = exp(in[i]) under the active tier — the seam simd_test uses
/// to pin kVectorExpUlpBound per tier. Spans must have equal length.
void ExpBlock(std::span<const double> in, std::span<double> out);

}  // namespace karl::core::simd

#endif  // KARL_CORE_SIMD_SIMD_H_
