#include "core/simd/soa_block.h"

#include "util/check.h"

namespace karl::core::simd {

void SoaLeafBlocks::Build(const data::Matrix& points,
                          std::span<const double> weights) {
  KARL_CHECK(weights.size() == points.rows())
      << ": " << weights.size() << " weights for " << points.rows()
      << " points";
  rows_ = points.rows();
  dims_ = points.cols();
  num_blocks_ = (rows_ + kBlockPoints - 1) / kBlockPoints;
  data_.assign(num_blocks_ * dims_ * kBlockPoints, 0.0);
  weights_.assign(num_blocks_ * kBlockPoints, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const size_t block = i / kBlockPoints;
    const size_t lane = i % kBlockPoints;
    const auto row = points.Row(i);
    double* base = data_.data() + block * dims_ * kBlockPoints + lane;
    for (size_t j = 0; j < dims_; ++j) base[j * kBlockPoints] = row[j];
    weights_[i] = weights[i];
  }
}

}  // namespace karl::core::simd
