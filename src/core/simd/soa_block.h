// Blocked structure-of-arrays (SoA) leaf storage for the vectorized
// evaluator hot path (see DESIGN.md §14).
//
// The tree's permuted row-major point matrix is great for pointer-chased
// per-row access but hostile to SIMD: gathering one dimension across 8
// points touches 8 cache lines. SoaLeafBlocks re-materialises the SAME
// permuted order as fixed-size blocks of kBlockPoints points, dimension-
// major inside each block:
//
//   data[(block*d + dim)*kBlockPoints + lane]   lane = row % kBlockPoints
//
// so a vector load of lanes 0..7 of one dimension is one contiguous,
// cache-friendly read. Weights are blocked the same way; padding lanes
// past the last real row carry weight 0 and coordinate 0, which makes
// every kernel contribution of a pad lane exactly 0 without branches.
//
// The layout is blocked over the ENTIRE permuted array, not per leaf:
// any node range [begin, end) — a real leaf, a level-capped effective
// leaf, or the full array for QueryExact — maps onto whole blocks plus
// at most two partial blocks handled with masked weights.

#ifndef KARL_CORE_SIMD_SOA_BLOCK_H_
#define KARL_CORE_SIMD_SOA_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/matrix.h"

namespace karl::core::simd {

/// Dimension-major blocked copy of a permuted point set + weights.
class SoaLeafBlocks {
 public:
  /// Points per block == the widest vector width we target (AVX-512:
  /// 8 doubles). AVX2 processes a block as two 4-lane half-blocks.
  static constexpr size_t kBlockPoints = 8;

  SoaLeafBlocks() = default;

  /// (Re)builds the blocked layout from `points` (row-major, already in
  /// tree-permuted order) and the matching `weights`. O(n·d) copy.
  void Build(const data::Matrix& points, std::span<const double> weights);

  /// True iff Build has not been called (or was called on empty input).
  bool empty() const { return rows_ == 0; }

  size_t rows() const { return rows_; }
  size_t dims() const { return dims_; }
  size_t num_blocks() const { return num_blocks_; }

  /// The kBlockPoints lanes of dimension `dim` in block `block`.
  const double* BlockDim(size_t block, size_t dim) const {
    return data_.data() + (block * dims_ + dim) * kBlockPoints;
  }

  /// The kBlockPoints weight lanes of block `block` (pad lanes are 0).
  const double* BlockWeights(size_t block) const {
    return weights_.data() + block * kBlockPoints;
  }

  /// Scalar gather of one coordinate — the round-trip accessor the P7
  /// property fuzz uses to prove Build is a bit-exact re-layout.
  double At(size_t row, size_t dim) const {
    return *(BlockDim(row / kBlockPoints, dim) + row % kBlockPoints);
  }

  /// Weight of one row through the blocked layout (pad-free rows only).
  double WeightAt(size_t row) const {
    return weights_[row];
  }

  /// Heap bytes held by the blocked copy (index memory accounting).
  size_t MemoryUsageBytes() const {
    return (data_.capacity() + weights_.capacity()) * sizeof(double);
  }

 private:
  size_t rows_ = 0;
  size_t dims_ = 0;
  size_t num_blocks_ = 0;
  std::vector<double> data_;     // num_blocks * dims * kBlockPoints.
  std::vector<double> weights_;  // num_blocks * kBlockPoints.
};

}  // namespace karl::core::simd

#endif  // KARL_CORE_SIMD_SOA_BLOCK_H_
