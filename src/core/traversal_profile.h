// Opt-in per-query traversal profile — the EXPLAIN output of the
// evaluator. Where EvalStats says how much work a query cost, the
// profile says where in the tree the work (and the pruning) happened and
// how fast the global [lb, ub] interval converged, which is exactly
// where KARL's linear-bound advantage over SOTA's constant bounds lives
// (paper §4–5).
//
// Collection is pay-as-you-go: callers pass a TraversalProfile* to
// QueryThreshold / QueryApproximate, and a null pointer (the default)
// costs one predictable branch per admitted node — no allocation, no
// atomics, nothing per refinement iteration. The struct is plain data;
// JSON rendering lives in the serving layer (server/protocol.h) so the
// core stays presentation-free.
//
// Reconciliation contract (tested in evaluator_test): against the
// EvalStats of the same query,
//   Σ levels[d].kernel_evals == stats.kernel_evals
//   Σ levels[d].expanded     == stats.nodes_expanded
//   iterations               == stats.iterations
//   Σ visited == Σ expanded + Σ pruned + Σ exact_leaves
// and timeline.size() == iterations + 1 unless truncated.

#ifndef KARL_CORE_TRAVERSAL_PROFILE_H_
#define KARL_CORE_TRAVERSAL_PROFILE_H_

#include <cstdint>
#include <vector>

#include "core/bounds.h"

namespace karl::core {

/// Human-readable bound family of a BoundKind: KARL's bounds are linear
/// functions of the query–pivot distance ("linear", including the
/// chord/tangent ablations), SOTA's are per-node constants ("constant").
/// Pruning in a profile is attributed to the evaluator's family.
const char* BoundFamilyName(BoundKind kind);

/// See file comment.
struct TraversalProfile {
  /// Counters for one tree depth (root = 0; Type III merges the P⁺ and
  /// P⁻ trees by depth).
  struct Level {
    uint64_t visited = 0;       ///< Nodes bounded or folded at this depth.
    uint64_t expanded = 0;      ///< Frontier nodes replaced by children.
    uint64_t pruned = 0;        ///< Frontier nodes never expanded — the
                                ///< bound was tight enough to stop.
    uint64_t exact_leaves = 0;  ///< Effective leaves folded exactly.
    uint64_t kernel_evals = 0;  ///< Exact kernel evaluations at this depth.
  };

  /// One point of the bound-convergence timeline: the global interval
  /// and cumulative kernel evaluations after an iteration. Entry 0 is
  /// the state after the initial root admission(s).
  struct Iteration {
    double lb = 0.0;
    double ub = 0.0;
    uint64_t kernel_evals = 0;
  };

  /// Timeline cap; beyond it `timeline_truncated` is set and entries are
  /// dropped (per-level counters are never truncated).
  static constexpr size_t kMaxTimeline = 512;

  /// Bound configuration the query ran with.
  BoundKind bounds = BoundKind::kKarl;

  /// Indexed by tree depth; size = deepest touched level + 1.
  std::vector<Level> levels;

  std::vector<Iteration> timeline;
  bool timeline_truncated = false;

  /// Totals, mirroring EvalStats for the same query.
  uint64_t iterations = 0;
  uint64_t nodes_expanded = 0;
  uint64_t kernel_evals = 0;

  /// Resets to the just-constructed state (capacity retained).
  void Clear() {
    levels.clear();
    timeline.clear();
    timeline_truncated = false;
    iterations = 0;
    nodes_expanded = 0;
    kernel_evals = 0;
  }

  /// Totals over the per-level counters.
  uint64_t TotalVisited() const {
    uint64_t n = 0;
    for (const Level& l : levels) n += l.visited;
    return n;
  }
  uint64_t TotalPruned() const {
    uint64_t n = 0;
    for (const Level& l : levels) n += l.pruned;
    return n;
  }
  uint64_t TotalExactLeaves() const {
    uint64_t n = 0;
    for (const Level& l : levels) n += l.exact_leaves;
    return n;
  }
};

}  // namespace karl::core

#endif  // KARL_CORE_TRAVERSAL_PROFILE_H_
