#include "core/tuning.h"

#include <algorithm>
#include <cmath>

#include "util/stopwatch.h"

namespace karl::core {

double MeasureThroughput(const Engine& engine, const data::Matrix& queries,
                         const QuerySpec& spec) {
  if (queries.rows() == 0) return 0.0;
  util::Stopwatch timer;
  // volatile sink defeats dead-query elimination.
  volatile double sink = 0.0;
  for (size_t i = 0; i < queries.rows(); ++i) {
    const auto q = queries.Row(i);
    if (spec.kind == QuerySpec::Kind::kThreshold) {
      sink = engine.Tkaq(q, spec.tau) ? 1.0 : 0.0;
    } else {
      sink = engine.Ekaq(q, spec.eps);
    }
  }
  (void)sink;
  const double elapsed = timer.ElapsedSeconds();
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(queries.rows()) / elapsed;
}

std::vector<IndexConfig> DefaultTuningGrid() {
  std::vector<IndexConfig> grid;
  for (const auto kind :
       {index::IndexKind::kKdTree, index::IndexKind::kBallTree}) {
    for (const size_t cap : {10, 20, 40, 80, 160, 320, 640}) {
      grid.push_back({kind, cap});
    }
  }
  return grid;
}

util::Result<OfflineTuneResult> OfflineTune(
    const data::Matrix& points, std::span<const double> weights,
    const EngineOptions& base, const data::Matrix& sample_queries,
    const QuerySpec& spec, const std::vector<IndexConfig>& grid) {
  if (grid.empty()) {
    return util::Status::InvalidArgument("tuning grid must not be empty");
  }
  OfflineTuneResult result;
  double best = -1.0;
  for (const IndexConfig& config : grid) {
    EngineOptions options = base;
    options.index_kind = config.kind;
    options.leaf_capacity = config.leaf_capacity;
    auto engine = Engine::Build(points, weights, options);
    if (!engine.ok()) return engine.status();
    const double qps =
        MeasureThroughput(engine.value(), sample_queries, spec);
    result.candidates.push_back({config, qps});
    if (qps > best) {
      best = qps;
      result.best = config;
    }
  }
  return result;
}

util::Result<InsituResult> InsituRun(const data::Matrix& points,
                                     std::span<const double> weights,
                                     const EngineOptions& base,
                                     const data::Matrix& queries,
                                     const QuerySpec& spec,
                                     double sample_fraction) {
  if (sample_fraction <= 0.0 || sample_fraction >= 1.0) {
    return util::Status::InvalidArgument(
        "sample_fraction must be in (0, 1)");
  }
  InsituResult result;
  util::Stopwatch total_timer;

  // Phase 1: build one deep kd-tree (the paper's recommendation — lowest
  // construction cost). Leaf capacity 4 keeps node count bounded while
  // still exposing ~log2(n) candidate levels.
  util::Stopwatch build_timer;
  EngineOptions options = base;
  options.index_kind = index::IndexKind::kKdTree;
  options.leaf_capacity = 4;
  auto engine = Engine::Build(points, weights, options);
  if (!engine.ok()) return engine.status();
  result.build_seconds = build_timer.ElapsedSeconds();

  const size_t max_depth = engine.value().plus_tree().max_depth();

  // Phase 2: tuning on a query sample. Candidate levels are every second
  // level plus the full depth; the sample is partitioned across them.
  util::Stopwatch tune_timer;
  std::vector<int> levels;
  for (size_t level = 2; level < max_depth; level += 2) {
    levels.push_back(static_cast<int>(level));
  }
  levels.push_back(static_cast<int>(max_depth));

  const size_t sample_total = std::max<size_t>(
      levels.size(),
      static_cast<size_t>(std::llround(sample_fraction *
                                       static_cast<double>(queries.rows()))));
  const size_t per_level = std::max<size_t>(1, sample_total / levels.size());

  // The level cap lives in the evaluator options; rebuild just the
  // evaluator (cheap) per candidate by re-creating it over the same trees.
  double best_qps = -1.0;
  size_t cursor = 0;
  for (const int level : levels) {
    core::Evaluator::Options eval_options;
    eval_options.bounds = base.bounds;
    eval_options.max_level = level;
    auto capped = core::Evaluator::Create(&engine.value().plus_tree(),
                                          engine.value().minus_tree(),
                                          base.kernel, eval_options);
    if (!capped.ok()) return capped.status();

    const size_t begin = cursor;
    const size_t end = std::min(queries.rows(), begin + per_level);
    cursor = end;
    if (begin >= end) break;

    util::Stopwatch timer;
    volatile double sink = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const auto q = queries.Row(i);
      if (spec.kind == QuerySpec::Kind::kThreshold) {
        sink = capped.value().QueryThreshold(q, spec.tau) ? 1.0 : 0.0;
      } else {
        sink = capped.value().QueryApproximate(q, spec.eps);
      }
    }
    (void)sink;
    const double elapsed = std::max(timer.ElapsedSeconds(), 1e-9);
    const double qps = static_cast<double>(end - begin) / elapsed;
    if (qps > best_qps) {
      best_qps = qps;
      result.best_level = level;
    }
  }
  result.tuning_seconds = tune_timer.ElapsedSeconds();

  // Phase 3: run the remaining queries at the chosen level.
  util::Stopwatch query_timer;
  core::Evaluator::Options eval_options;
  eval_options.bounds = base.bounds;
  eval_options.max_level = result.best_level;
  auto chosen = core::Evaluator::Create(&engine.value().plus_tree(),
                                        engine.value().minus_tree(),
                                        base.kernel, eval_options);
  if (!chosen.ok()) return chosen.status();
  volatile double sink = 0.0;
  for (size_t i = cursor; i < queries.rows(); ++i) {
    const auto q = queries.Row(i);
    if (spec.kind == QuerySpec::Kind::kThreshold) {
      sink = chosen.value().QueryThreshold(q, spec.tau) ? 1.0 : 0.0;
    } else {
      sink = chosen.value().QueryApproximate(q, spec.eps);
    }
  }
  (void)sink;
  result.query_seconds = query_timer.ElapsedSeconds();

  const double total = std::max(total_timer.ElapsedSeconds(), 1e-9);
  result.end_to_end_throughput =
      static_cast<double>(queries.rows()) / total;
  return result;
}

}  // namespace karl::core
