// Automatic index tuning (paper §III-C).
//
// Offline: given ample time, build every candidate (index kind × leaf
// capacity) and measure throughput on a small query sample; recommend the
// fastest (KARL_auto).
//
// In-situ/online: when the dataset arrives with the queries, build ONE
// deep kd-tree and simulate its top-i-level prefixes T_i via the
// evaluator's level cap; spend a small sample of the incoming queries
// picking the best level, then run the rest there. End-to-end time
// includes build + tuning.

#ifndef KARL_CORE_TUNING_H_
#define KARL_CORE_TUNING_H_

#include <vector>

#include "core/karl.h"
#include "util/status.h"

namespace karl::core {

/// One tuning candidate: index structure + leaf capacity.
struct IndexConfig {
  index::IndexKind kind = index::IndexKind::kKdTree;
  size_t leaf_capacity = 80;
};

/// What query the workload runs (threshold vs approximate) and with which
/// parameter.
struct QuerySpec {
  enum class Kind { kThreshold, kApproximate };
  Kind kind = Kind::kThreshold;
  double tau = 0.0;  ///< For kThreshold.
  double eps = 0.2;  ///< For kApproximate.
};

/// Runs every query in `queries` against `engine`; returns throughput in
/// queries/second. The workhorse of both tuners and all benchmarks.
double MeasureThroughput(const Engine& engine, const data::Matrix& queries,
                         const QuerySpec& spec);

/// The paper's exponential leaf-capacity grid {10,20,...,640} for both
/// index kinds.
std::vector<IndexConfig> DefaultTuningGrid();

/// Measured performance of one candidate.
struct TuneCandidate {
  IndexConfig config;
  double throughput_qps = 0.0;
};

/// Offline tuning outcome.
struct OfflineTuneResult {
  IndexConfig best;
  std::vector<TuneCandidate> candidates;  ///< In grid order.
};

/// Offline tuner: builds each candidate and measures it on
/// `sample_queries` (paper: 1000 sampled vectors). `base` supplies the
/// kernel/bound settings; its index fields are overridden per candidate.
util::Result<OfflineTuneResult> OfflineTune(
    const data::Matrix& points, std::span<const double> weights,
    const EngineOptions& base, const data::Matrix& sample_queries,
    const QuerySpec& spec, const std::vector<IndexConfig>& grid);

/// In-situ (online) tuning outcome, all times in seconds.
struct InsituResult {
  int best_level = -1;
  double build_seconds = 0.0;
  double tuning_seconds = 0.0;
  double query_seconds = 0.0;
  /// |queries| / (build + tuning + query) — the paper's in-situ metric.
  double end_to_end_throughput = 0.0;
};

/// In-situ runner: builds one deep kd-tree over (points, weights), tunes
/// the traversal level on `sample_fraction` of `queries`, then executes
/// the remainder at the best level. `base` supplies kernel/bounds;
/// index_kind is forced to kd-tree (paper's recommendation: lowest build
/// cost).
util::Result<InsituResult> InsituRun(const data::Matrix& points,
                                     std::span<const double> weights,
                                     const EngineOptions& base,
                                     const data::Matrix& queries,
                                     const QuerySpec& spec,
                                     double sample_fraction = 0.01);

}  // namespace karl::core

#endif  // KARL_CORE_TUNING_H_
