#include "data/csv_io.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/errno.h"

namespace karl::data {

util::Result<Matrix> ParseCsv(const std::string& text,
                              size_t skip_header_rows) {
  Matrix out;
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  std::vector<double> row;
  while (std::getline(in, line)) {
    ++line_number;
    if (line_number <= skip_header_rows) continue;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    row.clear();
    const char* p = line.c_str();
    while (true) {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(p, &end);
      if (end == p) {
        return util::Status::InvalidArgument(
            "csv parse error at line " + std::to_string(line_number) +
            ": expected a number near '" + std::string(p).substr(0, 16) + "'");
      }
      row.push_back(v);
      p = end;
      while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
      if (*p == '\0') break;
      if (*p != ',') {
        return util::Status::InvalidArgument(
            "csv parse error at line " + std::to_string(line_number) +
            ": expected ',' near '" + std::string(p).substr(0, 16) + "'");
      }
      ++p;
    }
    if (!out.empty() && row.size() != out.cols()) {
      return util::Status::InvalidArgument(
          "csv parse error at line " + std::to_string(line_number) +
          ": inconsistent field count (" + std::to_string(row.size()) +
          " vs " + std::to_string(out.cols()) + ")");
    }
    out.AppendRow(row);
  }
  return out;
}

util::Result<Matrix> ReadCsvFile(const std::string& path,
                                 size_t skip_header_rows) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open " + path + ": " +
                                 util::ErrnoString(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsv(buf.str(), skip_header_rows);
}

std::string WriteCsv(const Matrix& matrix) {
  std::ostringstream out;
  out.precision(17);
  for (size_t i = 0; i < matrix.rows(); ++i) {
    const auto row = matrix.Row(i);
    for (size_t j = 0; j < row.size(); ++j) {
      if (j > 0) out << ',';
      out << row[j];
    }
    out << '\n';
  }
  return out.str();
}

util::Status WriteCsvFile(const std::string& path, const Matrix& matrix) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return util::Status::IOError("cannot open " + path + " for writing: " +
                                 util::ErrnoString(errno));
  }
  out << WriteCsv(matrix);
  if (!out) return util::Status::IOError("write failed for " + path);
  return util::Status::OK();
}

}  // namespace karl::data
