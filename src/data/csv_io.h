// Minimal CSV reader/writer for dense numeric datasets (the UCI
// repository's delivery format for miniboone/home/susy).

#ifndef KARL_DATA_CSV_IO_H_
#define KARL_DATA_CSV_IO_H_

#include <string>

#include "data/matrix.h"
#include "util/status.h"

namespace karl::data {

/// Parses comma-separated numeric text into a Matrix. Every data line must
/// have the same number of fields. `skip_header_rows` leading lines are
/// ignored (column headers).
util::Result<Matrix> ParseCsv(const std::string& text,
                              size_t skip_header_rows = 0);

/// Reads and parses a CSV file from disk.
util::Result<Matrix> ReadCsvFile(const std::string& path,
                                 size_t skip_header_rows = 0);

/// Serializes a Matrix as CSV text (17 significant digits, round-trip safe).
std::string WriteCsv(const Matrix& matrix);

/// Writes a Matrix to disk as CSV.
util::Status WriteCsvFile(const std::string& path, const Matrix& matrix);

}  // namespace karl::data

#endif  // KARL_DATA_CSV_IO_H_
