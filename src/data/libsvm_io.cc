#include "data/libsvm_io.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "util/errno.h"

namespace karl::data {

namespace {

struct SparseRow {
  double label = 0.0;
  // (1-based index, value) pairs in file order.
  std::vector<std::pair<size_t, double>> features;
};

// Parses "<label> <i>:<v> ..." into a SparseRow. Returns false with
// `error` set on malformed input.
bool ParseLine(const std::string& line, SparseRow* row, std::string* error) {
  const char* p = line.c_str();
  char* end = nullptr;
  errno = 0;
  row->label = std::strtod(p, &end);
  if (end == p) {
    *error = "missing label";
    return false;
  }
  p = end;
  row->features.clear();
  while (*p != '\0') {
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '\r' || *p == '#') break;
    errno = 0;
    const long index = std::strtol(p, &end, 10);
    if (end == p || *end != ':' || index <= 0) {
      *error = "malformed feature (expected <index>:<value>)";
      return false;
    }
    p = end + 1;  // Skip ':'.
    const double value = std::strtod(p, &end);
    if (end == p) {
      *error = "malformed feature value";
      return false;
    }
    p = end;
    row->features.emplace_back(static_cast<size_t>(index), value);
  }
  return true;
}

}  // namespace

util::Result<LabeledDataset> ParseLibsvm(const std::string& text,
                                         size_t dimensions) {
  std::vector<SparseRow> rows;
  size_t max_index = 0;
  std::istringstream in(text);
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Skip blank and comment-only lines.
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    SparseRow row;
    std::string error;
    if (!ParseLine(line, &row, &error)) {
      return util::Status::InvalidArgument("libsvm parse error at line " +
                                           std::to_string(line_number) + ": " +
                                           error);
    }
    for (const auto& [idx, _] : row.features) max_index = std::max(max_index, idx);
    rows.push_back(std::move(row));
  }

  const size_t d = dimensions > 0 ? dimensions : max_index;
  if (dimensions > 0 && max_index > dimensions) {
    return util::Status::InvalidArgument(
        "feature index " + std::to_string(max_index) +
        " exceeds requested dimensionality " + std::to_string(dimensions));
  }

  LabeledDataset out;
  out.points = Matrix(rows.size(), d);
  out.labels.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    out.labels.push_back(rows[i].label);
    auto dst = out.points.MutableRow(i);
    for (const auto& [idx, value] : rows[i].features) dst[idx - 1] = value;
  }
  return out;
}

util::Result<LabeledDataset> ReadLibsvmFile(const std::string& path,
                                            size_t dimensions) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open " + path + ": " +
                                 util::ErrnoString(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseLibsvm(buf.str(), dimensions);
}

std::string WriteLibsvm(const LabeledDataset& dataset) {
  std::ostringstream out;
  out.precision(17);
  for (size_t i = 0; i < dataset.points.rows(); ++i) {
    out << dataset.labels[i];
    const auto row = dataset.points.Row(i);
    for (size_t j = 0; j < row.size(); ++j) {
      if (row[j] != 0.0) out << ' ' << (j + 1) << ':' << row[j];
    }
    out << '\n';
  }
  return out.str();
}

util::Status WriteLibsvmFile(const std::string& path,
                             const LabeledDataset& dataset) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return util::Status::IOError("cannot open " + path + " for writing: " +
                                 util::ErrnoString(errno));
  }
  out << WriteLibsvm(dataset);
  if (!out) return util::Status::IOError("write failed for " + path);
  return util::Status::OK();
}

}  // namespace karl::data
