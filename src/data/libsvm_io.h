// Reader/writer for the LIBSVM sparse text format:
//
//   <label> <index>:<value> <index>:<value> ...
//
// Indices are 1-based; omitted features are zero. This is the on-disk
// format of all the paper's SVM datasets (a9a, ijcnn1, covtype, ...).

#ifndef KARL_DATA_LIBSVM_IO_H_
#define KARL_DATA_LIBSVM_IO_H_

#include <string>
#include <vector>

#include "data/matrix.h"
#include "util/status.h"

namespace karl::data {

/// A dataset with one numeric label per row (class id or regression
/// target), as stored in LIBSVM files.
struct LabeledDataset {
  Matrix points;
  std::vector<double> labels;
};

/// Parses LIBSVM-format text into a dense LabeledDataset.
///
/// `dimensions` fixes the output width; pass 0 to infer it as the maximum
/// feature index present. Malformed lines produce an InvalidArgument
/// status naming the offending line.
util::Result<LabeledDataset> ParseLibsvm(const std::string& text,
                                         size_t dimensions = 0);

/// Reads and parses a LIBSVM file from disk.
util::Result<LabeledDataset> ReadLibsvmFile(const std::string& path,
                                            size_t dimensions = 0);

/// Serializes a LabeledDataset to LIBSVM text. Zero-valued features are
/// omitted (the format's sparse convention).
std::string WriteLibsvm(const LabeledDataset& dataset);

/// Writes a LabeledDataset to disk in LIBSVM format.
util::Status WriteLibsvmFile(const std::string& path,
                             const LabeledDataset& dataset);

}  // namespace karl::data

#endif  // KARL_DATA_LIBSVM_IO_H_
