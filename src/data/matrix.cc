#include "data/matrix.h"

#include "util/check.h"

namespace karl::data {

void Matrix::AppendRow(std::span<const double> row) {
  KARL_CHECK(!is_view()) << ": cannot append to a Matrix view";
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  }
  KARL_CHECK(row.size() == cols_)
      << ": appended row has " << row.size() << " values, want " << cols_;
  values_.insert(values_.end(), row.begin(), row.end());
  ++rows_;
}

Matrix Matrix::SelectRows(std::span<const size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    KARL_CHECK(indices[i] < rows_)
        << ": selected row " << indices[i] << " of " << rows_;
    const auto src = Row(indices[i]);
    auto dst = out.MutableRow(i);
    for (size_t j = 0; j < cols_; ++j) dst[j] = src[j];
  }
  return out;
}

Matrix Matrix::TruncateColumns(size_t k) const {
  KARL_CHECK(k <= cols_)
      << ": cannot truncate to " << k << " of " << cols_ << " columns";
  Matrix out(rows_, k);
  for (size_t i = 0; i < rows_; ++i) {
    const auto src = Row(i);
    auto dst = out.MutableRow(i);
    for (size_t j = 0; j < k; ++j) dst[j] = src[j];
  }
  return out;
}

}  // namespace karl::data
