#include "data/matrix.h"

namespace karl::data {

void Matrix::AppendRow(std::span<const double> row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  }
  assert(row.size() == cols_);
  values_.insert(values_.end(), row.begin(), row.end());
  ++rows_;
}

Matrix Matrix::SelectRows(std::span<const size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    assert(indices[i] < rows_);
    const auto src = Row(indices[i]);
    auto dst = out.MutableRow(i);
    for (size_t j = 0; j < cols_; ++j) dst[j] = src[j];
  }
  return out;
}

Matrix Matrix::TruncateColumns(size_t k) const {
  assert(k <= cols_);
  Matrix out(rows_, k);
  for (size_t i = 0; i < rows_; ++i) {
    const auto src = Row(i);
    auto dst = out.MutableRow(i);
    for (size_t j = 0; j < k; ++j) dst[j] = src[j];
  }
  return out;
}

}  // namespace karl::data
