// Row-major dense dataset container.
//
// A Matrix stores n points of dimensionality d contiguously; rows are the
// points. This is the canonical in-memory representation for every dataset
// KARL indexes or queries against.

#ifndef KARL_DATA_MATRIX_H_
#define KARL_DATA_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/check.h"

namespace karl::data {

/// Dense row-major matrix of doubles; each row is one data point.
///
/// A Matrix either owns its storage (the default) or is a non-owning
/// *view* over external memory (Matrix::View) — e.g. a section of an
/// mmap(2)-ed model snapshot. Views are read-only: every mutating
/// operation checks against view mode, and the viewed memory must
/// outlive the Matrix.
class Matrix {
 public:
  /// Constructs an empty 0 x 0 matrix.
  Matrix() = default;

  /// Constructs an n x d matrix of zeros.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), values_(rows * cols, 0.0) {}

  /// Constructs from flat row-major data; `values.size()` must equal
  /// rows * cols.
  Matrix(size_t rows, size_t cols, std::vector<double> values)
      : rows_(rows), cols_(cols), values_(std::move(values)) {
    KARL_CHECK(values_.size() == rows_ * cols_)
        << ": flat data has " << values_.size() << " values, want "
        << rows_ << "x" << cols_;
  }

  /// Wraps external row-major storage without copying. `data` must stay
  /// valid (and unchanged) for the lifetime of the returned Matrix and
  /// anything derived from it.
  static Matrix View(size_t rows, size_t cols, const double* data) {
    KARL_CHECK(data != nullptr || rows * cols == 0)
        << ": null data for a " << rows << "x" << cols << " view";
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.view_ = data;
    return m;
  }

  /// True iff this matrix is a non-owning view of external memory.
  bool is_view() const { return view_ != nullptr; }

  /// Number of points (rows).
  size_t rows() const { return rows_; }

  /// Dimensionality (columns).
  size_t cols() const { return cols_; }

  /// True iff the matrix holds no data.
  bool empty() const { return rows_ == 0; }

  /// Immutable view of row `i`.
  std::span<const double> Row(size_t i) const {
    KARL_DCHECK(i < rows_) << ": row " << i << " of " << rows_;
    return {data() + i * cols_, cols_};
  }

  /// Mutable view of row `i`. Invalid on a view.
  std::span<double> MutableRow(size_t i) {
    KARL_DCHECK(i < rows_) << ": row " << i << " of " << rows_;
    KARL_DCHECK(!is_view()) << ": cannot mutate a Matrix view";
    return {values_.data() + i * cols_, cols_};
  }

  /// Element accessors.
  double operator()(size_t i, size_t j) const {
    KARL_DCHECK(i < rows_ && j < cols_)
        << ": (" << i << "," << j << ") of " << rows_ << "x" << cols_;
    return data()[i * cols_ + j];
  }
  double& operator()(size_t i, size_t j) {
    KARL_DCHECK(i < rows_ && j < cols_)
        << ": (" << i << "," << j << ") of " << rows_ << "x" << cols_;
    KARL_DCHECK(!is_view()) << ": cannot mutate a Matrix view";
    return values_[i * cols_ + j];
  }

  /// Appends a row; `row.size()` must match cols() (or set cols on the
  /// first row of an empty matrix). Invalid on a view.
  void AppendRow(std::span<const double> row);

  /// Flat row-major storage, valid for owned and view matrices alike.
  std::span<const double> Flat() const { return {data(), rows_ * cols_}; }

  /// Flat row-major storage as the owned vector. Invalid on a view —
  /// prefer Flat() unless vector identity is required.
  const std::vector<double>& values() const {
    KARL_CHECK(!is_view()) << ": values() on a Matrix view; use Flat()";
    return values_;
  }

  /// Returns a new matrix containing the given rows, in order.
  Matrix SelectRows(std::span<const size_t> indices) const;

  /// Returns a new matrix containing only the first `k` columns of every
  /// row. Requires k <= cols().
  Matrix TruncateColumns(size_t k) const;

 private:
  const double* data() const { return view_ != nullptr ? view_ : values_.data(); }

  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> values_;
  const double* view_ = nullptr;  // Non-null iff this is a view.
};

}  // namespace karl::data

#endif  // KARL_DATA_MATRIX_H_
