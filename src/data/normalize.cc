#include "data/normalize.h"

#include <limits>

#include "util/check.h"

namespace karl::data {

NormalizationParams FitMinMax(const Matrix& m, double lo, double hi) {
  NormalizationParams params;
  params.target_lo = lo;
  params.target_hi = hi;
  params.column_min.assign(m.cols(), std::numeric_limits<double>::infinity());
  params.column_max.assign(m.cols(), -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < m.rows(); ++i) {
    const auto row = m.Row(i);
    for (size_t j = 0; j < row.size(); ++j) {
      params.column_min[j] = std::min(params.column_min[j], row[j]);
      params.column_max[j] = std::max(params.column_max[j], row[j]);
    }
  }
  return params;
}

void ApplyNormalization(const NormalizationParams& params, Matrix* m) {
  KARL_CHECK(m->cols() == params.column_min.size())
      << ": matrix has " << m->cols() << " columns but params cover "
      << params.column_min.size();
  const double span = params.target_hi - params.target_lo;
  const double mid = 0.5 * (params.target_lo + params.target_hi);
  for (size_t i = 0; i < m->rows(); ++i) {
    auto row = m->MutableRow(i);
    for (size_t j = 0; j < row.size(); ++j) {
      const double range = params.column_max[j] - params.column_min[j];
      if (range <= 0.0) {
        row[j] = mid;
      } else {
        row[j] = params.target_lo +
                 span * (row[j] - params.column_min[j]) / range;
      }
    }
  }
}

NormalizationParams MinMaxNormalize(Matrix* m, double lo, double hi) {
  NormalizationParams params = FitMinMax(*m, lo, hi);
  ApplyNormalization(params, m);
  return params;
}

}  // namespace karl::data
