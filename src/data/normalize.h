// Feature scaling, matching the paper's preprocessing: SVM data are
// min-max normalised to [0,1]^d (Gaussian kernel) or [-1,1]^d (polynomial
// kernel, LIBSVM's convention).

#ifndef KARL_DATA_NORMALIZE_H_
#define KARL_DATA_NORMALIZE_H_

#include <vector>

#include "data/matrix.h"

namespace karl::data {

/// Per-column affine scaling parameters learned from a dataset, applicable
/// to held-out query points so that train and query live in the same space.
struct NormalizationParams {
  std::vector<double> column_min;
  std::vector<double> column_max;
  double target_lo = 0.0;
  double target_hi = 1.0;
};

/// Computes per-column min/max over `m` for scaling into [lo, hi].
NormalizationParams FitMinMax(const Matrix& m, double lo, double hi);

/// Applies previously fitted parameters in place. Columns that were
/// constant in the fit map to the midpoint of [lo, hi].
void ApplyNormalization(const NormalizationParams& params, Matrix* m);

/// Fits and applies in one step (in place).
NormalizationParams MinMaxNormalize(Matrix* m, double lo, double hi);

}  // namespace karl::data

#endif  // KARL_DATA_NORMALIZE_H_
