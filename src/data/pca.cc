#include "data/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace karl::data {

void JacobiEigenSymmetric(std::vector<double> a, size_t d,
                          std::vector<double>* eigenvalues,
                          std::vector<double>* eigenvectors,
                          int max_sweeps) {
  KARL_CHECK(a.size() == d * d)
      << ": Jacobi input has " << a.size() << " entries, want " << d << "x"
      << d;
  // v starts as identity and accumulates the rotations; its columns end up
  // as the eigenvectors.
  std::vector<double>& v = *eigenvectors;
  v.assign(d * d, 0.0);
  for (size_t i = 0; i < d; ++i) v[i * d + i] = 1.0;

  auto at = [&](std::vector<double>& m, size_t i, size_t j) -> double& {
    return m[i * d + j];
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius mass; stop when numerically diagonal.
    double off = 0.0;
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = i + 1; j < d; ++j) off += a[i * d + j] * a[i * d + j];
    }
    if (off < 1e-22) break;

    for (size_t p = 0; p < d; ++p) {
      for (size_t q = p + 1; q < d; ++q) {
        const double apq = at(a, p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = at(a, p, p);
        const double aqq = at(a, q, q);
        // Classic Jacobi rotation annihilating a[p][q].
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < d; ++k) {
          const double akp = at(a, k, p);
          const double akq = at(a, k, q);
          at(a, k, p) = c * akp - s * akq;
          at(a, k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < d; ++k) {
          const double apk = at(a, p, k);
          const double aqk = at(a, q, k);
          at(a, p, k) = c * apk - s * aqk;
          at(a, q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < d; ++k) {
          const double vkp = at(v, k, p);
          const double vkq = at(v, k, q);
          at(v, k, p) = c * vkp - s * vkq;
          at(v, k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  eigenvalues->resize(d);
  for (size_t i = 0; i < d; ++i) (*eigenvalues)[i] = a[i * d + i];
}

util::Result<PcaModel> PcaModel::Fit(const Matrix& m) {
  if (m.empty()) {
    return util::Status::InvalidArgument("PCA requires a non-empty matrix");
  }
  const size_t n = m.rows();
  const size_t d = m.cols();

  PcaModel model;
  model.mean_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto row = m.Row(i);
    for (size_t j = 0; j < d; ++j) model.mean_[j] += row[j];
  }
  for (auto& v : model.mean_) v /= static_cast<double>(n);

  // Covariance (biased, 1/n) — the normalisation constant does not affect
  // the eigenvectors.
  std::vector<double> cov(d * d, 0.0);
  std::vector<double> centered(d);
  for (size_t i = 0; i < n; ++i) {
    const auto row = m.Row(i);
    for (size_t j = 0; j < d; ++j) centered[j] = row[j] - model.mean_[j];
    for (size_t j = 0; j < d; ++j) {
      const double cj = centered[j];
      if (cj == 0.0) continue;
      double* cov_row = cov.data() + j * d;
      for (size_t k = j; k < d; ++k) cov_row[k] += cj * centered[k];
    }
  }
  for (size_t j = 0; j < d; ++j) {
    for (size_t k = j; k < d; ++k) {
      cov[j * d + k] /= static_cast<double>(n);
      cov[k * d + j] = cov[j * d + k];
    }
  }

  std::vector<double> eigenvalues;
  std::vector<double> eigenvectors;
  JacobiEigenSymmetric(std::move(cov), d, &eigenvalues, &eigenvectors);

  // Sort components by descending eigenvalue.
  std::vector<size_t> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return eigenvalues[a] > eigenvalues[b];
  });

  model.eigenvalues_.resize(d);
  model.components_ = Matrix(d, d);
  for (size_t r = 0; r < d; ++r) {
    const size_t src = order[r];
    model.eigenvalues_[r] = eigenvalues[src];
    auto dst = model.components_.MutableRow(r);
    for (size_t j = 0; j < d; ++j) dst[j] = eigenvectors[j * d + src];
  }
  return model;
}

util::Result<Matrix> PcaModel::Project(const Matrix& m, size_t k) const {
  const size_t d = dimensions();
  if (m.cols() != d) {
    return util::Status::InvalidArgument(
        "matrix dimensionality " + std::to_string(m.cols()) +
        " does not match PCA model dimensionality " + std::to_string(d));
  }
  if (k > d) {
    return util::Status::InvalidArgument(
        "cannot project onto " + std::to_string(k) + " > " +
        std::to_string(d) + " components");
  }
  Matrix out(m.rows(), k);
  std::vector<double> centered(d);
  for (size_t i = 0; i < m.rows(); ++i) {
    const auto row = m.Row(i);
    for (size_t j = 0; j < d; ++j) centered[j] = row[j] - mean_[j];
    auto dst = out.MutableRow(i);
    for (size_t c = 0; c < k; ++c) {
      const auto axis = components_.Row(c);
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) s += centered[j] * axis[j];
      dst[c] = s;
    }
  }
  return out;
}

}  // namespace karl::data
