// Principal component analysis via a cyclic Jacobi eigensolver on the
// covariance matrix. Drives the paper's Figure 12 experiment (varying the
// dimensionality of mnist via PCA reduction).

#ifndef KARL_DATA_PCA_H_
#define KARL_DATA_PCA_H_

#include <vector>

#include "data/matrix.h"
#include "util/status.h"

namespace karl::data {

/// Fitted PCA model: mean vector + principal axes sorted by decreasing
/// eigenvalue. Project any matrix of matching dimensionality onto the
/// first k components.
class PcaModel {
 public:
  /// Fits PCA on `m` (rows = points). Fails on an empty matrix.
  static util::Result<PcaModel> Fit(const Matrix& m);

  /// Projects `m` onto the first `k` principal components. Requires
  /// m.cols() == input dimensionality and k <= that dimensionality.
  util::Result<Matrix> Project(const Matrix& m, size_t k) const;

  /// Eigenvalues of the covariance matrix, descending.
  const std::vector<double>& eigenvalues() const { return eigenvalues_; }

  /// Column means of the training data.
  const std::vector<double>& mean() const { return mean_; }

  /// Input dimensionality the model was fitted on.
  size_t dimensions() const { return mean_.size(); }

 private:
  PcaModel() = default;

  std::vector<double> mean_;
  std::vector<double> eigenvalues_;
  // Row i = i-th principal axis (descending eigenvalue), length d.
  Matrix components_;
};

/// Jacobi eigendecomposition of a symmetric d x d matrix (row-major).
/// Outputs eigenvalues (unsorted) and the matrix of eigenvectors as
/// columns of `eigenvectors`. Exposed for testing.
void JacobiEigenSymmetric(std::vector<double> matrix, size_t d,
                          std::vector<double>* eigenvalues,
                          std::vector<double>* eigenvectors,
                          int max_sweeps = 32);

}  // namespace karl::data

#endif  // KARL_DATA_PCA_H_
