#include "data/sparse_matrix.h"

#include "util/check.h"


namespace karl::data {

SparseMatrix SparseMatrix::FromDense(const Matrix& dense) {
  SparseMatrix out;
  out.cols_ = dense.cols();
  out.row_offsets_.reserve(dense.rows() + 1);
  out.row_offsets_.push_back(0);
  out.sq_norms_.reserve(dense.rows());
  for (size_t i = 0; i < dense.rows(); ++i) {
    const auto row = dense.Row(i);
    double sq = 0.0;
    for (size_t j = 0; j < row.size(); ++j) {
      if (row[j] != 0.0) {
        out.entries_.push_back({static_cast<uint32_t>(j), row[j]});
        sq += row[j] * row[j];
      }
    }
    out.row_offsets_.push_back(out.entries_.size());
    out.sq_norms_.push_back(sq);
  }
  return out;
}

double SparseMatrix::DotDense(size_t i, std::span<const double> dense) const {
  KARL_DCHECK(dense.size() == cols_)
      << ": dense vector has " << dense.size() << " entries, want "
      << cols_;
  double s = 0.0;
  for (const Entry& e : Row(i)) s += e.value * dense[e.column];
  return s;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows(), cols_);
  for (size_t i = 0; i < rows(); ++i) {
    auto row = out.MutableRow(i);
    for (const Entry& e : Row(i)) row[e.column] = e.value;
  }
  return out;
}

}  // namespace karl::data
