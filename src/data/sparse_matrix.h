// Compressed sparse row (CSR) point-set storage and sparse kernel scans.
//
// LIBSVM stores and evaluates data sparsely; this substrate mirrors that
// code path so the benchmark's LIBSVM baseline (and users with genuinely
// sparse data, e.g. a9a's one-hot features) computes kernel aggregates
// through sparse dot products.

#ifndef KARL_DATA_SPARSE_MATRIX_H_
#define KARL_DATA_SPARSE_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/matrix.h"

namespace karl::data {

/// Immutable CSR matrix of doubles.
class SparseMatrix {
 public:
  /// One stored entry: column index + value.
  struct Entry {
    uint32_t column;
    double value;
  };

  /// Builds CSR from a dense matrix, dropping zeros.
  static SparseMatrix FromDense(const Matrix& dense);

  /// Number of rows.
  size_t rows() const { return row_offsets_.size() - 1; }

  /// Logical column count.
  size_t cols() const { return cols_; }

  /// Stored (non-zero) entry count.
  size_t num_entries() const { return entries_.size(); }

  /// Entries of row i.
  std::span<const Entry> Row(size_t i) const {
    return {entries_.data() + row_offsets_[i],
            row_offsets_[i + 1] - row_offsets_[i]};
  }

  /// ||row_i||² (precomputed).
  double RowSquaredNorm(size_t i) const { return sq_norms_[i]; }

  /// Sparse dot product of row i with a dense vector.
  double DotDense(size_t i, std::span<const double> dense) const;

  /// Reconstructs the dense form (testing / interop).
  Matrix ToDense() const;

 private:
  SparseMatrix() = default;

  size_t cols_ = 0;
  std::vector<size_t> row_offsets_;  // rows()+1 entries.
  std::vector<Entry> entries_;
  std::vector<double> sq_norms_;
};

}  // namespace karl::data

#endif  // KARL_DATA_SPARSE_MATRIX_H_
