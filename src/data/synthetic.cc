#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "data/normalize.h"
#include "util/check.h"

namespace karl::data {

Matrix SampleGaussianMixture(const std::vector<MixtureComponent>& components,
                             size_t n, util::Rng& rng) {
  KARL_CHECK(!components.empty())
      << ": mixture sampling needs at least one component";
  const size_t d = components.front().mean.size();
  // Cumulative weights for component selection.
  std::vector<double> cumulative;
  cumulative.reserve(components.size());
  double total = 0.0;
  for (const auto& c : components) {
    KARL_CHECK(c.mean.size() == d)
        << ": mixture component mean has dimension " << c.mean.size()
        << ", want " << d;
    KARL_CHECK(c.weight > 0.0)
        << ": mixture component weight must be positive, got " << c.weight;
    total += c.weight;
    cumulative.push_back(total);
  }

  Matrix out(n, d);
  for (size_t i = 0; i < n; ++i) {
    const double u = rng.Uniform(0.0, total);
    const size_t ci = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const auto& c = components[std::min(ci, components.size() - 1)];
    auto row = out.MutableRow(i);
    for (size_t j = 0; j < d; ++j) {
      const double sd =
          c.stddev_per_dim.empty() ? c.stddev : c.stddev_per_dim[j];
      row[j] = rng.Gaussian(c.mean[j], sd);
    }
  }
  return out;
}

Matrix SampleUniform(size_t n, size_t d, double lo, double hi,
                     util::Rng& rng) {
  Matrix out(n, d);
  for (size_t i = 0; i < n; ++i) {
    auto row = out.MutableRow(i);
    for (size_t j = 0; j < d; ++j) row[j] = rng.Uniform(lo, hi);
  }
  return out;
}

Matrix SampleClustered(size_t n, size_t d, size_t k, double cluster_stddev,
                       util::Rng& rng) {
  // Real tabular data has three traits the simulacra must share, because
  // they are what make bounding-rectangle bounds pessimistic (the gap
  // KARL's moment-based linear bounds exploit):
  //  * LOW INTRINSIC DIMENSION: the points lie near a low-dimensional
  //    manifold embedded obliquely in the d ambient dimensions, so
  //    axis-aligned boxes cover mostly empty space;
  //  * anisotropic, size-skewed clusters;
  //  * a diffuse background component fattening the tails.
  // Intrinsic dimensionality grows sublinearly with the ambient one and
  // saturates: even 784-dim image data lives on a ~10–20-dim manifold.
  const size_t d_intrinsic =
      std::max<size_t>(2, std::min<size_t>(20, d / 6));

  // Clustered intrinsic coordinates in [0,1]^d_intrinsic.
  std::vector<MixtureComponent> components(k + 1);
  for (size_t ci = 0; ci < k; ++ci) {
    auto& c = components[ci];
    c.mean.resize(d_intrinsic);
    for (auto& m : c.mean) m = rng.Uniform();
    c.stddev_per_dim.resize(d_intrinsic);
    const double cluster_scale = std::exp(rng.Gaussian(0.0, 0.5));
    for (auto& sd : c.stddev_per_dim) {
      sd = cluster_stddev * cluster_scale * std::exp(rng.Gaussian(0.0, 0.7));
    }
    // Skewed cluster sizes, as in real data.
    c.weight = 0.2 + rng.Uniform();
  }
  // Background: ~12% of the mass spread widely over the domain.
  auto& bg = components[k];
  bg.mean.assign(d_intrinsic, 0.5);
  bg.stddev = 0.35;
  double cluster_weight = 0.0;
  for (size_t ci = 0; ci < k; ++ci) cluster_weight += components[ci].weight;
  bg.weight = 0.12 * cluster_weight;
  const Matrix intrinsic = SampleGaussianMixture(components, n, rng);

  if (d_intrinsic >= d) return intrinsic;

  // Random oblique embedding R^d_intrinsic -> R^d plus small ambient
  // noise (measurement jitter off the manifold).
  std::vector<double> embedding(d * d_intrinsic);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d_intrinsic));
  for (auto& a : embedding) a = scale * rng.Gaussian();
  const double ambient_noise = 0.15 * cluster_stddev;

  Matrix out(n, d);
  for (size_t i = 0; i < n; ++i) {
    const auto z = intrinsic.Row(i);
    auto row = out.MutableRow(i);
    for (size_t j = 0; j < d; ++j) {
      double v = 0.0;
      const double* a_row = embedding.data() + j * d_intrinsic;
      for (size_t t = 0; t < d_intrinsic; ++t) v += a_row[t] * z[t];
      row[j] = v + rng.Gaussian(0.0, ambient_noise);
    }
  }
  return out;
}

const std::vector<DatasetSpec>& BenchmarkDatasets() {
  // Scaled-down census of the paper's Table VI. d matches the paper;
  // n is scaled so the full bench suite finishes on one core.
  static const std::vector<DatasetSpec>* kSpecs = new std::vector<DatasetSpec>{
      // Type I (kernel density estimation).
      {"mnist", 20000, 60000, 784, 10, 0.04, 1},
      {"miniboone", 40000, 119596, 50, 6, 0.05, 1},
      {"home", 100000, 918991, 10, 8, 0.04, 1},
      {"susy", 400000, 4990000, 18, 10, 0.05, 1},
      // Type II (1-class SVM); n here is the support-vector-set scale.
      {"nsl-kdd", 8000, 67343, 41, 5, 0.03, 2},
      {"kdd99", 10000, 972780, 41, 5, 0.03, 2},
      {"covtype", 12000, 581012, 54, 7, 0.03, 2},
      // Type III (2-class SVM).
      {"ijcnn1", 5000, 49990, 22, 4, 0.03, 3},
      {"a9a", 6000, 32561, 123, 4, 0.04, 3},
      {"covtype-b", 20000, 581012, 54, 7, 0.03, 3},
  };
  return *kSpecs;
}

util::Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const auto& spec : BenchmarkDatasets()) {
    if (spec.name == name) return spec;
  }
  return util::Status::NotFound("no benchmark dataset named '" + name + "'");
}

Matrix MakeUciLike(const DatasetSpec& spec) {
  // Seed derived from the dataset name so every spec is reproducible and
  // distinct.
  uint64_t seed = 0xcbf29ce484222325ULL;
  for (const char ch : spec.name) {
    seed = (seed ^ static_cast<uint64_t>(ch)) * 0x100000001b3ULL;
  }
  util::Rng rng(seed);
  Matrix m = SampleClustered(spec.n, spec.d, spec.clusters,
                             spec.cluster_stddev, rng);
  // The paper normalises data to [0,1]^d; mirror that here.
  MinMaxNormalize(&m, 0.0, 1.0);
  return m;
}

util::Result<Matrix> MakeUciLike(const std::string& name) {
  auto spec = FindDataset(name);
  if (!spec.ok()) return spec.status();
  return MakeUciLike(spec.value());
}

LabeledDataset MakeTwoClassDataset(size_t n, size_t d, double separation,
                                   util::Rng& rng) {
  KARL_CHECK(separation >= 0.0 && separation <= 1.0)
      << ": class separation must lie in [0, 1], got " << separation;
  // Two mixtures of 3 clusters each; class centroids offset along a random
  // direction by `separation`.
  std::vector<double> direction(d);
  double norm = 0.0;
  for (auto& v : direction) {
    v = rng.Gaussian();
    norm += v * v;
  }
  norm = std::sqrt(std::max(norm, 1e-12));
  for (auto& v : direction) v /= norm;

  auto make_class = [&](double sign) {
    std::vector<MixtureComponent> components(3);
    for (auto& c : components) {
      c.mean.resize(d);
      for (size_t j = 0; j < d; ++j) {
        c.mean[j] = 0.5 + sign * 0.5 * separation * direction[j] +
                    0.15 * rng.Gaussian();
      }
      c.stddev = 0.08;
      c.weight = 1.0;
    }
    return components;
  };

  const size_t n_pos = n / 2;
  const size_t n_neg = n - n_pos;
  Matrix pos = SampleGaussianMixture(make_class(+1.0), n_pos, rng);
  Matrix neg = SampleGaussianMixture(make_class(-1.0), n_neg, rng);

  LabeledDataset out;
  out.points = Matrix(0, d);
  for (size_t i = 0; i < n_pos; ++i) {
    out.points.AppendRow(pos.Row(i));
    out.labels.push_back(+1.0);
  }
  for (size_t i = 0; i < n_neg; ++i) {
    out.points.AppendRow(neg.Row(i));
    out.labels.push_back(-1.0);
  }
  MinMaxNormalize(&out.points, 0.0, 1.0);
  return out;
}

LabeledDataset MakeOneClassDataset(size_t n, size_t n_outliers, size_t d,
                                   util::Rng& rng) {
  Matrix inliers = SampleClustered(n, d, 3, 0.05, rng);
  Matrix outliers = SampleUniform(n_outliers, d, -0.5, 1.5, rng);

  LabeledDataset out;
  out.points = Matrix(0, d);
  for (size_t i = 0; i < inliers.rows(); ++i) {
    out.points.AppendRow(inliers.Row(i));
    out.labels.push_back(+1.0);
  }
  for (size_t i = 0; i < outliers.rows(); ++i) {
    out.points.AppendRow(outliers.Row(i));
    out.labels.push_back(-1.0);
  }
  MinMaxNormalize(&out.points, 0.0, 1.0);
  return out;
}

}  // namespace karl::data
