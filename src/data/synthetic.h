// Synthetic dataset generation.
//
// The paper evaluates on UCI / LIBSVM datasets (mnist, miniboone, home,
// susy, nsl-kdd, kdd99, covtype, ijcnn1, a9a, covtype-b). Those files are
// not redistributable inside this repository, so `MakeUciLike` produces
// deterministic Gaussian-mixture simulacra matching each dataset's
// dimensionality and clustered structure at a cardinality scaled for a
// single-core container. See DESIGN.md §5 for the substitution rationale.

#ifndef KARL_DATA_SYNTHETIC_H_
#define KARL_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "data/libsvm_io.h"
#include "data/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace karl::data {

/// Parameters of one Gaussian-mixture component.
struct MixtureComponent {
  std::vector<double> mean;    ///< Component centre (length d).
  double stddev = 1.0;         ///< Isotropic standard deviation.
  double weight = 1.0;         ///< Relative sampling weight (> 0).
  /// Optional anisotropic per-dimension standard deviations; overrides
  /// `stddev` when non-empty (length d).
  std::vector<double> stddev_per_dim;
};

/// Draws `n` points from an isotropic Gaussian mixture.
Matrix SampleGaussianMixture(const std::vector<MixtureComponent>& components,
                             size_t n, util::Rng& rng);

/// Draws `n` points uniformly from [lo, hi]^d.
Matrix SampleUniform(size_t n, size_t d, double lo, double hi,
                     util::Rng& rng);

/// Builds a random mixture of `k` clusters in [0,1]^d and samples `n`
/// points from it — the generic "clustered real data" stand-in.
Matrix SampleClustered(size_t n, size_t d, size_t k, double cluster_stddev,
                       util::Rng& rng);

/// Static description of one simulated benchmark dataset.
struct DatasetSpec {
  std::string name;       ///< Paper name, e.g. "susy".
  size_t n = 0;            ///< Scaled cardinality used in this repo.
  size_t paper_n = 0;      ///< Cardinality reported in the paper (Table VI).
  size_t d = 0;            ///< Dimensionality (matches the paper).
  size_t clusters = 0;     ///< Mixture components in the simulacrum.
  double cluster_stddev = 0.05;  ///< Within-cluster spread in [0,1]^d.
  int weighting_type = 1;  ///< Paper weighting type: 1, 2, or 3.
};

/// The dataset census mirroring the paper's Table VI (scaled sizes).
const std::vector<DatasetSpec>& BenchmarkDatasets();

/// Looks up a spec by paper name ("miniboone", "home", "susy", "mnist",
/// "nsl-kdd", "kdd99", "covtype", "ijcnn1", "a9a", "covtype-b").
util::Result<DatasetSpec> FindDataset(const std::string& name);

/// Generates the simulacrum for `spec`, normalised to [0,1]^d.
/// Deterministic: the same spec always produces the same matrix.
Matrix MakeUciLike(const DatasetSpec& spec);

/// Convenience overload: generate by paper name.
util::Result<Matrix> MakeUciLike(const std::string& name);

/// Generates a binary-labelled two-class dataset (labels +1/-1) with
/// overlapping class-conditional mixtures — the training input for the
/// 2-class SVM substrate. `separation` in [0, 1] controls how far apart
/// the class centroids sit (0 = indistinguishable, 1 = well separated).
LabeledDataset MakeTwoClassDataset(size_t n, size_t d, double separation,
                                   util::Rng& rng);

/// Generates a one-class dataset: `n` inliers from a clustered mixture
/// plus `n_outliers` uniform background points labelled -1 (inliers +1).
/// Training input for the 1-class SVM substrate.
LabeledDataset MakeOneClassDataset(size_t n, size_t n_outliers, size_t d,
                                   util::Rng& rng);

}  // namespace karl::data

#endif  // KARL_DATA_SYNTHETIC_H_
