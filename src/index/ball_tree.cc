#include "index/ball_tree.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/math_util.h"

namespace karl::index {

util::Result<std::unique_ptr<BallTree>> BallTree::Build(
    const data::Matrix& points, std::span<const double> weights,
    size_t leaf_capacity) {
  if (points.empty()) {
    return util::Status::InvalidArgument(
        "cannot build ball-tree on empty data");
  }
  if (weights.size() != points.rows()) {
    return util::Status::InvalidArgument(
        "weight count " + std::to_string(weights.size()) +
        " does not match point count " + std::to_string(points.rows()));
  }
  if (leaf_capacity < 1) {
    return util::Status::InvalidArgument("leaf capacity must be >= 1");
  }
  std::unique_ptr<BallTree> tree(new BallTree());
  tree->BuildShared(points, weights, leaf_capacity);
  return tree;
}

size_t BallTree::Partition(const data::Matrix& input_points,
                           std::vector<size_t>& perm, size_t begin,
                           size_t end) {
  const size_t d = input_points.cols();

  // Farthest-pair heuristic: pivot A = farthest point from the centroid,
  // pivot B = farthest point from A; partition by nearer pivot.
  std::vector<double> centroid(d, 0.0);
  for (size_t i = begin; i < end; ++i) {
    const auto row = input_points.Row(perm[i]);
    for (size_t j = 0; j < d; ++j) centroid[j] += row[j];
  }
  const double inv_n = 1.0 / static_cast<double>(end - begin);
  for (auto& c : centroid) c *= inv_n;

  size_t pivot_a = begin;
  double best = -1.0;
  for (size_t i = begin; i < end; ++i) {
    const double sq =
        util::SquaredDistance(input_points.Row(perm[i]), centroid);
    if (sq > best) {
      best = sq;
      pivot_a = i;
    }
  }
  const std::vector<double> a(input_points.Row(perm[pivot_a]).begin(),
                              input_points.Row(perm[pivot_a]).end());
  size_t pivot_b = begin;
  best = -1.0;
  for (size_t i = begin; i < end; ++i) {
    const double sq = util::SquaredDistance(input_points.Row(perm[i]), a);
    if (sq > best) {
      best = sq;
      pivot_b = i;
    }
  }
  const std::vector<double> b(input_points.Row(perm[pivot_b]).begin(),
                              input_points.Row(perm[pivot_b]).end());

  if (best <= 0.0) return begin;  // All points identical: stay a leaf.

  // Stable two-way partition: nearer to A goes left.
  const auto nearer_a = [&](size_t original_index) {
    const auto row = input_points.Row(original_index);
    return util::SquaredDistance(row, a) <= util::SquaredDistance(row, b);
  };
  size_t mid = static_cast<size_t>(
      std::stable_partition(perm.begin() + begin, perm.begin() + end,
                            nearer_a) -
      perm.begin());

  // Both pivots exist, but ties can still empty one side; force a
  // median-by-pivot-distance split in that case.
  if (mid == begin || mid == end) {
    mid = begin + (end - begin) / 2;
    std::nth_element(perm.begin() + begin, perm.begin() + mid,
                     perm.begin() + end, [&](size_t x, size_t y) {
                       return util::SquaredDistance(input_points.Row(x), a) <
                              util::SquaredDistance(input_points.Row(y), a);
                     });
  }
  return mid;
}

util::Result<std::unique_ptr<BallTree>> BallTree::Attach(
    const TreeIndexView& view) {
  const size_t num = view.nodes.size();
  if (view.region_a.size() != num * view.cols ||
      view.region_b.size() != num) {
    return util::Status::InvalidArgument(
        "attach: ball-tree centre/radius arrays have " +
        std::to_string(view.region_a.size()) + "/" +
        std::to_string(view.region_b.size()) + " values, want " +
        std::to_string(num * view.cols) + "/" + std::to_string(num));
  }
  std::unique_ptr<BallTree> tree(new BallTree());
  KARL_RETURN_NOT_OK(tree->AttachShared(view));
  tree->centers_ = view.region_a;
  tree->radii_ = view.region_b;
  return tree;
}

void BallTree::ComputeRegions() {
  const size_t num = num_nodes();
  const size_t d = points().cols();
  owned_balls_.assign(num * d + num, 0.0);
  double* centers = owned_balls_.data();
  double* radii = centers + num * d;
  for (size_t id = 0; id < num; ++id) {
    const Node& nd = node(static_cast<NodeId>(id));
    const BoundingBall ball = BoundingBall::FitRange(points(), nd.begin, nd.end);
    std::copy(ball.center().begin(), ball.center().end(), centers + id * d);
    radii[id] = ball.radius();
  }
  centers_ = {centers, num * d};
  radii_ = {radii, num};
}

void BallTree::DistanceBounds(NodeId id, std::span<const double> q,
                              double* min_sq, double* max_sq) const {
  const size_t d = points().cols();
  BoundingBall::DistanceBoundsFlat(
      centers_.subspan(static_cast<size_t>(id) * d, d), radii_[id], q,
      min_sq, max_sq);
}

void BallTree::InnerProductBounds(NodeId id, std::span<const double> q,
                                  double* ip_min, double* ip_max) const {
  const size_t d = points().cols();
  BoundingBall::InnerProductBoundsFlat(
      centers_.subspan(static_cast<size_t>(id) * d, d), radii_[id], q,
      ip_min, ip_max);
}

size_t BallTree::MemoryUsageBytes() const {
  return TreeIndex::MemoryUsageBytes() +
         (centers_.size() + radii_.size()) * sizeof(double);
}

}  // namespace karl::index
