// Ball-tree index [Uhlmann'91, Moore'00]: nodes are bounding balls, split
// by the farthest-pair heuristic.

#ifndef KARL_INDEX_BALL_TREE_H_
#define KARL_INDEX_BALL_TREE_H_

#include <memory>

#include "index/bounding_ball.h"
#include "index/tree_index.h"
#include "util/status.h"

namespace karl::index {

/// Ball-tree over a weighted point set.
class BallTree final : public TreeIndex {
 public:
  /// Builds a ball-tree. Fails on empty input or mismatched weight count.
  static util::Result<std::unique_ptr<BallTree>> Build(
      const data::Matrix& points, std::span<const double> weights,
      size_t leaf_capacity);

  void DistanceBounds(NodeId id, std::span<const double> q, double* min_sq,
                      double* max_sq) const override;
  void InnerProductBounds(NodeId id, std::span<const double> q,
                          double* ip_min, double* ip_max) const override;
  IndexKind kind() const override { return IndexKind::kBallTree; }
  size_t MemoryUsageBytes() const override;

  /// The bounding ball of a node (exposed for tests/diagnostics).
  const BoundingBall& ball(NodeId id) const { return balls_[id]; }

 private:
  BallTree() = default;

  size_t Partition(const data::Matrix& input_points,
                   std::vector<size_t>& perm, size_t begin,
                   size_t end) override;
  void ComputeRegions() override;

  std::vector<BoundingBall> balls_;
};

}  // namespace karl::index

#endif  // KARL_INDEX_BALL_TREE_H_
