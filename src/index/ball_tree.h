// Ball-tree index [Uhlmann'91, Moore'00]: nodes are bounding balls, split
// by the farthest-pair heuristic.

#ifndef KARL_INDEX_BALL_TREE_H_
#define KARL_INDEX_BALL_TREE_H_

#include <memory>

#include "index/bounding_ball.h"
#include "index/tree_index.h"
#include "util/status.h"

namespace karl::index {

/// Ball-tree over a weighted point set.
///
/// Node balls are kept as a packed centre array (num_nodes × d) plus a
/// radius array (num_nodes) rather than per-node objects, so an attached
/// tree can read them straight out of a memory-mapped snapshot section.
class BallTree final : public TreeIndex {
 public:
  /// Builds a ball-tree. Fails on empty input or mismatched weight count.
  static util::Result<std::unique_ptr<BallTree>> Build(
      const data::Matrix& points, std::span<const double> weights,
      size_t leaf_capacity);

  /// Attaches over pre-built external storage (see TreeIndexView):
  /// region_a = packed centres (num_nodes × d), region_b = radii
  /// (num_nodes). Nothing is copied except the derived SoA mirror.
  static util::Result<std::unique_ptr<BallTree>> Attach(
      const TreeIndexView& view);

  void DistanceBounds(NodeId id, std::span<const double> q, double* min_sq,
                      double* max_sq) const override;
  void InnerProductBounds(NodeId id, std::span<const double> q,
                          double* ip_min, double* ip_max) const override;
  IndexKind kind() const override { return IndexKind::kBallTree; }
  size_t MemoryUsageBytes() const override;

  std::span<const double> region_data_a() const override { return centers_; }
  std::span<const double> region_data_b() const override { return radii_; }

  /// Per-node ball accessors (tests/diagnostics).
  std::span<const double> node_center(NodeId id) const {
    const size_t d = points().cols();
    return centers_.subspan(static_cast<size_t>(id) * d, d);
  }
  double node_radius(NodeId id) const { return radii_[id]; }

 private:
  BallTree() = default;

  size_t Partition(const data::Matrix& input_points,
                   std::vector<size_t>& perm, size_t begin,
                   size_t end) override;
  void ComputeRegions() override;

  // Owned backing (build path): centres then radii.
  std::vector<double> owned_balls_;
  std::span<const double> centers_;  // num_nodes x d.
  std::span<const double> radii_;    // num_nodes.
};

}  // namespace karl::index

#endif  // KARL_INDEX_BALL_TREE_H_
