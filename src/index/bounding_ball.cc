#include "index/bounding_ball.h"

#include <cmath>

#include "util/check.h"
#include "util/math_util.h"

namespace karl::index {

BoundingBall BoundingBall::FitRange(const data::Matrix& points, size_t begin,
                                    size_t end) {
  KARL_CHECK(begin < end && end <= points.rows())
      << ": bad point range [" << begin << ", " << end << ") of "
      << points.rows();
  BoundingBall ball;
  const size_t d = points.cols();
  ball.center_.assign(d, 0.0);
  for (size_t i = begin; i < end; ++i) {
    const auto row = points.Row(i);
    for (size_t j = 0; j < d; ++j) ball.center_[j] += row[j];
  }
  const double inv_n = 1.0 / static_cast<double>(end - begin);
  for (auto& c : ball.center_) c *= inv_n;

  double max_sq = 0.0;
  for (size_t i = begin; i < end; ++i) {
    max_sq = std::max(
        max_sq, util::SquaredDistance(points.Row(i), ball.center_));
  }
  ball.radius_ = std::sqrt(max_sq);
  return ball;
}

double BoundingBall::MinSquaredDistance(std::span<const double> q) const {
  const double dist = std::sqrt(util::SquaredDistance(q, center_));
  const double min_dist = std::max(0.0, dist - radius_);
  return min_dist * min_dist;
}

double BoundingBall::MaxSquaredDistance(std::span<const double> q) const {
  const double dist = std::sqrt(util::SquaredDistance(q, center_));
  const double max_dist = dist + radius_;
  return max_dist * max_dist;
}

void BoundingBall::InnerProductBounds(std::span<const double> q,
                                      double* ip_min, double* ip_max) const {
  InnerProductBoundsFlat(center_, radius_, q, ip_min, ip_max);
}

void BoundingBall::DistanceBoundsFlat(std::span<const double> center,
                                      double radius,
                                      std::span<const double> q,
                                      double* min_sq, double* max_sq) {
  const double dist = std::sqrt(util::SquaredDistance(q, center));
  const double min_dist = std::max(0.0, dist - radius);
  const double max_dist = dist + radius;
  *min_sq = min_dist * min_dist;
  *max_sq = max_dist * max_dist;
}

void BoundingBall::InnerProductBoundsFlat(std::span<const double> center,
                                          double radius,
                                          std::span<const double> q,
                                          double* ip_min, double* ip_max) {
  // q·p = q·c + q·(p-c); |q·(p-c)| <= ||q||·r by Cauchy–Schwarz.
  const double qc = util::Dot(q, center);
  const double slack = std::sqrt(util::SquaredNorm(q)) * radius;
  *ip_min = qc - slack;
  *ip_max = qc + slack;
}

}  // namespace karl::index
