// Bounding ball (centre + radius) — the node region of the ball-tree
// [Uhlmann'91, Moore'00], with the same bound interface as BoundingBox.

#ifndef KARL_INDEX_BOUNDING_BALL_H_
#define KARL_INDEX_BOUNDING_BALL_H_

#include <span>
#include <vector>

#include "data/matrix.h"

namespace karl::index {

/// Minimal enclosing ball approximation (centroid-centred) for a point set.
class BoundingBall {
 public:
  /// Constructs an empty (invalid) ball; call FitRange before use.
  BoundingBall() = default;

  /// Fits a ball centred at the centroid of rows [begin, end), with radius
  /// the maximum centroid distance (exact cover, not minimal).
  static BoundingBall FitRange(const data::Matrix& points, size_t begin,
                               size_t end);

  /// mindist(q, B)^2 = max(0, ||q-c|| - r)^2.
  double MinSquaredDistance(std::span<const double> q) const;

  /// maxdist(q, B)^2 = (||q-c|| + r)^2.
  double MaxSquaredDistance(std::span<const double> q) const;

  /// [IP_min, IP_max] of q·p over the ball: q·c ∓ r·||q||.
  void InnerProductBounds(std::span<const double> q, double* ip_min,
                          double* ip_max) const;

  /// Flat variants operating on a raw (centre, radius) pair — the
  /// representation the ball-tree keeps its per-node geometry in
  /// (packed, possibly memory-mapped). One centre-distance evaluation
  /// serves both squared-distance bounds.
  static void DistanceBoundsFlat(std::span<const double> center,
                                 double radius, std::span<const double> q,
                                 double* min_sq, double* max_sq);
  static void InnerProductBoundsFlat(std::span<const double> center,
                                     double radius,
                                     std::span<const double> q,
                                     double* ip_min, double* ip_max);

  /// Ball centre.
  const std::vector<double>& center() const { return center_; }

  /// Ball radius.
  double radius() const { return radius_; }

 private:
  std::vector<double> center_;
  double radius_ = 0.0;
};

}  // namespace karl::index

#endif  // KARL_INDEX_BOUNDING_BALL_H_
