#include "index/bounding_box.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace karl::index {

BoundingBox BoundingBox::Fit(const data::Matrix& points,
                             std::span<const size_t> row_indices) {
  KARL_CHECK(!row_indices.empty())
      << ": bounding box needs at least one point";
  BoundingBox box;
  const size_t d = points.cols();
  box.lower_.assign(d, std::numeric_limits<double>::infinity());
  box.upper_.assign(d, -std::numeric_limits<double>::infinity());
  for (const size_t i : row_indices) {
    const auto row = points.Row(i);
    for (size_t j = 0; j < d; ++j) {
      box.lower_[j] = std::min(box.lower_[j], row[j]);
      box.upper_[j] = std::max(box.upper_[j], row[j]);
    }
  }
  return box;
}

BoundingBox BoundingBox::FitRange(const data::Matrix& points, size_t begin,
                                  size_t end) {
  KARL_CHECK(begin < end && end <= points.rows())
      << ": bad point range [" << begin << ", " << end << ") of "
      << points.rows();
  BoundingBox box;
  const size_t d = points.cols();
  box.lower_.assign(d, std::numeric_limits<double>::infinity());
  box.upper_.assign(d, -std::numeric_limits<double>::infinity());
  for (size_t i = begin; i < end; ++i) {
    const auto row = points.Row(i);
    for (size_t j = 0; j < d; ++j) {
      box.lower_[j] = std::min(box.lower_[j], row[j]);
      box.upper_[j] = std::max(box.upper_[j], row[j]);
    }
  }
  return box;
}

double BoundingBox::MinSquaredDistance(std::span<const double> q) const {
  KARL_DCHECK(q.size() == lower_.size())
      << ": query has dimension " << q.size() << ", box has "
      << lower_.size();
  double s = 0.0;
  for (size_t j = 0; j < q.size(); ++j) {
    double diff = 0.0;
    if (q[j] < lower_[j]) {
      diff = lower_[j] - q[j];
    } else if (q[j] > upper_[j]) {
      diff = q[j] - upper_[j];
    }
    s += diff * diff;
  }
  return s;
}

double BoundingBox::MaxSquaredDistance(std::span<const double> q) const {
  KARL_DCHECK(q.size() == lower_.size())
      << ": query has dimension " << q.size() << ", box has "
      << lower_.size();
  double s = 0.0;
  for (size_t j = 0; j < q.size(); ++j) {
    // Farthest corner per dimension.
    const double to_lower = q[j] - lower_[j];
    const double to_upper = upper_[j] - q[j];
    const double diff = std::max(std::abs(to_lower), std::abs(to_upper));
    s += diff * diff;
  }
  return s;
}

void BoundingBox::SquaredDistanceBounds(std::span<const double> q,
                                        double* min_sq,
                                        double* max_sq) const {
  SquaredDistanceBoundsFlat(lower_, upper_, q, min_sq, max_sq);
}

void BoundingBox::InnerProductBounds(std::span<const double> q,
                                     double* ip_min, double* ip_max) const {
  InnerProductBoundsFlat(lower_, upper_, q, ip_min, ip_max);
}

void BoundingBox::SquaredDistanceBoundsFlat(std::span<const double> lower,
                                            std::span<const double> upper,
                                            std::span<const double> q,
                                            double* min_sq, double* max_sq) {
  KARL_DCHECK(q.size() == lower.size() && q.size() == upper.size())
      << ": query has dimension " << q.size() << ", box has "
      << lower.size();
  double min_s = 0.0;
  double max_s = 0.0;
  for (size_t j = 0; j < q.size(); ++j) {
    const double to_lower = q[j] - lower[j];
    const double to_upper = upper[j] - q[j];
    if (to_lower < 0.0) {
      min_s += to_lower * to_lower;
    } else if (to_upper < 0.0) {
      min_s += to_upper * to_upper;
    }
    const double far_diff = std::max(std::abs(to_lower), std::abs(to_upper));
    max_s += far_diff * far_diff;
  }
  *min_sq = min_s;
  *max_sq = max_s;
}

void BoundingBox::InnerProductBoundsFlat(std::span<const double> lower,
                                         std::span<const double> upper,
                                         std::span<const double> q,
                                         double* ip_min, double* ip_max) {
  KARL_DCHECK(q.size() == lower.size() && q.size() == upper.size())
      << ": query has dimension " << q.size() << ", box has "
      << lower.size();
  double lo = 0.0;
  double hi = 0.0;
  for (size_t j = 0; j < q.size(); ++j) {
    // q_j * p_j over p_j in [l_j, u_j]: extremes at the interval ends,
    // which end depends on the sign of q_j.
    const double a = q[j] * lower[j];
    const double b = q[j] * upper[j];
    lo += std::min(a, b);
    hi += std::max(a, b);
  }
  *ip_min = lo;
  *ip_max = hi;
}

size_t BoundingBox::WidestDimension() const {
  size_t best = 0;
  double best_extent = -1.0;
  for (size_t j = 0; j < lower_.size(); ++j) {
    const double extent = upper_[j] - lower_[j];
    if (extent > best_extent) {
      best_extent = extent;
      best = j;
    }
  }
  return best;
}

bool BoundingBox::Contains(std::span<const double> p) const {
  KARL_DCHECK(p.size() == lower_.size())
      << ": point has dimension " << p.size() << ", box has "
      << lower_.size();
  for (size_t j = 0; j < p.size(); ++j) {
    if (p[j] < lower_[j] || p[j] > upper_[j]) return false;
  }
  return true;
}

}  // namespace karl::index
