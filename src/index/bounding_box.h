// Axis-aligned bounding rectangle (paper Definition 2) with the distance
// and inner-product bounds KARL's pruning relies on.

#ifndef KARL_INDEX_BOUNDING_BOX_H_
#define KARL_INDEX_BOUNDING_BOX_H_

#include <span>
#include <vector>

#include "data/matrix.h"

namespace karl::index {

/// Axis-aligned bounding rectangle over a point set.
class BoundingBox {
 public:
  /// Constructs an empty (invalid) box; call Fit before use.
  BoundingBox() = default;

  /// Fits the tightest box over the given rows of `points`.
  static BoundingBox Fit(const data::Matrix& points,
                         std::span<const size_t> row_indices);

  /// Fits the tightest box over rows [begin, end) of `points`.
  static BoundingBox FitRange(const data::Matrix& points, size_t begin,
                              size_t end);

  /// mindist(q, R)^2 — squared distance from q to the nearest box point.
  double MinSquaredDistance(std::span<const double> q) const;

  /// maxdist(q, R)^2 — squared distance from q to the farthest box point.
  double MaxSquaredDistance(std::span<const double> q) const;

  /// Computes both squared-distance bounds in a single pass over the box.
  void SquaredDistanceBounds(std::span<const double> q, double* min_sq,
                             double* max_sq) const;

  /// [IP_min, IP_max]: range of the inner product q·p over p in the box.
  void InnerProductBounds(std::span<const double> q, double* ip_min,
                          double* ip_max) const;

  /// Flat-span variants of the two bound computations, operating on raw
  /// corner arrays — the representation the trees keep their per-node
  /// geometry in (packed, possibly memory-mapped). The member functions
  /// above delegate here.
  static void SquaredDistanceBoundsFlat(std::span<const double> lower,
                                        std::span<const double> upper,
                                        std::span<const double> q,
                                        double* min_sq, double* max_sq);
  static void InnerProductBoundsFlat(std::span<const double> lower,
                                     std::span<const double> upper,
                                     std::span<const double> q,
                                     double* ip_min, double* ip_max);

  /// Lower corner (per-dimension minima).
  const std::vector<double>& lower() const { return lower_; }

  /// Upper corner (per-dimension maxima).
  const std::vector<double>& upper() const { return upper_; }

  /// Dimensionality; 0 for a default-constructed box.
  size_t dimensions() const { return lower_.size(); }

  /// Index of the dimension with the largest extent (for kd splits).
  size_t WidestDimension() const;

  /// True iff `p` lies inside the box (inclusive).
  bool Contains(std::span<const double> p) const;

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
};

}  // namespace karl::index

#endif  // KARL_INDEX_BOUNDING_BOX_H_
