#include "index/kd_tree.h"

#include <algorithm>
#include <limits>

namespace karl::index {

util::Result<std::unique_ptr<KdTree>> KdTree::Build(
    const data::Matrix& points, std::span<const double> weights,
    size_t leaf_capacity) {
  if (points.empty()) {
    return util::Status::InvalidArgument("cannot build kd-tree on empty data");
  }
  if (weights.size() != points.rows()) {
    return util::Status::InvalidArgument(
        "weight count " + std::to_string(weights.size()) +
        " does not match point count " + std::to_string(points.rows()));
  }
  if (leaf_capacity < 1) {
    return util::Status::InvalidArgument("leaf capacity must be >= 1");
  }
  std::unique_ptr<KdTree> tree(new KdTree());
  tree->BuildShared(points, weights, leaf_capacity);
  return tree;
}

size_t KdTree::Partition(const data::Matrix& input_points,
                         std::vector<size_t>& perm, size_t begin,
                         size_t end) {
  // Split dimension: widest extent over the node's points.
  const size_t d = input_points.cols();
  size_t split_dim = 0;
  double best_extent = -1.0;
  for (size_t j = 0; j < d; ++j) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (size_t i = begin; i < end; ++i) {
      const double v = input_points(perm[i], j);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_extent) {
      best_extent = hi - lo;
      split_dim = j;
    }
  }
  if (best_extent <= 0.0) return begin;  // All points identical: stay a leaf.

  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(perm.begin() + begin, perm.begin() + mid,
                   perm.begin() + end, [&](size_t a, size_t b) {
                     return input_points(a, split_dim) <
                            input_points(b, split_dim);
                   });
  return mid;
}

util::Result<std::unique_ptr<KdTree>> KdTree::Attach(
    const TreeIndexView& view) {
  const size_t want = view.nodes.size() * view.cols;
  if (view.region_a.size() != want || view.region_b.size() != want) {
    return util::Status::InvalidArgument(
        "attach: kd-tree corner arrays have " +
        std::to_string(view.region_a.size()) + "/" +
        std::to_string(view.region_b.size()) + " values, want " +
        std::to_string(want));
  }
  std::unique_ptr<KdTree> tree(new KdTree());
  KARL_RETURN_NOT_OK(tree->AttachShared(view));
  tree->lower_ = view.region_a;
  tree->upper_ = view.region_b;
  return tree;
}

void KdTree::ComputeRegions() {
  const size_t num = num_nodes();
  const size_t d = points().cols();
  owned_corners_.assign(2 * num * d, 0.0);
  double* lo = owned_corners_.data();
  double* up = lo + num * d;
  for (size_t id = 0; id < num; ++id) {
    const Node& nd = node(static_cast<NodeId>(id));
    const BoundingBox box = BoundingBox::FitRange(points(), nd.begin, nd.end);
    std::copy(box.lower().begin(), box.lower().end(), lo + id * d);
    std::copy(box.upper().begin(), box.upper().end(), up + id * d);
  }
  lower_ = {lo, num * d};
  upper_ = {up, num * d};
}

void KdTree::DistanceBounds(NodeId id, std::span<const double> q,
                            double* min_sq, double* max_sq) const {
  const size_t d = points().cols();
  BoundingBox::SquaredDistanceBoundsFlat(
      lower_.subspan(static_cast<size_t>(id) * d, d),
      upper_.subspan(static_cast<size_t>(id) * d, d), q, min_sq, max_sq);
}

void KdTree::InnerProductBounds(NodeId id, std::span<const double> q,
                                double* ip_min, double* ip_max) const {
  const size_t d = points().cols();
  BoundingBox::InnerProductBoundsFlat(
      lower_.subspan(static_cast<size_t>(id) * d, d),
      upper_.subspan(static_cast<size_t>(id) * d, d), q, ip_min, ip_max);
}

size_t KdTree::MemoryUsageBytes() const {
  return TreeIndex::MemoryUsageBytes() +
         (lower_.size() + upper_.size()) * sizeof(double);
}

}  // namespace karl::index
