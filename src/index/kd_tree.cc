#include "index/kd_tree.h"

#include <algorithm>
#include <limits>

namespace karl::index {

util::Result<std::unique_ptr<KdTree>> KdTree::Build(
    const data::Matrix& points, std::span<const double> weights,
    size_t leaf_capacity) {
  if (points.empty()) {
    return util::Status::InvalidArgument("cannot build kd-tree on empty data");
  }
  if (weights.size() != points.rows()) {
    return util::Status::InvalidArgument(
        "weight count " + std::to_string(weights.size()) +
        " does not match point count " + std::to_string(points.rows()));
  }
  if (leaf_capacity < 1) {
    return util::Status::InvalidArgument("leaf capacity must be >= 1");
  }
  std::unique_ptr<KdTree> tree(new KdTree());
  tree->BuildShared(points, weights, leaf_capacity);
  return tree;
}

size_t KdTree::Partition(const data::Matrix& input_points,
                         std::vector<size_t>& perm, size_t begin,
                         size_t end) {
  // Split dimension: widest extent over the node's points.
  const size_t d = input_points.cols();
  size_t split_dim = 0;
  double best_extent = -1.0;
  for (size_t j = 0; j < d; ++j) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (size_t i = begin; i < end; ++i) {
      const double v = input_points(perm[i], j);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_extent) {
      best_extent = hi - lo;
      split_dim = j;
    }
  }
  if (best_extent <= 0.0) return begin;  // All points identical: stay a leaf.

  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(perm.begin() + begin, perm.begin() + mid,
                   perm.begin() + end, [&](size_t a, size_t b) {
                     return input_points(a, split_dim) <
                            input_points(b, split_dim);
                   });
  return mid;
}

void KdTree::ComputeRegions() {
  boxes_.resize(nodes_.size());
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const Node& nd = nodes_[id];
    boxes_[id] = BoundingBox::FitRange(points(), nd.begin, nd.end);
  }
}

void KdTree::DistanceBounds(NodeId id, std::span<const double> q,
                            double* min_sq, double* max_sq) const {
  boxes_[id].SquaredDistanceBounds(q, min_sq, max_sq);
}

void KdTree::InnerProductBounds(NodeId id, std::span<const double> q,
                                double* ip_min, double* ip_max) const {
  boxes_[id].InnerProductBounds(q, ip_min, ip_max);
}

size_t KdTree::MemoryUsageBytes() const {
  size_t bytes = TreeIndex::MemoryUsageBytes();
  for (const auto& box : boxes_) {
    bytes += 2 * box.dimensions() * sizeof(double) + sizeof(BoundingBox);
  }
  return bytes;
}

}  // namespace karl::index
