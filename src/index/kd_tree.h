// kd-tree index [Samet'06, §1.5] with bounding-rectangle node regions:
// splits on the widest dimension at the median.

#ifndef KARL_INDEX_KD_TREE_H_
#define KARL_INDEX_KD_TREE_H_

#include <memory>

#include "index/bounding_box.h"
#include "index/tree_index.h"
#include "util/status.h"

namespace karl::index {

/// kd-tree over a weighted point set.
class KdTree final : public TreeIndex {
 public:
  /// Builds a kd-tree. Fails on empty input or mismatched weight count.
  static util::Result<std::unique_ptr<KdTree>> Build(
      const data::Matrix& points, std::span<const double> weights,
      size_t leaf_capacity);

  void DistanceBounds(NodeId id, std::span<const double> q, double* min_sq,
                      double* max_sq) const override;
  void InnerProductBounds(NodeId id, std::span<const double> q,
                          double* ip_min, double* ip_max) const override;
  IndexKind kind() const override { return IndexKind::kKdTree; }
  size_t MemoryUsageBytes() const override;

  /// The bounding rectangle of a node (exposed for tests/diagnostics).
  const BoundingBox& box(NodeId id) const { return boxes_[id]; }

 private:
  KdTree() = default;

  size_t Partition(const data::Matrix& input_points,
                   std::vector<size_t>& perm, size_t begin,
                   size_t end) override;
  void ComputeRegions() override;

  std::vector<BoundingBox> boxes_;
};

}  // namespace karl::index

#endif  // KARL_INDEX_KD_TREE_H_
