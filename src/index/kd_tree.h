// kd-tree index [Samet'06, §1.5] with bounding-rectangle node regions:
// splits on the widest dimension at the median.

#ifndef KARL_INDEX_KD_TREE_H_
#define KARL_INDEX_KD_TREE_H_

#include <memory>

#include "index/bounding_box.h"
#include "index/tree_index.h"
#include "util/status.h"

namespace karl::index {

/// kd-tree over a weighted point set.
///
/// Node rectangles are kept as two packed corner arrays (lower and upper,
/// each num_nodes × d) rather than per-node objects, so an attached tree
/// can read them straight out of a memory-mapped snapshot section.
class KdTree final : public TreeIndex {
 public:
  /// Builds a kd-tree. Fails on empty input or mismatched weight count.
  static util::Result<std::unique_ptr<KdTree>> Build(
      const data::Matrix& points, std::span<const double> weights,
      size_t leaf_capacity);

  /// Attaches over pre-built external storage (see TreeIndexView):
  /// region_a = packed lower corners, region_b = packed upper corners,
  /// each num_nodes × d. Nothing is copied except the derived SoA mirror.
  static util::Result<std::unique_ptr<KdTree>> Attach(
      const TreeIndexView& view);

  void DistanceBounds(NodeId id, std::span<const double> q, double* min_sq,
                      double* max_sq) const override;
  void InnerProductBounds(NodeId id, std::span<const double> q,
                          double* ip_min, double* ip_max) const override;
  IndexKind kind() const override { return IndexKind::kKdTree; }
  size_t MemoryUsageBytes() const override;

  std::span<const double> region_data_a() const override { return lower_; }
  std::span<const double> region_data_b() const override { return upper_; }

  /// Per-node corner accessors (tests/diagnostics).
  std::span<const double> node_lower(NodeId id) const {
    const size_t d = points().cols();
    return lower_.subspan(static_cast<size_t>(id) * d, d);
  }
  std::span<const double> node_upper(NodeId id) const {
    const size_t d = points().cols();
    return upper_.subspan(static_cast<size_t>(id) * d, d);
  }

 private:
  KdTree() = default;

  size_t Partition(const data::Matrix& input_points,
                   std::vector<size_t>& perm, size_t begin,
                   size_t end) override;
  void ComputeRegions() override;

  // Owned backing (build path): lower corners then upper corners.
  std::vector<double> owned_corners_;
  std::span<const double> lower_;  // num_nodes x d.
  std::span<const double> upper_;  // num_nodes x d.
};

}  // namespace karl::index

#endif  // KARL_INDEX_KD_TREE_H_
