#include "index/tree_index.h"

#include <numeric>

#include "util/check.h"
#include "util/math_util.h"

namespace karl::index {

std::string_view IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kKdTree:
      return "kd-tree";
    case IndexKind::kBallTree:
      return "ball-tree";
  }
  return "unknown";
}

void TreeIndex::BuildShared(const data::Matrix& input_points,
                            std::span<const double> input_weights,
                            size_t leaf_capacity) {
  KARL_CHECK(input_points.rows() > 0)
      << ": cannot index an empty point set";
  KARL_CHECK(input_weights.size() == input_points.rows())
      << ": " << input_weights.size() << " weights for "
      << input_points.rows() << " points";
  KARL_CHECK(leaf_capacity >= 1) << ": leaf capacity must be positive";

  leaf_capacity_ = leaf_capacity;
  const size_t n = input_points.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), size_t{0});

  // Phase 1: recursive structure build over the permutation. Explicit
  // stack to stay robust on deep trees (leaf capacity 1, skewed splits).
  nodes_.clear();
  struct Frame {
    NodeId id;
    size_t begin, end;
  };
  std::vector<Frame> stack;
  nodes_.push_back(Node{kInvalidNode, kInvalidNode, 0,
                        static_cast<uint32_t>(n), 0});
  stack.push_back({0, 0, n});
  max_depth_ = 0;

  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    Node& nd = nodes_[frame.id];
    if (nd.count() <= leaf_capacity) continue;

    const size_t mid =
        Partition(input_points, perm_, frame.begin, frame.end);
    // A degenerate split (all points identical) keeps the node a leaf.
    if (mid <= frame.begin || mid >= frame.end) continue;

    const uint16_t child_depth = static_cast<uint16_t>(nodes_[frame.id].depth + 1);
    const NodeId left_id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{kInvalidNode, kInvalidNode,
                          static_cast<uint32_t>(frame.begin),
                          static_cast<uint32_t>(mid), child_depth});
    const NodeId right_id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{kInvalidNode, kInvalidNode,
                          static_cast<uint32_t>(mid),
                          static_cast<uint32_t>(frame.end), child_depth});
    nodes_[frame.id].left = left_id;
    nodes_[frame.id].right = right_id;
    max_depth_ = std::max(max_depth_, static_cast<size_t>(child_depth));
    stack.push_back({left_id, frame.begin, mid});
    stack.push_back({right_id, mid, frame.end});
  }

  // Phase 2: materialise the permuted point matrix and weights.
  const size_t d = input_points.cols();
  points_ = data::Matrix(n, d);
  weights_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const auto src = input_points.Row(perm_[i]);
    auto dst = points_.MutableRow(i);
    for (size_t j = 0; j < d; ++j) dst[j] = src[j];
    weights_[i] = input_weights[perm_[i]];
  }

  // Phase 3: blocked SoA mirror for the vectorized leaf kernels.
  soa_.Build(points_, weights_);

  // Phase 4: aggregates and subclass region geometry.
  ComputeSummaries();
  ComputeRegions();
}

void TreeIndex::ComputeSummaries() {
  const size_t d = points_.cols();
  const size_t num = nodes_.size();
  weight_sums_.assign(num, 0.0);
  sqnorm_sums_.assign(num, 0.0);
  point_sums_.assign(num * d, 0.0);

  // Bottom-up: children appear after parents in nodes_, so a reverse pass
  // can merge child aggregates into parents. Leaves are computed directly.
  for (size_t idx = num; idx-- > 0;) {
    const Node& nd = nodes_[idx];
    double* sums = point_sums_.data() + idx * d;
    if (nd.is_leaf()) {
      double w_sum = 0.0;
      double b_sum = 0.0;
      for (size_t i = nd.begin; i < nd.end; ++i) {
        const double w = weights_[i];
        const auto row = points_.Row(i);
        w_sum += w;
        b_sum += w * util::SquaredNorm(row);
        for (size_t j = 0; j < d; ++j) sums[j] += w * row[j];
      }
      weight_sums_[idx] = w_sum;
      sqnorm_sums_[idx] = b_sum;
    } else {
      weight_sums_[idx] = weight_sums_[nd.left] + weight_sums_[nd.right];
      sqnorm_sums_[idx] = sqnorm_sums_[nd.left] + sqnorm_sums_[nd.right];
      const double* left = point_sums_.data() + static_cast<size_t>(nd.left) * d;
      const double* right =
          point_sums_.data() + static_cast<size_t>(nd.right) * d;
      for (size_t j = 0; j < d; ++j) sums[j] = left[j] + right[j];
    }
  }
}

size_t TreeIndex::MemoryUsageBytes() const {
  return nodes_.size() * sizeof(Node) +
         (weight_sums_.size() + sqnorm_sums_.size() + point_sums_.size() +
          weights_.size()) *
             sizeof(double) +
         perm_.size() * sizeof(size_t) +
         points_.values().size() * sizeof(double) + soa_.MemoryUsageBytes();
}

}  // namespace karl::index
