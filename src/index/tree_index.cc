#include "index/tree_index.h"

#include <numeric>

#include "util/check.h"
#include "util/math_util.h"

namespace karl::index {

std::string_view IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kKdTree:
      return "kd-tree";
    case IndexKind::kBallTree:
      return "ball-tree";
  }
  return "unknown";
}

void TreeIndex::BuildShared(const data::Matrix& input_points,
                            std::span<const double> input_weights,
                            size_t leaf_capacity) {
  KARL_CHECK(input_points.rows() > 0)
      << ": cannot index an empty point set";
  KARL_CHECK(input_weights.size() == input_points.rows())
      << ": " << input_weights.size() << " weights for "
      << input_points.rows() << " points";
  KARL_CHECK(leaf_capacity >= 1) << ": leaf capacity must be positive";

  leaf_capacity_ = leaf_capacity;
  const size_t n = input_points.rows();
  owned_perm_.resize(n);
  std::iota(owned_perm_.begin(), owned_perm_.end(), size_t{0});

  // Phase 1: recursive structure build over the permutation. Explicit
  // stack to stay robust on deep trees (leaf capacity 1, skewed splits).
  owned_nodes_.clear();
  struct Frame {
    NodeId id;
    size_t begin, end;
  };
  std::vector<Frame> stack;
  owned_nodes_.push_back(Node{kInvalidNode, kInvalidNode, 0,
                              static_cast<uint32_t>(n), 0});
  stack.push_back({0, 0, n});
  max_depth_ = 0;

  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    Node& nd = owned_nodes_[frame.id];
    if (nd.count() <= leaf_capacity) continue;

    const size_t mid =
        Partition(input_points, owned_perm_, frame.begin, frame.end);
    // A degenerate split (all points identical) keeps the node a leaf.
    if (mid <= frame.begin || mid >= frame.end) continue;

    const uint16_t child_depth =
        static_cast<uint16_t>(owned_nodes_[frame.id].depth + 1);
    const NodeId left_id = static_cast<NodeId>(owned_nodes_.size());
    owned_nodes_.push_back(Node{kInvalidNode, kInvalidNode,
                                static_cast<uint32_t>(frame.begin),
                                static_cast<uint32_t>(mid), child_depth});
    const NodeId right_id = static_cast<NodeId>(owned_nodes_.size());
    owned_nodes_.push_back(Node{kInvalidNode, kInvalidNode,
                                static_cast<uint32_t>(mid),
                                static_cast<uint32_t>(frame.end),
                                child_depth});
    owned_nodes_[frame.id].left = left_id;
    owned_nodes_[frame.id].right = right_id;
    max_depth_ = std::max(max_depth_, static_cast<size_t>(child_depth));
    stack.push_back({left_id, frame.begin, mid});
    stack.push_back({right_id, mid, frame.end});
  }

  // Phase 2: materialise the permuted point matrix and weights.
  const size_t d = input_points.cols();
  points_ = data::Matrix(n, d);
  owned_weights_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const auto src = input_points.Row(owned_perm_[i]);
    auto dst = points_.MutableRow(i);
    for (size_t j = 0; j < d; ++j) dst[j] = src[j];
    owned_weights_[i] = input_weights[owned_perm_[i]];
  }

  // Phase 3: blocked SoA mirror for the vectorized leaf kernels.
  soa_.Build(points_, owned_weights_);

  // Phase 4: aggregates, then point the read-side spans at the owned
  // storage (all vectors have reached their final size), then the
  // subclass region geometry (ComputeRegions reads via the spans).
  ComputeSummaries();
  nodes_ = owned_nodes_;
  weights_ = owned_weights_;
  perm_ = owned_perm_;
  weight_sums_ = owned_weight_sums_;
  sqnorm_sums_ = owned_sqnorm_sums_;
  point_sums_ = owned_point_sums_;
  ComputeRegions();
}

util::Status TreeIndex::AttachShared(const TreeIndexView& view) {
  const size_t n = view.rows;
  const size_t d = view.cols;
  const size_t num = view.nodes.size();
  if (num == 0 || n == 0 || d == 0) {
    return util::Status::InvalidArgument(
        "attach: empty tree (nodes=" + std::to_string(num) +
        ", rows=" + std::to_string(n) + ", cols=" + std::to_string(d) + ")");
  }
  if (view.leaf_capacity < 1) {
    return util::Status::InvalidArgument("attach: leaf capacity must be >= 1");
  }
  if (view.weights.size() != n || view.perm.size() != n) {
    return util::Status::InvalidArgument(
        "attach: weights/perm length does not match row count");
  }
  if (view.weight_sums.size() != num || view.sqnorm_sums.size() != num ||
      view.point_sums.size() != num * d) {
    return util::Status::InvalidArgument(
        "attach: aggregate array length does not match node count");
  }
  // Structural sweep: the root covers every point, every internal node's
  // children appear after it and tile its range exactly. This is what the
  // traversal and the bottom-up aggregate contract rely on; a snapshot
  // that passed the checksum but violates these is rejected rather than
  // trusted.
  const auto& nodes = view.nodes;
  if (nodes[0].begin != 0 || nodes[0].end != n) {
    return util::Status::InvalidArgument("attach: root does not cover all points");
  }
  for (size_t id = 0; id < num; ++id) {
    const TreeIndex::Node& nd = nodes[id];
    if (nd.begin > nd.end || nd.end > n) {
      return util::Status::InvalidArgument(
          "attach: node " + std::to_string(id) + " has bad point range");
    }
    const bool has_left = nd.left != kInvalidNode;
    const bool has_right = nd.right != kInvalidNode;
    if (has_left != has_right) {
      return util::Status::InvalidArgument(
          "attach: node " + std::to_string(id) + " has exactly one child");
    }
    if (has_left) {
      if (nd.left <= static_cast<NodeId>(id) ||
          nd.right <= static_cast<NodeId>(id) ||
          static_cast<size_t>(nd.left) >= num ||
          static_cast<size_t>(nd.right) >= num) {
        return util::Status::InvalidArgument(
            "attach: node " + std::to_string(id) + " has bad child ids");
      }
      const TreeIndex::Node& l = nodes[nd.left];
      const TreeIndex::Node& r = nodes[nd.right];
      if (l.begin != nd.begin || l.end != r.begin || r.end != nd.end) {
        return util::Status::InvalidArgument(
            "attach: children of node " + std::to_string(id) +
            " do not tile its range");
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (view.perm[i] >= n) {
      return util::Status::InvalidArgument(
          "attach: permutation entry out of range");
    }
  }

  leaf_capacity_ = view.leaf_capacity;
  max_depth_ = view.max_depth;
  points_ = data::Matrix::View(n, d, view.points);
  nodes_ = view.nodes;
  weights_ = view.weights;
  perm_ = view.perm;
  weight_sums_ = view.weight_sums;
  sqnorm_sums_ = view.sqnorm_sums;
  point_sums_ = view.point_sums;

  // The SoA mirror is derived state and always rebuilt (same contract as
  // LoadEngine): it is the only per-model allocation of an attach.
  soa_.Build(points_, weights_);
  return util::Status::OK();
}

void TreeIndex::ComputeSummaries() {
  const size_t d = points_.cols();
  const size_t num = owned_nodes_.size();
  owned_weight_sums_.assign(num, 0.0);
  owned_sqnorm_sums_.assign(num, 0.0);
  owned_point_sums_.assign(num * d, 0.0);

  // Bottom-up: children appear after parents in the node array, so a
  // reverse pass can merge child aggregates into parents. Leaves are
  // computed directly.
  for (size_t idx = num; idx-- > 0;) {
    const Node& nd = owned_nodes_[idx];
    double* sums = owned_point_sums_.data() + idx * d;
    if (nd.is_leaf()) {
      double w_sum = 0.0;
      double b_sum = 0.0;
      for (size_t i = nd.begin; i < nd.end; ++i) {
        const double w = owned_weights_[i];
        const auto row = points_.Row(i);
        w_sum += w;
        b_sum += w * util::SquaredNorm(row);
        for (size_t j = 0; j < d; ++j) sums[j] += w * row[j];
      }
      owned_weight_sums_[idx] = w_sum;
      owned_sqnorm_sums_[idx] = b_sum;
    } else {
      owned_weight_sums_[idx] =
          owned_weight_sums_[nd.left] + owned_weight_sums_[nd.right];
      owned_sqnorm_sums_[idx] =
          owned_sqnorm_sums_[nd.left] + owned_sqnorm_sums_[nd.right];
      const double* left =
          owned_point_sums_.data() + static_cast<size_t>(nd.left) * d;
      const double* right =
          owned_point_sums_.data() + static_cast<size_t>(nd.right) * d;
      for (size_t j = 0; j < d; ++j) sums[j] = left[j] + right[j];
    }
  }
}

size_t TreeIndex::MemoryUsageBytes() const {
  return nodes_.size() * sizeof(Node) +
         (weight_sums_.size() + sqnorm_sums_.size() + point_sums_.size() +
          weights_.size()) *
             sizeof(double) +
         perm_.size() * sizeof(size_t) +
         points_.Flat().size() * sizeof(double) + soa_.MemoryUsageBytes();
}

}  // namespace karl::index
