// Common interface and storage for KARL's hierarchical indexes (kd-tree,
// ball-tree).
//
// A TreeIndex holds a permuted copy of the point set (each node's points
// are contiguous), per-point weights, and per-node *weighted aggregates*
// that let KARL's linear bound functions be evaluated in O(d) per node
// (paper Lemma 2 / Lemma 5):
//
//   weight_sum            w_P  = Σ w_i
//   weighted_point_sum    a_P  = Σ w_i · p_i        (length-d vector)
//   weighted_sqnorm_sum   b_P  = Σ w_i · ||p_i||²
//
// Concrete trees supply the node geometry (distance and inner-product
// bounds); everything else is shared.
//
// Storage duality: a tree is either *built* (BuildShared — it owns every
// array) or *attached* (AttachShared — node, point, weight, aggregate and
// geometry arrays are non-owning views into caller-provided memory,
// typically an mmap(2)-ed snapshot; see registry/snapshot.h). All read
// accessors go through spans that point at whichever storage is active,
// so the query path is identical for both. Only the blocked SoA leaf
// mirror is always rebuilt in memory — it is derived state.

#ifndef KARL_INDEX_TREE_INDEX_H_
#define KARL_INDEX_TREE_INDEX_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/simd/soa_block.h"
#include "data/matrix.h"
#include "util/status.h"

namespace karl::index {

/// Identifier of a node inside a TreeIndex; the root is node 0.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Which concrete index structure to build.
enum class IndexKind {
  kKdTree,
  kBallTree,
};

/// Human-readable name ("kd-tree" / "ball-tree").
std::string_view IndexKindToString(IndexKind kind);

struct TreeIndexView;

/// Abstract hierarchical index over a weighted point set.
class TreeIndex {
 public:
  /// Tree node: children plus the contiguous range of permuted points it
  /// covers. Leaves have left == right == kInvalidNode.
  ///
  /// The layout is part of the snapshot format (registry/snapshot.h):
  /// 20 bytes, little-endian, two zero padding bytes after `depth`.
  struct Node {
    NodeId left = kInvalidNode;
    NodeId right = kInvalidNode;
    uint32_t begin = 0;  ///< First permuted point index (inclusive).
    uint32_t end = 0;    ///< Last permuted point index (exclusive).
    uint16_t depth = 0;  ///< Root has depth 0.
    uint16_t pad = 0;    ///< Always zero (reserved, keeps layout explicit).

    bool is_leaf() const { return left == kInvalidNode; }
    size_t count() const { return end - begin; }
  };
  static_assert(sizeof(Node) == 20, "Node layout is a serialized format");

  virtual ~TreeIndex() = default;

  TreeIndex(const TreeIndex&) = delete;
  TreeIndex& operator=(const TreeIndex&) = delete;

  /// Root node id (always 0 for a non-empty tree).
  NodeId root() const { return 0; }

  /// Number of nodes.
  size_t num_nodes() const { return nodes_.size(); }

  /// Node accessor.
  const Node& node(NodeId id) const { return nodes_[id]; }

  /// All nodes, in build order (children after parents).
  std::span<const Node> nodes() const { return nodes_; }

  /// Deepest node depth (root = 0).
  size_t max_depth() const { return max_depth_; }

  /// Leaf capacity the tree was built with.
  size_t leaf_capacity() const { return leaf_capacity_; }

  /// The permuted point matrix; node ranges index into it.
  const data::Matrix& points() const { return points_; }

  /// Per-point weights, permuted alongside points().
  std::span<const double> weights() const { return weights_; }

  /// Maps permuted position -> original row index in the input matrix.
  std::span<const size_t> original_indices() const { return perm_; }

  /// Blocked SoA mirror of points()/weights() in the same permuted
  /// order, built once per (re)build or attach — the layout the
  /// vectorized leaf kernels (core/simd) read. Node ranges index into it
  /// directly.
  const core::simd::SoaLeafBlocks& soa() const { return soa_; }

  /// w_P of the node (Σ w_i).
  double weight_sum(NodeId id) const { return weight_sums_[id]; }

  /// b_P of the node (Σ w_i ||p_i||²).
  double weighted_sqnorm_sum(NodeId id) const { return sqnorm_sums_[id]; }

  /// a_P of the node (Σ w_i p_i), as a length-d span.
  std::span<const double> weighted_point_sum(NodeId id) const {
    const size_t d = points_.cols();
    return point_sums_.subspan(static_cast<size_t>(id) * d, d);
  }

  /// Whole per-node aggregate arrays (snapshot serialization).
  std::span<const double> node_weight_sums() const { return weight_sums_; }
  std::span<const double> node_sqnorm_sums() const { return sqnorm_sums_; }
  std::span<const double> node_point_sums() const { return point_sums_; }

  /// Flat per-node region geometry, for snapshot serialization. The
  /// meaning is kind-specific: kd-tree → (box lower corners num_nodes×d,
  /// box upper corners num_nodes×d); ball-tree → (ball centres
  /// num_nodes×d, ball radii num_nodes).
  virtual std::span<const double> region_data_a() const = 0;
  virtual std::span<const double> region_data_b() const = 0;

  /// Squared-distance bounds of the node region from `q`:
  /// mindist(q,R)² and maxdist(q,R)².
  virtual void DistanceBounds(NodeId id, std::span<const double> q,
                              double* min_sq, double* max_sq) const = 0;

  /// Inner-product bounds of the node region: [min q·p, max q·p].
  virtual void InnerProductBounds(NodeId id, std::span<const double> q,
                                  double* ip_min, double* ip_max) const = 0;

  /// The concrete index kind.
  virtual IndexKind kind() const = 0;

  /// Total bytes of index data reachable from this tree (diagnostics).
  /// For an attached tree this counts the mapped sections it references,
  /// not heap — mapped pages are resident memory all the same.
  virtual size_t MemoryUsageBytes() const;

 protected:
  TreeIndex() = default;

  /// Shared build driver: recursively partitions the permutation using the
  /// subclass's Partition hook, then materialises the permuted matrix and
  /// the per-node aggregates, then calls the subclass's ComputeRegions.
  void BuildShared(const data::Matrix& input_points,
                   std::span<const double> input_weights,
                   size_t leaf_capacity);

  /// Shared attach driver: adopts pre-built arrays (typically views into
  /// an mmap-ed snapshot section — see registry/snapshot.h) without
  /// copying points, nodes, weights, or aggregates; only the derived SoA
  /// leaf mirror is rebuilt. Validates structural invariants (root
  /// coverage, child ranges, array lengths) and fails rather than adopt
  /// an inconsistent tree. Region geometry stays with the subclass
  /// (see KdTree::Attach / BallTree::Attach).
  util::Status AttachShared(const TreeIndexView& view);

  /// Subclass hook: reorders perm[begin, end) (indices into
  /// `input_points`) and returns the split position `mid` in (begin, end)
  /// so children cover [begin, mid) and [mid, end). Called only when
  /// end - begin > leaf capacity.
  virtual size_t Partition(const data::Matrix& input_points,
                           std::vector<size_t>& perm, size_t begin,
                           size_t end) = 0;

  /// Subclass hook: after points are permuted, compute each node's region
  /// geometry from its contiguous range.
  virtual void ComputeRegions() = 0;

 private:
  void ComputeSummaries();

  // Owned storage; empty for an attached tree.
  std::vector<Node> owned_nodes_;
  std::vector<double> owned_weights_;
  std::vector<size_t> owned_perm_;
  std::vector<double> owned_weight_sums_;
  std::vector<double> owned_sqnorm_sums_;
  std::vector<double> owned_point_sums_;  // num_nodes x d, flattened.

  // Active storage: spans over the owned vectors (built tree) or over
  // caller-provided memory (attached tree). All read accessors go here.
  std::span<const Node> nodes_;
  std::span<const double> weights_;
  std::span<const size_t> perm_;
  std::span<const double> weight_sums_;
  std::span<const double> sqnorm_sums_;
  std::span<const double> point_sums_;

  data::Matrix points_;  // Permuted copy of the input, or a view.
  core::simd::SoaLeafBlocks soa_;  // Derived mirror; always rebuilt.
  size_t leaf_capacity_ = 0;
  size_t max_depth_ = 0;
};

/// Non-owning description of a fully materialised tree, used to attach a
/// TreeIndex over external (e.g. mmap-ed) memory. All spans must stay
/// valid for the lifetime of the attached tree.
struct TreeIndexView {
  std::span<const TreeIndex::Node> nodes;
  size_t rows = 0;
  size_t cols = 0;
  const double* points = nullptr;       ///< rows × cols, row-major.
  std::span<const double> weights;      ///< rows.
  std::span<const size_t> perm;         ///< rows.
  std::span<const double> weight_sums;  ///< num_nodes.
  std::span<const double> sqnorm_sums;  ///< num_nodes.
  std::span<const double> point_sums;   ///< num_nodes × cols.
  std::span<const double> region_a;     ///< kd: lower; ball: centres.
  std::span<const double> region_b;     ///< kd: upper; ball: radii.
  size_t leaf_capacity = 0;
  size_t max_depth = 0;
};

}  // namespace karl::index

#endif  // KARL_INDEX_TREE_INDEX_H_
