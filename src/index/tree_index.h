// Common interface and storage for KARL's hierarchical indexes (kd-tree,
// ball-tree).
//
// A TreeIndex owns a permuted copy of the point set (each node's points are
// contiguous), per-point weights, and per-node *weighted aggregates* that
// let KARL's linear bound functions be evaluated in O(d) per node
// (paper Lemma 2 / Lemma 5):
//
//   weight_sum            w_P  = Σ w_i
//   weighted_point_sum    a_P  = Σ w_i · p_i        (length-d vector)
//   weighted_sqnorm_sum   b_P  = Σ w_i · ||p_i||²
//
// Concrete trees supply the node geometry (distance and inner-product
// bounds); everything else is shared.

#ifndef KARL_INDEX_TREE_INDEX_H_
#define KARL_INDEX_TREE_INDEX_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/simd/soa_block.h"
#include "data/matrix.h"

namespace karl::index {

/// Identifier of a node inside a TreeIndex; the root is node 0.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Which concrete index structure to build.
enum class IndexKind {
  kKdTree,
  kBallTree,
};

/// Human-readable name ("kd-tree" / "ball-tree").
std::string_view IndexKindToString(IndexKind kind);

/// Abstract hierarchical index over a weighted point set.
class TreeIndex {
 public:
  /// Tree node: children plus the contiguous range of permuted points it
  /// covers. Leaves have left == right == kInvalidNode.
  struct Node {
    NodeId left = kInvalidNode;
    NodeId right = kInvalidNode;
    uint32_t begin = 0;  ///< First permuted point index (inclusive).
    uint32_t end = 0;    ///< Last permuted point index (exclusive).
    uint16_t depth = 0;  ///< Root has depth 0.

    bool is_leaf() const { return left == kInvalidNode; }
    size_t count() const { return end - begin; }
  };

  virtual ~TreeIndex() = default;

  TreeIndex(const TreeIndex&) = delete;
  TreeIndex& operator=(const TreeIndex&) = delete;

  /// Root node id (always 0 for a non-empty tree).
  NodeId root() const { return 0; }

  /// Number of nodes.
  size_t num_nodes() const { return nodes_.size(); }

  /// Node accessor.
  const Node& node(NodeId id) const { return nodes_[id]; }

  /// Deepest node depth (root = 0).
  size_t max_depth() const { return max_depth_; }

  /// Leaf capacity the tree was built with.
  size_t leaf_capacity() const { return leaf_capacity_; }

  /// The permuted point matrix; node ranges index into it.
  const data::Matrix& points() const { return points_; }

  /// Per-point weights, permuted alongside points().
  std::span<const double> weights() const { return weights_; }

  /// Maps permuted position -> original row index in the input matrix.
  std::span<const size_t> original_indices() const { return perm_; }

  /// Blocked SoA mirror of points()/weights() in the same permuted
  /// order, built once per (re)build — the layout the vectorized leaf
  /// kernels (core/simd) read. Node ranges index into it directly.
  const core::simd::SoaLeafBlocks& soa() const { return soa_; }

  /// w_P of the node (Σ w_i).
  double weight_sum(NodeId id) const { return weight_sums_[id]; }

  /// b_P of the node (Σ w_i ||p_i||²).
  double weighted_sqnorm_sum(NodeId id) const { return sqnorm_sums_[id]; }

  /// a_P of the node (Σ w_i p_i), as a length-d span.
  std::span<const double> weighted_point_sum(NodeId id) const {
    const size_t d = points_.cols();
    return {point_sums_.data() + static_cast<size_t>(id) * d, d};
  }

  /// Squared-distance bounds of the node region from `q`:
  /// mindist(q,R)² and maxdist(q,R)².
  virtual void DistanceBounds(NodeId id, std::span<const double> q,
                              double* min_sq, double* max_sq) const = 0;

  /// Inner-product bounds of the node region: [min q·p, max q·p].
  virtual void InnerProductBounds(NodeId id, std::span<const double> q,
                                  double* ip_min, double* ip_max) const = 0;

  /// The concrete index kind.
  virtual IndexKind kind() const = 0;

  /// Total heap bytes used by node storage (diagnostics).
  virtual size_t MemoryUsageBytes() const;

 protected:
  TreeIndex() = default;

  /// Shared build driver: recursively partitions the permutation using the
  /// subclass's Partition hook, then materialises the permuted matrix and
  /// the per-node aggregates, then calls the subclass's ComputeRegions.
  void BuildShared(const data::Matrix& input_points,
                   std::span<const double> input_weights,
                   size_t leaf_capacity);

  /// Subclass hook: reorders perm[begin, end) (indices into
  /// `input_points`) and returns the split position `mid` in (begin, end)
  /// so children cover [begin, mid) and [mid, end). Called only when
  /// end - begin > leaf capacity.
  virtual size_t Partition(const data::Matrix& input_points,
                           std::vector<size_t>& perm, size_t begin,
                           size_t end) = 0;

  /// Subclass hook: after points are permuted, compute each node's region
  /// geometry from its contiguous range.
  virtual void ComputeRegions() = 0;

  std::vector<Node> nodes_;

 private:
  void ComputeSummaries();

  data::Matrix points_;          // Permuted copy of the input.
  std::vector<double> weights_;  // Permuted weights.
  core::simd::SoaLeafBlocks soa_;  // Blocked mirror of the two above.
  std::vector<size_t> perm_;     // Permuted position -> original index.
  std::vector<double> weight_sums_;
  std::vector<double> sqnorm_sums_;
  std::vector<double> point_sums_;  // num_nodes x d, flattened.
  size_t leaf_capacity_ = 0;
  size_t max_depth_ = 0;
};

}  // namespace karl::index

#endif  // KARL_INDEX_TREE_INDEX_H_
