#include "ml/kde.h"

#include <cmath>

namespace karl::ml {

double ScottBandwidth(const data::Matrix& data) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n == 0 || d == 0) return 1.0;

  // Mean per-dimension standard deviation.
  double sigma_sum = 0.0;
  for (size_t j = 0; j < d; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < n; ++i) mean += data(i, j);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double diff = data(i, j) - mean;
      var += diff * diff;
    }
    sigma_sum += std::sqrt(var / static_cast<double>(n));
  }
  const double sigma_bar = sigma_sum / static_cast<double>(d);

  const double factor =
      std::pow(static_cast<double>(n),
               -1.0 / (static_cast<double>(d) + 4.0));
  // Guard against constant datasets (σ̄ = 0).
  return std::max(factor * sigma_bar, 1e-9);
}

double BandwidthToGamma(double bandwidth) {
  return 1.0 / (2.0 * bandwidth * bandwidth);
}

util::Result<KdeModel> KdeModel::Fit(const data::Matrix& data,
                                     const EngineOptions& options,
                                     double gamma_override) {
  if (data.empty()) {
    return util::Status::InvalidArgument("cannot fit KDE on empty data");
  }
  const double gamma = gamma_override > 0.0
                           ? gamma_override
                           : BandwidthToGamma(ScottBandwidth(data));
  EngineOptions engine_options = options;
  engine_options.kernel = core::KernelParams::Gaussian(gamma);
  auto engine = Engine::BuildUniform(
      data, 1.0 / static_cast<double>(data.rows()), engine_options);
  if (!engine.ok()) return engine.status();
  return KdeModel(std::move(engine).ValueOrDie(), gamma);
}

}  // namespace karl::ml
