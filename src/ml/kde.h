// Kernel density estimation substrate (the paper's Type-I application
// model): Scott's-rule bandwidth selection and a KDE model that maps
// density queries onto kernel aggregation queries.

#ifndef KARL_ML_KDE_H_
#define KARL_ML_KDE_H_

#include "core/karl.h"
#include "data/matrix.h"
#include "util/status.h"

namespace karl::ml {

/// Scott's-rule bandwidth for `data`: h = n^{-1/(d+4)} · σ̄, where σ̄ is
/// the mean per-dimension standard deviation (the multivariate rule used
/// by [Gan&Bailis'17] and the paper's Type-I setup).
double ScottBandwidth(const data::Matrix& data);

/// Converts a bandwidth h into the Gaussian-kernel γ of Equation (1):
/// exp(−γ·dist²) with γ = 1/(2h²).
double BandwidthToGamma(double bandwidth);

/// A kernel density estimator backed by a KARL engine.
///
/// Density(q) = (1/n)·Σ exp(−γ·dist(q,p_i)²), i.e. a Type-I kernel
/// aggregation with common weight 1/n (the Gaussian normalisation
/// constant is omitted, as in the paper — thresholds scale with it).
class KdeModel {
 public:
  /// Fits a KDE over `data`. γ defaults to Scott's rule; pass a positive
  /// `gamma_override` to pin it. Index settings come from `options`
  /// (kernel field is overwritten).
  static util::Result<KdeModel> Fit(const data::Matrix& data,
                                    const EngineOptions& options,
                                    double gamma_override = 0.0);

  /// Approximate density with relative error eps (eKAQ).
  double Density(std::span<const double> q, double eps = 0.05) const {
    return engine_.Ekaq(q, eps);
  }

  /// Exact density (full scan).
  double ExactDensity(std::span<const double> q) const {
    return engine_.Exact(q);
  }

  /// Is the density at q above `tau`? (TKAQ — the kernel density
  /// classification problem of [Gan&Bailis'17].)
  bool DensityAbove(std::span<const double> q, double tau) const {
    return engine_.Tkaq(q, tau);
  }

  /// The γ in use.
  double gamma() const { return gamma_; }

  /// The underlying engine.
  const Engine& engine() const { return engine_; }

 private:
  KdeModel(Engine engine, double gamma)
      : engine_(std::move(engine)), gamma_(gamma) {}

  Engine engine_;
  double gamma_ = 0.0;
};

}  // namespace karl::ml

#endif  // KARL_ML_KDE_H_
