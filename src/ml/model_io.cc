#include "ml/model_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/errno.h"

namespace karl::ml {

std::string WriteSvmModel(const SvmModel& model) {
  std::ostringstream out;
  out.precision(17);
  out << "kernel " << core::KernelTypeToString(model.kernel.type) << '\n';
  out << "gamma " << model.kernel.gamma << '\n';
  out << "beta " << model.kernel.beta << '\n';
  out << "degree " << model.kernel.degree << '\n';
  out << "rho " << model.rho << '\n';
  out << "dim " << model.support_vectors.cols() << '\n';
  out << "nr_sv " << model.support_vectors.rows() << '\n';
  out << "SV\n";
  for (size_t i = 0; i < model.support_vectors.rows(); ++i) {
    out << model.coefficients[i];
    const auto row = model.support_vectors.Row(i);
    for (const double v : row) out << ' ' << v;
    out << '\n';
  }
  return out.str();
}

util::Result<SvmModel> ParseSvmModel(const std::string& text) {
  std::istringstream in(text);
  SvmModel model;
  size_t dim = 0;
  size_t nr_sv = 0;
  std::string key;
  // Header: "key value" lines until the SV marker.
  while (in >> key) {
    if (key == "SV") break;
    if (key == "kernel") {
      std::string name;
      in >> name;
      if (name == "gaussian") {
        model.kernel.type = core::KernelType::kGaussian;
      } else if (name == "laplacian") {
        model.kernel.type = core::KernelType::kLaplacian;
      } else if (name == "cauchy") {
        model.kernel.type = core::KernelType::kCauchy;
      } else if (name == "polynomial") {
        model.kernel.type = core::KernelType::kPolynomial;
      } else if (name == "sigmoid") {
        model.kernel.type = core::KernelType::kSigmoid;
      } else {
        return util::Status::InvalidArgument("unknown kernel '" + name + "'");
      }
    } else if (key == "gamma") {
      in >> model.kernel.gamma;
    } else if (key == "beta") {
      in >> model.kernel.beta;
    } else if (key == "degree") {
      in >> model.kernel.degree;
    } else if (key == "rho") {
      in >> model.rho;
    } else if (key == "dim") {
      in >> dim;
    } else if (key == "nr_sv") {
      in >> nr_sv;
    } else {
      return util::Status::InvalidArgument("unknown model field '" + key +
                                           "'");
    }
    if (!in) {
      return util::Status::InvalidArgument("malformed value for field '" +
                                           key + "'");
    }
  }
  if (key != "SV") {
    return util::Status::InvalidArgument("missing SV section");
  }

  model.support_vectors = data::Matrix(nr_sv, dim);
  model.coefficients.resize(nr_sv);
  for (size_t i = 0; i < nr_sv; ++i) {
    if (!(in >> model.coefficients[i])) {
      return util::Status::InvalidArgument(
          "truncated SV section at row " + std::to_string(i));
    }
    auto row = model.support_vectors.MutableRow(i);
    for (size_t j = 0; j < dim; ++j) {
      if (!(in >> row[j])) {
        return util::Status::InvalidArgument(
            "truncated SV row " + std::to_string(i));
      }
    }
  }
  return model;
}

util::Status SaveSvmModel(const std::string& path, const SvmModel& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return util::Status::IOError("cannot open " + path + " for writing: " +
                                 util::ErrnoString(errno));
  }
  out << WriteSvmModel(model);
  if (!out) return util::Status::IOError("write failed for " + path);
  return util::Status::OK();
}

util::Result<SvmModel> LoadSvmModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open " + path + ": " +
                                 util::ErrnoString(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseSvmModel(buf.str());
}

}  // namespace karl::ml
