// Save/load trained SVM models in a LIBSVM-flavoured text format, so the
// offline training phase and the online query phase can run in different
// processes (as in the paper's pipeline).

#ifndef KARL_ML_MODEL_IO_H_
#define KARL_ML_MODEL_IO_H_

#include <string>

#include "ml/svm.h"
#include "util/status.h"

namespace karl::ml {

/// Serializes a model to text. Round-trips exactly with ParseSvmModel.
std::string WriteSvmModel(const SvmModel& model);

/// Parses a model from text produced by WriteSvmModel.
util::Result<SvmModel> ParseSvmModel(const std::string& text);

/// Writes a model to disk.
util::Status SaveSvmModel(const std::string& path, const SvmModel& model);

/// Reads a model from disk.
util::Result<SvmModel> LoadSvmModel(const std::string& path);

}  // namespace karl::ml

#endif  // KARL_ML_MODEL_IO_H_
