#include "ml/multiclass.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace karl::ml {

util::Result<MulticlassSvm> MulticlassSvm::Train(
    const data::LabeledDataset& data, const core::KernelParams& kernel,
    const TwoClassSvmParams& params) {
  if (data.points.empty()) {
    return util::Status::InvalidArgument(
        "cannot train multi-class SVM on empty data");
  }
  std::set<double> class_set(data.labels.begin(), data.labels.end());
  if (class_set.size() < 2) {
    return util::Status::InvalidArgument(
        "multi-class SVM requires at least two classes");
  }

  MulticlassSvm svm;
  svm.classes_.assign(class_set.begin(), class_set.end());

  for (size_t a = 0; a < svm.classes_.size(); ++a) {
    for (size_t b = a + 1; b < svm.classes_.size(); ++b) {
      // Binary subproblem: class a -> +1, class b -> -1.
      data::LabeledDataset pair;
      pair.points = data::Matrix(0, data.points.cols());
      for (size_t i = 0; i < data.labels.size(); ++i) {
        if (data.labels[i] == svm.classes_[a]) {
          pair.points.AppendRow(data.points.Row(i));
          pair.labels.push_back(+1.0);
        } else if (data.labels[i] == svm.classes_[b]) {
          pair.points.AppendRow(data.points.Row(i));
          pair.labels.push_back(-1.0);
        }
      }
      auto model = TrainTwoClassSvm(pair, kernel, params);
      if (!model.ok()) return model.status();
      svm.models_.push_back(std::move(model).ValueOrDie());
      svm.pairs_.emplace_back(a, b);
    }
  }
  return svm;
}

double MulticlassSvm::Vote(std::span<const double> q, bool fast) const {
  std::vector<int> votes(classes_.size(), 0);
  for (size_t m = 0; m < models_.size(); ++m) {
    bool positive;
    if (fast) {
      positive = engines_[m]->Tkaq(q, taus_[m]);
    } else {
      positive = SvmDecision(models_[m], q) > 0.0;
    }
    votes[positive ? pairs_[m].first : pairs_[m].second] += 1;
  }
  size_t best = 0;
  for (size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return classes_[best];
}

double MulticlassSvm::PredictScan(std::span<const double> q) const {
  return Vote(q, /*fast=*/false);
}

util::Status MulticlassSvm::BuildEngines(const EngineOptions& options) {
  engines_.clear();
  taus_.clear();
  for (const SvmModel& model : models_) {
    double tau = 0.0;
    auto engine = MakeEngineFromSvm(model, options, &tau);
    if (!engine.ok()) return engine.status();
    engines_.push_back(
        std::make_unique<Engine>(std::move(engine).ValueOrDie()));
    taus_.push_back(tau);
  }
  return util::Status::OK();
}

double MulticlassSvm::PredictFast(std::span<const double> q) const {
  KARL_DCHECK(engines_.size() == models_.size())
      << ": " << engines_.size() << " engines for " << models_.size()
      << " models";
  return Vote(q, /*fast=*/true);
}

double MulticlassSvm::Accuracy(const data::Matrix& points,
                               std::span<const double> labels) const {
  if (points.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < points.rows(); ++i) {
    correct += PredictScan(points.Row(i)) == labels[i];
  }
  return static_cast<double>(correct) / static_cast<double>(points.rows());
}

}  // namespace karl::ml
