// Multi-class kernel SVM (one-vs-one), the paper's §VII future-work item.
//
// Training builds C(k,2) binary C-SVC models with the SMO substrate; each
// binary decision at prediction time is exactly a TKAQ over that model's
// support vectors, so the classifier can run all of its votes through
// KARL engines and inherit the paper's speedups.

#ifndef KARL_ML_MULTICLASS_H_
#define KARL_ML_MULTICLASS_H_

#include <memory>
#include <vector>

#include "core/karl.h"
#include "ml/svm.h"
#include "util/status.h"

namespace karl::ml {

/// One-vs-one multi-class kernel SVM.
class MulticlassSvm {
 public:
  /// Trains C(k,2) pairwise C-SVC models on `data`, whose labels may be
  /// any distinct numeric class ids (at least two classes required).
  static util::Result<MulticlassSvm> Train(const data::LabeledDataset& data,
                                           const core::KernelParams& kernel,
                                           const TwoClassSvmParams& params);

  /// Predicts the class of q by majority vote over all pairwise models,
  /// evaluating each decision by sequential scan. Ties break toward the
  /// smaller class id.
  double PredictScan(std::span<const double> q) const;

  /// Builds KARL engines over every pairwise model; subsequent
  /// PredictFast calls answer each vote with a TKAQ.
  util::Status BuildEngines(const EngineOptions& options);

  /// Predicts via the KARL engines (BuildEngines must have succeeded).
  /// Produces identical votes to PredictScan.
  double PredictFast(std::span<const double> q) const;

  /// Fraction of (points, labels) classified correctly by PredictScan.
  double Accuracy(const data::Matrix& points,
                  std::span<const double> labels) const;

  /// The distinct class ids, ascending.
  const std::vector<double>& classes() const { return classes_; }

  /// The pairwise models, in (i, j) lexicographic class order.
  const std::vector<SvmModel>& models() const { return models_; }

 private:
  MulticlassSvm() = default;

  // Casts all pairwise votes for q; `fast` selects the engine path.
  double Vote(std::span<const double> q, bool fast) const;

  std::vector<double> classes_;
  // models_[m] separates classes_[pairs_[m].first] (positive side) from
  // classes_[pairs_[m].second] (negative side).
  std::vector<SvmModel> models_;
  std::vector<std::pair<size_t, size_t>> pairs_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<double> taus_;
};

}  // namespace karl::ml

#endif  // KARL_ML_MULTICLASS_H_
