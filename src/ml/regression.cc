#include "ml/regression.h"

#include <algorithm>
#include <cmath>

#include "core/evaluator.h"
#include "ml/kde.h"

namespace karl::ml {

util::Result<KernelRegression> KernelRegression::Fit(
    const data::Matrix& points, std::span<const double> targets,
    const EngineOptions& options, double gamma) {
  if (points.empty()) {
    return util::Status::InvalidArgument(
        "cannot fit kernel regression on empty data");
  }
  if (targets.size() != points.rows()) {
    return util::Status::InvalidArgument("target count mismatch");
  }

  KernelRegression model;
  model.gamma_ =
      gamma > 0.0 ? gamma : BandwidthToGamma(ScottBandwidth(points));
  model.y_min_ = *std::min_element(targets.begin(), targets.end());

  EngineOptions engine_options = options;
  engine_options.kernel = core::KernelParams::Gaussian(model.gamma_);

  const double inv_n = 1.0 / static_cast<double>(points.rows());
  std::vector<double> den_weights(points.rows(), inv_n);
  auto den = Engine::Build(points, den_weights, engine_options);
  if (!den.ok()) return den.status();
  model.denominator_ =
      std::make_unique<Engine>(std::move(den).ValueOrDie());

  // Shifted numerator: all weights >= 0 (zeros are dropped by the
  // engine). A constant-target dataset leaves no positive weights; the
  // prediction is then identically y_min and no engine is needed.
  std::vector<double> num_weights(points.rows());
  bool any_positive = false;
  for (size_t i = 0; i < targets.size(); ++i) {
    num_weights[i] = (targets[i] - model.y_min_) * inv_n;
    any_positive |= num_weights[i] > 0.0;
  }
  if (any_positive) {
    auto num = Engine::Build(points, num_weights, engine_options);
    if (!num.ok()) return num.status();
    model.numerator_ =
        std::make_unique<Engine>(std::move(num).ValueOrDie());
  }
  return model;
}

double KernelRegression::Predict(std::span<const double> q,
                                 double eps) const {
  if (numerator_ == nullptr) return y_min_;
  // (1±ε/3)-approximations of both aggregates compose into a (1±ε)
  // approximation of their ratio for ε <= 1.
  const double sub_eps = eps / 3.0;
  const double num = numerator_->Ekaq(q, sub_eps);
  const double den = denominator_->Ekaq(q, sub_eps);
  if (den <= 0.0) return y_min_;  // No kernel mass anywhere near q.
  return y_min_ + num / den;
}

double KernelRegression::PredictExact(std::span<const double> q) const {
  if (numerator_ == nullptr) return y_min_;
  const double num = numerator_->Exact(q);
  const double den = denominator_->Exact(q);
  if (den <= 0.0) return y_min_;
  return y_min_ + num / den;
}

}  // namespace karl::ml
