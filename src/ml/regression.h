// Kernel (Nadaraya–Watson) regression — the paper's §VII future-work
// item.
//
//   ŷ(q) = Σᵢ wᵢ·yᵢ·K(q,pᵢ) / Σᵢ wᵢ·K(q,pᵢ)
//
// Both the numerator and the denominator are kernel aggregation queries,
// so KARL accelerates the regression too. To obtain a clean relative-
// error guarantee the targets are shifted by y_min (making the numerator
// a positive Type-II aggregate):
//
//   ŷ(q) = y_min + Σ wᵢ·(yᵢ − y_min)·K / Σ wᵢ·K
//
// and each aggregate is answered with an εKAQ; the ratio of two
// (1±ε/3)-approximations is a (1±ε)-approximation of the shifted value.

#ifndef KARL_ML_REGRESSION_H_
#define KARL_ML_REGRESSION_H_

#include <memory>

#include "core/karl.h"
#include "data/libsvm_io.h"
#include "util/status.h"

namespace karl::ml {

/// Kernel regression model backed by two KARL engines.
class KernelRegression {
 public:
  /// Fits on (points, targets) with uniform data weights and a Gaussian
  /// kernel of the given γ (pass 0 to use Scott's rule).
  static util::Result<KernelRegression> Fit(const data::Matrix& points,
                                            std::span<const double> targets,
                                            const EngineOptions& options,
                                            double gamma = 0.0);

  /// Approximate prediction: relative error at most `eps` on the shifted
  /// value ŷ(q) − y_min (and hence absolute error ≤ eps·(ŷ − y_min)).
  double Predict(std::span<const double> q, double eps = 0.1) const;

  /// Exact prediction by sequential scan (the reference).
  double PredictExact(std::span<const double> q) const;

  /// The γ in use.
  double gamma() const { return gamma_; }

  /// The target shift (min of the training targets).
  double target_shift() const { return y_min_; }

 private:
  KernelRegression() = default;

  std::unique_ptr<Engine> numerator_;    // Weights (y_i − y_min)/n.
  std::unique_ptr<Engine> denominator_;  // Weights 1/n.
  double y_min_ = 0.0;
  double gamma_ = 0.0;
};

}  // namespace karl::ml

#endif  // KARL_ML_REGRESSION_H_
