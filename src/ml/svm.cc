#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace karl::ml {

namespace {

// Kernel row cache-free helper: K(x_i, x_j) over a training matrix.
double TrainKernel(const core::KernelParams& kernel, const data::Matrix& x,
                   size_t i, size_t j) {
  return core::KernelValue(kernel, x.Row(i), x.Row(j));
}

// Extracts the support vectors (|alpha| > 0) into a model.
SvmModel ExtractModel(const core::KernelParams& kernel,
                      const data::Matrix& x,
                      std::span<const double> signed_alpha, double rho,
                      size_t iterations) {
  SvmModel model;
  model.kernel = kernel;
  model.rho = rho;
  model.training_iterations = iterations;
  std::vector<size_t> sv_rows;
  for (size_t i = 0; i < signed_alpha.size(); ++i) {
    if (signed_alpha[i] != 0.0) sv_rows.push_back(i);
  }
  model.support_vectors = x.SelectRows(sv_rows);
  model.coefficients.reserve(sv_rows.size());
  for (const size_t i : sv_rows) model.coefficients.push_back(signed_alpha[i]);
  return model;
}

}  // namespace

double SvmDecision(const SvmModel& model, std::span<const double> q) {
  double f = 0.0;
  for (size_t i = 0; i < model.support_vectors.rows(); ++i) {
    f += model.coefficients[i] *
         core::KernelValue(model.kernel, q, model.support_vectors.Row(i));
  }
  return f - model.rho;
}

int SvmPredict(const SvmModel& model, std::span<const double> q) {
  return SvmDecision(model, q) > 0.0 ? +1 : -1;
}

double SvmAccuracy(const SvmModel& model, const data::Matrix& points,
                   std::span<const double> labels) {
  KARL_CHECK(labels.size() == points.rows())
      << ": " << labels.size() << " labels for " << points.rows()
      << " points";
  if (points.rows() == 0) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < points.rows(); ++i) {
    const int predicted = SvmPredict(model, points.Row(i));
    if ((predicted > 0) == (labels[i] > 0)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(points.rows());
}

util::Result<SvmModel> TrainTwoClassSvm(const data::LabeledDataset& data,
                                        const core::KernelParams& kernel,
                                        const TwoClassSvmParams& params) {
  KARL_RETURN_NOT_OK(kernel.Validate());
  const size_t n = data.points.rows();
  if (n == 0) {
    return util::Status::InvalidArgument("cannot train SVM on empty data");
  }
  if (data.labels.size() != n) {
    return util::Status::InvalidArgument("label count mismatch");
  }
  bool has_pos = false, has_neg = false;
  for (const double y : data.labels) {
    if (y == 1.0) {
      has_pos = true;
    } else if (y == -1.0) {
      has_neg = true;
    } else {
      return util::Status::InvalidArgument(
          "2-class SVM labels must be +1 or -1");
    }
  }
  if (!has_pos || !has_neg) {
    return util::Status::InvalidArgument(
        "2-class SVM requires both classes present");
  }
  if (params.c <= 0.0) {
    return util::Status::InvalidArgument("C must be positive");
  }

  const data::Matrix& x = data.points;
  const std::vector<double>& y = data.labels;
  const double c = params.c;
  const double tol = params.tolerance;

  // SMO with maximal-violating-pair selection [Keerthi'01, as in LIBSVM].
  // Objective: min ½αᵀQα − eᵀα, Q_ij = y_i y_j K_ij, 0 ≤ α ≤ C, yᵀα = 0.
  // Gradient G_i = (Qα)_i − 1; starts at −1 with α = 0.
  std::vector<double> alpha(n, 0.0);
  std::vector<double> grad(n, -1.0);

  size_t iter = 0;
  for (; iter < params.max_iterations; ++iter) {
    // Working-set selection: i maximises −y_i G_i over I_up, j minimises
    // −y_j G_j over I_low.
    int i = -1, j = -1;
    double max_up = -1e300, min_low = 1e300;
    for (size_t t = 0; t < n; ++t) {
      const bool in_up = (y[t] > 0 && alpha[t] < c) || (y[t] < 0 && alpha[t] > 0);
      const bool in_low =
          (y[t] > 0 && alpha[t] > 0) || (y[t] < 0 && alpha[t] < c);
      const double v = -y[t] * grad[t];
      if (in_up && v > max_up) {
        max_up = v;
        i = static_cast<int>(t);
      }
      if (in_low && v < min_low) {
        min_low = v;
        j = static_cast<int>(t);
      }
    }
    if (i < 0 || j < 0 || max_up - min_low < tol) break;

    const size_t si = static_cast<size_t>(i);
    const size_t sj = static_cast<size_t>(j);
    const double kii = TrainKernel(kernel, x, si, si);
    const double kjj = TrainKernel(kernel, x, sj, sj);
    const double kij = TrainKernel(kernel, x, si, sj);
    double quad = kii + kjj - 2.0 * kij;
    if (quad <= 0.0) quad = 1e-12;

    // Two-variable analytic step along the equality constraint.
    const double old_ai = alpha[si];
    const double old_aj = alpha[sj];
    double delta = (max_up - min_low) / quad;  // Step in the y_i-direction.

    // Clip so both variables stay in [0, C].
    if (y[si] > 0) {
      delta = std::min(delta, c - old_ai);
    } else {
      delta = std::min(delta, old_ai);
    }
    if (y[sj] > 0) {
      delta = std::min(delta, old_aj);
    } else {
      delta = std::min(delta, c - old_aj);
    }
    if (delta <= 0.0) break;

    alpha[si] += y[si] * delta;
    alpha[sj] -= y[sj] * delta;

    // Gradient maintenance: G_t += Q_ti Δα_i + Q_tj Δα_j.
    const double dai = alpha[si] - old_ai;
    const double daj = alpha[sj] - old_aj;
    for (size_t t = 0; t < n; ++t) {
      const double kti = TrainKernel(kernel, x, t, si);
      const double ktj = TrainKernel(kernel, x, t, sj);
      grad[t] += y[t] * y[si] * kti * dai + y[t] * y[sj] * ktj * daj;
    }
  }

  // ρ from the midpoint of the violating-pair band (LIBSVM's rule):
  // for free SVs, y_i G_i averages to −b.
  double rho_sum = 0.0;
  size_t rho_count = 0;
  double max_up = -1e300, min_low = 1e300;
  for (size_t t = 0; t < n; ++t) {
    const double v = y[t] * grad[t];
    if (alpha[t] > 0.0 && alpha[t] < c) {
      rho_sum += v;
      ++rho_count;
    }
    const bool in_up = (y[t] > 0 && alpha[t] < c) || (y[t] < 0 && alpha[t] > 0);
    const bool in_low = (y[t] > 0 && alpha[t] > 0) || (y[t] < 0 && alpha[t] < c);
    if (in_up) max_up = std::max(max_up, -v);
    if (in_low) min_low = std::min(min_low, -v);
  }
  // f(q) = Σ α_i y_i K − ρ; ρ equals the averaged y_i G_i over free SVs.
  const double rho = rho_count > 0 ? rho_sum / static_cast<double>(rho_count)
                                   : -0.5 * (max_up + min_low);

  std::vector<double> signed_alpha(n);
  for (size_t t = 0; t < n; ++t) signed_alpha[t] = alpha[t] * y[t];
  return ExtractModel(kernel, x, signed_alpha, rho, iter);
}

util::Result<SvmModel> TrainOneClassSvm(const data::Matrix& points,
                                        const core::KernelParams& kernel,
                                        const OneClassSvmParams& params) {
  KARL_RETURN_NOT_OK(kernel.Validate());
  const size_t n = points.rows();
  if (n == 0) {
    return util::Status::InvalidArgument("cannot train SVM on empty data");
  }
  if (params.nu <= 0.0 || params.nu > 1.0) {
    return util::Status::InvalidArgument("nu must be in (0, 1]");
  }

  // Dual [Schölkopf'99]: min ½αᵀKα, 0 ≤ α_i ≤ 1/(νn), Σα = 1.
  const double cap = 1.0 / (params.nu * static_cast<double>(n));
  std::vector<double> alpha(n, 0.0);
  // LIBSVM-style initialisation: fill the first ⌈νn⌉ coordinates.
  {
    double remaining = 1.0;
    for (size_t i = 0; i < n && remaining > 0.0; ++i) {
      alpha[i] = std::min(cap, remaining);
      remaining -= alpha[i];
    }
  }

  // Gradient G_i = (Kα)_i.
  std::vector<double> grad(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (alpha[i] == 0.0) continue;
    for (size_t t = 0; t < n; ++t) {
      grad[t] += alpha[i] * TrainKernel(kernel, points, t, i);
    }
  }

  size_t iter = 0;
  for (; iter < params.max_iterations; ++iter) {
    // Move mass from the highest-gradient loaded coordinate to the
    // lowest-gradient unsaturated one.
    int i = -1, j = -1;
    double gi = -1e300, gj = 1e300;
    for (size_t t = 0; t < n; ++t) {
      if (alpha[t] > 0.0 && grad[t] > gi) {
        gi = grad[t];
        i = static_cast<int>(t);
      }
      if (alpha[t] < cap && grad[t] < gj) {
        gj = grad[t];
        j = static_cast<int>(t);
      }
    }
    if (i < 0 || j < 0 || gi - gj < params.tolerance) break;

    const size_t si = static_cast<size_t>(i);
    const size_t sj = static_cast<size_t>(j);
    double quad = TrainKernel(kernel, points, si, si) +
                  TrainKernel(kernel, points, sj, sj) -
                  2.0 * TrainKernel(kernel, points, si, sj);
    if (quad <= 0.0) quad = 1e-12;
    const double delta =
        std::min({(gi - gj) / quad, alpha[si], cap - alpha[sj]});
    if (delta <= 0.0) break;

    alpha[si] -= delta;
    alpha[sj] += delta;
    for (size_t t = 0; t < n; ++t) {
      grad[t] += delta * (TrainKernel(kernel, points, t, sj) -
                          TrainKernel(kernel, points, t, si));
    }
  }

  // ρ: the decision value at free support vectors; average for stability.
  double rho_sum = 0.0;
  size_t rho_count = 0;
  for (size_t t = 0; t < n; ++t) {
    if (alpha[t] > 0.0 && alpha[t] < cap) {
      rho_sum += grad[t];
      ++rho_count;
    }
  }
  double rho;
  if (rho_count > 0) {
    rho = rho_sum / static_cast<double>(rho_count);
  } else {
    // All SVs at bound: ρ is the midpoint of the feasibility band.
    double hi = -1e300, lo = 1e300;
    for (size_t t = 0; t < n; ++t) {
      if (alpha[t] > 0.0) hi = std::max(hi, grad[t]);
      if (alpha[t] < cap) lo = std::min(lo, grad[t]);
    }
    rho = 0.5 * (hi + lo);
  }

  return ExtractModel(kernel, points, alpha, rho, iter);
}

util::Result<Engine> MakeEngineFromSvm(const SvmModel& model,
                                       const EngineOptions& options,
                                       double* tau) {
  EngineOptions engine_options = options;
  engine_options.kernel = model.kernel;
  auto engine =
      Engine::Build(model.support_vectors, model.coefficients, engine_options);
  if (!engine.ok()) return engine.status();
  if (tau != nullptr) *tau = model.rho;
  return engine;
}

}  // namespace karl::ml
