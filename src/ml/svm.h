// Support vector machine substrate, built from scratch.
//
// The paper's Type-II / Type-III workloads come out of LIBSVM training
// (1-class and 2-class SVMs respectively); this module replaces that
// dependency with SMO trainers producing the same artefacts: support
// vectors, signed coefficients, and the decision threshold ρ. An SVM
// decision f(q) = Σ coef_i·K(sv_i, q) − ρ > 0 is exactly a TKAQ with
// τ = ρ over the support-vector set — the bridge the paper exploits.

#ifndef KARL_ML_SVM_H_
#define KARL_ML_SVM_H_

#include <vector>

#include "core/karl.h"
#include "core/kernel.h"
#include "data/libsvm_io.h"
#include "data/matrix.h"
#include "util/status.h"

namespace karl::ml {

/// A trained SVM: decision f(q) = Σ coefficients_i·K(sv_i, q) − rho.
/// Predict +1 when f(q) > 0, else −1.
struct SvmModel {
  core::KernelParams kernel;
  data::Matrix support_vectors;
  /// α_i·y_i for 2-class models (signed — Type III); α_i for 1-class
  /// models (positive — Type II).
  std::vector<double> coefficients;
  double rho = 0.0;
  size_t training_iterations = 0;
};

/// Evaluates the decision function f(q) by sequential scan.
double SvmDecision(const SvmModel& model, std::span<const double> q);

/// Classifies q: +1 if f(q) > 0 else −1.
int SvmPredict(const SvmModel& model, std::span<const double> q);

/// Fraction of (points, labels) classified correctly.
double SvmAccuracy(const SvmModel& model, const data::Matrix& points,
                   std::span<const double> labels);

/// C-SVC training parameters.
struct TwoClassSvmParams {
  double c = 1.0;          ///< Box constraint.
  double tolerance = 1e-3; ///< KKT violation tolerance.
  size_t max_iterations = 200000;
};

/// Trains a 2-class C-SVC with Platt's SMO (labels must be ±1).
/// Produces a Type-III coefficient set.
util::Result<SvmModel> TrainTwoClassSvm(const data::LabeledDataset& data,
                                        const core::KernelParams& kernel,
                                        const TwoClassSvmParams& params);

/// One-class SVM training parameters (Schölkopf et al. '99).
struct OneClassSvmParams {
  double nu = 0.1;          ///< Outlier-fraction bound, in (0, 1].
  double tolerance = 1e-4;  ///< Gradient-gap tolerance.
  size_t max_iterations = 200000;
};

/// Trains a 1-class SVM by SMO on the ν-formulation dual. Produces a
/// Type-II (all-positive) coefficient set.
util::Result<SvmModel> TrainOneClassSvm(const data::Matrix& points,
                                        const core::KernelParams& kernel,
                                        const OneClassSvmParams& params);

/// Builds a KARL engine over the model's support vectors/coefficients and
/// reports the TKAQ threshold (= ρ) that reproduces SvmPredict. The
/// `options.kernel` field is overwritten with the model's kernel.
util::Result<Engine> MakeEngineFromSvm(const SvmModel& model,
                                       const EngineOptions& options,
                                       double* tau);

}  // namespace karl::ml

#endif  // KARL_ML_SVM_H_
