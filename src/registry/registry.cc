#include "registry/registry.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "core/engine_io.h"
#include "telemetry/metrics.h"
#include "util/stopwatch.h"

namespace karl::registry {

namespace {

namespace fs = std::filesystem;

// Artifact kinds a registry entry can point at, decided by file magic
// (not extension) so --model works with any filename.
enum class ArtifactKind { kSnapshot, kLegacy, kUnknown };

ArtifactKind SniffKind(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in.good()) return ArtifactKind::kUnknown;
  if (std::string_view(magic, 4) == "KSNP") return ArtifactKind::kSnapshot;
  if (std::string_view(magic, 4) == "KARL") return ArtifactKind::kLegacy;
  return ArtifactKind::kUnknown;
}

// Model name of a scanned file: the stem ("home.snap" → "home").
std::string StemName(const fs::path& path) { return path.stem().string(); }

int64_t MtimeNanos(const fs::path& path, std::error_code& ec) {
  const auto t = fs::last_write_time(path, ec);
  if (ec) return 0;
  return static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

}  // namespace

util::Result<std::unique_ptr<ModelRegistry>> ModelRegistry::Open(
    const std::string& model_dir, const RegistryOptions& options) {
  std::unique_ptr<ModelRegistry> registry(
      new ModelRegistry(model_dir, options));
  if (!model_dir.empty()) {
    std::map<std::string, Entry> found;
    KARL_RETURN_NOT_OK(registry->ScanDir(&found));
    util::MutexLock lock(&registry->mu_);
    registry->models_ = std::move(found);
  }
  return registry;
}

util::Status ModelRegistry::ScanDir(
    std::map<std::string, Entry>* found) const {
  std::error_code ec;
  fs::directory_iterator it(model_dir_, ec);
  if (ec) {
    return util::Status::IOError("cannot scan model dir " + model_dir_ +
                                 ": " + ec.message());
  }
  for (const auto& dirent : it) {
    if (!dirent.is_regular_file(ec)) continue;
    const fs::path& p = dirent.path();
    const std::string ext = p.extension().string();
    if (ext != ".snap" && ext != ".bin") continue;
    const std::string name = StemName(p);
    if (name.empty()) continue;
    Entry entry;
    entry.path = p.string();
    entry.from_scan = true;
    entry.file_bytes = static_cast<uint64_t>(fs::file_size(p, ec));
    entry.mtime_ns = MtimeNanos(p, ec);
    // Same stem in both formats: the snapshot wins (it is the compiled
    // artifact of the .bin next to it).
    auto existing = found->find(name);
    if (existing != found->end() &&
        fs::path(existing->second.path).extension() == ".snap") {
      continue;
    }
    (*found)[name] = std::move(entry);
  }
  return util::Status::OK();
}

util::Status ModelRegistry::AddModelFile(const std::string& name,
                                         const std::string& path) {
  if (name.empty()) {
    return util::Status::InvalidArgument("model name must not be empty");
  }
  std::error_code ec;
  const uint64_t bytes = static_cast<uint64_t>(fs::file_size(path, ec));
  if (ec) {
    return util::Status::IOError("cannot stat model file " + path + ": " +
                                 ec.message());
  }
  Entry entry;
  entry.path = path;
  entry.file_bytes = bytes;
  entry.mtime_ns = MtimeNanos(path, ec);
  util::MutexLock lock(&mu_);
  models_[name] = std::move(entry);
  return util::Status::OK();
}

void ModelRegistry::AdoptEngine(const std::string& name,
                                const Engine* engine) {
  std::shared_ptr<LoadedModel> loaded(new LoadedModel());
  loaded->external_ = engine;
  loaded->resident_bytes_ = engine->MemoryUsageBytes();
  Entry entry;
  entry.adopted = true;
  entry.loaded = std::move(loaded);
  util::MutexLock lock(&mu_);
  models_[name] = std::move(entry);
  UpdateResidentGauge();
}

util::Result<ModelHandle> ModelRegistry::Acquire(const std::string& name) {
  util::MutexLock lock(&mu_);
  std::string resolved = name;
  if (resolved.empty()) {
    resolved = options_.default_model;
    if (resolved.empty()) {
      if (models_.size() == 1) {
        resolved = models_.begin()->first;
      } else {
        return util::Status::InvalidArgument(
            "request names no model and the registry serves " +
            std::to_string(models_.size()) +
            " models with no default configured");
      }
    }
  }
  auto it = models_.find(resolved);
  if (it == models_.end()) {
    std::string known;
    for (const auto& [model_name, entry] : models_) {
      if (!known.empty()) known += ", ";
      known += model_name;
    }
    return util::Status::NotFound("unknown model '" + resolved +
                                  "' (known: " +
                                  (known.empty() ? "none" : known) + ")");
  }
  Entry& entry = it->second;
  entry.last_used_tick = ++tick_;
  ++entry.queries;
  if (entry.loaded != nullptr) return entry.loaded;

  auto handle = LoadEntry(resolved, &entry);
  if (!handle.ok()) return handle.status();
  entry.loaded = handle.value();
  EnforceBudget();
  UpdateResidentGauge();
  return std::move(handle).ValueOrDie();
}

util::Result<ModelHandle> ModelRegistry::LoadEntry(const std::string& name,
                                                   Entry* entry) {
  util::Stopwatch timer;
  std::shared_ptr<LoadedModel> loaded(new LoadedModel());
  LoadedModel* model = loaded.get();
  const ArtifactKind kind = SniffKind(entry->path);
  if (kind == ArtifactKind::kSnapshot) {
    auto snapshot = MappedSnapshot::Map(entry->path);
    if (!snapshot.ok()) return snapshot.status();
    model->snapshot_.emplace(std::move(snapshot).ValueOrDie());
    auto engine = AttachEngine(*model->snapshot_, options_.metrics, nullptr);
    if (!engine.ok()) return engine.status();
    model->engine_ =
        std::make_unique<Engine>(std::move(engine).ValueOrDie());
  } else if (kind == ArtifactKind::kLegacy) {
    auto legacy = core::LoadEngineModel(entry->path);
    if (!legacy.ok()) return legacy.status();
    EngineOptions options = legacy.value().options;
    options.metrics = options_.metrics;
    auto engine = Engine::Build(legacy.value().points,
                                legacy.value().weights, options);
    if (!engine.ok()) {
      return util::Status(engine.status().code(),
                          entry->path + ": " + engine.status().message());
    }
    model->engine_ =
        std::make_unique<Engine>(std::move(engine).ValueOrDie());
  } else {
    return util::Status::InvalidArgument(
        "model file " + entry->path +
        " is neither a KARL snapshot nor a legacy engine model");
  }
  model->resident_bytes_ = model->engine_->MemoryUsageBytes();
  model->coldstart_us_ =
      static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);

  ++entry->loads;
  entry->coldstart_us = model->coldstart_us_;
  entry->generation = reloads_total_;
  if (options_.metrics != nullptr) {
    const telemetry::LabelSet labels{{"model", name}};
    options_.metrics->GetCounter("karl_model_loads_total")->Increment();
    options_.metrics->GetCounter("karl_model_loads_total", labels)
        ->Increment();
    options_.metrics->GetHistogram("karl_model_coldstart_us")
        ->Record(static_cast<double>(model->coldstart_us_));
    options_.metrics->GetHistogram("karl_model_coldstart_us", labels)
        ->Record(static_cast<double>(model->coldstart_us_));
  }
  util::Log(options_.logger, util::LogLevel::kInfo, "model_load",
            {{"model", name},
             {"path", entry->path},
             {"mmap", kind == ArtifactKind::kSnapshot},
             {"coldstart_us", model->coldstart_us_},
             {"resident_bytes",
              static_cast<uint64_t>(model->resident_bytes_)}});
  return ModelHandle(std::move(loaded));
}

void ModelRegistry::EnforceBudget() {
  if (options_.memory_budget_bytes == 0) return;
  while (ResidentBytesLocked() > options_.memory_budget_bytes) {
    // LRU sweep over evictable entries: resident, not adopted, and not
    // pinned — use_count() == 1 means the registry holds the only
    // reference, so releasing it frees (or defers to the last in-flight
    // handle, which cannot exist when the count is 1 under this lock).
    auto victim = models_.end();
    for (auto it = models_.begin(); it != models_.end(); ++it) {
      Entry& entry = it->second;
      if (entry.adopted || entry.loaded == nullptr) continue;
      if (entry.loaded.use_count() > 1) continue;  // Pinned by queries.
      if (victim == models_.end() ||
          entry.last_used_tick < victim->second.last_used_tick) {
        victim = it;
      }
    }
    if (victim == models_.end()) return;  // Everything pinned or adopted.
    Entry& entry = victim->second;
    entry.loaded.reset();  // The munmap happens here (count was 1).
    ++entry.evictions;
    ++evictions_total_;
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter("karl_model_evictions_total")
          ->Increment();
      options_.metrics
          ->GetCounter("karl_model_evictions_total",
                       telemetry::LabelSet{{"model", victim->first}})
          ->Increment();
    }
    util::Log(options_.logger, util::LogLevel::kInfo, "model_evict",
              {{"model", victim->first},
               {"resident_bytes", ResidentBytesLocked()}});
  }
}

util::Status ModelRegistry::Reload() {
  util::Status first_error = util::Status::OK();
  util::MutexLock lock(&mu_);
  ++reloads_total_;

  std::map<std::string, Entry> found;
  if (!model_dir_.empty()) {
    util::Status scan = ScanDir(&found);
    if (!scan.ok()) return scan;
  }

  // Drop scanned entries whose file disappeared; in-flight queries keep
  // their handles, the name just stops resolving.
  for (auto it = models_.begin(); it != models_.end();) {
    if (it->second.from_scan && found.find(it->first) == found.end()) {
      util::Log(options_.logger, util::LogLevel::kInfo, "model_gone",
                {{"model", it->first}});
      it = models_.erase(it);
    } else {
      ++it;
    }
  }

  // Add new files; refresh changed ones (scan set and explicit files).
  for (auto& [name, fresh] : found) {
    auto it = models_.find(name);
    if (it == models_.end()) {
      util::Log(options_.logger, util::LogLevel::kInfo, "model_found",
                {{"model", name}, {"path", fresh.path}});
      models_[name] = std::move(fresh);
      continue;
    }
    if (it->second.adopted) continue;  // Adopted names shadow files.
    Entry& entry = it->second;
    const bool changed = entry.path != fresh.path ||
                         entry.file_bytes != fresh.file_bytes ||
                         entry.mtime_ns != fresh.mtime_ns;
    if (!changed) continue;
    entry.path = fresh.path;
    entry.file_bytes = fresh.file_bytes;
    entry.mtime_ns = fresh.mtime_ns;
    if (entry.loaded == nullptr) continue;  // Next Acquire loads fresh.
    // RCU swap: load the new artifact, then replace the handle. Queries
    // holding the old handle finish on the old mapping; its memory is
    // released when the last of them drops it.
    auto handle = LoadEntry(name, &entry);
    if (!handle.ok()) {
      util::Log(options_.logger, util::LogLevel::kWarn,
                "model_reload_failed",
                {{"model", name},
                 {"error", handle.status().message()}});
      if (first_error.ok()) first_error = handle.status();
      continue;  // Keep serving the old version.
    }
    entry.loaded = std::move(handle).ValueOrDie();
    util::Log(options_.logger, util::LogLevel::kInfo, "model_reload",
              {{"model", name}, {"path", entry.path}});
  }

  // Explicit (non-scan) files: refresh stats so a changed file is
  // noticed; swap resident ones just like scanned entries.
  for (auto& [name, entry] : models_) {
    if (entry.from_scan || entry.adopted) continue;
    std::error_code ec;
    const uint64_t bytes =
        static_cast<uint64_t>(fs::file_size(entry.path, ec));
    if (ec) continue;  // Keep serving what we have.
    const int64_t mtime = MtimeNanos(entry.path, ec);
    if (bytes == entry.file_bytes && mtime == entry.mtime_ns) continue;
    entry.file_bytes = bytes;
    entry.mtime_ns = mtime;
    if (entry.loaded == nullptr) continue;
    auto handle = LoadEntry(name, &entry);
    if (!handle.ok()) {
      if (first_error.ok()) first_error = handle.status();
      continue;
    }
    entry.loaded = std::move(handle).ValueOrDie();
    util::Log(options_.logger, util::LogLevel::kInfo, "model_reload",
              {{"model", name}, {"path", entry.path}});
  }

  EnforceBudget();
  UpdateResidentGauge();
  return first_error;
}

std::vector<ModelInfo> ModelRegistry::List() const {
  util::MutexLock lock(&mu_);
  std::vector<ModelInfo> out;
  out.reserve(models_.size());
  for (const auto& [name, entry] : models_) {
    ModelInfo info;
    info.name = name;
    info.path = entry.path;
    info.adopted = entry.adopted;
    info.resident = entry.loaded != nullptr;
    info.mmap_backed =
        entry.loaded != nullptr && entry.loaded->mmap_backed();
    info.file_bytes = entry.file_bytes;
    info.resident_bytes =
        entry.loaded != nullptr ? entry.loaded->resident_bytes() : 0;
    info.coldstart_us = entry.coldstart_us;
    info.queries = entry.queries;
    info.loads = entry.loads;
    info.evictions = entry.evictions;
    info.generation = entry.generation;
    out.push_back(std::move(info));
  }
  return out;
}

std::string ModelRegistry::default_model() const {
  util::MutexLock lock(&mu_);
  if (!options_.default_model.empty()) return options_.default_model;
  if (models_.size() == 1) return models_.begin()->first;
  return "";
}

uint64_t ModelRegistry::resident_bytes() const {
  util::MutexLock lock(&mu_);
  return ResidentBytesLocked();
}

uint64_t ModelRegistry::evictions() const {
  util::MutexLock lock(&mu_);
  return evictions_total_;
}

uint64_t ModelRegistry::reloads() const {
  util::MutexLock lock(&mu_);
  return reloads_total_;
}

uint64_t ModelRegistry::ResidentBytesLocked() const {
  uint64_t total = 0;
  for (const auto& [name, entry] : models_) {
    if (entry.loaded != nullptr) total += entry.loaded->resident_bytes();
  }
  return total;
}

void ModelRegistry::UpdateResidentGauge() {
  if (options_.metrics == nullptr) return;
  options_.metrics->GetGauge("karl_model_resident_bytes")
      ->Set(static_cast<double>(ResidentBytesLocked()));
  // Per-model residency: evicted/unloaded models report 0 rather than
  // disappearing, so scrapers see the release.
  for (const auto& [name, entry] : models_) {
    const double bytes =
        entry.loaded != nullptr
            ? static_cast<double>(entry.loaded->resident_bytes())
            : 0.0;
    options_.metrics
        ->GetGauge("karl_model_resident_bytes",
                   telemetry::LabelSet{{"model", name}})
        ->Set(bytes);
  }
}

}  // namespace karl::registry
