// Multi-model serving registry: named models, lazy mmap, LRU eviction.
//
// A ModelRegistry maps model names to on-disk artifacts (mmap snapshots,
// registry/snapshot.h, or legacy engine-model files, core/engine_io.h)
// and serves refcounted engine handles to the query path:
//
//   * Lazy residency — a model is mapped/built on first Acquire, not at
//     scan time. Cold-start latency is recorded per model.
//   * Pinning — Acquire returns a shared_ptr handle; a model's mapping
//     is released only when the registry entry drops it AND every
//     in-flight query handle is gone, so eviction never unmaps memory a
//     query is reading (RCU-style grace period via shared_ptr).
//   * LRU eviction — when resident bytes exceed the budget, the least
//     recently used unpinned, non-adopted model is released. Entries
//     whose handles are still held by queries are skipped (pinned).
//   * Hot reload — Reload() rescans the directory; new files appear,
//     deleted files disappear, and changed files (size/mtime) are
//     re-loaded and swapped in atomically: in-flight queries finish on
//     the old mapping, new queries see the new one.
//
// Thread safety: every public method is safe to call concurrently; one
// annotated util::Mutex guards the table. Loads run under the lock —
// snapshot attach is cheap by design (mmap + SoA rebuild), which is the
// point of the format.

#ifndef KARL_REGISTRY_REGISTRY_H_
#define KARL_REGISTRY_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/karl.h"
#include "registry/snapshot.h"
#include "util/log.h"
#include "util/mutex.h"
#include "util/status.h"

namespace karl::registry {

/// Registry construction parameters.
struct RegistryOptions {
  /// Model served when a request names none. Empty: single-model
  /// registries fall back to their only model; multi-model registries
  /// reject unnamed requests.
  std::string default_model;
  /// Resident-byte budget enforced by LRU eviction; 0 = unlimited.
  /// Adopted engines count toward residency but are never evicted.
  uint64_t memory_budget_bytes = 0;
  telemetry::Registry* metrics = nullptr;   ///< Null disables metrics.
  util::Logger* logger = nullptr;           ///< Null disables logging.
};

/// One resident model: the engine plus whatever keeps its memory alive
/// (a snapshot mapping, or nothing for adopted engines). Immutable after
/// construction; destroyed when the registry entry and every query
/// handle release it — the destructor is what finally munmaps.
class LoadedModel {
 public:
  const Engine& engine() const {
    return external_ != nullptr ? *external_ : *engine_;
  }
  /// Bytes this model keeps resident (mapped sections + derived heap).
  size_t resident_bytes() const { return resident_bytes_; }
  /// Load latency (mmap+attach or parse+build), microseconds.
  uint64_t coldstart_us() const { return coldstart_us_; }
  /// True when backed by an mmap snapshot (false: legacy build/adopted).
  bool mmap_backed() const { return snapshot_.has_value(); }

 private:
  friend class ModelRegistry;
  LoadedModel() = default;

  // Declaration order is a destruction contract: engine_ (which views
  // the mapping) must be destroyed before snapshot_ unmaps.
  std::optional<MappedSnapshot> snapshot_;
  std::unique_ptr<Engine> engine_;
  const Engine* external_ = nullptr;  // Adopted engines (non-owning).
  size_t resident_bytes_ = 0;
  uint64_t coldstart_us_ = 0;
};

/// Refcounted pin on a resident model. Holding it keeps the engine (and
/// any backing mapping) valid even across eviction or hot reload.
using ModelHandle = std::shared_ptr<const LoadedModel>;

/// Per-model state for /modelz and tests.
struct ModelInfo {
  std::string name;
  std::string path;        ///< Empty for adopted engines.
  bool adopted = false;
  bool resident = false;
  bool mmap_backed = false;
  uint64_t file_bytes = 0;
  uint64_t resident_bytes = 0;  ///< 0 when not resident.
  uint64_t coldstart_us = 0;    ///< Last load; 0 before first load.
  uint64_t queries = 0;
  uint64_t loads = 0;
  uint64_t evictions = 0;
  /// reloads() count when the resident artifact was (re)loaded: 0 for a
  /// model loaded before any reload, bumped when a hot reload swaps it.
  uint64_t generation = 0;
};

/// See file comment.
class ModelRegistry {
 public:
  /// Opens a registry over `model_dir` (scanned for *.snap and *.bin;
  /// empty string = no directory, models come from AddModelFile/
  /// AdoptEngine). Fails if a named directory cannot be scanned.
  static util::Result<std::unique_ptr<ModelRegistry>> Open(
      const std::string& model_dir, const RegistryOptions& options);

  /// Registers one explicit model file (legacy .bin or .snap) under
  /// `name`. The file is stat-ed now, loaded on first Acquire.
  util::Status AddModelFile(const std::string& name,
                            const std::string& path) KARL_EXCLUDES(mu_);

  /// Registers an externally owned engine as a permanently resident,
  /// never-evicted model. `engine` must outlive the registry.
  void AdoptEngine(const std::string& name, const Engine* engine)
      KARL_EXCLUDES(mu_);

  /// Resolves `name` ("" = default model) to a pinned handle, loading
  /// the model first if it is not resident. May evict colder models to
  /// satisfy the memory budget.
  util::Result<ModelHandle> Acquire(const std::string& name)
      KARL_EXCLUDES(mu_);

  /// Rescans the directory and refreshes explicit files: adds new
  /// models, drops deleted ones, and atomically swaps entries whose
  /// file changed (in-flight queries keep the old mapping). Returns the
  /// first load error encountered; unaffected entries still refresh.
  util::Status Reload() KARL_EXCLUDES(mu_);

  /// Snapshot of every model's state (sorted by name).
  std::vector<ModelInfo> List() const KARL_EXCLUDES(mu_);

  /// The effective default model name ("" when unresolved).
  std::string default_model() const KARL_EXCLUDES(mu_);

  /// Sum of resident bytes over loaded models.
  uint64_t resident_bytes() const KARL_EXCLUDES(mu_);

  /// Total evictions since construction.
  uint64_t evictions() const KARL_EXCLUDES(mu_);

  /// Number of reloads that completed (SIGHUP/protocol-op driven).
  uint64_t reloads() const KARL_EXCLUDES(mu_);

  const RegistryOptions& options() const { return options_; }
  const std::string& model_dir() const { return model_dir_; }

 private:
  struct Entry {
    std::string path;          // Empty for adopted engines.
    bool adopted = false;
    bool from_scan = false;    // Discovered by directory scan.
    uint64_t file_bytes = 0;
    int64_t mtime_ns = 0;
    ModelHandle loaded;        // Null when not resident.
    uint64_t last_used_tick = 0;
    uint64_t queries = 0;
    uint64_t loads = 0;
    uint64_t evictions = 0;
    uint64_t coldstart_us = 0;
    uint64_t generation = 0;   // reloads_total_ at last LoadEntry.
  };

  explicit ModelRegistry(std::string model_dir, RegistryOptions options)
      : model_dir_(std::move(model_dir)), options_(std::move(options)) {}

  /// Scans model_dir_ into (name → path/stat); no table mutation.
  util::Status ScanDir(std::map<std::string, Entry>* found) const;

  /// Loads entry's file into a fresh LoadedModel (snapshot or legacy).
  util::Result<ModelHandle> LoadEntry(const std::string& name, Entry* entry)
      KARL_REQUIRES(mu_);

  /// Evicts LRU unpinned non-adopted entries until the budget holds.
  void EnforceBudget() KARL_REQUIRES(mu_);

  uint64_t ResidentBytesLocked() const KARL_REQUIRES(mu_);
  void UpdateResidentGauge() KARL_REQUIRES(mu_);

  const std::string model_dir_;
  const RegistryOptions options_;

  mutable util::Mutex mu_;
  std::map<std::string, Entry> models_ KARL_GUARDED_BY(mu_);
  uint64_t tick_ KARL_GUARDED_BY(mu_) = 0;
  uint64_t evictions_total_ KARL_GUARDED_BY(mu_) = 0;
  uint64_t reloads_total_ KARL_GUARDED_BY(mu_) = 0;
};

}  // namespace karl::registry

#endif  // KARL_REGISTRY_REGISTRY_H_
