#include "registry/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <utility>

#include "index/ball_tree.h"
#include "index/kd_tree.h"
#include "util/errno.h"

namespace karl::registry {

namespace {

// The format is defined little-endian and the writer/reader move raw
// host memory; refuse to build on exotic hosts rather than write a
// byte-swapped file that claims to be valid.
static_assert(std::endian::native == std::endian::little,
              "snapshot format requires a little-endian host");
static_assert(sizeof(size_t) == sizeof(uint64_t),
              "snapshot perm sections are u64; need an LP64 host");

using Node = index::TreeIndex::Node;
static_assert(sizeof(Node) == 20 && offsetof(Node, left) == 0 &&
                  offsetof(Node, right) == 4 && offsetof(Node, begin) == 8 &&
                  offsetof(Node, end) == 12 && offsetof(Node, depth) == 16 &&
                  offsetof(Node, pad) == 18,
              "Node layout is part of the snapshot format");

// Header field offsets (bytes). Reserved tail is zero.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffHeaderBytes = 8;
constexpr size_t kOffIndexKind = 12;
constexpr size_t kOffKernelType = 16;
constexpr size_t kOffKernelDegree = 20;
constexpr size_t kOffKernelGamma = 24;
constexpr size_t kOffKernelBeta = 32;
constexpr size_t kOffBoundKind = 40;
constexpr size_t kOffWeighting = 44;
constexpr size_t kOffNumTrees = 48;
constexpr size_t kOffLeafCapacity = 56;
constexpr size_t kOffCols = 64;
constexpr size_t kOffFileBytes = 72;
constexpr size_t kOffChecksum = 80;
constexpr size_t kOffTreeBlock = 88;  // Per tree: rows, num_nodes, max_depth.
constexpr size_t kTreeBlockBytes = 24;
static_assert(kOffChecksum == kSnapshotChecksumOffset);
static_assert(kOffTreeBlock + 2 * kTreeBlockBytes <= kSnapshotHeaderBytes);

// FNV-1a 64-bit, streamed.
struct Fnv64 {
  uint64_t h = 14695981039346656037ull;
  void Update(const void* data, size_t n) {
    const auto* b = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
};

void PutU32(unsigned char* buf, size_t off, uint32_t v) {
  std::memcpy(buf + off, &v, sizeof(v));
}
void PutU64(unsigned char* buf, size_t off, uint64_t v) {
  std::memcpy(buf + off, &v, sizeof(v));
}
void PutF64(unsigned char* buf, size_t off, double v) {
  std::memcpy(buf + off, &v, sizeof(v));
}
uint32_t GetU32(const unsigned char* buf, size_t off) {
  uint32_t v;
  std::memcpy(&v, buf + off, sizeof(v));
  return v;
}
uint64_t GetU64(const unsigned char* buf, size_t off) {
  uint64_t v;
  std::memcpy(&v, buf + off, sizeof(v));
  return v;
}
double GetF64(const unsigned char* buf, size_t off) {
  double v;
  std::memcpy(&v, buf + off, sizeof(v));
  return v;
}

size_t AlignUp(size_t v) {
  return (v + kSnapshotSectionAlign - 1) & ~(kSnapshotSectionAlign - 1);
}

// Byte offsets of one tree's sections; a pure function of the header
// counts (offsets are derived, never stored).
struct SectionLayout {
  size_t nodes, points, weights, perm;
  size_t weight_sums, sqnorm_sums, point_sums;
  size_t region_a, region_b;
  size_t end;  // First byte past this tree (aligned).
};

SectionLayout ComputeLayout(size_t start, uint64_t rows, uint64_t num_nodes,
                            uint64_t cols, index::IndexKind kind) {
  SectionLayout out;
  size_t off = AlignUp(start);
  const auto section = [&off](uint64_t bytes) {
    const size_t at = off;
    off = AlignUp(off + bytes);
    return at;
  };
  out.nodes = section(num_nodes * sizeof(Node));
  out.points = section(rows * cols * sizeof(double));
  out.weights = section(rows * sizeof(double));
  out.perm = section(rows * sizeof(uint64_t));
  out.weight_sums = section(num_nodes * sizeof(double));
  out.sqnorm_sums = section(num_nodes * sizeof(double));
  out.point_sums = section(num_nodes * cols * sizeof(double));
  out.region_a = section(num_nodes * cols * sizeof(double));
  const uint64_t region_b_count =
      kind == index::IndexKind::kKdTree ? num_nodes * cols : num_nodes;
  out.region_b = section(region_b_count * sizeof(double));
  out.end = off;
  return out;
}

// Writes zero padding up to `target`, then `len` bytes of `data`;
// everything written also feeds the checksum.
util::Status WriteSection(std::ostream& out, Fnv64& hasher, size_t* cur,
                          size_t target, const void* data, size_t len) {
  static constexpr char kZeros[kSnapshotSectionAlign] = {};
  while (*cur < target) {
    const size_t pad = std::min(target - *cur, sizeof(kZeros));
    out.write(kZeros, static_cast<std::streamsize>(pad));
    hasher.Update(kZeros, pad);
    *cur += pad;
  }
  if (len > 0) {
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(len));
    hasher.Update(data, len);
    *cur += len;
  }
  if (!out) return util::Status::IOError("snapshot write failed");
  return util::Status::OK();
}

}  // namespace

util::Status WriteSnapshot(const std::string& path, const Engine& engine) {
  const index::TreeIndex* trees[2] = {&engine.plus_tree(),
                                      engine.minus_tree()};
  const size_t num_trees = trees[1] != nullptr ? 2 : 1;
  const uint64_t cols = trees[0]->points().cols();
  const EngineOptions& options = engine.options();

  SectionLayout layouts[2];
  size_t off = kSnapshotHeaderBytes;
  for (size_t t = 0; t < num_trees; ++t) {
    layouts[t] = ComputeLayout(off, trees[t]->points().rows(),
                               trees[t]->num_nodes(), cols,
                               options.index_kind);
    off = layouts[t].end;
  }
  const uint64_t file_bytes = off;

  unsigned char header[kSnapshotHeaderBytes] = {};
  PutU32(header, kOffMagic, kSnapshotMagic);
  PutU32(header, kOffVersion, kSnapshotVersion);
  PutU32(header, kOffHeaderBytes, kSnapshotHeaderBytes);
  PutU32(header, kOffIndexKind, static_cast<uint32_t>(options.index_kind));
  PutU32(header, kOffKernelType, static_cast<uint32_t>(options.kernel.type));
  PutU32(header, kOffKernelDegree,
         static_cast<uint32_t>(options.kernel.degree));
  PutF64(header, kOffKernelGamma, options.kernel.gamma);
  PutF64(header, kOffKernelBeta, options.kernel.beta);
  PutU32(header, kOffBoundKind, static_cast<uint32_t>(options.bounds));
  PutU32(header, kOffWeighting,
         static_cast<uint32_t>(engine.weighting_type()));
  PutU32(header, kOffNumTrees, static_cast<uint32_t>(num_trees));
  PutU64(header, kOffLeafCapacity, options.leaf_capacity);
  PutU64(header, kOffCols, cols);
  PutU64(header, kOffFileBytes, file_bytes);
  // Checksum field stays zero for hashing; patched in at the end.
  for (size_t t = 0; t < num_trees; ++t) {
    const size_t at = kOffTreeBlock + t * kTreeBlockBytes;
    PutU64(header, at, trees[t]->points().rows());
    PutU64(header, at + 8, trees[t]->num_nodes());
    PutU64(header, at + 16, trees[t]->max_depth());
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::IOError("cannot open " + path + " for writing: " +
                                 util::ErrnoString(errno));
  }
  Fnv64 hasher;
  hasher.Update(header, sizeof(header));
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  size_t cur = kSnapshotHeaderBytes;

  for (size_t t = 0; t < num_trees; ++t) {
    const index::TreeIndex& tree = *trees[t];
    const SectionLayout& sec = layouts[t];
    const auto nodes = tree.nodes();
    const auto points = tree.points().Flat();
    const auto weights = tree.weights();
    const auto perm = tree.original_indices();
    const auto wsums = tree.node_weight_sums();
    const auto sqsums = tree.node_sqnorm_sums();
    const auto psums = tree.node_point_sums();
    const auto region_a = tree.region_data_a();
    const auto region_b = tree.region_data_b();
    KARL_RETURN_NOT_OK(WriteSection(out, hasher, &cur, sec.nodes,
                                    nodes.data(),
                                    nodes.size() * sizeof(Node)));
    KARL_RETURN_NOT_OK(WriteSection(out, hasher, &cur, sec.points,
                                    points.data(),
                                    points.size() * sizeof(double)));
    KARL_RETURN_NOT_OK(WriteSection(out, hasher, &cur, sec.weights,
                                    weights.data(),
                                    weights.size() * sizeof(double)));
    KARL_RETURN_NOT_OK(WriteSection(out, hasher, &cur, sec.perm, perm.data(),
                                    perm.size() * sizeof(uint64_t)));
    KARL_RETURN_NOT_OK(WriteSection(out, hasher, &cur, sec.weight_sums,
                                    wsums.data(),
                                    wsums.size() * sizeof(double)));
    KARL_RETURN_NOT_OK(WriteSection(out, hasher, &cur, sec.sqnorm_sums,
                                    sqsums.data(),
                                    sqsums.size() * sizeof(double)));
    KARL_RETURN_NOT_OK(WriteSection(out, hasher, &cur, sec.point_sums,
                                    psums.data(),
                                    psums.size() * sizeof(double)));
    KARL_RETURN_NOT_OK(WriteSection(out, hasher, &cur, sec.region_a,
                                    region_a.data(),
                                    region_a.size() * sizeof(double)));
    KARL_RETURN_NOT_OK(WriteSection(out, hasher, &cur, sec.region_b,
                                    region_b.data(),
                                    region_b.size() * sizeof(double)));
  }
  // Trailing alignment padding so the file ends exactly at the computed
  // layout end (readers validate file size against it).
  KARL_RETURN_NOT_OK(
      WriteSection(out, hasher, &cur, file_bytes, nullptr, 0));

  out.seekp(static_cast<std::streamoff>(kOffChecksum));
  const uint64_t checksum = hasher.h;
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    return util::Status::IOError("snapshot write to " + path + " failed");
  }
  return util::Status::OK();
}

MappedSnapshot::~MappedSnapshot() {
  if (data_ != nullptr) ::munmap(data_, bytes_);
}

MappedSnapshot::MappedSnapshot(MappedSnapshot&& other) noexcept {
  *this = std::move(other);
}

MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&& other) noexcept {
  if (this == &other) return *this;
  if (data_ != nullptr) ::munmap(data_, bytes_);
  data_ = std::exchange(other.data_, nullptr);
  bytes_ = std::exchange(other.bytes_, 0);
  path_ = std::move(other.path_);
  options_ = other.options_;
  weighting_ = other.weighting_;
  num_trees_ = std::exchange(other.num_trees_, 0);
  views_[0] = other.views_[0];
  views_[1] = other.views_[1];
  return *this;
}

util::Result<MappedSnapshot> MappedSnapshot::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return util::Status::IOError("cannot open snapshot " + path + ": " +
                                 util::ErrnoString(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return util::Status::IOError("cannot stat snapshot " + path + ": " +
                                 util::ErrnoString(err));
  }
  const size_t bytes = static_cast<size_t>(st.st_size);
  if (bytes < kSnapshotHeaderBytes) {
    ::close(fd);
    return util::Status::InvalidArgument(
        "truncated snapshot " + path + ": " + std::to_string(bytes) +
        " bytes is smaller than the header");
  }
  void* map = ::mmap(nullptr, bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  ::close(fd);
  if (map == MAP_FAILED) {
    return util::Status::IOError("cannot mmap snapshot " + path + ": " +
                                 util::ErrnoString(map_err));
  }

  MappedSnapshot snap;
  snap.data_ = map;
  snap.bytes_ = bytes;
  snap.path_ = path;
  KARL_RETURN_NOT_OK(snap.Parse());  // Destructor unmaps on failure.
  return std::move(snap);
}

util::Status MappedSnapshot::Parse() {
  const auto* base = static_cast<const unsigned char*>(data_);
  const auto reject = [this](const std::string& why) {
    return util::Status::InvalidArgument("snapshot " + path_ + ": " + why);
  };

  if (GetU32(base, kOffMagic) != kSnapshotMagic) {
    return reject("bad magic (not a KARL snapshot)");
  }
  if (GetU32(base, kOffVersion) != kSnapshotVersion) {
    return reject("unsupported format version " +
                  std::to_string(GetU32(base, kOffVersion)));
  }
  if (GetU32(base, kOffHeaderBytes) != kSnapshotHeaderBytes) {
    return reject("bad header size");
  }
  if (GetU64(base, kOffFileBytes) != bytes_) {
    return reject("file is " + std::to_string(bytes_) +
                  " bytes but header records " +
                  std::to_string(GetU64(base, kOffFileBytes)));
  }

  // Whole-file checksum with the stored checksum field zeroed.
  unsigned char header_copy[kSnapshotHeaderBytes];
  std::memcpy(header_copy, base, kSnapshotHeaderBytes);
  PutU64(header_copy, kOffChecksum, 0);
  Fnv64 hasher;
  hasher.Update(header_copy, kSnapshotHeaderBytes);
  hasher.Update(base + kSnapshotHeaderBytes, bytes_ - kSnapshotHeaderBytes);
  if (hasher.h != GetU64(base, kOffChecksum)) {
    return reject("checksum mismatch (corrupt or partially written file)");
  }

  const uint32_t kernel_type = GetU32(base, kOffKernelType);
  const uint32_t bound_kind = GetU32(base, kOffBoundKind);
  const uint32_t index_kind = GetU32(base, kOffIndexKind);
  const uint32_t weighting = GetU32(base, kOffWeighting);
  const uint32_t num_trees = GetU32(base, kOffNumTrees);
  if (kernel_type > static_cast<uint32_t>(core::KernelType::kSigmoid) ||
      bound_kind > static_cast<uint32_t>(core::BoundKind::kKarlTangentOnly) ||
      index_kind > static_cast<uint32_t>(index::IndexKind::kBallTree)) {
    return reject("corrupt header enums");
  }
  if (weighting < 1 || weighting > 3) return reject("corrupt weighting type");
  if (num_trees < 1 || num_trees > 2) return reject("corrupt tree count");
  if ((weighting == static_cast<uint32_t>(WeightingType::kTypeIII)) !=
      (num_trees == 2)) {
    return reject("weighting type and tree count disagree");
  }

  options_ = EngineOptions{};
  options_.kernel.type = static_cast<core::KernelType>(kernel_type);
  options_.kernel.degree = static_cast<int>(GetU32(base, kOffKernelDegree));
  options_.kernel.gamma = GetF64(base, kOffKernelGamma);
  options_.kernel.beta = GetF64(base, kOffKernelBeta);
  options_.bounds = static_cast<core::BoundKind>(bound_kind);
  options_.index_kind = static_cast<index::IndexKind>(index_kind);
  options_.leaf_capacity = GetU64(base, kOffLeafCapacity);
  weighting_ = static_cast<WeightingType>(weighting);
  num_trees_ = num_trees;

  const uint64_t cols = GetU64(base, kOffCols);
  if (cols == 0) return reject("zero columns");
  if (options_.leaf_capacity == 0) return reject("zero leaf capacity");

  size_t off = kSnapshotHeaderBytes;
  for (size_t t = 0; t < num_trees_; ++t) {
    const size_t at = kOffTreeBlock + t * kTreeBlockBytes;
    const uint64_t rows = GetU64(base, at);
    const uint64_t num_nodes = GetU64(base, at + 8);
    const uint64_t max_depth = GetU64(base, at + 16);
    // Sanity caps: refuse layouts that cannot come from a real build
    // (node ranges are u32; corrupt counts would overflow the layout
    // arithmetic before the structural sweep could catch them).
    if (rows == 0 || rows > (1ull << 32) ||
        rows > (1ull << 40) / cols) {
      return reject("corrupt row count for tree " + std::to_string(t));
    }
    if (num_nodes == 0 || num_nodes > 2 * rows ||
        max_depth >= (1ull << 16)) {
      return reject("corrupt node count for tree " + std::to_string(t));
    }
    const SectionLayout sec = ComputeLayout(off, rows, num_nodes, cols,
                                            options_.index_kind);
    if (sec.end > bytes_) {
      return reject("sections overrun the file for tree " +
                    std::to_string(t));
    }
    index::TreeIndexView& view = views_[t];
    view.nodes = {reinterpret_cast<const Node*>(base + sec.nodes),
                  num_nodes};
    view.rows = rows;
    view.cols = cols;
    view.points = reinterpret_cast<const double*>(base + sec.points);
    view.weights = {reinterpret_cast<const double*>(base + sec.weights),
                    rows};
    view.perm = {reinterpret_cast<const size_t*>(base + sec.perm), rows};
    view.weight_sums = {
        reinterpret_cast<const double*>(base + sec.weight_sums), num_nodes};
    view.sqnorm_sums = {
        reinterpret_cast<const double*>(base + sec.sqnorm_sums), num_nodes};
    view.point_sums = {
        reinterpret_cast<const double*>(base + sec.point_sums),
        num_nodes * cols};
    view.region_a = {reinterpret_cast<const double*>(base + sec.region_a),
                     num_nodes * cols};
    const uint64_t region_b_count =
        options_.index_kind == index::IndexKind::kKdTree ? num_nodes * cols
                                                         : num_nodes;
    view.region_b = {reinterpret_cast<const double*>(base + sec.region_b),
                     region_b_count};
    view.leaf_capacity = options_.leaf_capacity;
    view.max_depth = max_depth;
    off = sec.end;
  }
  if (off != bytes_) {
    return reject("file size does not match the computed section layout");
  }
  return util::Status::OK();
}

util::Result<Engine> AttachEngine(const MappedSnapshot& snapshot,
                                  telemetry::Registry* metrics,
                                  telemetry::TraceRecorder* tracer) {
  EngineOptions options = snapshot.options();
  options.metrics = metrics;
  options.tracer = tracer;

  const auto make_tree = [&options](const index::TreeIndexView& view)
      -> util::Result<std::unique_ptr<index::TreeIndex>> {
    if (options.index_kind == index::IndexKind::kKdTree) {
      auto tree = index::KdTree::Attach(view);
      if (!tree.ok()) return tree.status();
      return std::unique_ptr<index::TreeIndex>(
          std::move(tree).ValueOrDie());
    }
    auto tree = index::BallTree::Attach(view);
    if (!tree.ok()) return tree.status();
    return std::unique_ptr<index::TreeIndex>(std::move(tree).ValueOrDie());
  };

  auto plus = make_tree(snapshot.tree_view(0));
  if (!plus.ok()) {
    return util::Status::InvalidArgument(
        "snapshot " + snapshot.path() + ": " + plus.status().message());
  }
  std::unique_ptr<index::TreeIndex> minus;
  if (snapshot.num_trees() == 2) {
    auto result = make_tree(snapshot.tree_view(1));
    if (!result.ok()) {
      return util::Status::InvalidArgument(
          "snapshot " + snapshot.path() + ": " + result.status().message());
    }
    minus = std::move(result).ValueOrDie();
  }
  return Engine::Attach(std::move(plus).ValueOrDie(), std::move(minus),
                        snapshot.weighting(), options);
}

}  // namespace karl::registry
