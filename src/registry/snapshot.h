// Zero-deserialization engine snapshots.
//
// A snapshot is a flat, pointer-free, little-endian binary image of a
// *built* engine: the tree node arrays, the permuted point matrix, the
// weights, the permutation, and the precomputed per-node linear-bound
// aggregates (w_P, a_P, b_P — the coefficients of paper Lemma 2/5) plus
// the node region geometry, each stored as a 64-byte-aligned,
// offset-addressed section. An engine is *constructed over* the mapping
// with mmap(2): no point matrix or tree copy is made — only the derived
// blocked SoA leaf mirror is rebuilt, exactly as LoadEngine rebuilds it
// from the legacy format today.
//
// On-disk layout (all integers little-endian; doubles IEEE-754):
//
//   [0,256)  header — magic "KSNP", version, geometry counts, engine
//            options, weighting type, file size, FNV-1a checksum of the
//            entire file (checksum field zeroed during hashing).
//   [256,…)  per-tree sections in fixed order, each aligned to 64 bytes:
//            nodes, points, weights, perm, weight_sums, sqnorm_sums,
//            point_sums, region_a, region_b. Type III engines store two
//            trees (positive then negative side); I/II store one.
//
// Section offsets are *derived* from the header counts, not stored: the
// layout is a pure function of (rows, num_nodes, cols, index kind), so a
// reader computes offsets and validates that the final offset equals the
// file size.
//
// Determinism and portability: index construction is deterministic, so
// compile-snapshot produces identical bytes for identical inputs. As
// with the legacy format, a snapshot written on one SIMD tier loads on
// any other (the SoA mirror is rebuilt); answers are then subject to the
// core/simd tolerance contract rather than bit-equality.

#ifndef KARL_REGISTRY_SNAPSHOT_H_
#define KARL_REGISTRY_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/karl.h"
#include "index/tree_index.h"
#include "util/status.h"

namespace karl::registry {

/// Format constants, exported so tests can corrupt specific fields.
inline constexpr uint32_t kSnapshotMagic = 0x504E534Bu;  // "KSNP" LE.
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr size_t kSnapshotHeaderBytes = 256;
inline constexpr size_t kSnapshotSectionAlign = 64;
inline constexpr size_t kSnapshotChecksumOffset = 80;

/// Serializes a built engine to `path`. The engine may itself be
/// attached (re-snapshotting round-trips). Overwrites any existing file.
util::Status WriteSnapshot(const std::string& path, const Engine& engine);

/// A validated, read-only mmap(2) of a snapshot file.
///
/// Map() maps the file, verifies magic/version/size/checksum, and
/// resolves the per-tree section views; every failure names the path.
/// The mapping (and therefore every engine attached over it) stays valid
/// until destruction — including after the file is unlinked, per POSIX
/// mmap semantics. Truncating a live snapshot file in place is NOT safe
/// (SIGBUS on fault); replace-by-rename and reload instead.
class MappedSnapshot {
 public:
  static util::Result<MappedSnapshot> Map(const std::string& path);

  ~MappedSnapshot();
  MappedSnapshot(MappedSnapshot&& other) noexcept;
  MappedSnapshot& operator=(MappedSnapshot&& other) noexcept;
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  /// Engine construction options recorded in the header (kernel, bounds,
  /// index kind, leaf capacity; telemetry sinks are left null).
  const EngineOptions& options() const { return options_; }

  /// Weighting taxonomy of the serialized engine.
  WeightingType weighting() const { return weighting_; }

  /// 1 (Type I/II) or 2 (Type III: positive then negative side).
  size_t num_trees() const { return num_trees_; }

  /// Section views of tree `i` (< num_trees()), pointing into the
  /// mapping. Valid for this object's lifetime.
  const index::TreeIndexView& tree_view(size_t i) const {
    return views_[i];
  }

  /// Total mapped bytes (the file size).
  size_t file_bytes() const { return bytes_; }

  /// The path the snapshot was mapped from (diagnostics).
  const std::string& path() const { return path_; }

 private:
  MappedSnapshot() = default;

  util::Status Parse();  // Fills options_/weighting_/views_ from data_.

  void* data_ = nullptr;  // nullptr iff moved-from/default.
  size_t bytes_ = 0;
  std::string path_;
  EngineOptions options_;
  WeightingType weighting_ = WeightingType::kTypeI;
  size_t num_trees_ = 0;
  index::TreeIndexView views_[2];
};

/// Constructs an engine over a mapped snapshot (no copies; the SoA leaf
/// mirror is rebuilt). `snapshot` must outlive the returned engine —
/// callers typically keep both in one owning object (registry
/// LoadedModel). `metrics`/`tracer` may be null.
util::Result<Engine> AttachEngine(const MappedSnapshot& snapshot,
                                  telemetry::Registry* metrics,
                                  telemetry::TraceRecorder* tracer);

}  // namespace karl::registry

#endif  // KARL_REGISTRY_SNAPSHOT_H_
