#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/errno.h"

namespace karl::server {
namespace {

util::Status Errno(const std::string& what) {
  return util::Status::IOError(what + ": " + util::ErrnoString(errno));
}

Json QueryRequest(std::string_view kind, std::span<const double> q) {
  Json row = Json::Array();
  for (const double v : q) row.Append(Json::Number(v));
  return Json::Object()
      .Set("op", Json::Str("query"))
      .Set("kind", Json::Str(std::string(kind)))
      .Set("q", std::move(row));
}

Json BatchRequest(std::string_view kind, const data::Matrix& queries) {
  Json rows = Json::Array();
  for (size_t i = 0; i < queries.rows(); ++i) {
    Json row = Json::Array();
    for (const double v : queries.Row(i)) row.Append(Json::Number(v));
    rows.Append(std::move(row));
  }
  return Json::Object()
      .Set("op", Json::Str("batch"))
      .Set("kind", Json::Str(std::string(kind)))
      .Set("queries", std::move(rows));
}

// Pulls a required field out of a response object.
util::Result<const Json*> Field(const Json& response, std::string_view key) {
  const Json* value = response.Find(key);
  if (value == nullptr) {
    return util::Status::IOError("malformed server response: missing \"" +
                                 std::string(key) + "\"");
  }
  return value;
}

}  // namespace

util::Result<Client> Client::Connect(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("invalid server address '" + host +
                                         "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const util::Status st =
        Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), inbuf_(std::move(other.inbuf_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    inbuf_ = std::move(other.inbuf_);
    other.fd_ = -1;
  }
  return *this;
}

util::Status Client::SendLine(const std::string& line) {
  if (fd_ < 0) return util::Status::FailedPrecondition("client not connected");
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::write(fd_, framed.data() + sent, framed.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return util::Status::OK();
}

util::Result<std::string> Client::ReceiveLine() {
  if (fd_ < 0) return util::Status::FailedPrecondition("client not connected");
  while (true) {
    if (const size_t pos = inbuf_.find('\n'); pos != std::string::npos) {
      std::string line = inbuf_.substr(0, pos);
      inbuf_.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char buf[65536];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return util::Status::IOError("server closed the connection");
    }
    if (errno == EINTR) continue;
    return Errno("recv");
  }
}

util::Result<Json> Client::RoundTrip(const Json& request) {
  KARL_RETURN_NOT_OK(SendLine(request.Dump()));
  auto line = ReceiveLine();
  if (!line.ok()) return line.status();
  auto response = Json::Parse(line.value());
  if (!response.ok()) {
    return util::Status::IOError("malformed server response: " +
                                 response.status().message());
  }
  return response;
}

util::Result<Json> Client::Call(const Json& request) {
  auto response = RoundTrip(request);
  if (!response.ok()) return response.status();
  const Json* ok = response.value().Find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    return util::Status::IOError("malformed server response: missing \"ok\"");
  }
  if (!ok->bool_value()) {
    const Json* code = response.value().Find("error");
    const Json* detail = response.value().Find("detail");
    std::string message =
        "server error: " +
        (code != nullptr && code->is_string() ? code->string_value()
                                              : std::string("unknown"));
    if (detail != nullptr && detail->is_string()) {
      message += " (" + detail->string_value() + ")";
    }
    return util::Status::FailedPrecondition(std::move(message));
  }
  return response;
}

util::Result<bool> Client::Tkaq(std::span<const double> q, double tau) {
  Json request = QueryRequest("tkaq", q).Set("tau", Json::Number(tau));
  auto response = Call(request);
  if (!response.ok()) return response.status();
  auto above = Field(response.value(), "above");
  if (!above.ok()) return above.status();
  if (!above.value()->is_bool()) {
    return util::Status::IOError("malformed \"above\" in server response");
  }
  return above.value()->bool_value();
}

util::Result<double> Client::Ekaq(std::span<const double> q, double eps) {
  Json request = QueryRequest("ekaq", q).Set("eps", Json::Number(eps));
  auto response = Call(request);
  if (!response.ok()) return response.status();
  auto value = Field(response.value(), "value");
  if (!value.ok()) return value.status();
  if (!value.value()->is_number()) {
    return util::Status::IOError("malformed \"value\" in server response");
  }
  return value.value()->number_value();
}

util::Result<double> Client::Exact(std::span<const double> q) {
  auto response = Call(QueryRequest("exact", q));
  if (!response.ok()) return response.status();
  auto value = Field(response.value(), "value");
  if (!value.ok()) return value.status();
  if (!value.value()->is_number()) {
    return util::Status::IOError("malformed \"value\" in server response");
  }
  return value.value()->number_value();
}

util::Result<std::vector<uint8_t>> Client::TkaqBatch(
    const data::Matrix& queries, double tau) {
  Json request =
      BatchRequest("tkaq", queries).Set("tau", Json::Number(tau));
  auto response = Call(request);
  if (!response.ok()) return response.status();
  auto above = Field(response.value(), "above");
  if (!above.ok()) return above.status();
  if (!above.value()->is_array()) {
    return util::Status::IOError("malformed \"above\" in server response");
  }
  std::vector<uint8_t> out;
  out.reserve(above.value()->items().size());
  for (const Json& v : above.value()->items()) {
    if (!v.is_bool()) {
      return util::Status::IOError("malformed \"above\" in server response");
    }
    out.push_back(v.bool_value() ? 1 : 0);
  }
  return out;
}

namespace {

util::Result<std::vector<double>> NumberList(const util::Result<Json>& response) {
  if (!response.ok()) return response.status();
  const Json* values = response.value().Find("values");
  if (values == nullptr || !values->is_array()) {
    return util::Status::IOError("malformed \"values\" in server response");
  }
  std::vector<double> out;
  out.reserve(values->items().size());
  for (const Json& v : values->items()) {
    if (!v.is_number()) {
      return util::Status::IOError("malformed \"values\" in server response");
    }
    out.push_back(v.number_value());
  }
  return out;
}

}  // namespace

util::Result<std::vector<double>> Client::EkaqBatch(
    const data::Matrix& queries, double eps) {
  return NumberList(
      Call(BatchRequest("ekaq", queries).Set("eps", Json::Number(eps))));
}

util::Result<std::vector<double>> Client::ExactBatch(
    const data::Matrix& queries) {
  return NumberList(Call(BatchRequest("exact", queries)));
}

util::Result<std::string> Client::Health() {
  auto response = Call(Json::Object().Set("op", Json::Str("health")));
  if (!response.ok()) return response.status();
  auto status = Field(response.value(), "status");
  if (!status.ok()) return status.status();
  if (!status.value()->is_string()) {
    return util::Status::IOError("malformed \"status\" in server response");
  }
  return status.value()->string_value();
}

util::Result<std::string> Client::Metrics() {
  auto response = Call(Json::Object().Set("op", Json::Str("metrics")));
  if (!response.ok()) return response.status();
  auto metrics = Field(response.value(), "metrics");
  if (!metrics.ok()) return metrics.status();
  if (!metrics.value()->is_string()) {
    return util::Status::IOError("malformed \"metrics\" in server response");
  }
  return metrics.value()->string_value();
}

util::Result<std::string> Client::Statusz() {
  auto response = Call(Json::Object().Set("op", Json::Str("statusz")));
  if (!response.ok()) return response.status();
  auto statusz = Field(response.value(), "statusz");
  if (!statusz.ok()) return statusz.status();
  if (!statusz.value()->is_object()) {
    return util::Status::IOError("malformed \"statusz\" in server response");
  }
  return statusz.value()->Dump();
}

}  // namespace karl::server
