// Small blocking client for the KARL query server — one TCP connection
// speaking the newline-delimited JSON protocol (server/protocol.h) in
// request/response lockstep. Used by `karl remote-query`, the CI smoke
// job, and the loopback integration tests.
//
// Not thread-safe: one Client per thread. Because every call is
// lockstep, responses always match the request just sent; pipelining
// (and therefore out-of-order completion) is possible only through the
// raw SendLine/ReceiveLine surface, where the caller matches responses
// via request "id"s.

#ifndef KARL_SERVER_CLIENT_H_
#define KARL_SERVER_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/matrix.h"
#include "server/json.h"
#include "util/status.h"

namespace karl::server {

/// See file comment.
class Client {
 public:
  /// Connects to `host`:`port` (numeric IPv4).
  static util::Result<Client> Connect(const std::string& host, int port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// TKAQ: is F(q) > tau on the server's model?
  util::Result<bool> Tkaq(std::span<const double> q, double tau);

  /// eKAQ: F̂(q) within relative error eps.
  util::Result<double> Ekaq(std::span<const double> q, double eps);

  /// Exact F(q).
  util::Result<double> Exact(std::span<const double> q);

  /// Batch forms (one op=batch request each).
  util::Result<std::vector<uint8_t>> TkaqBatch(const data::Matrix& queries,
                                               double tau);
  util::Result<std::vector<double>> EkaqBatch(const data::Matrix& queries,
                                              double eps);
  util::Result<std::vector<double>> ExactBatch(const data::Matrix& queries);

  /// Server status string ("serving" or "draining").
  util::Result<std::string> Health();

  /// Prometheus text scraped from the server's registry.
  util::Result<std::string> Metrics();

  /// The server's statusz document (uptime, stage latency quantiles,
  /// flight recorder) as serialized JSON.
  util::Result<std::string> Statusz();

  /// Sends one raw line (a trailing '\n' is added when missing) without
  /// reading a response — the pipelining/testing escape hatch.
  util::Status SendLine(const std::string& line);

  /// Blocks for the next response line (without the newline). An empty
  /// result with IOError means the server closed the connection.
  util::Result<std::string> ReceiveLine();

  /// SendLine + ReceiveLine + parse: returns the response object. A
  /// transport failure is an error; a `{"ok":false}` response is NOT —
  /// callers that want typed errors use the wrappers above.
  util::Result<Json> RoundTrip(const Json& request);

 private:
  explicit Client(int fd) : fd_(fd) {}

  // RoundTrip plus `ok` enforcement: {"ok":false} becomes a Status
  // carrying the server's error code and detail.
  util::Result<Json> Call(const Json& request);

  int fd_ = -1;
  std::string inbuf_;  // Bytes received past the last returned line.
};

}  // namespace karl::server

#endif  // KARL_SERVER_CLIENT_H_
