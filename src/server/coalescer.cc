#include "server/coalescer.h"

#include <algorithm>
#include <utility>

#include "telemetry/metrics.h"
#include "util/stopwatch.h"

namespace karl::server {

Coalescer::Coalescer(const Engine& engine, util::ThreadPool* pool,
                     size_t max_pending_rows, CompletionSink sink,
                     telemetry::Registry* metrics)
    : engine_(engine),
      evaluator_(engine, core::BatchOptions{pool, 0}),
      sink_(std::move(sink)),
      max_pending_rows_(max_pending_rows) {
  if (metrics != nullptr) {
    groups_total_ = metrics->GetCounter("karl_server_batches_total");
    queries_total_ = metrics->GetCounter("karl_server_queries_total");
    group_rows_ = metrics->GetHistogram("karl_server_coalesced_rows");
    group_usec_ = metrics->GetHistogram("karl_server_batch_usec");
    pending_gauge_ = metrics->GetGauge("karl_server_pending_rows");
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

Coalescer::~Coalescer() {
  BeginDrain();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

bool Coalescer::Enqueue(WorkItem item) {
  const size_t rows = item.queries.rows();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return false;
    if (queued_rows_ + rows > max_pending_rows_) return false;
    queued_rows_ += rows;
    if (pending_gauge_ != nullptr) {
      pending_gauge_->Set(static_cast<double>(queued_rows_));
    }
    queue_.push_back(std::move(item));
  }
  work_cv_.notify_one();
  return true;
}

void Coalescer::BeginDrain() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    paused_ = false;  // A paused coalescer must still drain.
  }
  work_cv_.notify_all();
}

bool Coalescer::Idle() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.empty() && !in_flight_;
}

size_t Coalescer::pending_rows() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queued_rows_;
}

void Coalescer::Pause() {
  const std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Coalescer::Resume() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void Coalescer::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return stop_ || (!paused_ && !queue_.empty());
    });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }

    // Pop the oldest item; when it is a single query, sweep every other
    // queued single with the same (kind, param) into the group, in
    // arrival order. Different-parameter items stay queued for a later
    // group of their own.
    std::vector<WorkItem> group;
    group.push_back(std::move(queue_.front()));
    queue_.pop_front();
    size_t rows = group.front().queries.rows();
    if (!group.front().is_batch) {
      const QueryKind kind = group.front().kind;
      const double param = group.front().param;
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (!it->is_batch && it->kind == kind && it->param == param) {
          rows += it->queries.rows();
          group.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    queued_rows_ -= rows;
    if (pending_gauge_ != nullptr) {
      pending_gauge_->Set(static_cast<double>(queued_rows_));
    }
    in_flight_ = true;

    lock.unlock();
    RunGroup(std::move(group));
    lock.lock();

    in_flight_ = false;
  }
}

void Coalescer::RunGroup(std::vector<WorkItem> group) {
  const QueryKind kind = group.front().kind;
  const double param = group.front().param;

  // One matrix for the whole group; item i owns rows [offset_i,
  // offset_i + rows_i).
  size_t total_rows = 0;
  for (const WorkItem& item : group) total_rows += item.queries.rows();
  const data::Matrix* queries = &group.front().queries;
  data::Matrix merged;
  if (group.size() > 1) {
    const size_t cols = group.front().queries.cols();
    merged = data::Matrix(total_rows, cols);
    size_t row = 0;
    for (const WorkItem& item : group) {
      for (size_t r = 0; r < item.queries.rows(); ++r, ++row) {
        std::span<double> dst = merged.MutableRow(row);
        std::span<const double> src = item.queries.Row(r);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
    queries = &merged;
  }

  util::Stopwatch timer;
  std::vector<uint8_t> bools;
  std::vector<double> values;
  switch (kind) {
    case QueryKind::kTkaq:
      bools = evaluator_.Tkaq(*queries, param);
      break;
    case QueryKind::kEkaq:
      values = evaluator_.Ekaq(*queries, param);
      break;
    case QueryKind::kExact:
      values = evaluator_.Exact(*queries);
      break;
  }
  const double usec = timer.ElapsedSeconds() * 1e6;
  if (groups_total_ != nullptr) {
    groups_total_->Increment();
    queries_total_->Add(total_rows);
    group_rows_->Record(static_cast<double>(total_rows));
    group_usec_->Record(usec);
  }

  // Slice results back out per item, preserving per-request identity.
  std::vector<Completion> completions;
  completions.reserve(group.size());
  size_t offset = 0;
  for (const WorkItem& item : group) {
    const size_t rows = item.queries.rows();
    std::string response;
    if (item.is_batch) {
      if (kind == QueryKind::kTkaq) {
        response = OkBoolsResponse(
            item.request_id,
            {bools.begin() + static_cast<ptrdiff_t>(offset),
             bools.begin() + static_cast<ptrdiff_t>(offset + rows)});
      } else {
        response = OkValuesResponse(
            item.request_id,
            {values.begin() + static_cast<ptrdiff_t>(offset),
             values.begin() + static_cast<ptrdiff_t>(offset + rows)});
      }
    } else {
      if (kind == QueryKind::kTkaq) {
        response = OkBoolResponse(item.request_id, bools[offset] != 0);
      } else {
        response = OkValueResponse(item.request_id, values[offset]);
      }
    }
    completions.push_back({item.conn_id, std::move(response)});
    offset += rows;
  }
  sink_(std::move(completions));
}

}  // namespace karl::server
