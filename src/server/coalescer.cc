#include "server/coalescer.h"

#include <algorithm>
#include <utility>

#include "core/karl.h"
#include "telemetry/metrics.h"
#include "telemetry/rolling.h"
#include "util/stopwatch.h"

namespace karl::server {

// Batch options whose row_observer funnels back into the coalescer;
// the lambda only runs during RunGroup, when `self` is fully alive.
core::BatchOptions Coalescer::ObservedOptions(util::ThreadPool* pool,
                                              Coalescer* self) {
  core::BatchOptions options;
  options.pool = pool;
  options.row_observer = [self](size_t row, uint64_t begin_us,
                                uint64_t end_us,
                                const core::EvalStats& stats) {
    self->ObserveRow(row, begin_us, end_us, stats);
  };
  return options;
}

Coalescer::Coalescer(util::ThreadPool* pool, size_t max_pending_rows,
                     CompletionSink sink, telemetry::Registry* metrics,
                     telemetry::RequestTracer tracer)
    : pool_(pool),
      sink_(std::move(sink)),
      max_pending_rows_(max_pending_rows),
      tracer_(tracer) {
  if (metrics != nullptr) {
    metrics_ = metrics;
    groups_total_ = metrics->GetCounter("karl_server_batches_total");
    queries_total_ = metrics->GetCounter("karl_server_queries_total");
    group_rows_ = metrics->GetRollingHistogram("karl_server_coalesced_rows");
    group_usec_ = metrics->GetRollingHistogram("karl_server_batch_usec");
    pending_gauge_ = metrics->GetGauge("karl_server_pending_rows");
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

const Coalescer::ModelInstruments& Coalescer::InstrumentsForModel(
    const std::string& model) {
  const auto it = model_instruments_.find(model);
  if (it != model_instruments_.end()) return it->second;
  ModelInstruments instruments;
  if (metrics_ != nullptr && !model.empty()) {
    const telemetry::LabelSet labels{{"model", model}};
    instruments.groups =
        metrics_->GetCounter("karl_server_batches_total", labels);
    instruments.queries =
        metrics_->GetCounter("karl_server_queries_total", labels);
    instruments.rows =
        metrics_->GetRollingHistogram("karl_server_coalesced_rows", labels);
    instruments.usec =
        metrics_->GetRollingHistogram("karl_server_batch_usec", labels);
  }
  return model_instruments_.emplace(model, instruments).first->second;
}

Coalescer::~Coalescer() {
  BeginDrain();
  {
    const util::MutexLock lock(&mu_);
    stop_ = true;
  }
  work_cv_.SignalAll();
  dispatcher_.join();
}

bool Coalescer::Enqueue(WorkItem item) {
  const size_t rows = item.queries.rows();
  {
    const util::MutexLock lock(&mu_);
    if (draining_) return false;
    if (queued_rows_ + rows > max_pending_rows_) return false;
    queued_rows_ += rows;
    if (pending_gauge_ != nullptr) {
      pending_gauge_->Set(static_cast<double>(queued_rows_));
    }
    queue_.push_back(std::move(item));
  }
  work_cv_.Signal();
  return true;
}

void Coalescer::BeginDrain() {
  {
    const util::MutexLock lock(&mu_);
    draining_ = true;
    paused_ = false;  // A paused coalescer must still drain.
  }
  work_cv_.SignalAll();
}

bool Coalescer::Idle() const {
  const util::MutexLock lock(&mu_);
  return queue_.empty() && !in_flight_;
}

size_t Coalescer::pending_rows() const {
  const util::MutexLock lock(&mu_);
  return queued_rows_;
}

void Coalescer::Pause() {
  const util::MutexLock lock(&mu_);
  paused_ = true;
}

void Coalescer::Resume() {
  {
    const util::MutexLock lock(&mu_);
    paused_ = false;
  }
  work_cv_.SignalAll();
}

void Coalescer::DispatchLoop() {
  mu_.Lock();
  while (true) {
    while (!(stop_ || (!paused_ && !queue_.empty()))) {
      work_cv_.Wait(&mu_);
    }
    if (queue_.empty()) {
      if (stop_) break;
      continue;
    }

    // Pop the oldest item; when it is a plain single query, sweep every
    // other queued plain single with the same (engine, kind, param)
    // into the group, in arrival order. Different-parameter (or
    // different-model) items stay queued for a later group of their
    // own. The engine is compared by handle identity, not model name,
    // so items straddling a hot reload never mix generations. Explain
    // items never coalesce in either direction: the profile must
    // describe one query alone.
    std::vector<WorkItem> group;
    group.push_back(std::move(queue_.front()));
    queue_.pop_front();
    size_t rows = group.front().queries.rows();
    if (!group.front().is_batch && !group.front().explain) {
      const QueryKind kind = group.front().kind;
      const double param = group.front().param;
      const registry::LoadedModel* engine_id = group.front().handle.get();
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (!it->is_batch && !it->explain && it->kind == kind &&
            it->param == param && it->handle.get() == engine_id) {
          rows += it->queries.rows();
          group.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    queued_rows_ -= rows;
    if (pending_gauge_ != nullptr) {
      pending_gauge_->Set(static_cast<double>(queued_rows_));
    }
    in_flight_ = true;

    mu_.Unlock();
    RunGroup(std::move(group));
    mu_.Lock();

    in_flight_ = false;
  }
  mu_.Unlock();
}

void Coalescer::ObserveRow(size_t row, uint64_t begin_us, uint64_t end_us,
                           const core::EvalStats& stats) {
  row_begin_us_[row] = begin_us;
  row_end_us_[row] = end_us;
  row_stats_[row] = stats;
  if (tracer_.enabled()) {
    const uint64_t request_id = row_request_ids_[row];
    // Worker-lane slice for this row, with the flow step placed inside
    // it so the request's arrow lands on the executing thread.
    tracer_.Span("req/eval_row", begin_us, end_us,
                 {{"req", static_cast<double>(request_id)},
                  {"kernel_evals", static_cast<double>(stats.kernel_evals)},
                  {"nodes", static_cast<double>(stats.nodes_expanded)}});
    tracer_.FlowStep(request_id, begin_us + (end_us - begin_us) / 2);
  }
}

void Coalescer::RunExplain(WorkItem item) {
  item.ctx.dispatched_us = telemetry::MonotonicMicros();

  // Evaluated inline on the dispatcher — never through BatchEvaluator,
  // whose per-worker stats merging would blur the single query this
  // profile must describe. Explain is a diagnostic op; serializing it
  // on the dispatcher keeps the hot path untouched.
  core::TraversalProfile profile;
  core::EvalStats stats;
  const Engine& engine = item.handle->engine();
  const std::span<const double> q = item.queries.Row(0);
  const uint64_t eval_begin_us = telemetry::MonotonicMicros();
  util::Stopwatch timer;
  bool above = false;
  double value = 0.0;
  if (item.kind == QueryKind::kTkaq) {
    above = engine.evaluator().QueryThreshold(q, item.param, &stats,
                                              nullptr, &profile);
  } else {
    value = engine.evaluator().QueryApproximate(q, item.param, &stats,
                                                nullptr, &profile);
  }
  const double usec = timer.ElapsedSeconds() * 1e6;
  const uint64_t eval_end_us = telemetry::MonotonicMicros();

  if (groups_total_ != nullptr) {
    groups_total_->Increment();
    queries_total_->Add(1);
    group_rows_->Record(1.0);
    group_usec_->Record(usec);
    const ModelInstruments& labeled = InstrumentsForModel(item.model);
    if (labeled.groups != nullptr) {
      labeled.groups->Increment();
      labeled.queries->Add(1);
      labeled.rows->Record(1.0);
      labeled.usec->Record(usec);
    }
  }
  if (tracer_.enabled()) {
    tracer_.Span("grp/explain", eval_begin_us, eval_end_us,
                 {{"req", static_cast<double>(item.ctx.id)},
                  {"kernel_evals", static_cast<double>(stats.kernel_evals)},
                  {"nodes", static_cast<double>(stats.nodes_expanded)}});
    tracer_.FlowStep(item.ctx.id,
                     eval_begin_us + (eval_end_us - eval_begin_us) / 2);
  }

  item.ctx.eval_begin_us = eval_begin_us;
  item.ctx.eval_end_us = eval_end_us;
  item.ctx.stats.iterations = stats.iterations;
  item.ctx.stats.nodes_expanded = stats.nodes_expanded;
  item.ctx.stats.kernel_evals = stats.kernel_evals;

  const Json explain = TraversalProfileJson(profile);
  Completion completion;
  completion.conn_id = item.conn_id;
  completion.response =
      item.kind == QueryKind::kTkaq
          ? OkExplainBoolResponse(item.request_id, above, explain)
          : OkExplainValueResponse(item.request_id, value, explain);
  item.ctx.serialized_us = telemetry::MonotonicMicros();
  completion.ctx = item.ctx;
  completion.kind = item.kind;
  completion.is_batch = false;
  completion.rows = 1;
  completion.model = std::move(item.model);
  completion.request_id = std::move(item.request_id);
  completion.explain_json = explain.Dump();

  std::vector<Completion> completions;
  completions.push_back(std::move(completion));
  sink_(std::move(completions));
}

void Coalescer::RunGroup(std::vector<WorkItem> group) {
  if (group.front().explain) {
    RunExplain(std::move(group.front()));
    return;
  }
  const uint64_t dispatched_us = telemetry::MonotonicMicros();
  for (WorkItem& item : group) item.ctx.dispatched_us = dispatched_us;

  const QueryKind kind = group.front().kind;
  const double param = group.front().param;

  // One matrix for the whole group; item i owns rows [offset_i,
  // offset_i + rows_i).
  size_t total_rows = 0;
  for (const WorkItem& item : group) total_rows += item.queries.rows();
  const data::Matrix* queries = &group.front().queries;
  data::Matrix merged;
  if (group.size() > 1) {
    const size_t cols = group.front().queries.cols();
    merged = data::Matrix(total_rows, cols);
    size_t row = 0;
    for (const WorkItem& item : group) {
      for (size_t r = 0; r < item.queries.rows(); ++r, ++row) {
        std::span<double> dst = merged.MutableRow(row);
        std::span<const double> src = item.queries.Row(r);
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
    queries = &merged;
  }

  // Attribution slots for this group, id-mapped so ObserveRow (on
  // worker threads) can hand each row back to its request.
  row_request_ids_.assign(total_rows, 0);
  row_begin_us_.assign(total_rows, 0);
  row_end_us_.assign(total_rows, 0);
  row_stats_.assign(total_rows, core::EvalStats{});
  {
    size_t row = 0;
    for (const WorkItem& item : group) {
      for (size_t r = 0; r < item.queries.rows(); ++r, ++row) {
        row_request_ids_[row] = item.ctx.id;
      }
    }
  }

  const uint64_t eval_begin_us = telemetry::MonotonicMicros();
  if (tracer_.enabled()) {
    // Dispatcher-lane slice for the sweep+merge, with one flow step per
    // member request so every request's arrow passes through the
    // dispatcher before fanning out to workers.
    tracer_.Span("grp/dispatch", dispatched_us, eval_begin_us,
                 {{"requests", static_cast<double>(group.size())},
                  {"rows", static_cast<double>(total_rows)}});
    const uint64_t step_us =
        dispatched_us + (eval_begin_us - dispatched_us) / 2;
    for (const WorkItem& item : group) {
      tracer_.FlowStep(item.ctx.id, step_us);
    }
  }

  // Per-group evaluator over the group's pinned engine — cheap to
  // construct (it only resolves telemetry handles), and the handle
  // keeps the engine's backing memory alive for the whole call even if
  // the registry evicts or swaps the model meanwhile. The model name
  // labels the evaluator's karl_batch_* metrics.
  core::BatchOptions batch_options = ObservedOptions(pool_, this);
  batch_options.metric_model = group.front().model;
  const core::BatchEvaluator evaluator(group.front().handle->engine(),
                                       batch_options);
  util::Stopwatch timer;
  std::vector<uint8_t> bools;
  std::vector<double> values;
  switch (kind) {
    case QueryKind::kTkaq:
      bools = evaluator.Tkaq(*queries, param);
      break;
    case QueryKind::kEkaq:
      values = evaluator.Ekaq(*queries, param);
      break;
    case QueryKind::kExact:
      values = evaluator.Exact(*queries);
      break;
  }
  const double usec = timer.ElapsedSeconds() * 1e6;
  const uint64_t eval_end_us = telemetry::MonotonicMicros();
  if (groups_total_ != nullptr) {
    groups_total_->Increment();
    queries_total_->Add(total_rows);
    group_rows_->Record(static_cast<double>(total_rows));
    group_usec_->Record(usec);
    const ModelInstruments& labeled = InstrumentsForModel(group.front().model);
    if (labeled.groups != nullptr) {
      labeled.groups->Increment();
      labeled.queries->Add(total_rows);
      labeled.rows->Record(static_cast<double>(total_rows));
      labeled.usec->Record(usec);
    }
  }
  tracer_.Span("grp/eval", eval_begin_us, eval_end_us,
               {{"requests", static_cast<double>(group.size())},
                {"rows", static_cast<double>(total_rows)}});

  // Slice results back out per item, preserving per-request identity;
  // each item's eval window and engine stats come from its own rows.
  std::vector<Completion> completions;
  completions.reserve(group.size());
  size_t offset = 0;
  for (WorkItem& item : group) {
    const size_t rows = item.queries.rows();
    uint64_t item_begin = 0;
    uint64_t item_end = 0;
    for (size_t r = offset; r < offset + rows; ++r) {
      if (row_begin_us_[r] != 0 &&
          (item_begin == 0 || row_begin_us_[r] < item_begin)) {
        item_begin = row_begin_us_[r];
      }
      if (row_end_us_[r] > item_end) item_end = row_end_us_[r];
      item.ctx.stats.iterations += row_stats_[r].iterations;
      item.ctx.stats.nodes_expanded += row_stats_[r].nodes_expanded;
      item.ctx.stats.kernel_evals += row_stats_[r].kernel_evals;
    }
    item.ctx.eval_begin_us = item_begin != 0 ? item_begin : eval_begin_us;
    item.ctx.eval_end_us = item_end != 0 ? item_end : eval_end_us;

    std::string response;
    if (item.is_batch) {
      if (kind == QueryKind::kTkaq) {
        response = OkBoolsResponse(
            item.request_id,
            {bools.begin() + static_cast<ptrdiff_t>(offset),
             bools.begin() + static_cast<ptrdiff_t>(offset + rows)});
      } else {
        response = OkValuesResponse(
            item.request_id,
            {values.begin() + static_cast<ptrdiff_t>(offset),
             values.begin() + static_cast<ptrdiff_t>(offset + rows)});
      }
    } else {
      if (kind == QueryKind::kTkaq) {
        response = OkBoolResponse(item.request_id, bools[offset] != 0);
      } else {
        response = OkValueResponse(item.request_id, values[offset]);
      }
    }
    item.ctx.serialized_us = telemetry::MonotonicMicros();

    Completion completion;
    completion.conn_id = item.conn_id;
    completion.response = std::move(response);
    completion.ctx = item.ctx;
    completion.kind = kind;
    completion.is_batch = item.is_batch;
    completion.rows = rows;
    completion.model = item.model;
    completion.request_id = std::move(item.request_id);
    completions.push_back(std::move(completion));
    offset += rows;
  }
  const uint64_t serialized_us = telemetry::MonotonicMicros();
  tracer_.Span("grp/serialize", eval_end_us, serialized_us,
               {{"requests", static_cast<double>(group.size())}});
  sink_(std::move(completions));
}

}  // namespace karl::server
