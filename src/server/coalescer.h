// Batch coalescer: the bridge between the server's event loop and the
// evaluation threads.
//
// The event loop enqueues WorkItems (one per query/batch request) into
// a bounded queue; a dedicated dispatcher thread drains it. Each drain
// gathers every queued *single* query with the same (model, kind,
// parameter) into one core::BatchEvaluator call fanned across the
// work-stealing ThreadPool — so a flood of concurrent single-query
// clients is served with batch efficiency while each response keeps its
// per-request identity (connection + echoed id). Each item carries its
// own pinned registry handle (registry/registry.h), so the engine a
// group evaluates against stays mapped even if the registry evicts or
// hot-reloads the model mid-flight; grouping compares engine identity
// (the handle), not just the name, so requests admitted across a reload
// never share a batch with a different model generation. Explicit batch requests dispatch
// as their own evaluator call. While one group runs, newly arriving
// queries accumulate and form the next group: coalescing emerges from
// backpressure rather than from a timer, adding no idle latency.
//
// Admission control: the queue is bounded by total queued query *rows*
// (the actual memory bound). Enqueue refuses instead of buffering
// without limit; the server turns a refusal into an explicit
// `overloaded` response. A single batch larger than the cap is always
// refused — size --max-pending to the largest batch you accept.
//
// Determinism: BatchEvaluator answers are bit-identical to the serial
// Engine loop (see core/batch.h), so coalescing is invisible to
// clients beyond latency.

#ifndef KARL_SERVER_COALESCER_H_
#define KARL_SERVER_COALESCER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/batch.h"
#include "registry/registry.h"
#include "server/protocol.h"
#include "telemetry/context.h"
#include "util/mutex.h"

namespace karl::server {

/// One admitted evaluation request.
struct WorkItem {
  /// Connection the response belongs to (server-assigned).
  uint64_t conn_id = 0;
  /// Client correlation token, echoed on the response ("" = none).
  std::string request_id;
  QueryKind kind = QueryKind::kTkaq;
  /// tau or eps; 0 for exact.
  double param = 0.0;
  /// True for an op=batch request (responds with an array; never merged
  /// with other items).
  bool is_batch = false;
  /// True for an op=explain request: evaluated alone (never coalesced —
  /// the profile must describe exactly one query's traversal) with the
  /// EXPLAIN profiler attached.
  bool explain = false;
  /// Resolved model name (diagnostics; "" = default).
  std::string model;
  /// Pinned engine this item evaluates against. The handle keeps the
  /// model resident (mapping and all) until every item referencing it
  /// has completed — the router acquires it, the coalescer releases it.
  registry::ModelHandle handle;
  data::Matrix queries;
  /// Observability context; the coalescer stamps the dispatch/eval/
  /// serialize stages and attributes engine work per request.
  telemetry::RequestContext ctx;
};

/// A finished response addressed back to a connection.
struct Completion {
  uint64_t conn_id = 0;
  /// Fully formatted newline-terminated response line.
  std::string response;
  /// Context with every stage through `serialized_us` stamped; the
  /// server stamps the write stage and files the flight record.
  telemetry::RequestContext ctx;
  QueryKind kind = QueryKind::kTkaq;
  bool is_batch = false;
  uint64_t rows = 0;
  /// Resolved model name the item evaluated against — what the server's
  /// per-model stage metrics, SLO engine, access log, and flight record
  /// attribute to.
  std::string model;
  /// Client correlation token ("" = none), for access/slow-query logs.
  std::string request_id;
  /// The rendered "explain" object for op=explain completions (empty
  /// otherwise); the server files it into the /explainz ring.
  std::string explain_json;
};

/// See file comment. Construction spawns the dispatcher thread;
/// destruction drains the queue and joins. The pool (and every engine
/// still referenced by queued items' handles) must outlive the
/// coalescer; the handles themselves guarantee the latter.
class Coalescer {
 public:
  /// Called on the dispatcher thread with every completion of one
  /// dispatched group; must be thread-safe and must not block on the
  /// dispatcher (the server's sink appends to a mutex-guarded vector
  /// and signals an eventfd).
  using CompletionSink = std::function<void(std::vector<Completion>)>;

  /// `tracer` (default: disabled) emits dispatcher-side group spans,
  /// worker-side per-row spans, and per-request flow steps.
  Coalescer(util::ThreadPool* pool, size_t max_pending_rows,
            CompletionSink sink, telemetry::Registry* metrics,
            telemetry::RequestTracer tracer = {});
  ~Coalescer();

  Coalescer(const Coalescer&) = delete;
  Coalescer& operator=(const Coalescer&) = delete;

  /// Admits `item` unless the queue is full (by rows) or draining.
  /// Returns false to shed; the caller owns the refusal response.
  bool Enqueue(WorkItem item);

  /// Stops admission; already queued items still complete. Idempotent.
  void BeginDrain();

  /// True when the queue is empty and no group is being evaluated —
  /// i.e. every completion this coalescer will ever emit has been
  /// handed to the sink. The drain loop polls this.
  bool Idle() const;

  /// Queued rows not yet dispatched (also exported as the
  /// karl_server_pending_rows gauge).
  size_t pending_rows() const;

  /// Freezes/unfreezes dispatch while admission keeps running — lets
  /// tests (and operators) deterministically build up a coalescable
  /// backlog. BeginDrain resumes a paused coalescer.
  void Pause();
  void Resume();

 private:
  void DispatchLoop();
  // Evaluates one group of same-(kind,param) items and emits their
  // completions. Runs on the dispatcher thread.
  void RunGroup(std::vector<WorkItem> group);
  // Evaluates one op=explain item (always a group of its own) with the
  // traversal profiler attached. Runs on the dispatcher thread.
  void RunExplain(WorkItem item);
  // Builds the BatchOptions wired to ObserveRow.
  static core::BatchOptions ObservedOptions(util::ThreadPool* pool,
                                            Coalescer* self);
  // BatchOptions::row_observer target: records one row's eval window
  // and stats into the attribution slots and emits the worker-side
  // trace span + flow step. Runs on pool workers (and the dispatcher).
  void ObserveRow(size_t row, uint64_t begin_us, uint64_t end_us,
                  const core::EvalStats& stats);

  util::ThreadPool* pool_;
  CompletionSink sink_;
  const size_t max_pending_rows_;
  telemetry::RequestTracer tracer_;

  // Per-row attribution for the group currently inside RunGroup: sized
  // and id-mapped on the dispatcher before evaluation, then written
  // through ObserveRow. Rows are observed exactly once and distinct
  // rows use distinct slots, so concurrent workers never share a slot.
  // Deliberately NOT guarded by mu_: the disjoint-slot protocol (plus
  // the pool-join barrier at the end of each BatchEvaluator call) is
  // the synchronisation — a lock here would serialise the workers. The
  // TSan suite exercises this path.
  std::vector<uint64_t> row_request_ids_;
  std::vector<uint64_t> row_begin_us_;
  std::vector<uint64_t> row_end_us_;
  std::vector<core::EvalStats> row_stats_;

  mutable util::Mutex mu_;
  util::CondVar work_cv_;  // Queue/pause/stop transitions.
  std::deque<WorkItem> queue_ KARL_GUARDED_BY(mu_);
  // Sum of queue_ rows.
  size_t queued_rows_ KARL_GUARDED_BY(mu_) = 0;
  // Dispatcher inside RunGroup.
  bool in_flight_ KARL_GUARDED_BY(mu_) = false;
  bool paused_ KARL_GUARDED_BY(mu_) = false;
  bool draining_ KARL_GUARDED_BY(mu_) = false;
  bool stop_ KARL_GUARDED_BY(mu_) = false;

  // Telemetry (null when no registry): dispatched groups, coalesced
  // rows per group, evaluation latency, queue level. The histograms are
  // rolling so /metrics can report last-60s group shape next to the
  // cumulative one.
  telemetry::Registry* metrics_ = nullptr;
  telemetry::Counter* groups_total_ = nullptr;
  telemetry::Counter* queries_total_ = nullptr;
  telemetry::RollingHistogram* group_rows_ = nullptr;
  telemetry::RollingHistogram* group_usec_ = nullptr;
  telemetry::Gauge* pending_gauge_ = nullptr;

  // {model=...} twins of the group metrics. A group is single-model by
  // construction (items are grouped by engine identity), so each group
  // records into exactly one labeled set. Interned lazily; accessed only
  // on the dispatcher thread, so no lock.
  struct ModelInstruments {
    telemetry::Counter* groups = nullptr;
    telemetry::Counter* queries = nullptr;
    telemetry::RollingHistogram* rows = nullptr;
    telemetry::RollingHistogram* usec = nullptr;
  };
  const ModelInstruments& InstrumentsForModel(const std::string& model);
  std::unordered_map<std::string, ModelInstruments> model_instruments_;

  std::thread dispatcher_;
};

}  // namespace karl::server

#endif  // KARL_SERVER_COALESCER_H_
