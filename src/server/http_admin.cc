#include "server/http_admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/errno.h"

namespace karl::server {

namespace {

util::Status Errno(const std::string& what) {
  return util::Status::IOError(what + ": " + util::ErrnoString(errno));
}

// Writes all of `data` to `fd`, tolerating short writes; gives up on
// error (the peer is an admin client — nothing to salvage).
void WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::write(fd, data.data(), data.size());
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
}

std::string_view StatusText(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 431:
      return "Request Header Fields Too Large";
    default:
      return "Internal Server Error";
  }
}

// One full HTTP/1.1 response with Content-Length and Connection: close.
std::string BuildResponse(int code, std::string_view content_type,
                          std::string_view body,
                          std::string_view extra_header = {}) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " ";
  out += StatusText(code);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  if (!extra_header.empty()) {
    out += "\r\n";
    out += extra_header;
  }
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string PlainStatus(int code, std::string_view detail,
                        std::string_view extra_header = {}) {
  std::string body(StatusText(code));
  if (!detail.empty()) {
    body += ": ";
    body += detail;
  }
  body += "\n";
  return BuildResponse(code, "text/plain; charset=utf-8", body,
                       extra_header);
}

}  // namespace

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Register(const std::string& path,
                           const std::string& content_type,
                           Handler handler) {
  endpoints_[path] = Endpoint{content_type, std::move(handler)};
}

util::Status AdminServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("admin socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::InvalidArgument("invalid admin address '" +
                                         options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const util::Status status = Errno("admin bind " + options_.host + ":" +
                                      std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 16) < 0) {
    const util::Status status = Errno("admin listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    const util::Status status = Errno("admin getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(bound.sin_port);

  stop_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (stop_fd_ < 0) {
    const util::Status status = Errno("admin eventfd");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  if (options_.logger != nullptr) {
    options_.logger->Log(util::LogLevel::kInfo, "admin.start",
                         {{"host", options_.host}, {"port", port_}});
  }
  return util::Status::OK();
}

void AdminServer::Stop() {
  if (!started_) return;
  started_ = false;
  const uint64_t one = 1;
  // A failed wake leaves the thread parked in poll(); nothing better to
  // do than join anyway (poll also watches the closed listener).
  [[maybe_unused]] const ssize_t n =
      ::write(stop_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (stop_fd_ >= 0) ::close(stop_fd_);
  listen_fd_ = -1;
  stop_fd_ = -1;
  if (options_.logger != nullptr) {
    options_.logger->Log(util::LogLevel::kInfo, "admin.stop",
                         {{"port", port_}});
  }
}

void AdminServer::Loop() {
  while (true) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_fd_, POLLIN, 0};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // Stop() poked us.
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) continue;
    timeval tv{};
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ServeConnection(conn);
    ::close(conn);
  }
}

void AdminServer::ServeConnection(int fd) {
  // Read until the end of the request head; the admin plane ignores
  // request bodies (GET only), so the head is the whole request.
  std::string head;
  char buffer[1024];
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > options_.max_request_bytes) {
      WriteAll(fd, PlainStatus(431, "request head exceeds " +
                                        std::to_string(
                                            options_.max_request_bytes) +
                                        " bytes"));
      return;
    }
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // Timeout (EAGAIN) or peer hangup mid-request.
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        WriteAll(fd, PlainStatus(408, "timed out reading request"));
      }
      return;
    }
    head.append(buffer, static_cast<size_t>(n));
    if (head.size() > options_.max_request_bytes &&
        head.find("\r\n") == std::string::npos) {
      // Oversized before even one complete line: reject immediately
      // instead of buffering an unbounded request line.
      WriteAll(fd, PlainStatus(431, "request line exceeds " +
                                        std::to_string(
                                            options_.max_request_bytes) +
                                        " bytes"));
      return;
    }
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const size_t line_end = head.find("\r\n");
  const std::string_view line = std::string_view(head).substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    WriteAll(fd, PlainStatus(405, "malformed request line",
                             "Allow: GET"));
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    WriteAll(fd, PlainStatus(405, "only GET is supported", "Allow: GET"));
    return;
  }
  std::string_view query;
  if (const size_t qmark = target.find('?');
      qmark != std::string_view::npos) {
    query = target.substr(qmark + 1);
    target = target.substr(0, qmark);
  }

  const auto it = endpoints_.find(std::string(target));
  if (it == endpoints_.end()) {
    std::string known = "known paths:";
    for (const auto& [path, endpoint] : endpoints_) known += " " + path;
    WriteAll(fd, PlainStatus(404, known));
    return;
  }
  const std::string body = it->second.handler(query);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  WriteAll(fd, BuildResponse(200, it->second.content_type, body));
}

}  // namespace karl::server
