// Dependency-free HTTP/1.1 admin listener — the scrape plane of
// karl_server. Serves GET requests for registered paths (/metrics,
// /healthz, /statusz, /varz, /flightz, /explainz) from its own thread,
// completely off the query event loop, so a stuck or slow scraper can
// never stall query traffic and a busy server always answers probes.
//
// Deliberately minimal: requests are served one connection at a time
// (admin traffic is a scraper every few seconds, not a fleet), each
// response carries Content-Length and Connection: close, and anything
// malformed gets a plain-status reply — 405 for non-GET methods, 404
// for unregistered paths, 431 when the request head exceeds the size
// cap, 408 when the peer stalls mid-request. This is not a general web
// server and must never be exposed beyond the operations network.
//
// Concurrency: endpoints are registered before Start and immutable
// afterwards, so the serving thread reads the table without locks.
// Handlers run on the admin thread and must be thread-safe against the
// serving stack (the standard handlers only snapshot registries, which
// are).

#ifndef KARL_SERVER_HTTP_ADMIN_H_
#define KARL_SERVER_HTTP_ADMIN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include "util/log.h"
#include "util/status.h"

namespace karl::server {

/// See file comment.
class AdminServer {
 public:
  struct Options {
    /// Numeric IPv4 listen address.
    std::string host = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    int port = 0;
    /// Cap on the request head (request line + headers); beyond it the
    /// connection gets 431 and is closed.
    size_t max_request_bytes = 8192;
    /// Per-connection read/write timeout.
    int io_timeout_ms = 2000;
    /// Diagnostics; may be null.
    util::Logger* logger = nullptr;
  };

  /// Produces a response body for one GET. `query` is the raw query
  /// string after '?' (possibly empty), undecoded.
  using Handler = std::function<std::string(std::string_view query)>;

  explicit AdminServer(const Options& options) : options_(options) {}
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers `handler` for GET `path` (no trailing slash, compared
  /// exactly; the query string is stripped before matching). Must be
  /// called before Start; replaces any previous handler for the path.
  void Register(const std::string& path, const std::string& content_type,
                Handler handler);

  /// Binds, listens, and spawns the serving thread. Fails if the
  /// address is unavailable.
  util::Status Start();

  /// Stops the serving thread and closes the listener. Idempotent;
  /// also run by the destructor.
  void Stop();

  /// The bound port (after Start); useful with Options::port == 0.
  int port() const { return port_; }

  /// Requests answered with 200 since Start (any thread).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Endpoint {
    std::string content_type;
    Handler handler;
  };

  void Loop();
  // Reads one request head from `fd` and writes the response.
  void ServeConnection(int fd);

  Options options_;
  std::map<std::string, Endpoint> endpoints_;  // Immutable after Start.
  int listen_fd_ = -1;
  int stop_fd_ = -1;  // eventfd poked by Stop().
  int port_ = 0;
  bool started_ = false;
  std::thread thread_;
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace karl::server

#endif  // KARL_SERVER_HTTP_ADMIN_H_
