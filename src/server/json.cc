#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace karl::server {
namespace {

constexpr int kMaxDepth = 64;

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double v, std::string* out) {
  // %.17g round-trips every finite double exactly through strtod.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

// Recursive-descent parser over a bounded cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::Result<Json> ParseDocument() {
    auto value = ParseValue(0);
    if (!value.ok()) return value.status();
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  util::Status Error(const std::string& what) const {
    return util::Status::InvalidArgument("JSON parse error at byte " +
                                         std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  util::Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return Json::Str(std::move(s).ValueOrDie());
      }
      case 't':
        if (ConsumeLiteral("true")) return Json::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Json::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Json();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  util::Result<Json> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    if (!std::isfinite(value)) {
      return Error("number out of range '" + token + "'");
    }
    return Json::Number(value);
  }

  // Decodes one \uXXXX escape (pos_ past the 'u'), pairing surrogates,
  // and appends UTF-8.
  util::Status ParseUnicodeEscape(std::string* out) {
    auto hex4 = [this](uint32_t* cp) -> bool {
      if (pos_ + 4 > text_.size()) return false;
      uint32_t v = 0;
      for (int i = 0; i < 4; ++i) {
        const char h = text_[pos_ + i];
        v <<= 4;
        if (h >= '0' && h <= '9') {
          v |= static_cast<uint32_t>(h - '0');
        } else if (h >= 'a' && h <= 'f') {
          v |= static_cast<uint32_t>(h - 'a' + 10);
        } else if (h >= 'A' && h <= 'F') {
          v |= static_cast<uint32_t>(h - 'A' + 10);
        } else {
          return false;
        }
      }
      pos_ += 4;
      *cp = v;
      return true;
    };
    uint32_t cp = 0;
    if (!hex4(&cp)) return Error("bad \\u escape");
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
          text_[pos_ + 1] == 'u') {
        pos_ += 2;
        uint32_t low = 0;
        if (!hex4(&low) || low < 0xDC00 || low > 0xDFFF) {
          return Error("bad low surrogate");
        }
        cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
      } else {
        return Error("unpaired surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      return Error("unpaired surrogate");
    }
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
    return util::Status::OK();
  }

  util::Result<std::string> ParseString() {
    KARL_DCHECK(text_[pos_] == '"');
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (auto st = ParseUnicodeEscape(&out); !st.ok()) return st;
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  util::Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    Json array = Json::Array();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      array.Append(std::move(value).ValueOrDie());
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return array;
      }
      return Error("expected ',' or ']'");
    }
  }

  util::Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    Json object = Json::Object();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':'");
      }
      ++pos_;
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      object.Set(std::move(key).ValueOrDie(), std::move(value).ValueOrDie());
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return object;
      }
      return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::Bool(bool value) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = value;
  return j;
}

Json Json::Number(double value) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = value;
  return j;
}

Json Json::Str(std::string value) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(value);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::bool_value() const {
  KARL_DCHECK(is_bool()) << ": bool_value() on non-bool Json";
  return bool_;
}

double Json::number_value() const {
  KARL_DCHECK(is_number()) << ": number_value() on non-number Json";
  return number_;
}

const std::string& Json::string_value() const {
  KARL_DCHECK(is_string()) << ": string_value() on non-string Json";
  return string_;
}

const std::vector<Json>& Json::items() const {
  KARL_DCHECK(is_array()) << ": items() on non-array Json";
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  KARL_DCHECK(is_object()) << ": members() on non-object Json";
  return members_;
}

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Json& Json::Append(Json value) {
  KARL_DCHECK(is_array()) << ": Append() on non-array Json";
  items_.push_back(std::move(value));
  return *this;
}

Json& Json::Set(std::string key, Json value) {
  KARL_DCHECK(is_object()) << ": Set() on non-object Json";
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

std::string Json::Dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(number_, &out);
      break;
    case Type::kString:
      AppendEscaped(string_, &out);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += items_[i].Dump();
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        AppendEscaped(members_[i].first, &out);
        out.push_back(':');
        out += members_[i].second.Dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

util::Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace karl::server
