// Minimal dependency-free JSON value: parse, build, and compact
// single-line serialization. This backs the server's newline-delimited
// JSON wire protocol (see server/protocol.h), so it deliberately stays
// small: doubles only (no 64-bit integer preservation), object members
// in insertion order (deterministic output), and a parser hardened
// against malformed and deeply nested input — wire bytes are untrusted.
//
// Number fidelity: numbers serialize with %.17g, so a double round-trips
// bit-exactly through Dump() + Parse(). The server relies on this for
// its "responses are bit-identical to a local Engine" contract.

#ifndef KARL_SERVER_JSON_H_
#define KARL_SERVER_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace karl::server {

/// One JSON value: null, bool, number, string, array, or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Constructs null.
  Json() = default;

  /// Leaf factories.
  static Json Bool(bool value);
  static Json Number(double value);
  static Json Str(std::string value);

  /// Container factories (empty; fill with Append/Set).
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one is a programming error.
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;
  const std::vector<Json>& items() const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Object lookup; nullptr when absent (or not an object). Objects on
  /// this protocol are tiny, so lookup is a linear scan.
  const Json* Find(std::string_view key) const;

  /// Appends `value` to an array; returns *this for chaining.
  Json& Append(Json value);

  /// Sets an object member (replacing an existing key); returns *this.
  Json& Set(std::string key, Json value);

  /// Compact single-line serialization (no spaces, no trailing newline).
  /// Strings escape `"`/`\`/control characters, so the output never
  /// contains a raw newline — safe to frame line-delimited.
  std::string Dump() const;

  /// Parses exactly one JSON document (trailing garbage rejected).
  /// Rejects non-finite numbers and nesting deeper than 64 levels.
  static util::Result<Json> Parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace karl::server

#endif  // KARL_SERVER_JSON_H_
