#include "server/protocol.h"

#include <cmath>

#include "server/json.h"
#include "util/check.h"

namespace karl::server {
namespace {

util::Status BadRequest(const std::string& what) {
  return util::Status::InvalidArgument(what);
}

// Extracts a finite-number row from a JSON array.
util::Status ReadRow(const Json& array, std::vector<double>* out) {
  if (!array.is_array()) return BadRequest("query must be a number array");
  out->clear();
  out->reserve(array.items().size());
  for (const Json& v : array.items()) {
    if (!v.is_number()) return BadRequest("query must contain only numbers");
    out->push_back(v.number_value());
  }
  return util::Status::OK();
}

util::Status ReadKindAndParam(const Json& root, Request* request) {
  const Json* kind = root.Find("kind");
  if (kind == nullptr || !kind->is_string()) {
    return BadRequest("missing \"kind\" (tkaq|ekaq|exact)");
  }
  const std::string& name = kind->string_value();
  if (name == "tkaq") {
    request->kind = QueryKind::kTkaq;
    const Json* tau = root.Find("tau");
    if (tau == nullptr || !tau->is_number()) {
      return BadRequest("tkaq requires a numeric \"tau\"");
    }
    request->param = tau->number_value();
  } else if (name == "ekaq") {
    request->kind = QueryKind::kEkaq;
    const Json* eps = root.Find("eps");
    if (eps == nullptr || !eps->is_number() || eps->number_value() <= 0.0) {
      return BadRequest("ekaq requires a positive numeric \"eps\"");
    }
    request->param = eps->number_value();
  } else if (name == "exact") {
    request->kind = QueryKind::kExact;
    request->param = 0.0;
  } else {
    return BadRequest("unknown kind '" + name + "' (tkaq|ekaq|exact)");
  }
  return util::Status::OK();
}

std::string Finish(Json response, const std::string& id) {
  if (!id.empty()) response.Set("id", Json::Str(id));
  return response.Dump() + "\n";
}

}  // namespace

std::string_view QueryKindToString(QueryKind kind) {
  switch (kind) {
    case QueryKind::kTkaq:
      return "tkaq";
    case QueryKind::kEkaq:
      return "ekaq";
    case QueryKind::kExact:
      return "exact";
  }
  return "unknown";
}

util::Result<Request> ParseRequest(std::string_view line) {
  auto parsed = Json::Parse(line);
  if (!parsed.ok()) return parsed.status();
  const Json root = std::move(parsed).ValueOrDie();
  if (!root.is_object()) return BadRequest("request must be a JSON object");

  Request request;
  if (const Json* id = root.Find("id"); id != nullptr) {
    if (!id->is_string()) return BadRequest("\"id\" must be a string");
    request.id = id->string_value();
  }

  const Json* op = root.Find("op");
  if (op == nullptr || !op->is_string()) {
    return BadRequest(
        "missing \"op\" "
        "(query|batch|explain|health|metrics|statusz|reload)");
  }
  const std::string& name = op->string_value();
  if (name == "health") {
    request.op = Request::Op::kHealth;
    return request;
  }
  if (name == "metrics") {
    request.op = Request::Op::kMetrics;
    return request;
  }
  if (name == "statusz") {
    request.op = Request::Op::kStatusz;
    return request;
  }
  if (name == "reload") {
    request.op = Request::Op::kReload;
    return request;
  }
  if (const Json* model = root.Find("model"); model != nullptr) {
    if (!model->is_string()) return BadRequest("\"model\" must be a string");
    request.model = model->string_value();
  }

  std::vector<double> row;
  if (name == "query" || name == "explain") {
    request.op =
        name == "query" ? Request::Op::kQuery : Request::Op::kExplain;
    KARL_RETURN_NOT_OK(ReadKindAndParam(root, &request));
    if (request.op == Request::Op::kExplain &&
        request.kind == QueryKind::kExact) {
      return BadRequest(
          "explain requires kind tkaq or ekaq — a full scan has no "
          "traversal to profile");
    }
    const Json* q = root.Find("q");
    if (q == nullptr) return BadRequest(name + " requires \"q\"");
    KARL_RETURN_NOT_OK(ReadRow(*q, &row));
    if (row.empty()) return BadRequest("\"q\" must be non-empty");
    const size_t dims = row.size();
    request.queries = data::Matrix(1, dims, std::move(row));
    return request;
  }
  if (name == "batch") {
    request.op = Request::Op::kBatch;
    KARL_RETURN_NOT_OK(ReadKindAndParam(root, &request));
    const Json* queries = root.Find("queries");
    if (queries == nullptr || !queries->is_array()) {
      return BadRequest("batch requires a \"queries\" array of rows");
    }
    for (const Json& entry : queries->items()) {
      KARL_RETURN_NOT_OK(ReadRow(entry, &row));
      if (row.empty()) return BadRequest("batch rows must be non-empty");
      if (!request.queries.empty() &&
          row.size() != request.queries.cols()) {
        return BadRequest("batch rows must share one dimensionality");
      }
      request.queries.AppendRow(row);
    }
    return request;
  }
  return BadRequest("unknown op '" + name +
                    "' (query|batch|explain|health|metrics|statusz|reload)");
}

std::string OkBoolResponse(const std::string& id, bool above) {
  return Finish(
      Json::Object().Set("ok", Json::Bool(true)).Set("above",
                                                     Json::Bool(above)),
      id);
}

std::string OkValueResponse(const std::string& id, double value) {
  return Finish(
      Json::Object().Set("ok", Json::Bool(true)).Set("value",
                                                     Json::Number(value)),
      id);
}

std::string OkBoolsResponse(const std::string& id,
                            const std::vector<uint8_t>& above) {
  Json list = Json::Array();
  for (const uint8_t b : above) list.Append(Json::Bool(b != 0));
  return Finish(
      Json::Object().Set("ok", Json::Bool(true)).Set("above",
                                                     std::move(list)),
      id);
}

std::string OkValuesResponse(const std::string& id,
                             const std::vector<double>& values) {
  Json list = Json::Array();
  for (const double v : values) list.Append(Json::Number(v));
  return Finish(
      Json::Object().Set("ok", Json::Bool(true)).Set("values",
                                                     std::move(list)),
      id);
}

std::string OkStatusResponse(std::string_view status) {
  return Finish(Json::Object()
                    .Set("ok", Json::Bool(true))
                    .Set("status", Json::Str(std::string(status))),
                "");
}

std::string OkMetricsResponse(std::string_view prometheus_text) {
  return Finish(Json::Object()
                    .Set("ok", Json::Bool(true))
                    .Set("metrics", Json::Str(std::string(prometheus_text))),
                "");
}

std::string OkStatuszResponse(std::string_view statusz_object) {
  // The status object is pre-rendered JSON (built by the server layer,
  // which owns the flight recorder), so it is embedded, not escaped.
  std::string out = "{\"ok\": true, \"statusz\": ";
  out += statusz_object;
  out += "}\n";
  return out;
}

Json TraversalProfileJson(const core::TraversalProfile& profile) {
  const bool linear_family = profile.bounds != core::BoundKind::kSota;
  Json levels = Json::Array();
  for (size_t d = 0; d < profile.levels.size(); ++d) {
    const core::TraversalProfile::Level& level = profile.levels[d];
    levels.Append(
        Json::Object()
            .Set("depth", Json::Number(static_cast<double>(d)))
            .Set("visited", Json::Number(static_cast<double>(level.visited)))
            .Set("expanded",
                 Json::Number(static_cast<double>(level.expanded)))
            .Set("pruned_linear",
                 Json::Number(static_cast<double>(
                     linear_family ? level.pruned : 0)))
            .Set("pruned_constant",
                 Json::Number(static_cast<double>(
                     linear_family ? 0 : level.pruned)))
            .Set("exact_leaves",
                 Json::Number(static_cast<double>(level.exact_leaves)))
            .Set("kernel_evals",
                 Json::Number(static_cast<double>(level.kernel_evals))));
  }
  Json timeline = Json::Array();
  for (size_t i = 0; i < profile.timeline.size(); ++i) {
    const core::TraversalProfile::Iteration& it = profile.timeline[i];
    timeline.Append(
        Json::Object()
            .Set("iteration", Json::Number(static_cast<double>(i)))
            .Set("lb", Json::Number(it.lb))
            .Set("ub", Json::Number(it.ub))
            .Set("gap", Json::Number(it.ub - it.lb))
            .Set("kernel_evals",
                 Json::Number(static_cast<double>(it.kernel_evals))));
  }
  return Json::Object()
      .Set("bounds",
           Json::Str(std::string(core::BoundKindToString(profile.bounds))))
      .Set("bound_family",
           Json::Str(core::BoundFamilyName(profile.bounds)))
      .Set("iterations",
           Json::Number(static_cast<double>(profile.iterations)))
      .Set("nodes_expanded",
           Json::Number(static_cast<double>(profile.nodes_expanded)))
      .Set("kernel_evals",
           Json::Number(static_cast<double>(profile.kernel_evals)))
      .Set("nodes_visited",
           Json::Number(static_cast<double>(profile.TotalVisited())))
      .Set("nodes_pruned",
           Json::Number(static_cast<double>(profile.TotalPruned())))
      .Set("exact_leaves",
           Json::Number(static_cast<double>(profile.TotalExactLeaves())))
      .Set("levels", std::move(levels))
      .Set("timeline", std::move(timeline))
      .Set("timeline_truncated", Json::Bool(profile.timeline_truncated));
}

std::string OkExplainBoolResponse(const std::string& id, bool above,
                                  const Json& explain) {
  return Finish(Json::Object()
                    .Set("ok", Json::Bool(true))
                    .Set("above", Json::Bool(above))
                    .Set("explain", explain),
                id);
}

std::string OkExplainValueResponse(const std::string& id, double value,
                                   const Json& explain) {
  return Finish(Json::Object()
                    .Set("ok", Json::Bool(true))
                    .Set("value", Json::Number(value))
                    .Set("explain", explain),
                id);
}

std::string ErrorResponse(const std::string& id, std::string_view code,
                          std::string_view detail) {
  Json response = Json::Object()
                      .Set("ok", Json::Bool(false))
                      .Set("error", Json::Str(std::string(code)));
  if (!detail.empty()) response.Set("detail", Json::Str(std::string(detail)));
  return Finish(std::move(response), id);
}

}  // namespace karl::server
