// Wire protocol of the KARL query server: newline-delimited JSON, one
// request object per line, one response object per line.
//
// Requests (all fields lowercase):
//   {"op":"query","kind":"tkaq","q":[...],"tau":T,"id":"a1"}
//   {"op":"query","kind":"ekaq","q":[...],"eps":E}
//   {"op":"query","kind":"exact","q":[...]}
//   {"op":"batch","kind":"ekaq","queries":[[...],[...]],"eps":E}
//   {"op":"explain","kind":"tkaq","q":[...],"tau":T}
//   {"op":"health"}
//   {"op":"metrics"}
//   {"op":"statusz"}
//   {"op":"reload"}
// Evaluation requests (query/batch/explain) accept an optional
// "model":"<name>" field naming which registry model answers; omitted,
// the server's default model serves the request. "reload" rescans the
// model directory (registry/registry.h) — the request-path twin of
// SIGHUP.
//
// Responses always carry "ok". On success:
//   tkaq:   {"ok":true,"above":true}            (batch: "above":[...])
//   ekaq /
//   exact:  {"ok":true,"value":V}               (batch: "values":[...])
//   explain:{"ok":true,"above":B,"explain":{...}} (tkaq) or
//           {"ok":true,"value":V,"explain":{...}} (ekaq) — the answer
//           plus the evaluator's traversal profile (per-level counts,
//           bound-convergence timeline; see TraversalProfileJson).
//           kind=exact is rejected: a full scan has no traversal.
//   health: {"ok":true,"status":"serving"}      (or "draining")
//   metrics:{"ok":true,"metrics":"<Prometheus text, JSON-escaped>"}
//   statusz:{"ok":true,"statusz":{...}}         (uptime, stage latency
//           histograms, gauges, and the flight recorder's last-N
//           completed requests; see Server::StatuszJson)
//   reload: {"ok":true,"status":"reloaded"}
// On failure: {"ok":false,"error":"<code>","detail":"..."} with codes
// "bad_request", "not_found" (unknown model name), "overloaded",
// "shutting_down", "internal".
// A request "id" (string) is echoed verbatim on its response, so
// clients that pipeline can match answers to questions; responses to
// coalesced queries may complete out of request order.
//
// Determinism: numbers travel as %.17g text (see server/json.h), so a
// query round-trips bit-exactly and server answers are bit-identical
// to calling the local Engine.

#ifndef KARL_SERVER_PROTOCOL_H_
#define KARL_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/traversal_profile.h"
#include "data/matrix.h"
#include "server/json.h"
#include "util/status.h"

namespace karl::server {

/// Which aggregation query a request runs (paper §II problem forms).
enum class QueryKind { kTkaq, kEkaq, kExact };

/// Wire name of a query kind ("tkaq" / "ekaq" / "exact").
std::string_view QueryKindToString(QueryKind kind);

/// One parsed request line.
struct Request {
  enum class Op {
    kQuery,
    kBatch,
    kExplain,
    kHealth,
    kMetrics,
    kStatusz,
    kReload
  };

  Op op = Op::kHealth;
  QueryKind kind = QueryKind::kTkaq;
  /// tau for TKAQ, eps for eKAQ; unused for exact.
  double param = 0.0;
  /// Query rows: exactly one for op=query, any count for op=batch.
  data::Matrix queries;
  /// Optional client-chosen correlation token, echoed on the response.
  std::string id;
  /// Registry model this request targets ("" = the default model).
  std::string model;
};

/// Parses one request line. Validates shape and values (finite query
/// coordinates, finite tau, positive finite eps, rectangular batch);
/// the caller still checks engine-dependent constraints
/// (dimensionality, weighting type).
util::Result<Request> ParseRequest(std::string_view line);

/// Response builders; each returns one newline-terminated JSON line.
/// `id` is attached when non-empty.
std::string OkBoolResponse(const std::string& id, bool above);
std::string OkValueResponse(const std::string& id, double value);
std::string OkBoolsResponse(const std::string& id,
                            const std::vector<uint8_t>& above);
std::string OkValuesResponse(const std::string& id,
                             const std::vector<double>& values);
std::string OkStatusResponse(std::string_view status);
std::string OkMetricsResponse(std::string_view prometheus_text);
/// `statusz_object` must be a serialized JSON object (it is embedded
/// verbatim, not escaped).
std::string OkStatuszResponse(std::string_view statusz_object);
std::string ErrorResponse(const std::string& id, std::string_view code,
                          std::string_view detail);

/// Renders a traversal profile as the "explain" JSON object shared by
/// the wire protocol, `karl query --explain`, and the /explainz admin
/// page: bound kind/family, EvalStats-reconciling totals, per-level
/// visited/expanded/pruned/exact-leaf/kernel-eval counts (pruning
/// attributed to the bound family: pruned_linear for KARL's linear
/// bounds, pruned_constant for SOTA's), and the (lb, ub) convergence
/// timeline.
Json TraversalProfileJson(const core::TraversalProfile& profile);

/// Explain responses: the plain answer plus the profile object.
std::string OkExplainBoolResponse(const std::string& id, bool above,
                                  const Json& explain);
std::string OkExplainValueResponse(const std::string& id, double value,
                                   const Json& explain);

}  // namespace karl::server

#endif  // KARL_SERVER_PROTOCOL_H_
