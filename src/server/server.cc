#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <utility>

#include "core/simd/simd.h"
#include "server/json.h"
#include "telemetry/metrics.h"
#include "telemetry/rolling.h"
#include "util/build_info.h"
#include "util/check.h"
#include "util/errno.h"

namespace karl::server {
namespace {

// epoll user-data ids of the non-connection descriptors; connection ids
// start at 16 (Server::next_conn_id_).
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;
constexpr uint64_t kCompletionId = 2;

util::Status Errno(const std::string& what) {
  return util::Status::IOError(what + ": " + util::ErrnoString(errno));
}

void DrainEventFd(int fd) {
  uint64_t value = 0;
  [[maybe_unused]] const ssize_t n = ::read(fd, &value, sizeof(value));
}

void SignalEventFd(int fd) {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
}

// One completed request as a JSON object — shared by the statusz
// flight-recorder section and the /flightz NDJSON page.
Json RequestRecordJson(const telemetry::RequestRecord& r) {
  Json entry = Json::Object();
  entry.Set("req", Json::Number(static_cast<double>(r.ctx.id)));
  if (!r.client_id.empty()) entry.Set("id", Json::Str(r.client_id));
  entry.Set("kind", Json::Str(r.kind));
  entry.Set("batch", Json::Bool(r.batch));
  entry.Set("rows", Json::Number(static_cast<double>(r.rows)));
  if (!r.model.empty()) entry.Set("model", Json::Str(r.model));
  if (!r.peer.empty()) entry.Set("peer", Json::Str(r.peer));
  entry.Set("ok", Json::Bool(r.ok));
  entry.Set("read_us", Json::Number(static_cast<double>(r.ctx.read_us())));
  entry.Set("parse_us",
            Json::Number(static_cast<double>(r.ctx.parse_us())));
  entry.Set("queue_wait_us",
            Json::Number(static_cast<double>(r.ctx.queue_wait_us())));
  entry.Set("coalesce_wait_us",
            Json::Number(static_cast<double>(r.ctx.coalesce_wait_us())));
  entry.Set("eval_us", Json::Number(static_cast<double>(r.ctx.eval_us())));
  entry.Set("serialize_us",
            Json::Number(static_cast<double>(r.ctx.serialize_us())));
  entry.Set("write_us",
            Json::Number(static_cast<double>(r.ctx.write_us())));
  entry.Set("total_us",
            Json::Number(static_cast<double>(r.ctx.total_us())));
  entry.Set("kernel_evals",
            Json::Number(static_cast<double>(r.ctx.stats.kernel_evals)));
  entry.Set("nodes_expanded",
            Json::Number(static_cast<double>(r.ctx.stats.nodes_expanded)));
  entry.Set("iterations",
            Json::Number(static_cast<double>(r.ctx.stats.iterations)));
  return entry;
}

}  // namespace

// ---------------------------------------------------------------- Router

Router::Router(registry::ModelRegistry* models, Coalescer* coalescer,
               telemetry::Registry* metrics,
               telemetry::RequestTracer tracer,
               std::function<std::string()> statusz_source)
    : models_(models),
      coalescer_(coalescer),
      metrics_(metrics),
      tracer_(tracer),
      statusz_source_(std::move(statusz_source)) {
  requests_total_ = metrics->GetCounter("karl_server_requests_total");
  bad_request_total_ = metrics->GetCounter("karl_server_bad_request_total");
  overload_total_ = metrics->GetCounter("karl_server_overload_total");
}

Router::Outcome Router::Handle(uint64_t conn_id, std::string_view line,
                               bool draining,
                               telemetry::RequestContext ctx) {
  Outcome outcome;
  requests_total_->Increment();

  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    bad_request_total_->Increment();
    outcome.immediate_response =
        ErrorResponse("", "bad_request", parsed.status().message());
    return outcome;
  }
  Request request = std::move(parsed).ValueOrDie();

  switch (request.op) {
    case Request::Op::kHealth:
      outcome.immediate_response =
          OkStatusResponse(draining ? "draining" : "serving");
      return outcome;
    case Request::Op::kMetrics:
      outcome.immediate_response = OkMetricsResponse(DumpText(*metrics_));
      return outcome;
    case Request::Op::kStatusz:
      outcome.immediate_response =
          OkStatuszResponse(statusz_source_ ? statusz_source_() : "{}");
      return outcome;
    case Request::Op::kReload: {
      // The request-path twin of SIGHUP: rescan the model directory.
      // Served even while draining — it is an admin op, not new work.
      const util::Status st = models_->Reload();
      outcome.immediate_response =
          st.ok() ? OkStatusResponse("reloaded")
                  : ErrorResponse("", "internal", st.message());
      return outcome;
    }
    case Request::Op::kQuery:
    case Request::Op::kBatch:
    case Request::Op::kExplain:
      break;
  }

  if (draining) {
    outcome.immediate_response =
        ErrorResponse(request.id, "shutting_down", "server is draining");
    outcome.shed_code = "shutting_down";
    return outcome;
  }
  if (request.queries.rows() == 0) {
    // An empty batch needs no evaluation; answer in place.
    outcome.immediate_response =
        request.kind == QueryKind::kTkaq
            ? OkBoolsResponse(request.id, {})
            : OkValuesResponse(request.id, {});
    return outcome;
  }
  // Resolve (and pin) the model this request evaluates against. The
  // handle rides the work item into the coalescer, so the engine stays
  // resident for the whole evaluation even if a reload or eviction
  // hits the registry meanwhile.
  auto acquired = models_->Acquire(request.model);
  if (!acquired.ok()) {
    const util::Status& st = acquired.status();
    std::string_view code = "internal";
    if (st.code() == util::StatusCode::kNotFound) code = "not_found";
    if (st.code() == util::StatusCode::kInvalidArgument) {
      code = "bad_request";
    }
    if (code != "internal") bad_request_total_->Increment();
    outcome.immediate_response =
        ErrorResponse(request.id, code, st.message());
    return outcome;
  }
  registry::ModelHandle handle = std::move(acquired).ValueOrDie();
  const Engine& engine = handle->engine();
  const size_t dims = engine.plus_tree().points().cols();
  if (request.queries.cols() != dims) {
    bad_request_total_->Increment();
    outcome.immediate_response = ErrorResponse(
        request.id, "bad_request",
        "query dimensionality " + std::to_string(request.queries.cols()) +
            " does not match the model (" + std::to_string(dims) + ")");
    return outcome;
  }
  if (request.kind == QueryKind::kEkaq &&
      engine.weighting_type() == WeightingType::kTypeIII) {
    bad_request_total_->Increment();
    outcome.immediate_response =
        ErrorResponse(request.id, "bad_request",
                      "ekaq supports Type I/II weighting only");
    return outcome;
  }

  WorkItem item;
  item.conn_id = conn_id;
  item.request_id = std::move(request.id);
  item.kind = request.kind;
  item.param = request.param;
  item.is_batch = request.op == Request::Op::kBatch;
  item.explain = request.op == Request::Op::kExplain;
  // Carry the *resolved* model name: per-model metrics, SLO budgets,
  // and logs must attribute default-model traffic to the concrete
  // model it ran on, not to "".
  item.model = request.model.empty() ? models_->default_model()
                                     : std::move(request.model);
  item.handle = std::move(handle);
  item.queries = std::move(request.queries);
  const std::string id = item.request_id;  // Enqueue consumes the item.
  const uint64_t rows = item.queries.rows();
  ctx.admitted_us = telemetry::MonotonicMicros();
  item.ctx = ctx;  // Stamped before the hand-off; the dispatcher may
                   // pick the item up the moment Enqueue releases it.
  if (!coalescer_->Enqueue(std::move(item))) {
    overload_total_->Increment();
    outcome.immediate_response = ErrorResponse(
        id, "overloaded", "pending-query limit reached; retry later");
    outcome.shed_code = "overloaded";
    return outcome;
  }
  outcome.enqueued = true;
  if (tracer_.enabled()) {
    // Event-loop-lane slices for the admitted request, with the flow
    // start inside req/parse so Perfetto anchors the request's arrow
    // chain on this thread.
    const double req = static_cast<double>(ctx.id);
    if (ctx.read_begin_us != 0) {
      tracer_.Span("req/read", ctx.read_begin_us, ctx.framed_us,
                   {{"req", req}});
    }
    tracer_.Span("req/parse", ctx.framed_us, ctx.admitted_us,
                 {{"req", req}, {"rows", static_cast<double>(rows)}});
    tracer_.FlowBegin(
        ctx.id, ctx.framed_us + (ctx.admitted_us - ctx.framed_us) / 2);
  }
  return outcome;
}

// ---------------------------------------------------------------- Server

util::Result<std::unique_ptr<Server>> Server::Start(const Engine& engine,
                                                    ServerOptions options) {
  // Single-engine serving is registry serving with one adopted model:
  // wrap the engine in an owned registry whose only (and default)
  // entry is "default". The wire protocol is identical either way.
  registry::RegistryOptions registry_options;
  registry_options.default_model = "default";
  registry_options.metrics = options.metrics != nullptr
                                 ? options.metrics
                                 : &telemetry::GlobalRegistry();
  registry_options.logger = options.logger;
  auto owned = registry::ModelRegistry::Open("", registry_options);
  if (!owned.ok()) return owned.status();
  std::unique_ptr<registry::ModelRegistry> models =
      std::move(owned).ValueOrDie();
  models->AdoptEngine("default", &engine);
  auto started = StartWithRegistry(models.get(), std::move(options));
  if (!started.ok()) return started.status();
  std::unique_ptr<Server> server = std::move(started).ValueOrDie();
  server->owned_registry_ = std::move(models);
  return server;
}

util::Result<std::unique_ptr<Server>> Server::StartWithRegistry(
    registry::ModelRegistry* models, ServerOptions options) {
  std::unique_ptr<Server> server(new Server());
  server->models_ = models;
  server->options_ = std::move(options);
  server->registry_ = server->options_.metrics != nullptr
                          ? server->options_.metrics
                          : &telemetry::GlobalRegistry();

  if (auto st = server->Bind(); !st.ok()) return st;

  const size_t threads = server->options_.threads != 0
                             ? server->options_.threads
                             : util::ThreadPool::DefaultThreadCount();
  server->pool_ = std::make_unique<util::ThreadPool>(threads);
  server->pool_->AttachMetrics(server->registry_);

  if (server->options_.tracer != nullptr) {
    server->options_.tracer->AttachMetrics(server->registry_);
  }
  server->tracer_ = telemetry::RequestTracer(server->options_.tracer);
  server->flight_recorder_ = std::make_unique<telemetry::FlightRecorder>(
      server->options_.flight_recorder_capacity);
  server->slo_ = std::make_unique<telemetry::SloEngine>(
      server->options_.slo, server->registry_, server->options_.logger);

  Server* raw = server.get();
  server->coalescer_ = std::make_unique<Coalescer>(
      server->pool_.get(), server->options_.max_pending,
      [raw](std::vector<Completion> completions) {
        {
          const util::MutexLock lock(&raw->completion_mu_);
          for (auto& c : completions) {
            raw->completions_.push_back(std::move(c));
          }
        }
        SignalEventFd(raw->completion_fd_);
      },
      server->registry_, server->tracer_);
  server->router_ = std::make_unique<Router>(
      models, server->coalescer_.get(), server->registry_, server->tracer_,
      [raw] { return raw->StatuszJson(); });

  server->connections_total_ =
      server->registry_->GetCounter("karl_server_connections_total");
  server->dropped_slow_total_ =
      server->registry_->GetCounter("karl_server_dropped_slow_total");
  server->connections_active_ =
      server->registry_->GetGauge("karl_server_connections_active");

  telemetry::Registry* reg = server->registry_;
  server->stage_read_us_ = reg->GetRollingHistogram("karl_server_read_us");
  server->stage_parse_us_ =
      reg->GetRollingHistogram("karl_server_parse_us");
  server->stage_queue_wait_us_ =
      reg->GetRollingHistogram("karl_server_queue_wait_us");
  server->stage_coalesce_wait_us_ =
      reg->GetRollingHistogram("karl_server_coalesce_wait_us");
  server->stage_eval_us_ = reg->GetRollingHistogram("karl_server_eval_us");
  server->stage_serialize_us_ =
      reg->GetRollingHistogram("karl_server_serialize_us");
  server->stage_write_us_ =
      reg->GetRollingHistogram("karl_server_write_us");
  server->stage_total_us_ =
      reg->GetRollingHistogram("karl_server_total_us");

  // Build identity as a constant gauge, so every scrape carries the
  // version/sha/build-type labels next to the numbers they explain.
  reg->GetGauge(util::BuildInfoMetricName())->Set(1.0);

  if (server->options_.admin_port >= 0) {
    AdminServer::Options admin_options;
    admin_options.host = server->options_.admin_host;
    admin_options.port = server->options_.admin_port;
    admin_options.logger = server->options_.logger;
    server->admin_ = std::make_unique<AdminServer>(admin_options);
    server->admin_->Register(
        "/healthz", "text/plain; charset=utf-8",
        [raw](std::string_view) -> std::string {
          return raw->draining_flag_.load(std::memory_order_relaxed)
                     ? "draining\n"
                     : "serving\n";
        });
    server->admin_->Register(
        "/metrics", "text/plain; version=0.0.4; charset=utf-8",
        [raw, reg](std::string_view) {
          // Burn rates are re-evaluated lazily; refresh so the scrape
          // exports current values even for an idle model.
          raw->slo_->RefreshGauges();
          return telemetry::DumpText(*reg);
        });
    server->admin_->Register(
        "/statusz", "application/json",
        [raw](std::string_view) { return raw->StatuszJson(); });
    server->admin_->Register(
        "/varz", "application/json",
        [raw](std::string_view) { return raw->VarzJson(); });
    server->admin_->Register(
        "/flightz", "application/x-ndjson",
        [raw](std::string_view) { return raw->FlightzNdjson(); });
    server->admin_->Register(
        "/modelz", "application/json",
        [raw](std::string_view) { return raw->ModelzJson(); });
    server->admin_->Register(
        "/explainz", "application/json",
        [raw](std::string_view query) { return raw->ExplainzJson(query); });
    server->admin_->Register(
        "/sloz", "application/json",
        [raw](std::string_view) { return raw->SlozJson(); });
    if (auto st = server->admin_->Start(); !st.ok()) return st;
  }

  server->loop_thread_ = std::thread([raw] { raw->Loop(); });
  return server;
}

Server::~Server() {
  Shutdown();
  Wait();
  // Stop the admin thread before any state its handlers snapshot
  // (registry, flight recorder, explain ring) starts dying.
  admin_.reset();
  // The loop closed every connection on its way out; the force-close
  // path guarantees it even for stuck peers. Joining the coalescer
  // (destruction) and the pool after the loop keeps the sink valid for
  // any group still finishing past the drain deadline.
  coalescer_.reset();
  router_.reset();
  pool_.reset();
  for (auto& [id, conn] : connections_) ::close(conn.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (completion_fd_ >= 0) ::close(completion_fd_);
}

void Server::Shutdown() { SignalEventFd(wake_fd_); }

void Server::Wait() {
  const util::MutexLock lock(&wait_mu_);
  if (loop_thread_.joinable()) loop_thread_.join();
}

util::Status Server::Bind() {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("invalid listen address '" +
                                         options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) < 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");
  completion_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (completion_fd_ < 0) return Errno("eventfd");

  const auto add = [this](int fd, uint64_t id) -> util::Status {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Errno("epoll_ctl add");
    }
    return util::Status::OK();
  };
  KARL_RETURN_NOT_OK(add(listen_fd_, kListenerId));
  KARL_RETURN_NOT_OK(add(wake_fd_, kWakeId));
  KARL_RETURN_NOT_OK(add(completion_fd_, kCompletionId));
  return util::Status::OK();
}

void Server::Loop() {
  epoll_event events[64];
  while (true) {
    // Pure event wait while serving; a short tick while draining so the
    // deadline is enforced even with no socket activity.
    const int timeout_ms = draining_ ? 10 : 1000;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t ev = events[i].events;
      if (id == kListenerId) {
        AcceptAll();
        continue;
      }
      if (id == kWakeId) {
        DrainEventFd(wake_fd_);
        BeginShutdown();
        continue;
      }
      if (id == kCompletionId) {
        DrainEventFd(completion_fd_);
        DrainCompletions();
        continue;
      }
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // Closed earlier this wake.
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(id);
        continue;
      }
      if ((ev & EPOLLIN) != 0) OnReadable(&it->second);
      it = connections_.find(id);  // OnReadable may have closed it.
      if (it == connections_.end()) continue;
      if ((ev & EPOLLOUT) != 0) OnWritable(&it->second);
    }

    if (!draining_) continue;
    DrainCompletions();
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (const uint64_t id : ids) {
      if (auto it = connections_.find(id); it != connections_.end()) {
        MaybeFinish(&it->second);
      }
    }
    bool completions_pending;
    {
      const util::MutexLock lock(&completion_mu_);
      completions_pending = !completions_.empty();
    }
    if (connections_.empty() && coalescer_->Idle() && !completions_pending) {
      break;  // Fully drained.
    }
    if (drain_watch_.ElapsedSeconds() * 1000.0 >
        static_cast<double>(options_.drain_timeout_ms)) {
      for (const uint64_t id : ids) CloseConnection(id);
      break;  // Deadline: give up on stuck peers.
    }
  }
}

void Server::BeginShutdown() {
  if (draining_) return;
  draining_ = true;
  draining_flag_.store(true, std::memory_order_relaxed);
  drain_watch_.Restart();
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  coalescer_->BeginDrain();
}

void Server::AcceptAll() {
  while (true) {
    sockaddr_in peer_addr{};
    socklen_t peer_len = sizeof(peer_addr);
    const int fd =
        ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer_addr),
                  &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (or transient accept failure): wait for epoll.
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const uint64_t id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.id = id;
    conn.fd = fd;
    conn.events = EPOLLIN;
    char ip[INET_ADDRSTRLEN] = {0};
    if (peer_len >= sizeof(sockaddr_in) &&
        ::inet_ntop(AF_INET, &peer_addr.sin_addr, ip, sizeof(ip)) !=
            nullptr) {
      conn.peer =
          std::string(ip) + ":" + std::to_string(ntohs(peer_addr.sin_port));
    }
    connections_.emplace(id, std::move(conn));
    connections_total_->Increment();
    connections_active_->Add(1.0);
  }
}

void Server::OnReadable(Connection* conn) {
  char buf[65536];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      if (conn->read_start_us == 0) {
        conn->read_start_us = telemetry::MonotonicMicros();
      }
      conn->in.append(buf, static_cast<size_t>(n));
      // Stop slurping once an oversized unterminated line is apparent;
      // the check below answers and closes.
      if (conn->in.size() > options_.max_line_bytes &&
          conn->in.find('\n') == std::string::npos) {
        break;
      }
      continue;
    }
    if (n == 0) {
      conn->saw_eof = true;  // Peer half-closed; serve what we have.
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn->id);
    return;
  }
  ProcessLines(conn);
  if (!conn->saw_eof && conn->in.size() > options_.max_line_bytes) {
    conn->out += ErrorResponse(
        "", "bad_request",
        "request line exceeds " + std::to_string(options_.max_line_bytes) +
            " bytes");
    conn->saw_eof = true;  // Read side is done; flush, then close.
    conn->in.clear();
  }
  if (conn->saw_eof) conn->in.clear();  // Drop any partial trailing line.
  if (conn->in.empty()) conn->read_start_us = 0;
  if (!FlushOut(conn)) return;
  MaybeFinish(conn);
}

void Server::OnWritable(Connection* conn) {
  if (!FlushOut(conn)) return;
  MaybeFinish(conn);
}

void Server::ProcessLines(Connection* conn) {
  size_t pos;
  while ((pos = conn->in.find('\n')) != std::string::npos) {
    // A complete-but-oversized line gets the same treatment as an
    // unterminated one: answer bad_request, stop reading, close.
    if (pos > options_.max_line_bytes) {
      conn->out += ErrorResponse(
          "", "bad_request",
          "request line exceeds " + std::to_string(options_.max_line_bytes) +
              " bytes");
      conn->saw_eof = true;
      conn->in.clear();
      return;
    }
    std::string line = conn->in.substr(0, pos);
    conn->in.erase(0, pos + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    // Birth of the request's observability context: a fresh monotonic
    // id plus the read-stage stamps. Pipelined lines framed from one
    // read share the buffer's first-byte stamp.
    telemetry::RequestContext ctx;
    ctx.id = telemetry::NextRequestId();
    ctx.read_begin_us = conn->read_start_us;
    ctx.framed_us = telemetry::MonotonicMicros();
    Router::Outcome outcome =
        router_->Handle(conn->id, line, draining_, ctx);
    if (outcome.enqueued) {
      ++conn->in_flight;
    } else {
      if (!outcome.shed_code.empty() && options_.access_log != nullptr) {
        // Shed traffic never reaches FinishRequest, so it gets its own
        // access-log record here — every refusal stays attributable to
        // a peer.
        options_.access_log->Log(util::LogLevel::kInfo, "request",
                                 {{"req", ctx.id},
                                  {"peer", conn->peer},
                                  {"disposition", "shed"},
                                  {"shed_code", outcome.shed_code},
                                  {"ok", false}});
      }
      conn->out += outcome.immediate_response;
    }
  }
}

bool Server::FlushOut(Connection* conn) {
  while (!conn->out.empty()) {
    const ssize_t n = ::write(conn->fd, conn->out.data(), conn->out.size());
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn->id);
    return false;
  }
  UpdateInterest(conn);
  return true;
}

void Server::UpdateInterest(Connection* conn) {
  const uint32_t desired = (conn->saw_eof ? 0u : EPOLLIN) |
                           (conn->out.empty() ? 0u : EPOLLOUT);
  if (desired == conn->events) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->events = desired;
  }
}

void Server::MaybeFinish(Connection* conn) {
  if ((conn->saw_eof || draining_) && conn->in_flight == 0 &&
      conn->out.empty()) {
    CloseConnection(conn->id);
  }
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  connections_.erase(it);
  connections_active_->Add(-1.0);
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    const util::MutexLock lock(&completion_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    c.ctx.write_begin_us = telemetry::MonotonicMicros();
    auto it = connections_.find(c.conn_id);
    if (it == connections_.end()) {
      // Peer left; drop the answer but still file the record — every
      // admitted request appears in the flight recorder exactly once.
      FinishRequest(c, /*ok=*/false, "");
      continue;
    }
    Connection* conn = &it->second;
    const std::string peer = conn->peer;
    if (conn->in_flight > 0) --conn->in_flight;
    conn->out += c.response;
    bool ok = true;
    if (conn->out.size() > options_.max_write_buffer_bytes) {
      dropped_slow_total_->Increment();
      CloseConnection(conn->id);
      ok = false;
    } else if (!FlushOut(conn)) {
      ok = false;  // Write error closed the connection mid-response.
    } else {
      MaybeFinish(conn);
    }
    c.ctx.write_end_us = telemetry::MonotonicMicros();
    FinishRequest(c, ok, peer);
  }
}

void Server::FinishRequest(const Completion& c, bool ok,
                           const std::string& peer) {
  const telemetry::RequestContext& ctx = c.ctx;

  if (tracer_.enabled() && ctx.write_end_us != 0) {
    // Back on the event-loop lane: the write slice closes the request's
    // flow ("bp":"e" binds the arrow head to this slice).
    tracer_.Span("req/write", ctx.write_begin_us, ctx.write_end_us,
                 {{"req", static_cast<double>(ctx.id)},
                  {"ok", ok ? 1.0 : 0.0}});
    tracer_.FlowEnd(ctx.id, ctx.write_begin_us +
                                (ctx.write_end_us - ctx.write_begin_us) / 2);
  }

  stage_read_us_->Record(static_cast<double>(ctx.read_us()));
  stage_parse_us_->Record(static_cast<double>(ctx.parse_us()));
  stage_queue_wait_us_->Record(static_cast<double>(ctx.queue_wait_us()));
  stage_coalesce_wait_us_->Record(
      static_cast<double>(ctx.coalesce_wait_us()));
  stage_eval_us_->Record(static_cast<double>(ctx.eval_us()));
  stage_serialize_us_->Record(static_cast<double>(ctx.serialize_us()));
  stage_write_us_->Record(static_cast<double>(ctx.write_us()));
  stage_total_us_->Record(static_cast<double>(ctx.total_us()));

  // Per-model twins, recorded from the same context values as the
  // globals above so the labeled series sum exactly to the unlabeled
  // family, then the SLO observation for this model's error budgets.
  const ModelServingMetrics& serving = ServingMetricsForModel(c.model);
  if (serving.eval_us != nullptr) {
    serving.eval_us->Record(static_cast<double>(ctx.eval_us()));
    serving.total_us->Record(static_cast<double>(ctx.total_us()));
    serving.requests->Increment();
    if (!ok) serving.errors->Increment();
  }
  slo_->Observe(c.model, static_cast<double>(ctx.total_us()), ok);

  telemetry::RequestRecord record;
  record.ctx = ctx;
  record.kind = std::string(QueryKindToString(c.kind));
  record.batch = c.is_batch;
  record.rows = c.rows;
  record.model = c.model;
  record.peer = peer;
  record.client_id = c.request_id;
  record.ok = ok;
  flight_recorder_->Record(std::move(record));

  if (!c.explain_json.empty()) {
    const util::MutexLock lock(&explain_mu_);
    explain_ring_.push_back(ExplainRecord{
        ctx.id, c.request_id, std::string(QueryKindToString(c.kind)),
        c.explain_json});
    while (explain_ring_.size() > options_.explain_ring_capacity) {
      explain_ring_.pop_front();
    }
  }

  const auto stage_fields = [&ctx, &c, ok,
                             &peer](std::vector<util::LogField>* fields) {
    fields->emplace_back("req", ctx.id);
    if (!c.request_id.empty()) fields->emplace_back("id", c.request_id);
    if (!peer.empty()) fields->emplace_back("peer", peer);
    fields->emplace_back("disposition", "admitted");
    fields->emplace_back("kind", QueryKindToString(c.kind));
    if (!c.model.empty()) fields->emplace_back("model", c.model);
    fields->emplace_back("batch", c.is_batch);
    fields->emplace_back("rows", c.rows);
    fields->emplace_back("ok", ok);
    fields->emplace_back("read_us", ctx.read_us());
    fields->emplace_back("parse_us", ctx.parse_us());
    fields->emplace_back("queue_wait_us", ctx.queue_wait_us());
    fields->emplace_back("coalesce_wait_us", ctx.coalesce_wait_us());
    fields->emplace_back("eval_us", ctx.eval_us());
    fields->emplace_back("serialize_us", ctx.serialize_us());
    fields->emplace_back("write_us", ctx.write_us());
    fields->emplace_back("total_us", ctx.total_us());
    fields->emplace_back("iterations", ctx.stats.iterations);
    fields->emplace_back("nodes_expanded", ctx.stats.nodes_expanded);
    fields->emplace_back("kernel_evals", ctx.stats.kernel_evals);
  };

  if (options_.access_log != nullptr) {
    std::vector<util::LogField> fields;
    stage_fields(&fields);
    options_.access_log->Log(util::LogLevel::kInfo, "request",
                             std::move(fields));
  }
  if (options_.slow_query_us != 0 && options_.logger != nullptr &&
      ctx.total_us() >= options_.slow_query_us) {
    std::vector<util::LogField> fields;
    stage_fields(&fields);
    fields.emplace_back("threshold_us", options_.slow_query_us);
    options_.logger->Log(util::LogLevel::kWarn, "slow_query",
                         std::move(fields));
  }
}

const Server::ModelServingMetrics& Server::ServingMetricsForModel(
    const std::string& model) {
  auto it = model_serving_.find(model);
  if (it != model_serving_.end()) return it->second;
  ModelServingMetrics m;
  if (!model.empty()) {
    const telemetry::LabelSet labels{{"model", model}};
    m.eval_us =
        registry_->GetRollingHistogram("karl_serving_eval_us", labels);
    m.total_us =
        registry_->GetRollingHistogram("karl_serving_total_us", labels);
    m.requests =
        registry_->GetCounter("karl_serving_requests_total", labels);
    m.errors = registry_->GetCounter("karl_serving_errors_total", labels);
  }
  return model_serving_.emplace(model, m).first->second;
}

std::string Server::SlozJson() { return slo_->SlozJson(); }

std::string Server::StatuszJson() const {
  Json root = Json::Object();
  root.Set("uptime_s", Json::Number(uptime_.ElapsedSeconds()));
  root.Set("port", Json::Number(static_cast<double>(port_)));

  const telemetry::RegistrySnapshot snapshot = registry_->Snapshot();
  Json counters = Json::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, Json::Number(static_cast<double>(value)));
  }
  root.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, Json::Number(value));
  }
  root.Set("gauges", std::move(gauges));

  const std::pair<const char*, telemetry::RollingHistogram*> stages[] = {
      {"read", stage_read_us_},
      {"parse", stage_parse_us_},
      {"queue_wait", stage_queue_wait_us_},
      {"coalesce_wait", stage_coalesce_wait_us_},
      {"eval", stage_eval_us_},
      {"serialize", stage_serialize_us_},
      {"write", stage_write_us_},
      {"total", stage_total_us_},
  };
  Json stage_obj = Json::Object();
  for (const auto& [name, histogram] : stages) {
    const telemetry::HistogramSnapshot h = histogram->CumulativeSnapshot();
    Json entry = Json::Object();
    entry.Set("count", Json::Number(static_cast<double>(h.count)));
    entry.Set("sum_us", Json::Number(h.sum));
    entry.Set("p50_us", Json::Number(h.Quantile(0.5)));
    entry.Set("p95_us", Json::Number(h.Quantile(0.95)));
    entry.Set("p99_us", Json::Number(h.Quantile(0.99)));
    entry.Set("max_us", Json::Number(h.max));
    const telemetry::HistogramSnapshot w = histogram->WindowSnapshot();
    Json window = Json::Object();
    window.Set("count", Json::Number(static_cast<double>(w.count)));
    window.Set("p50_us", Json::Number(w.Quantile(0.5)));
    window.Set("p95_us", Json::Number(w.Quantile(0.95)));
    window.Set("p99_us", Json::Number(w.Quantile(0.99)));
    window.Set("max_us", Json::Number(w.max));
    entry.Set("window60s", std::move(window));
    stage_obj.Set(name, std::move(entry));
  }
  root.Set("stages", std::move(stage_obj));

  // Per-model registry state, so one statusz snapshot answers "which
  // model is resident at what size, and which reload produced it".
  Json model_entries = Json::Array();
  for (const registry::ModelInfo& info : models_->List()) {
    model_entries.Append(
        Json::Object()
            .Set("name", Json::Str(info.name))
            .Set("resident", Json::Bool(info.resident))
            .Set("resident_bytes",
                 Json::Number(static_cast<double>(info.resident_bytes)))
            .Set("generation",
                 Json::Number(static_cast<double>(info.generation)))
            .Set("queries",
                 Json::Number(static_cast<double>(info.queries))));
  }
  root.Set("models", std::move(model_entries));

  if (options_.tracer != nullptr) {
    root.Set("trace_dropped_events",
             Json::Number(static_cast<double>(options_.tracer->dropped())));
  }

  Json recorder = Json::Object();
  recorder.Set("capacity", Json::Number(static_cast<double>(
                               flight_recorder_->capacity())));
  recorder.Set("total_recorded",
               Json::Number(static_cast<double>(
                   flight_recorder_->total_recorded())));
  Json requests = Json::Array();
  for (const telemetry::RequestRecord& r : flight_recorder_->Snapshot()) {
    requests.Append(RequestRecordJson(r));
  }
  recorder.Set("requests", std::move(requests));
  root.Set("flight_recorder", std::move(recorder));
  return root.Dump();
}

std::string Server::VarzJson() const {
  Json root = Json::Object();
  root.Set("version", Json::Str(util::BuildVersion()));
  root.Set("git_sha", Json::Str(util::BuildGitSha()));
  root.Set("build_type", Json::Str(util::BuildType()));
  root.Set("simd_tier",
           Json::Str(std::string(core::simd::TierName(
               core::simd::ActiveTier()))));
  root.Set("uptime_s", Json::Number(uptime_.ElapsedSeconds()));
  root.Set("pid", Json::Number(static_cast<double>(::getpid())));
  root.Set("port", Json::Number(static_cast<double>(port_)));
  root.Set("admin_port", Json::Number(static_cast<double>(admin_port())));
  root.Set("draining",
           Json::Bool(draining_flag_.load(std::memory_order_relaxed)));

  Json flags = Json::Object();
  flags.Set("host", Json::Str(options_.host));
  flags.Set("threads",
            Json::Number(static_cast<double>(options_.threads)));
  flags.Set("max_pending",
            Json::Number(static_cast<double>(options_.max_pending)));
  flags.Set("max_line_bytes",
            Json::Number(static_cast<double>(options_.max_line_bytes)));
  flags.Set("max_write_buffer_bytes",
            Json::Number(
                static_cast<double>(options_.max_write_buffer_bytes)));
  flags.Set("drain_timeout_ms",
            Json::Number(static_cast<double>(options_.drain_timeout_ms)));
  flags.Set("slow_query_us",
            Json::Number(static_cast<double>(options_.slow_query_us)));
  root.Set("options", std::move(flags));

  // Registry summary; per-model detail lives on /modelz. When the
  // default model happens to be resident its shape is included — varz
  // never forces a load just to describe it.
  const std::vector<registry::ModelInfo> infos = models_->List();
  Json model = Json::Object();
  const std::string default_name = models_->default_model();
  model.Set("default", Json::Str(default_name));
  model.Set("count", Json::Number(static_cast<double>(infos.size())));
  model.Set("resident_bytes",
            Json::Number(static_cast<double>(models_->resident_bytes())));
  model.Set("memory_budget_bytes",
            Json::Number(static_cast<double>(
                models_->options().memory_budget_bytes)));
  model.Set("evictions",
            Json::Number(static_cast<double>(models_->evictions())));
  model.Set("reloads",
            Json::Number(static_cast<double>(models_->reloads())));
  Json per_model = Json::Array();
  for (const registry::ModelInfo& info : infos) {
    per_model.Append(
        Json::Object()
            .Set("name", Json::Str(info.name))
            .Set("resident_bytes",
                 Json::Number(static_cast<double>(info.resident_bytes)))
            .Set("generation",
                 Json::Number(static_cast<double>(info.generation))));
  }
  model.Set("per_model", std::move(per_model));
  if (auto handle = ResidentDefaultModel(); handle != nullptr) {
    const Engine& engine = handle->engine();
    model.Set("weighting_type",
              Json::Str(std::string(
                  WeightingTypeToString(engine.weighting_type()))));
    model.Set("bounds",
              Json::Str(std::string(
                  core::BoundKindToString(engine.options().bounds))));
    model.Set("dims", Json::Number(static_cast<double>(
                          engine.plus_tree().points().cols())));
    size_t points = engine.plus_tree().points().rows();
    if (engine.minus_tree() != nullptr) {
      points += engine.minus_tree()->points().rows();
    }
    model.Set("points", Json::Number(static_cast<double>(points)));
    model.Set("index_memory_bytes",
              Json::Number(static_cast<double>(engine.MemoryUsageBytes())));
  }
  root.Set("model", std::move(model));
  return root.Dump();
}

registry::ModelHandle Server::ResidentDefaultModel() const {
  const std::string name = models_->default_model();
  if (name.empty()) return nullptr;
  for (const registry::ModelInfo& info : models_->List()) {
    if (info.name == name && info.resident) {
      // Already resident, so Acquire is a cheap pin (no load, no
      // eviction sweep).
      auto handle = models_->Acquire(name);
      if (handle.ok()) return std::move(handle).ValueOrDie();
      return nullptr;
    }
  }
  return nullptr;
}

std::string Server::ModelzJson() const {
  Json root = Json::Object();
  root.Set("default", Json::Str(models_->default_model()));
  root.Set("model_dir", Json::Str(models_->model_dir()));
  root.Set("memory_budget_bytes",
           Json::Number(static_cast<double>(
               models_->options().memory_budget_bytes)));
  root.Set("resident_bytes",
           Json::Number(static_cast<double>(models_->resident_bytes())));
  root.Set("evictions",
           Json::Number(static_cast<double>(models_->evictions())));
  root.Set("reloads",
           Json::Number(static_cast<double>(models_->reloads())));
  Json entries = Json::Array();
  for (const registry::ModelInfo& info : models_->List()) {
    entries.Append(
        Json::Object()
            .Set("name", Json::Str(info.name))
            .Set("path", Json::Str(info.path))
            .Set("adopted", Json::Bool(info.adopted))
            .Set("resident", Json::Bool(info.resident))
            .Set("mmap_backed", Json::Bool(info.mmap_backed))
            .Set("file_bytes",
                 Json::Number(static_cast<double>(info.file_bytes)))
            .Set("resident_bytes",
                 Json::Number(static_cast<double>(info.resident_bytes)))
            .Set("coldstart_us",
                 Json::Number(static_cast<double>(info.coldstart_us)))
            .Set("queries", Json::Number(static_cast<double>(info.queries)))
            .Set("loads", Json::Number(static_cast<double>(info.loads)))
            .Set("evictions",
                 Json::Number(static_cast<double>(info.evictions)))
            .Set("generation",
                 Json::Number(static_cast<double>(info.generation))));
  }
  root.Set("models", std::move(entries));
  return root.Dump();
}

std::string Server::FlightzNdjson() const {
  std::string out;
  for (const telemetry::RequestRecord& r : flight_recorder_->Snapshot()) {
    out += RequestRecordJson(r).Dump();
    out += "\n";
  }
  return out;
}

std::string Server::ExplainzJson(std::string_view query) const {
  size_t last = options_.explain_ring_capacity;
  while (!query.empty()) {
    const size_t amp = query.find('&');
    const std::string_view kv = query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    if (kv.substr(0, 5) == "last=") {
      const std::string_view value = kv.substr(5);
      size_t parsed = 0;
      const auto [ptr, ec] = std::from_chars(
          value.data(), value.data() + value.size(), parsed);
      if (ec == std::errc() && ptr == value.data() + value.size()) {
        last = parsed;
      }
    }
  }

  std::vector<ExplainRecord> records;
  {
    const util::MutexLock lock(&explain_mu_);
    const size_t n = std::min(last, explain_ring_.size());
    records.assign(explain_ring_.end() - static_cast<ptrdiff_t>(n),
                   explain_ring_.end());
  }
  // The per-request profiles are pre-rendered JSON, so the page is
  // assembled textually (newest first) instead of re-parsed.
  std::string out =
      "{\"count\": " + std::to_string(records.size()) + ", \"explains\": [";
  bool first = true;
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    if (!first) out += ", ";
    first = false;
    out += "{\"req\": " + std::to_string(it->req);
    if (!it->client_id.empty()) {
      out += ", \"id\": " + Json::Str(it->client_id).Dump();
    }
    out += ", \"kind\": \"" + it->kind + "\"";
    out += ", \"explain\": " + it->json + "}";
  }
  out += "]}";
  return out;
}

}  // namespace karl::server
