#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "server/json.h"
#include "telemetry/metrics.h"
#include "util/check.h"
#include "util/errno.h"

namespace karl::server {
namespace {

// epoll user-data ids of the non-connection descriptors; connection ids
// start at 16 (Server::next_conn_id_).
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;
constexpr uint64_t kCompletionId = 2;

util::Status Errno(const std::string& what) {
  return util::Status::IOError(what + ": " + util::ErrnoString(errno));
}

void DrainEventFd(int fd) {
  uint64_t value = 0;
  [[maybe_unused]] const ssize_t n = ::read(fd, &value, sizeof(value));
}

void SignalEventFd(int fd) {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
}

}  // namespace

// ---------------------------------------------------------------- Router

Router::Router(const Engine& engine, Coalescer* coalescer,
               telemetry::Registry* metrics,
               telemetry::RequestTracer tracer,
               std::function<std::string()> statusz_source)
    : engine_(engine),
      coalescer_(coalescer),
      metrics_(metrics),
      dims_(engine.plus_tree().points().cols()),
      tracer_(tracer),
      statusz_source_(std::move(statusz_source)) {
  requests_total_ = metrics->GetCounter("karl_server_requests_total");
  bad_request_total_ = metrics->GetCounter("karl_server_bad_request_total");
  overload_total_ = metrics->GetCounter("karl_server_overload_total");
}

Router::Outcome Router::Handle(uint64_t conn_id, std::string_view line,
                               bool draining,
                               telemetry::RequestContext ctx) {
  Outcome outcome;
  requests_total_->Increment();

  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    bad_request_total_->Increment();
    outcome.immediate_response =
        ErrorResponse("", "bad_request", parsed.status().message());
    return outcome;
  }
  Request request = std::move(parsed).ValueOrDie();

  switch (request.op) {
    case Request::Op::kHealth:
      outcome.immediate_response =
          OkStatusResponse(draining ? "draining" : "serving");
      return outcome;
    case Request::Op::kMetrics:
      outcome.immediate_response = OkMetricsResponse(DumpText(*metrics_));
      return outcome;
    case Request::Op::kStatusz:
      outcome.immediate_response =
          OkStatuszResponse(statusz_source_ ? statusz_source_() : "{}");
      return outcome;
    case Request::Op::kQuery:
    case Request::Op::kBatch:
      break;
  }

  if (draining) {
    outcome.immediate_response =
        ErrorResponse(request.id, "shutting_down", "server is draining");
    return outcome;
  }
  if (request.queries.rows() == 0) {
    // An empty batch needs no evaluation; answer in place.
    outcome.immediate_response =
        request.kind == QueryKind::kTkaq
            ? OkBoolsResponse(request.id, {})
            : OkValuesResponse(request.id, {});
    return outcome;
  }
  if (request.queries.cols() != dims_) {
    bad_request_total_->Increment();
    outcome.immediate_response = ErrorResponse(
        request.id, "bad_request",
        "query dimensionality " + std::to_string(request.queries.cols()) +
            " does not match the model (" + std::to_string(dims_) + ")");
    return outcome;
  }
  if (request.kind == QueryKind::kEkaq &&
      engine_.weighting_type() == WeightingType::kTypeIII) {
    bad_request_total_->Increment();
    outcome.immediate_response =
        ErrorResponse(request.id, "bad_request",
                      "ekaq supports Type I/II weighting only");
    return outcome;
  }

  WorkItem item;
  item.conn_id = conn_id;
  item.request_id = std::move(request.id);
  item.kind = request.kind;
  item.param = request.param;
  item.is_batch = request.op == Request::Op::kBatch;
  item.queries = std::move(request.queries);
  const std::string id = item.request_id;  // Enqueue consumes the item.
  const uint64_t rows = item.queries.rows();
  ctx.admitted_us = telemetry::MonotonicMicros();
  item.ctx = ctx;  // Stamped before the hand-off; the dispatcher may
                   // pick the item up the moment Enqueue releases it.
  if (!coalescer_->Enqueue(std::move(item))) {
    overload_total_->Increment();
    outcome.immediate_response = ErrorResponse(
        id, "overloaded", "pending-query limit reached; retry later");
    return outcome;
  }
  outcome.enqueued = true;
  if (tracer_.enabled()) {
    // Event-loop-lane slices for the admitted request, with the flow
    // start inside req/parse so Perfetto anchors the request's arrow
    // chain on this thread.
    const double req = static_cast<double>(ctx.id);
    if (ctx.read_begin_us != 0) {
      tracer_.Span("req/read", ctx.read_begin_us, ctx.framed_us,
                   {{"req", req}});
    }
    tracer_.Span("req/parse", ctx.framed_us, ctx.admitted_us,
                 {{"req", req}, {"rows", static_cast<double>(rows)}});
    tracer_.FlowBegin(
        ctx.id, ctx.framed_us + (ctx.admitted_us - ctx.framed_us) / 2);
  }
  return outcome;
}

// ---------------------------------------------------------------- Server

util::Result<std::unique_ptr<Server>> Server::Start(const Engine& engine,
                                                    ServerOptions options) {
  std::unique_ptr<Server> server(new Server());
  server->engine_ = &engine;
  server->options_ = std::move(options);
  server->registry_ = server->options_.metrics != nullptr
                          ? server->options_.metrics
                          : &telemetry::GlobalRegistry();

  if (auto st = server->Bind(); !st.ok()) return st;

  const size_t threads = server->options_.threads != 0
                             ? server->options_.threads
                             : util::ThreadPool::DefaultThreadCount();
  server->pool_ = std::make_unique<util::ThreadPool>(threads);
  server->pool_->AttachMetrics(server->registry_);

  if (server->options_.tracer != nullptr) {
    server->options_.tracer->AttachMetrics(server->registry_);
  }
  server->tracer_ = telemetry::RequestTracer(server->options_.tracer);
  server->flight_recorder_ = std::make_unique<telemetry::FlightRecorder>(
      server->options_.flight_recorder_capacity);

  Server* raw = server.get();
  server->coalescer_ = std::make_unique<Coalescer>(
      engine, server->pool_.get(), server->options_.max_pending,
      [raw](std::vector<Completion> completions) {
        {
          const util::MutexLock lock(&raw->completion_mu_);
          for (auto& c : completions) {
            raw->completions_.push_back(std::move(c));
          }
        }
        SignalEventFd(raw->completion_fd_);
      },
      server->registry_, server->tracer_);
  server->router_ = std::make_unique<Router>(
      engine, server->coalescer_.get(), server->registry_, server->tracer_,
      [raw] { return raw->StatuszJson(); });

  server->connections_total_ =
      server->registry_->GetCounter("karl_server_connections_total");
  server->dropped_slow_total_ =
      server->registry_->GetCounter("karl_server_dropped_slow_total");
  server->connections_active_ =
      server->registry_->GetGauge("karl_server_connections_active");

  telemetry::Registry* reg = server->registry_;
  server->stage_read_us_ = reg->GetHistogram("karl_server_read_us");
  server->stage_parse_us_ = reg->GetHistogram("karl_server_parse_us");
  server->stage_queue_wait_us_ =
      reg->GetHistogram("karl_server_queue_wait_us");
  server->stage_coalesce_wait_us_ =
      reg->GetHistogram("karl_server_coalesce_wait_us");
  server->stage_eval_us_ = reg->GetHistogram("karl_server_eval_us");
  server->stage_serialize_us_ =
      reg->GetHistogram("karl_server_serialize_us");
  server->stage_write_us_ = reg->GetHistogram("karl_server_write_us");
  server->stage_total_us_ = reg->GetHistogram("karl_server_total_us");

  server->loop_thread_ = std::thread([raw] { raw->Loop(); });
  return server;
}

Server::~Server() {
  Shutdown();
  Wait();
  // The loop closed every connection on its way out; the force-close
  // path guarantees it even for stuck peers. Joining the coalescer
  // (destruction) and the pool after the loop keeps the sink valid for
  // any group still finishing past the drain deadline.
  coalescer_.reset();
  router_.reset();
  pool_.reset();
  for (auto& [id, conn] : connections_) ::close(conn.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (completion_fd_ >= 0) ::close(completion_fd_);
}

void Server::Shutdown() { SignalEventFd(wake_fd_); }

void Server::Wait() {
  const util::MutexLock lock(&wait_mu_);
  if (loop_thread_.joinable()) loop_thread_.join();
}

util::Status Server::Bind() {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("invalid listen address '" +
                                         options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) < 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");
  completion_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (completion_fd_ < 0) return Errno("eventfd");

  const auto add = [this](int fd, uint64_t id) -> util::Status {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Errno("epoll_ctl add");
    }
    return util::Status::OK();
  };
  KARL_RETURN_NOT_OK(add(listen_fd_, kListenerId));
  KARL_RETURN_NOT_OK(add(wake_fd_, kWakeId));
  KARL_RETURN_NOT_OK(add(completion_fd_, kCompletionId));
  return util::Status::OK();
}

void Server::Loop() {
  epoll_event events[64];
  while (true) {
    // Pure event wait while serving; a short tick while draining so the
    // deadline is enforced even with no socket activity.
    const int timeout_ms = draining_ ? 10 : 1000;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t ev = events[i].events;
      if (id == kListenerId) {
        AcceptAll();
        continue;
      }
      if (id == kWakeId) {
        DrainEventFd(wake_fd_);
        BeginShutdown();
        continue;
      }
      if (id == kCompletionId) {
        DrainEventFd(completion_fd_);
        DrainCompletions();
        continue;
      }
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // Closed earlier this wake.
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(id);
        continue;
      }
      if ((ev & EPOLLIN) != 0) OnReadable(&it->second);
      it = connections_.find(id);  // OnReadable may have closed it.
      if (it == connections_.end()) continue;
      if ((ev & EPOLLOUT) != 0) OnWritable(&it->second);
    }

    if (!draining_) continue;
    DrainCompletions();
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (const uint64_t id : ids) {
      if (auto it = connections_.find(id); it != connections_.end()) {
        MaybeFinish(&it->second);
      }
    }
    bool completions_pending;
    {
      const util::MutexLock lock(&completion_mu_);
      completions_pending = !completions_.empty();
    }
    if (connections_.empty() && coalescer_->Idle() && !completions_pending) {
      break;  // Fully drained.
    }
    if (drain_watch_.ElapsedSeconds() * 1000.0 >
        static_cast<double>(options_.drain_timeout_ms)) {
      for (const uint64_t id : ids) CloseConnection(id);
      break;  // Deadline: give up on stuck peers.
    }
  }
}

void Server::BeginShutdown() {
  if (draining_) return;
  draining_ = true;
  drain_watch_.Restart();
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  coalescer_->BeginDrain();
}

void Server::AcceptAll() {
  while (true) {
    sockaddr_in peer_addr{};
    socklen_t peer_len = sizeof(peer_addr);
    const int fd =
        ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer_addr),
                  &peer_len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (or transient accept failure): wait for epoll.
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const uint64_t id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.id = id;
    conn.fd = fd;
    conn.events = EPOLLIN;
    char ip[INET_ADDRSTRLEN] = {0};
    if (peer_len >= sizeof(sockaddr_in) &&
        ::inet_ntop(AF_INET, &peer_addr.sin_addr, ip, sizeof(ip)) !=
            nullptr) {
      conn.peer =
          std::string(ip) + ":" + std::to_string(ntohs(peer_addr.sin_port));
    }
    connections_.emplace(id, std::move(conn));
    connections_total_->Increment();
    connections_active_->Add(1.0);
  }
}

void Server::OnReadable(Connection* conn) {
  char buf[65536];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      if (conn->read_start_us == 0) {
        conn->read_start_us = telemetry::MonotonicMicros();
      }
      conn->in.append(buf, static_cast<size_t>(n));
      // Stop slurping once an oversized unterminated line is apparent;
      // the check below answers and closes.
      if (conn->in.size() > options_.max_line_bytes &&
          conn->in.find('\n') == std::string::npos) {
        break;
      }
      continue;
    }
    if (n == 0) {
      conn->saw_eof = true;  // Peer half-closed; serve what we have.
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn->id);
    return;
  }
  ProcessLines(conn);
  if (!conn->saw_eof && conn->in.size() > options_.max_line_bytes) {
    conn->out += ErrorResponse(
        "", "bad_request",
        "request line exceeds " + std::to_string(options_.max_line_bytes) +
            " bytes");
    conn->saw_eof = true;  // Read side is done; flush, then close.
    conn->in.clear();
  }
  if (conn->saw_eof) conn->in.clear();  // Drop any partial trailing line.
  if (conn->in.empty()) conn->read_start_us = 0;
  if (!FlushOut(conn)) return;
  MaybeFinish(conn);
}

void Server::OnWritable(Connection* conn) {
  if (!FlushOut(conn)) return;
  MaybeFinish(conn);
}

void Server::ProcessLines(Connection* conn) {
  size_t pos;
  while ((pos = conn->in.find('\n')) != std::string::npos) {
    // A complete-but-oversized line gets the same treatment as an
    // unterminated one: answer bad_request, stop reading, close.
    if (pos > options_.max_line_bytes) {
      conn->out += ErrorResponse(
          "", "bad_request",
          "request line exceeds " + std::to_string(options_.max_line_bytes) +
              " bytes");
      conn->saw_eof = true;
      conn->in.clear();
      return;
    }
    std::string line = conn->in.substr(0, pos);
    conn->in.erase(0, pos + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    // Birth of the request's observability context: a fresh monotonic
    // id plus the read-stage stamps. Pipelined lines framed from one
    // read share the buffer's first-byte stamp.
    telemetry::RequestContext ctx;
    ctx.id = telemetry::NextRequestId();
    ctx.read_begin_us = conn->read_start_us;
    ctx.framed_us = telemetry::MonotonicMicros();
    Router::Outcome outcome =
        router_->Handle(conn->id, line, draining_, ctx);
    if (outcome.enqueued) {
      ++conn->in_flight;
    } else {
      conn->out += outcome.immediate_response;
    }
  }
}

bool Server::FlushOut(Connection* conn) {
  while (!conn->out.empty()) {
    const ssize_t n = ::write(conn->fd, conn->out.data(), conn->out.size());
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn->id);
    return false;
  }
  UpdateInterest(conn);
  return true;
}

void Server::UpdateInterest(Connection* conn) {
  const uint32_t desired = (conn->saw_eof ? 0u : EPOLLIN) |
                           (conn->out.empty() ? 0u : EPOLLOUT);
  if (desired == conn->events) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->events = desired;
  }
}

void Server::MaybeFinish(Connection* conn) {
  if ((conn->saw_eof || draining_) && conn->in_flight == 0 &&
      conn->out.empty()) {
    CloseConnection(conn->id);
  }
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  connections_.erase(it);
  connections_active_->Add(-1.0);
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    const util::MutexLock lock(&completion_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    c.ctx.write_begin_us = telemetry::MonotonicMicros();
    auto it = connections_.find(c.conn_id);
    if (it == connections_.end()) {
      // Peer left; drop the answer but still file the record — every
      // admitted request appears in the flight recorder exactly once.
      FinishRequest(c, /*ok=*/false, "");
      continue;
    }
    Connection* conn = &it->second;
    const std::string peer = conn->peer;
    if (conn->in_flight > 0) --conn->in_flight;
    conn->out += c.response;
    bool ok = true;
    if (conn->out.size() > options_.max_write_buffer_bytes) {
      dropped_slow_total_->Increment();
      CloseConnection(conn->id);
      ok = false;
    } else if (!FlushOut(conn)) {
      ok = false;  // Write error closed the connection mid-response.
    } else {
      MaybeFinish(conn);
    }
    c.ctx.write_end_us = telemetry::MonotonicMicros();
    FinishRequest(c, ok, peer);
  }
}

void Server::FinishRequest(const Completion& c, bool ok,
                           const std::string& peer) {
  const telemetry::RequestContext& ctx = c.ctx;

  if (tracer_.enabled() && ctx.write_end_us != 0) {
    // Back on the event-loop lane: the write slice closes the request's
    // flow ("bp":"e" binds the arrow head to this slice).
    tracer_.Span("req/write", ctx.write_begin_us, ctx.write_end_us,
                 {{"req", static_cast<double>(ctx.id)},
                  {"ok", ok ? 1.0 : 0.0}});
    tracer_.FlowEnd(ctx.id, ctx.write_begin_us +
                                (ctx.write_end_us - ctx.write_begin_us) / 2);
  }

  stage_read_us_->Record(static_cast<double>(ctx.read_us()));
  stage_parse_us_->Record(static_cast<double>(ctx.parse_us()));
  stage_queue_wait_us_->Record(static_cast<double>(ctx.queue_wait_us()));
  stage_coalesce_wait_us_->Record(
      static_cast<double>(ctx.coalesce_wait_us()));
  stage_eval_us_->Record(static_cast<double>(ctx.eval_us()));
  stage_serialize_us_->Record(static_cast<double>(ctx.serialize_us()));
  stage_write_us_->Record(static_cast<double>(ctx.write_us()));
  stage_total_us_->Record(static_cast<double>(ctx.total_us()));

  telemetry::RequestRecord record;
  record.ctx = ctx;
  record.kind = std::string(QueryKindToString(c.kind));
  record.batch = c.is_batch;
  record.rows = c.rows;
  record.peer = peer;
  record.client_id = c.request_id;
  record.ok = ok;
  flight_recorder_->Record(std::move(record));

  const auto stage_fields = [&ctx, &c, ok,
                             &peer](std::vector<util::LogField>* fields) {
    fields->emplace_back("req", ctx.id);
    if (!c.request_id.empty()) fields->emplace_back("id", c.request_id);
    if (!peer.empty()) fields->emplace_back("peer", peer);
    fields->emplace_back("kind", QueryKindToString(c.kind));
    fields->emplace_back("batch", c.is_batch);
    fields->emplace_back("rows", c.rows);
    fields->emplace_back("ok", ok);
    fields->emplace_back("read_us", ctx.read_us());
    fields->emplace_back("parse_us", ctx.parse_us());
    fields->emplace_back("queue_wait_us", ctx.queue_wait_us());
    fields->emplace_back("coalesce_wait_us", ctx.coalesce_wait_us());
    fields->emplace_back("eval_us", ctx.eval_us());
    fields->emplace_back("serialize_us", ctx.serialize_us());
    fields->emplace_back("write_us", ctx.write_us());
    fields->emplace_back("total_us", ctx.total_us());
    fields->emplace_back("iterations", ctx.stats.iterations);
    fields->emplace_back("nodes_expanded", ctx.stats.nodes_expanded);
    fields->emplace_back("kernel_evals", ctx.stats.kernel_evals);
  };

  if (options_.access_log != nullptr) {
    std::vector<util::LogField> fields;
    stage_fields(&fields);
    options_.access_log->Log(util::LogLevel::kInfo, "request",
                             std::move(fields));
  }
  if (options_.slow_query_us != 0 && options_.logger != nullptr &&
      ctx.total_us() >= options_.slow_query_us) {
    std::vector<util::LogField> fields;
    stage_fields(&fields);
    fields.emplace_back("threshold_us", options_.slow_query_us);
    options_.logger->Log(util::LogLevel::kWarn, "slow_query",
                         std::move(fields));
  }
}

std::string Server::StatuszJson() const {
  Json root = Json::Object();
  root.Set("uptime_s", Json::Number(uptime_.ElapsedSeconds()));
  root.Set("port", Json::Number(static_cast<double>(port_)));

  const telemetry::RegistrySnapshot snapshot = registry_->Snapshot();
  Json counters = Json::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, Json::Number(static_cast<double>(value)));
  }
  root.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, Json::Number(value));
  }
  root.Set("gauges", std::move(gauges));

  const std::pair<const char*, telemetry::Histogram*> stages[] = {
      {"read", stage_read_us_},
      {"parse", stage_parse_us_},
      {"queue_wait", stage_queue_wait_us_},
      {"coalesce_wait", stage_coalesce_wait_us_},
      {"eval", stage_eval_us_},
      {"serialize", stage_serialize_us_},
      {"write", stage_write_us_},
      {"total", stage_total_us_},
  };
  Json stage_obj = Json::Object();
  for (const auto& [name, histogram] : stages) {
    const telemetry::HistogramSnapshot h = histogram->Snapshot();
    Json entry = Json::Object();
    entry.Set("count", Json::Number(static_cast<double>(h.count)));
    entry.Set("sum_us", Json::Number(h.sum));
    entry.Set("p50_us", Json::Number(h.Quantile(0.5)));
    entry.Set("p95_us", Json::Number(h.Quantile(0.95)));
    entry.Set("p99_us", Json::Number(h.Quantile(0.99)));
    entry.Set("max_us", Json::Number(h.max));
    stage_obj.Set(name, std::move(entry));
  }
  root.Set("stages", std::move(stage_obj));

  if (options_.tracer != nullptr) {
    root.Set("trace_dropped_events",
             Json::Number(static_cast<double>(options_.tracer->dropped())));
  }

  Json recorder = Json::Object();
  recorder.Set("capacity", Json::Number(static_cast<double>(
                               flight_recorder_->capacity())));
  recorder.Set("total_recorded",
               Json::Number(static_cast<double>(
                   flight_recorder_->total_recorded())));
  Json requests = Json::Array();
  for (const telemetry::RequestRecord& r : flight_recorder_->Snapshot()) {
    Json entry = Json::Object();
    entry.Set("req", Json::Number(static_cast<double>(r.ctx.id)));
    if (!r.client_id.empty()) entry.Set("id", Json::Str(r.client_id));
    entry.Set("kind", Json::Str(r.kind));
    entry.Set("batch", Json::Bool(r.batch));
    entry.Set("rows", Json::Number(static_cast<double>(r.rows)));
    if (!r.peer.empty()) entry.Set("peer", Json::Str(r.peer));
    entry.Set("ok", Json::Bool(r.ok));
    entry.Set("read_us",
              Json::Number(static_cast<double>(r.ctx.read_us())));
    entry.Set("parse_us",
              Json::Number(static_cast<double>(r.ctx.parse_us())));
    entry.Set("queue_wait_us",
              Json::Number(static_cast<double>(r.ctx.queue_wait_us())));
    entry.Set("coalesce_wait_us",
              Json::Number(static_cast<double>(r.ctx.coalesce_wait_us())));
    entry.Set("eval_us",
              Json::Number(static_cast<double>(r.ctx.eval_us())));
    entry.Set("serialize_us",
              Json::Number(static_cast<double>(r.ctx.serialize_us())));
    entry.Set("write_us",
              Json::Number(static_cast<double>(r.ctx.write_us())));
    entry.Set("total_us",
              Json::Number(static_cast<double>(r.ctx.total_us())));
    entry.Set("kernel_evals",
              Json::Number(static_cast<double>(r.ctx.stats.kernel_evals)));
    entry.Set("nodes_expanded",
              Json::Number(static_cast<double>(r.ctx.stats.nodes_expanded)));
    entry.Set("iterations",
              Json::Number(static_cast<double>(r.ctx.stats.iterations)));
    requests.Append(std::move(entry));
  }
  recorder.Set("requests", std::move(requests));
  root.Set("flight_recorder", std::move(recorder));
  return root.Dump();
}

}  // namespace karl::server
