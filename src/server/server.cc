#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "telemetry/metrics.h"
#include "util/check.h"

namespace karl::server {
namespace {

// epoll user-data ids of the non-connection descriptors; connection ids
// start at 16 (Server::next_conn_id_).
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;
constexpr uint64_t kCompletionId = 2;

util::Status Errno(const std::string& what) {
  return util::Status::IOError(what + ": " + std::strerror(errno));
}

void DrainEventFd(int fd) {
  uint64_t value = 0;
  [[maybe_unused]] const ssize_t n = ::read(fd, &value, sizeof(value));
}

void SignalEventFd(int fd) {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
}

}  // namespace

// ---------------------------------------------------------------- Router

Router::Router(const Engine& engine, Coalescer* coalescer,
               telemetry::Registry* metrics)
    : engine_(engine),
      coalescer_(coalescer),
      metrics_(metrics),
      dims_(engine.plus_tree().points().cols()) {
  requests_total_ = metrics->GetCounter("karl_server_requests_total");
  bad_request_total_ = metrics->GetCounter("karl_server_bad_request_total");
  overload_total_ = metrics->GetCounter("karl_server_overload_total");
}

Router::Outcome Router::Handle(uint64_t conn_id, std::string_view line,
                               bool draining) {
  Outcome outcome;
  requests_total_->Increment();

  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    bad_request_total_->Increment();
    outcome.immediate_response =
        ErrorResponse("", "bad_request", parsed.status().message());
    return outcome;
  }
  Request request = std::move(parsed).ValueOrDie();

  switch (request.op) {
    case Request::Op::kHealth:
      outcome.immediate_response =
          OkStatusResponse(draining ? "draining" : "serving");
      return outcome;
    case Request::Op::kMetrics:
      outcome.immediate_response = OkMetricsResponse(DumpText(*metrics_));
      return outcome;
    case Request::Op::kQuery:
    case Request::Op::kBatch:
      break;
  }

  if (draining) {
    outcome.immediate_response =
        ErrorResponse(request.id, "shutting_down", "server is draining");
    return outcome;
  }
  if (request.queries.rows() == 0) {
    // An empty batch needs no evaluation; answer in place.
    outcome.immediate_response =
        request.kind == QueryKind::kTkaq
            ? OkBoolsResponse(request.id, {})
            : OkValuesResponse(request.id, {});
    return outcome;
  }
  if (request.queries.cols() != dims_) {
    bad_request_total_->Increment();
    outcome.immediate_response = ErrorResponse(
        request.id, "bad_request",
        "query dimensionality " + std::to_string(request.queries.cols()) +
            " does not match the model (" + std::to_string(dims_) + ")");
    return outcome;
  }
  if (request.kind == QueryKind::kEkaq &&
      engine_.weighting_type() == WeightingType::kTypeIII) {
    bad_request_total_->Increment();
    outcome.immediate_response =
        ErrorResponse(request.id, "bad_request",
                      "ekaq supports Type I/II weighting only");
    return outcome;
  }

  WorkItem item;
  item.conn_id = conn_id;
  item.request_id = std::move(request.id);
  item.kind = request.kind;
  item.param = request.param;
  item.is_batch = request.op == Request::Op::kBatch;
  item.queries = std::move(request.queries);
  const std::string id = item.request_id;  // Enqueue consumes the item.
  if (!coalescer_->Enqueue(std::move(item))) {
    overload_total_->Increment();
    outcome.immediate_response = ErrorResponse(
        id, "overloaded", "pending-query limit reached; retry later");
    return outcome;
  }
  outcome.enqueued = true;
  return outcome;
}

// ---------------------------------------------------------------- Server

util::Result<std::unique_ptr<Server>> Server::Start(const Engine& engine,
                                                    ServerOptions options) {
  std::unique_ptr<Server> server(new Server());
  server->engine_ = &engine;
  server->options_ = std::move(options);
  server->registry_ = server->options_.metrics != nullptr
                          ? server->options_.metrics
                          : &telemetry::GlobalRegistry();

  if (auto st = server->Bind(); !st.ok()) return st;

  const size_t threads = server->options_.threads != 0
                             ? server->options_.threads
                             : util::ThreadPool::DefaultThreadCount();
  server->pool_ = std::make_unique<util::ThreadPool>(threads);
  server->pool_->AttachMetrics(server->registry_);

  Server* raw = server.get();
  server->coalescer_ = std::make_unique<Coalescer>(
      engine, server->pool_.get(), server->options_.max_pending,
      [raw](std::vector<Completion> completions) {
        {
          const std::lock_guard<std::mutex> lock(raw->completion_mu_);
          for (auto& c : completions) {
            raw->completions_.push_back(std::move(c));
          }
        }
        SignalEventFd(raw->completion_fd_);
      },
      server->registry_);
  server->router_ = std::make_unique<Router>(engine, server->coalescer_.get(),
                                             server->registry_);

  server->connections_total_ =
      server->registry_->GetCounter("karl_server_connections_total");
  server->dropped_slow_total_ =
      server->registry_->GetCounter("karl_server_dropped_slow_total");
  server->connections_active_ =
      server->registry_->GetGauge("karl_server_connections_active");

  server->loop_thread_ = std::thread([raw] { raw->Loop(); });
  return server;
}

Server::~Server() {
  Shutdown();
  Wait();
  // The loop closed every connection on its way out; the force-close
  // path guarantees it even for stuck peers. Joining the coalescer
  // (destruction) and the pool after the loop keeps the sink valid for
  // any group still finishing past the drain deadline.
  coalescer_.reset();
  router_.reset();
  pool_.reset();
  for (auto& [id, conn] : connections_) ::close(conn.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (completion_fd_ >= 0) ::close(completion_fd_);
}

void Server::Shutdown() { SignalEventFd(wake_fd_); }

void Server::Wait() {
  const std::lock_guard<std::mutex> lock(wait_mu_);
  if (loop_thread_.joinable()) loop_thread_.join();
}

util::Status Server::Bind() {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("invalid listen address '" +
                                         options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) < 0) return Errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");
  completion_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (completion_fd_ < 0) return Errno("eventfd");

  const auto add = [this](int fd, uint64_t id) -> util::Status {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Errno("epoll_ctl add");
    }
    return util::Status::OK();
  };
  KARL_RETURN_NOT_OK(add(listen_fd_, kListenerId));
  KARL_RETURN_NOT_OK(add(wake_fd_, kWakeId));
  KARL_RETURN_NOT_OK(add(completion_fd_, kCompletionId));
  return util::Status::OK();
}

void Server::Loop() {
  epoll_event events[64];
  while (true) {
    // Pure event wait while serving; a short tick while draining so the
    // deadline is enforced even with no socket activity.
    const int timeout_ms = draining_ ? 10 : 1000;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      const uint32_t ev = events[i].events;
      if (id == kListenerId) {
        AcceptAll();
        continue;
      }
      if (id == kWakeId) {
        DrainEventFd(wake_fd_);
        BeginShutdown();
        continue;
      }
      if (id == kCompletionId) {
        DrainEventFd(completion_fd_);
        DrainCompletions();
        continue;
      }
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // Closed earlier this wake.
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(id);
        continue;
      }
      if ((ev & EPOLLIN) != 0) OnReadable(&it->second);
      it = connections_.find(id);  // OnReadable may have closed it.
      if (it == connections_.end()) continue;
      if ((ev & EPOLLOUT) != 0) OnWritable(&it->second);
    }

    if (!draining_) continue;
    DrainCompletions();
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (const uint64_t id : ids) {
      if (auto it = connections_.find(id); it != connections_.end()) {
        MaybeFinish(&it->second);
      }
    }
    bool completions_pending;
    {
      const std::lock_guard<std::mutex> lock(completion_mu_);
      completions_pending = !completions_.empty();
    }
    if (connections_.empty() && coalescer_->Idle() && !completions_pending) {
      break;  // Fully drained.
    }
    if (drain_watch_.ElapsedSeconds() * 1000.0 >
        static_cast<double>(options_.drain_timeout_ms)) {
      for (const uint64_t id : ids) CloseConnection(id);
      break;  // Deadline: give up on stuck peers.
    }
  }
}

void Server::BeginShutdown() {
  if (draining_) return;
  draining_ = true;
  drain_watch_.Restart();
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  coalescer_->BeginDrain();
}

void Server::AcceptAll() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (or transient accept failure): wait for epoll.
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const uint64_t id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.id = id;
    conn.fd = fd;
    conn.events = EPOLLIN;
    connections_.emplace(id, std::move(conn));
    connections_total_->Increment();
    connections_active_->Add(1.0);
  }
}

void Server::OnReadable(Connection* conn) {
  char buf[65536];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      // Stop slurping once an oversized unterminated line is apparent;
      // the check below answers and closes.
      if (conn->in.size() > options_.max_line_bytes &&
          conn->in.find('\n') == std::string::npos) {
        break;
      }
      continue;
    }
    if (n == 0) {
      conn->saw_eof = true;  // Peer half-closed; serve what we have.
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn->id);
    return;
  }
  ProcessLines(conn);
  if (!conn->saw_eof && conn->in.size() > options_.max_line_bytes) {
    conn->out += ErrorResponse(
        "", "bad_request",
        "request line exceeds " + std::to_string(options_.max_line_bytes) +
            " bytes");
    conn->saw_eof = true;  // Read side is done; flush, then close.
    conn->in.clear();
  }
  if (conn->saw_eof) conn->in.clear();  // Drop any partial trailing line.
  if (!FlushOut(conn)) return;
  MaybeFinish(conn);
}

void Server::OnWritable(Connection* conn) {
  if (!FlushOut(conn)) return;
  MaybeFinish(conn);
}

void Server::ProcessLines(Connection* conn) {
  size_t pos;
  while ((pos = conn->in.find('\n')) != std::string::npos) {
    // A complete-but-oversized line gets the same treatment as an
    // unterminated one: answer bad_request, stop reading, close.
    if (pos > options_.max_line_bytes) {
      conn->out += ErrorResponse(
          "", "bad_request",
          "request line exceeds " + std::to_string(options_.max_line_bytes) +
              " bytes");
      conn->saw_eof = true;
      conn->in.clear();
      return;
    }
    std::string line = conn->in.substr(0, pos);
    conn->in.erase(0, pos + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    Router::Outcome outcome = router_->Handle(conn->id, line, draining_);
    if (outcome.enqueued) {
      ++conn->in_flight;
    } else {
      conn->out += outcome.immediate_response;
    }
  }
}

bool Server::FlushOut(Connection* conn) {
  while (!conn->out.empty()) {
    const ssize_t n = ::write(conn->fd, conn->out.data(), conn->out.size());
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn->id);
    return false;
  }
  UpdateInterest(conn);
  return true;
}

void Server::UpdateInterest(Connection* conn) {
  const uint32_t desired = (conn->saw_eof ? 0u : EPOLLIN) |
                           (conn->out.empty() ? 0u : EPOLLOUT);
  if (desired == conn->events) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->events = desired;
  }
}

void Server::MaybeFinish(Connection* conn) {
  if ((conn->saw_eof || draining_) && conn->in_flight == 0 &&
      conn->out.empty()) {
    CloseConnection(conn->id);
  }
}

void Server::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  connections_.erase(it);
  connections_active_->Add(-1.0);
}

void Server::DrainCompletions() {
  std::vector<Completion> batch;
  {
    const std::lock_guard<std::mutex> lock(completion_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = connections_.find(c.conn_id);
    if (it == connections_.end()) continue;  // Peer left; drop the answer.
    Connection* conn = &it->second;
    if (conn->in_flight > 0) --conn->in_flight;
    conn->out += c.response;
    if (conn->out.size() > options_.max_write_buffer_bytes) {
      dropped_slow_total_->Increment();
      CloseConnection(conn->id);
      continue;
    }
    if (!FlushOut(conn)) continue;
    MaybeFinish(conn);
  }
}

}  // namespace karl::server
