// Epoll-based TCP front end for KARL engines served out of a model
// registry (registry/registry.h): requests pick a model by name,
// SIGHUP / op=reload hot-reloads the registry, and a single built
// engine is served through the same path via the Start() wrapper.
//
// Threading model (three kinds of threads, strict ownership):
//   * one event-loop thread owns every socket, connection buffer, and
//     the epoll set — no connection state is ever touched elsewhere;
//   * one coalescer dispatcher thread groups admitted queries and runs
//     them through core::BatchEvaluator (server/coalescer.h);
//   * the work-stealing ThreadPool workers execute the batch fan-out.
// The two sides meet at exactly two lock-protected hand-offs: the
// coalescer's bounded admission queue (event loop -> dispatcher) and a
// completion vector + eventfd (dispatcher -> event loop).
//
// Protocol: newline-delimited JSON over TCP (server/protocol.h).
// Requests on one connection may be pipelined; coalesced answers can
// complete out of order, so pipelining clients should tag requests
// with "id".
//
// Backpressure, in order of the request path:
//   * read side: a line longer than max_line_bytes is answered with
//     `bad_request` and the connection is closed;
//   * admission: when max_pending queued rows are waiting, new queries
//     are answered immediately with `overloaded` — bounded memory, no
//     silent buffering;
//   * write side: a connection with more than max_write_buffer_bytes
//     of unread responses is dropped (slow or dead consumer).
//
// Shutdown: Shutdown() (async-signal-safe: one eventfd write) stops
// the listener, refuses new queries with `shutting_down`, lets every
// admitted query finish, flushes every response, then closes. Wait()
// returns once the drain (bounded by drain_timeout_ms) completed.
//
// Admin plane: with admin_port >= 0 a fourth thread runs the HTTP
// scrape listener (server/http_admin.h) serving /metrics, /healthz,
// /statusz, /varz, /flightz, /modelz, /explainz and /sloz. Its
// handlers only snapshot thread-safe state (registry, model registry,
// flight recorder, explain ring, SLO engine, an atomic draining flag),
// so a stuck scraper never touches the query path.
//
// Per-model observability: the router resolves every admitted
// request's model name up front, so completions carry it end to end —
// {model=...} labeled twins of the serving histograms and counters,
// the SLO engine's error budgets, the access log, the slow-query WARN,
// and the flight record all attribute to the concrete model served.

#ifndef KARL_SERVER_SERVER_H_
#define KARL_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/karl.h"
#include "registry/registry.h"
#include "server/coalescer.h"
#include "server/http_admin.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/slo.h"
#include "util/log.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace karl::server {

/// Server construction parameters.
struct ServerOptions {
  /// Listen address; must be a numeric IPv4 address.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Evaluation pool size; 0 uses the hardware thread count.
  size_t threads = 0;
  /// Admission-queue bound in query rows (see server/coalescer.h).
  size_t max_pending = 1024;
  /// Longest accepted request line.
  size_t max_line_bytes = 4u << 20;
  /// Unread-response bytes before a slow consumer is dropped.
  size_t max_write_buffer_bytes = 64u << 20;
  /// Hard cap on the graceful-shutdown drain.
  int drain_timeout_ms = 10000;
  /// Metrics registry; null falls back to telemetry::GlobalRegistry()
  /// (the /metrics op always has something to expose).
  telemetry::Registry* metrics = nullptr;
  /// Trace recorder for per-request spans and cross-thread flow events
  /// (see telemetry/context.h); null disables request tracing.
  telemetry::TraceRecorder* tracer = nullptr;
  /// Diagnostics logger (slow queries, lifecycle); null keeps quiet.
  util::Logger* logger = nullptr;
  /// Per-request access log (one NDJSON line per completed request);
  /// null disables.
  util::Logger* access_log = nullptr;
  /// Requests whose server-observed latency reaches this many
  /// microseconds get a WARN line on `logger` with the full stage
  /// breakdown and engine stats; 0 disables.
  uint64_t slow_query_us = 0;
  /// Flight-recorder depth: how many completed requests `statusz`
  /// remembers.
  size_t flight_recorder_capacity = 256;
  /// HTTP admin/scrape listener port (server/http_admin.h): GET
  /// /metrics, /healthz, /statusz, /varz, /flightz, /modelz,
  /// /explainz. -1
  /// disables the admin plane entirely; 0 binds an ephemeral port
  /// (read it back via admin_port()).
  int admin_port = -1;
  /// Admin listen address; must be a numeric IPv4 address.
  std::string admin_host = "127.0.0.1";
  /// How many recent explain profiles /explainz retains.
  size_t explain_ring_capacity = 32;
  /// Per-model SLO objectives (latency + availability error budgets
  /// with burn-rate alerting; see telemetry/slo.h). Always on: the
  /// default objective applies to every served model unless overridden
  /// (karl_server --slo-config, server/slo_config.h).
  telemetry::SloConfig slo;
};

/// Maps one parsed request to its action: answer health/metrics/reload
/// inline, resolve the request's model through the registry, validate
/// query/batch requests against that engine (dimensionality, weighting
/// type) and admit them to the coalescer with the model pinned. Owns no
/// sockets — the Connection layer handles transport.
class Router {
 public:
  /// `tracer` emits the event-loop-side request spans (req/read,
  /// req/parse) and the flow start; `statusz_source` renders the
  /// `statusz` op body (empty object when unset).
  Router(registry::ModelRegistry* models, Coalescer* coalescer,
         telemetry::Registry* metrics,
         telemetry::RequestTracer tracer = {},
         std::function<std::string()> statusz_source = {});

  /// Outcome of routing one request line.
  struct Outcome {
    /// Response to send now; empty when the request was admitted to the
    /// coalescer (its response arrives as a Completion).
    std::string immediate_response;
    /// True when the line was admitted (the connection gains one
    /// in-flight request).
    bool enqueued = false;
    /// Load-shed reason ("overloaded" or "shutting_down") when an
    /// evaluation request was refused by load state rather than by its
    /// content; empty otherwise. The server turns these into access-log
    /// records with disposition "shed".
    std::string shed_code;
  };

  /// Routes one request line for connection `conn_id`. `draining`
  /// refuses new evaluation work with `shutting_down`. `ctx` carries
  /// the caller's read stamps; the router stamps admission and threads
  /// it into the coalescer with the work item.
  Outcome Handle(uint64_t conn_id, std::string_view line, bool draining,
                 telemetry::RequestContext ctx = {});

 private:
  registry::ModelRegistry* models_;
  Coalescer* coalescer_;
  telemetry::Registry* metrics_;
  telemetry::RequestTracer tracer_;
  std::function<std::string()> statusz_source_;
  telemetry::Counter* requests_total_ = nullptr;
  telemetry::Counter* bad_request_total_ = nullptr;
  telemetry::Counter* overload_total_ = nullptr;
};

/// The serving process: listener + event loop + coalescer + pool.
class Server {
 public:
  /// Binds, spawns the event loop, and starts serving the single
  /// `engine`, which must outlive the server. Internally this wraps the
  /// engine in an owned single-model registry (adopted as "default"),
  /// so the wire protocol — including `"model"` and op=reload — behaves
  /// identically to a registry-backed server.
  static util::Result<std::unique_ptr<Server>> Start(const Engine& engine,
                                                     ServerOptions options);

  /// Binds, spawns the event loop, and serves every model in `models`
  /// (requests pick one with `"model":"<name>"`; op=reload / SIGHUP
  /// rescans). The registry must outlive the server.
  static util::Result<std::unique_ptr<Server>> StartWithRegistry(
      registry::ModelRegistry* models, ServerOptions options);

  /// Triggers shutdown (if still running) and joins everything.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves port 0).
  int port() const { return port_; }

  /// The bound HTTP admin port (resolves admin_port 0), or -1 when the
  /// admin plane is disabled.
  int admin_port() const { return admin_ != nullptr ? admin_->port() : -1; }

  /// Requests graceful shutdown. Async-signal-safe (a single eventfd
  /// write), callable from any thread or a signal handler, idempotent.
  void Shutdown();

  /// Blocks until the event loop exited (drain finished).
  void Wait();

  /// Point-in-time status document as a JSON object: uptime, counters,
  /// gauges, per-stage latency quantiles, and the flight recorder's
  /// last-N completed requests. Thread-safe; this is what the `statusz`
  /// op returns and what the SIGUSR1 dump writes.
  std::string StatuszJson() const;

  /// Build identity, effective options, and model summary as a JSON
  /// object (the /varz admin page). Thread-safe.
  std::string VarzJson() const;

  /// The flight recorder's ring as NDJSON, one completed request per
  /// line, oldest first (the /flightz admin page). Thread-safe.
  std::string FlightzNdjson() const;

  /// Per-model registry state as a JSON object (the /modelz admin
  /// page): default model, budget, resident bytes, and one entry per
  /// model with residency/usage/eviction counters. Thread-safe.
  std::string ModelzJson() const;

  /// The most recent explain profiles as a JSON object (the /explainz
  /// admin page). `query` is a raw HTTP query string; "last=N" caps the
  /// result (newest first). Thread-safe.
  std::string ExplainzJson(std::string_view query) const;

  /// Per-model SLO state (error budgets, burn rates) as a JSON object
  /// (the /sloz admin page). Refreshes the burn-rate gauges as a side
  /// effect. Thread-safe.
  std::string SlozJson();

  /// The always-on ring of recently completed requests.
  const telemetry::FlightRecorder& flight_recorder() const {
    return *flight_recorder_;
  }

  /// Test hooks: freeze/unfreeze the coalescer dispatcher so tests can
  /// deterministically pile up a coalescable backlog or fill the
  /// admission queue. Never called on the serving path.
  void PauseCoalescerForTest() { coalescer_->Pause(); }
  void ResumeCoalescerForTest() { coalescer_->Resume(); }

 private:
  // Per-connection transport state; owned by the event-loop thread.
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string in;        // Bytes read, not yet framed into lines.
    std::string out;       // Response bytes not yet written.
    size_t in_flight = 0;  // Requests admitted, response pending.
    bool saw_eof = false;  // Peer half-closed; flush then close.
    uint32_t events = 0;   // Last epoll interest set registered.
    std::string peer;      // "ip:port" of the remote end.
    // When the first byte of a not-yet-framed line was buffered
    // (MonotonicMicros); 0 between requests.
    uint64_t read_start_us = 0;
  };

  Server() = default;

  util::Status Bind();
  void Loop();
  void AcceptAll();
  void BeginShutdown();
  void OnReadable(Connection* conn);
  void OnWritable(Connection* conn);
  void ProcessLines(Connection* conn);
  // Writes as much of conn->out as the socket accepts; arms EPOLLOUT
  // for the rest. May close the connection (returns false then).
  bool FlushOut(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void DrainCompletions();
  // Close-when-done check: EOF'd or draining connections with nothing
  // pending are closed.
  void MaybeFinish(Connection* conn);
  // Observability tail of one completion: req/write span + flow end,
  // stage histograms (global and {model=...} labeled), SLO observation,
  // flight record, access-log line, slow-query WARN. Runs exactly once
  // per admitted request, on the event-loop thread.
  void FinishRequest(const Completion& completion, bool ok,
                     const std::string& peer);
  // A pin on the default model iff it is already resident (never
  // triggers a load); null otherwise. Used by VarzJson.
  registry::ModelHandle ResidentDefaultModel() const;

  // owned_registry_ backs the single-engine Start() overload; declared
  // before the coalescer/router so it outlives everything that holds
  // model handles during destruction.
  std::unique_ptr<registry::ModelRegistry> owned_registry_;
  registry::ModelRegistry* models_ = nullptr;
  ServerOptions options_;
  telemetry::Registry* registry_ = nullptr;

  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<Coalescer> coalescer_;
  std::unique_ptr<Router> router_;
  std::unique_ptr<AdminServer> admin_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;        // Shutdown trigger (eventfd).
  int completion_fd_ = -1;  // Dispatcher -> loop doorbell (eventfd).
  int port_ = 0;

  std::unordered_map<uint64_t, Connection> connections_;
  uint64_t next_conn_id_ = 16;  // Ids below 16 name the special fds.
  bool draining_ = false;        // Event-loop thread only.
  // Cross-thread mirror of draining_ for the admin /healthz handler.
  std::atomic<bool> draining_flag_{false};
  util::Stopwatch drain_watch_;  // Restarted when the drain begins.

  util::Mutex completion_mu_;
  std::vector<Completion> completions_ KARL_GUARDED_BY(completion_mu_);

  // Ring of recent explain profiles for /explainz: pushed by
  // FinishRequest (event-loop thread), snapshotted by the admin thread.
  struct ExplainRecord {
    uint64_t req = 0;
    std::string client_id;
    std::string kind;
    std::string json;  // Pre-rendered explain object.
  };
  mutable util::Mutex explain_mu_;
  std::deque<ExplainRecord> explain_ring_ KARL_GUARDED_BY(explain_mu_);

  telemetry::Counter* connections_total_ = nullptr;
  telemetry::Counter* dropped_slow_total_ = nullptr;
  telemetry::Gauge* connections_active_ = nullptr;

  // Request observability (tentpole of the serving stack's story):
  // per-stage latency histograms, the flight recorder, and the tracer
  // shared with the router and coalescer.
  telemetry::RequestTracer tracer_;
  std::unique_ptr<telemetry::FlightRecorder> flight_recorder_;
  util::Stopwatch uptime_;
  telemetry::RollingHistogram* stage_read_us_ = nullptr;
  telemetry::RollingHistogram* stage_parse_us_ = nullptr;
  telemetry::RollingHistogram* stage_queue_wait_us_ = nullptr;
  telemetry::RollingHistogram* stage_coalesce_wait_us_ = nullptr;
  telemetry::RollingHistogram* stage_eval_us_ = nullptr;
  telemetry::RollingHistogram* stage_serialize_us_ = nullptr;
  telemetry::RollingHistogram* stage_write_us_ = nullptr;
  telemetry::RollingHistogram* stage_total_us_ = nullptr;

  // {model=...} twins of the serving metrics, interned lazily per model
  // on the event-loop thread (FinishRequest's sole caller) — no lock.
  // Recorded from the same context values as the globals, so per-model
  // series sum exactly to the unlabeled family.
  struct ModelServingMetrics {
    telemetry::RollingHistogram* eval_us = nullptr;
    telemetry::RollingHistogram* total_us = nullptr;
    telemetry::Counter* requests = nullptr;
    telemetry::Counter* errors = nullptr;
  };
  const ModelServingMetrics& ServingMetricsForModel(
      const std::string& model);
  std::unordered_map<std::string, ModelServingMetrics> model_serving_;

  // Per-model latency/availability error budgets; Observe()d by
  // FinishRequest, scraped by /sloz and the burn-rate gauges.
  std::unique_ptr<telemetry::SloEngine> slo_;

  // loop_thread_ is only joined under wait_mu_ (Wait may be called
  // concurrently from the signal-watcher path and the main path).
  std::thread loop_thread_;
  util::Mutex wait_mu_;
};

}  // namespace karl::server

#endif  // KARL_SERVER_SERVER_H_
