// Epoll-based TCP front end for a built KARL engine.
//
// Threading model (three kinds of threads, strict ownership):
//   * one event-loop thread owns every socket, connection buffer, and
//     the epoll set — no connection state is ever touched elsewhere;
//   * one coalescer dispatcher thread groups admitted queries and runs
//     them through core::BatchEvaluator (server/coalescer.h);
//   * the work-stealing ThreadPool workers execute the batch fan-out.
// The two sides meet at exactly two lock-protected hand-offs: the
// coalescer's bounded admission queue (event loop -> dispatcher) and a
// completion vector + eventfd (dispatcher -> event loop).
//
// Protocol: newline-delimited JSON over TCP (server/protocol.h).
// Requests on one connection may be pipelined; coalesced answers can
// complete out of order, so pipelining clients should tag requests
// with "id".
//
// Backpressure, in order of the request path:
//   * read side: a line longer than max_line_bytes is answered with
//     `bad_request` and the connection is closed;
//   * admission: when max_pending queued rows are waiting, new queries
//     are answered immediately with `overloaded` — bounded memory, no
//     silent buffering;
//   * write side: a connection with more than max_write_buffer_bytes
//     of unread responses is dropped (slow or dead consumer).
//
// Shutdown: Shutdown() (async-signal-safe: one eventfd write) stops
// the listener, refuses new queries with `shutting_down`, lets every
// admitted query finish, flushes every response, then closes. Wait()
// returns once the drain (bounded by drain_timeout_ms) completed.

#ifndef KARL_SERVER_SERVER_H_
#define KARL_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/karl.h"
#include "server/coalescer.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace karl::server {

/// Server construction parameters.
struct ServerOptions {
  /// Listen address; must be a numeric IPv4 address.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Evaluation pool size; 0 uses the hardware thread count.
  size_t threads = 0;
  /// Admission-queue bound in query rows (see server/coalescer.h).
  size_t max_pending = 1024;
  /// Longest accepted request line.
  size_t max_line_bytes = 4u << 20;
  /// Unread-response bytes before a slow consumer is dropped.
  size_t max_write_buffer_bytes = 64u << 20;
  /// Hard cap on the graceful-shutdown drain.
  int drain_timeout_ms = 10000;
  /// Metrics registry; null falls back to telemetry::GlobalRegistry()
  /// (the /metrics op always has something to expose).
  telemetry::Registry* metrics = nullptr;
};

/// Maps one parsed request to its action: answer health/metrics inline,
/// validate query/batch requests against the engine (dimensionality,
/// weighting type) and admit them to the coalescer. Owns no sockets —
/// the Connection layer handles transport.
class Router {
 public:
  Router(const Engine& engine, Coalescer* coalescer,
         telemetry::Registry* metrics);

  /// Outcome of routing one request line.
  struct Outcome {
    /// Response to send now; empty when the request was admitted to the
    /// coalescer (its response arrives as a Completion).
    std::string immediate_response;
    /// True when the line was admitted (the connection gains one
    /// in-flight request).
    bool enqueued = false;
  };

  /// Routes one request line for connection `conn_id`. `draining`
  /// refuses new evaluation work with `shutting_down`.
  Outcome Handle(uint64_t conn_id, std::string_view line, bool draining);

 private:
  const Engine& engine_;
  Coalescer* coalescer_;
  telemetry::Registry* metrics_;
  const size_t dims_;
  telemetry::Counter* requests_total_ = nullptr;
  telemetry::Counter* bad_request_total_ = nullptr;
  telemetry::Counter* overload_total_ = nullptr;
};

/// The serving process: listener + event loop + coalescer + pool.
class Server {
 public:
  /// Binds, spawns the event loop, and starts serving. The engine must
  /// outlive the server.
  static util::Result<std::unique_ptr<Server>> Start(const Engine& engine,
                                                     ServerOptions options);

  /// Triggers shutdown (if still running) and joins everything.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound TCP port (resolves port 0).
  int port() const { return port_; }

  /// Requests graceful shutdown. Async-signal-safe (a single eventfd
  /// write), callable from any thread or a signal handler, idempotent.
  void Shutdown();

  /// Blocks until the event loop exited (drain finished).
  void Wait();

  /// Test hooks: freeze/unfreeze the coalescer dispatcher so tests can
  /// deterministically pile up a coalescable backlog or fill the
  /// admission queue. Never called on the serving path.
  void PauseCoalescerForTest() { coalescer_->Pause(); }
  void ResumeCoalescerForTest() { coalescer_->Resume(); }

 private:
  // Per-connection transport state; owned by the event-loop thread.
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string in;        // Bytes read, not yet framed into lines.
    std::string out;       // Response bytes not yet written.
    size_t in_flight = 0;  // Requests admitted, response pending.
    bool saw_eof = false;  // Peer half-closed; flush then close.
    uint32_t events = 0;   // Last epoll interest set registered.
  };

  Server() = default;

  util::Status Bind();
  void Loop();
  void AcceptAll();
  void BeginShutdown();
  void OnReadable(Connection* conn);
  void OnWritable(Connection* conn);
  void ProcessLines(Connection* conn);
  // Writes as much of conn->out as the socket accepts; arms EPOLLOUT
  // for the rest. May close the connection (returns false then).
  bool FlushOut(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void DrainCompletions();
  // Close-when-done check: EOF'd or draining connections with nothing
  // pending are closed.
  void MaybeFinish(Connection* conn);

  const Engine* engine_ = nullptr;
  ServerOptions options_;
  telemetry::Registry* registry_ = nullptr;

  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<Coalescer> coalescer_;
  std::unique_ptr<Router> router_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;        // Shutdown trigger (eventfd).
  int completion_fd_ = -1;  // Dispatcher -> loop doorbell (eventfd).
  int port_ = 0;

  std::unordered_map<uint64_t, Connection> connections_;
  uint64_t next_conn_id_ = 16;  // Ids below 16 name the special fds.
  bool draining_ = false;        // Event-loop thread only.
  util::Stopwatch drain_watch_;  // Restarted when the drain begins.

  std::mutex completion_mu_;
  std::vector<Completion> completions_;  // Guarded by completion_mu_.

  telemetry::Counter* connections_total_ = nullptr;
  telemetry::Counter* dropped_slow_total_ = nullptr;
  telemetry::Gauge* connections_active_ = nullptr;

  std::thread loop_thread_;
  std::mutex wait_mu_;  // Serializes Wait()/join.
};

}  // namespace karl::server

#endif  // KARL_SERVER_SERVER_H_
