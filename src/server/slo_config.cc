#include "server/slo_config.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "server/json.h"

namespace karl::server {

namespace {

using telemetry::SloConfig;
using telemetry::SloObjective;

// Applies one objective block onto `out` (which carries the defaults the
// block inherits). `where` names the block in error messages.
util::Status ApplyObjective(const Json& block, const std::string& where,
                            SloObjective* out) {
  if (!block.is_object()) {
    return util::Status::InvalidArgument("slo-config: " + where +
                                         " must be an object");
  }
  struct NumberField {
    const char* key;
    double* target;
  };
  double window_s = static_cast<double>(out->window_s);
  const NumberField fields[] = {
      {"latency_threshold_us", &out->latency_threshold_us},
      {"latency_target", &out->latency_target},
      {"availability_target", &out->availability_target},
      {"window_s", &window_s},
      {"fast_burn_threshold", &out->fast_burn_threshold},
      {"slow_burn_threshold", &out->slow_burn_threshold},
  };
  for (const auto& [key, value] : block.members()) {
    bool known = false;
    for (const NumberField& field : fields) {
      if (key != field.key) continue;
      known = true;
      if (!value.is_number()) {
        return util::Status::InvalidArgument("slo-config: " + where + "." +
                                             key + " must be a number");
      }
      *field.target = value.number_value();
    }
    if (!known) {
      return util::Status::InvalidArgument("slo-config: unknown key '" + key +
                                           "' in " + where);
    }
  }
  if (!(out->latency_threshold_us > 0.0)) {
    return util::Status::InvalidArgument(
        "slo-config: " + where + ".latency_threshold_us must be > 0");
  }
  for (const auto& [name, target] :
       {std::pair<const char*, double>{"latency_target", out->latency_target},
        {"availability_target", out->availability_target}}) {
    if (!(target > 0.0) || !(target < 1.0)) {
      return util::Status::InvalidArgument("slo-config: " + where + "." +
                                           name + " must be in (0, 1)");
    }
  }
  if (!(out->fast_burn_threshold > 0.0) || !(out->slow_burn_threshold > 0.0)) {
    return util::Status::InvalidArgument("slo-config: " + where +
                                         " burn thresholds must be > 0");
  }
  if (!(window_s >= 60.0) || !(window_s <= 86400.0) ||
      window_s != std::floor(window_s)) {
    return util::Status::InvalidArgument(
        "slo-config: " + where +
        ".window_s must be an integer in [60, 86400]");
  }
  out->window_s = static_cast<uint64_t>(window_s);
  return util::Status::OK();
}

}  // namespace

util::Result<telemetry::SloConfig> ParseSloConfig(std::string_view text) {
  auto doc = Json::Parse(text);
  if (!doc.ok()) {
    return util::Status::InvalidArgument("slo-config: " +
                                         doc.status().message());
  }
  if (!doc.value().is_object()) {
    return util::Status::InvalidArgument(
        "slo-config: top level must be an object");
  }
  SloConfig config;
  for (const auto& [key, value] : doc.value().members()) {
    if (key == "default") {
      auto status = ApplyObjective(value, "default", &config.default_objective);
      if (!status.ok()) return status;
    } else if (key == "max_models") {
      if (!value.is_number() || !(value.number_value() >= 1.0) ||
          !(value.number_value() <= 4096.0) ||
          value.number_value() != std::floor(value.number_value())) {
        return util::Status::InvalidArgument(
            "slo-config: max_models must be an integer in [1, 4096]");
      }
      config.max_models = static_cast<size_t>(value.number_value());
    } else if (key == "models") {
      if (!value.is_object()) {
        return util::Status::InvalidArgument(
            "slo-config: models must be an object");
      }
      // Deferred below so overrides inherit a fully-parsed default block
      // regardless of member order.
    } else {
      return util::Status::InvalidArgument("slo-config: unknown key '" + key +
                                           "'");
    }
  }
  if (const Json* models = doc.value().Find("models"); models != nullptr) {
    for (const auto& [model, block] : models->members()) {
      if (model.empty()) {
        return util::Status::InvalidArgument(
            "slo-config: model names must be non-empty");
      }
      SloObjective objective = config.default_objective;
      auto status = ApplyObjective(block, "models." + model, &objective);
      if (!status.ok()) return status;
      config.per_model.emplace(model, objective);
    }
  }
  return config;
}

util::Result<telemetry::SloConfig> LoadSloConfigFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::IOError("cannot open slo-config file '" + path +
                                 "'");
  }
  std::ostringstream body;
  body << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return util::Status::IOError("failed reading slo-config file '" + path +
                                 "'");
  }
  return ParseSloConfig(body.str());
}

}  // namespace karl::server
