// JSON form of the SLO configuration behind `karl_server --slo-config`.
//
// Lives in server/ (not telemetry/) so telemetry stays free of the JSON
// dependency; the parsed telemetry::SloConfig is what the engine runs on.
//
// Document shape (every field optional; absent fields keep the built-in
// defaults, and a model override inherits the file's default block):
//
//   {
//     "default": {
//       "latency_threshold_us": 100000,
//       "latency_target": 0.99,
//       "availability_target": 0.999,
//       "window_s": 3600,
//       "fast_burn_threshold": 14.4,
//       "slow_burn_threshold": 6.0
//     },
//     "max_models": 64,
//     "models": {
//       "alpha": {"latency_threshold_us": 50000}
//     }
//   }
//
// Validation: thresholds must be positive, targets in (0, 1) — a target
// of 1.0 would make the error budget zero and every request a burn —
// and window_s in [60, 86400] so the per-model wheel stays bounded.

#ifndef KARL_SERVER_SLO_CONFIG_H_
#define KARL_SERVER_SLO_CONFIG_H_

#include <string>
#include <string_view>

#include "telemetry/slo.h"
#include "util/status.h"

namespace karl::server {

/// Parses the --slo-config document; error messages name the offending
/// field and model.
util::Result<telemetry::SloConfig> ParseSloConfig(std::string_view text);

/// Reads `path` and parses it.
util::Result<telemetry::SloConfig> LoadSloConfigFile(const std::string& path);

}  // namespace karl::server

#endif  // KARL_SERVER_SLO_CONFIG_H_
