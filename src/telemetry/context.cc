#include "telemetry/context.h"

#include <atomic>
#include <chrono>

namespace karl::telemetry {

namespace {

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

uint64_t MonotonicMicros() {
  // +1 keeps 0 reserved as RequestContext's "stage never reached"
  // sentinel: the very first call in the process (which fixes the
  // epoch) would otherwise legitimately return 0.
  return static_cast<uint64_t>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - ProcessEpoch())
                 .count()) +
         1;
}

uint64_t NextRequestId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

RequestTracer::RequestTracer(TraceRecorder* recorder) : recorder_(recorder) {
  if (recorder_ != nullptr) {
    offset_us_ = MonotonicMicros() - recorder_->NowMicros();
  }
}

void RequestTracer::Span(const char* name, uint64_t begin_us, uint64_t end_us,
                         TraceArgs args) const {
  if (recorder_ == nullptr || begin_us == 0 || end_us < begin_us) return;
  recorder_->CompleteEvent(name, ToTrace(begin_us), end_us - begin_us,
                           std::move(args));
}

void RequestTracer::FlowBegin(uint64_t request_id, uint64_t ts_us) const {
  if (recorder_ == nullptr) return;
  recorder_->FlowEvent(TraceRecorder::FlowPhase::kStart, request_id,
                       ToTrace(ts_us));
}

void RequestTracer::FlowStep(uint64_t request_id, uint64_t ts_us) const {
  if (recorder_ == nullptr) return;
  recorder_->FlowEvent(TraceRecorder::FlowPhase::kStep, request_id,
                       ToTrace(ts_us));
}

void RequestTracer::FlowEnd(uint64_t request_id, uint64_t ts_us) const {
  if (recorder_ == nullptr) return;
  recorder_->FlowEvent(TraceRecorder::FlowPhase::kEnd, request_id,
                       ToTrace(ts_us));
}

}  // namespace karl::telemetry
