// Request-scoped observability context for the serving stack.
//
// A query that arrives over the network crosses three kinds of threads
// (epoll event loop -> coalescer dispatcher -> pool workers -> event
// loop again), and none of them may share mutable state beyond the two
// existing hand-offs. RequestContext is the small value that rides the
// request through those hand-offs: a process-unique monotonic id plus
// one timestamp per pipeline stage, all on a single shared steady-clock
// epoch (MonotonicMicros) so durations computed on different threads
// are directly comparable.
//
// Stage model (durations derived from consecutive stamps):
//   read          first byte buffered -> request line framed
//   parse         line framed -> parsed/validated/admitted
//   queue_wait    admitted -> popped by the coalescer dispatcher
//   coalesce_wait popped -> group evaluation begins (sweep + merge)
//   eval          group evaluation (BatchEvaluator over the pool)
//   serialize     evaluation done -> response line built
//   write         completion reaches the event loop -> bytes flushed
// The sum of the stages equals the server-observed latency up to
// scheduling slack (the eventfd doorbell / epoll wake gaps).
//
// RequestTracer renders the same context into the Chrome trace-event
// domain: per-stage complete spans on the thread that ran the stage,
// connected per request by flow events ("ph":"s"/"t"/"f" with the
// request id), so Perfetto draws one arrowed lane per request across
// the epoll thread, the dispatcher, and whichever worker evaluated it.
// All members are null-safe no-ops when no TraceRecorder is attached.

#ifndef KARL_TELEMETRY_CONTEXT_H_
#define KARL_TELEMETRY_CONTEXT_H_

#include <cstdint>
#include <string>

#include "telemetry/trace.h"

namespace karl::telemetry {

/// Microseconds since a process-wide steady-clock epoch (fixed at the
/// first call). The timestamp domain of RequestContext stamps; safe
/// from any thread.
uint64_t MonotonicMicros();

/// Next value of the process-wide monotonic request id (starts at 1).
uint64_t NextRequestId();

/// Engine work attributable to one request (the EvalStats counters,
/// mirrored here so telemetry stays independent of core/).
struct RequestStats {
  uint64_t iterations = 0;
  uint64_t nodes_expanded = 0;
  uint64_t kernel_evals = 0;
};

/// Per-request pipeline stamps; see file comment for the stage model.
/// All timestamps are MonotonicMicros values; 0 means "stage never
/// reached" (e.g. a request whose connection vanished before write).
struct RequestContext {
  uint64_t id = 0;             ///< Process-unique monotonic request id.
  uint64_t read_begin_us = 0;  ///< First byte of the line buffered.
  uint64_t framed_us = 0;      ///< Full request line framed.
  uint64_t admitted_us = 0;    ///< Parsed, validated, and enqueued.
  uint64_t dispatched_us = 0;  ///< Popped into a dispatch group.
  uint64_t eval_begin_us = 0;  ///< Group evaluation started.
  uint64_t eval_end_us = 0;    ///< Group evaluation finished.
  uint64_t serialized_us = 0;  ///< Response line built.
  uint64_t write_begin_us = 0; ///< Completion reached the event loop.
  uint64_t write_end_us = 0;   ///< Response bytes handed to the socket.
  RequestStats stats;          ///< Engine work for this request's rows.

  /// Saturating stage durations in microseconds.
  uint64_t read_us() const { return Delta(read_begin_us, framed_us); }
  uint64_t parse_us() const { return Delta(framed_us, admitted_us); }
  uint64_t queue_wait_us() const {
    return Delta(admitted_us, dispatched_us);
  }
  uint64_t coalesce_wait_us() const {
    return Delta(dispatched_us, eval_begin_us);
  }
  uint64_t eval_us() const { return Delta(eval_begin_us, eval_end_us); }
  uint64_t serialize_us() const {
    return Delta(eval_end_us, serialized_us);
  }
  uint64_t write_us() const { return Delta(write_begin_us, write_end_us); }
  /// End-to-end server-observed latency (first byte -> flushed).
  uint64_t total_us() const { return Delta(read_begin_us, write_end_us); }

 private:
  static uint64_t Delta(uint64_t begin, uint64_t end) {
    return (begin != 0 && end > begin) ? end - begin : 0;
  }
};

/// Emits request-scoped spans and flow events into a TraceRecorder,
/// translating MonotonicMicros stamps into the recorder's timestamp
/// domain. Copyable, cheap, and a complete no-op when constructed with
/// a null recorder — call sites never branch on "tracing enabled".
class RequestTracer {
 public:
  RequestTracer() = default;

  /// Captures the offset between MonotonicMicros and the recorder's
  /// clock once; both run on the steady clock, so it stays constant.
  explicit RequestTracer(TraceRecorder* recorder);

  bool enabled() const { return recorder_ != nullptr; }

  /// Complete span [begin_us, end_us] (MonotonicMicros domain) on the
  /// calling thread.
  void Span(const char* name, uint64_t begin_us, uint64_t end_us,
            TraceArgs args = {}) const;

  /// Flow start ("ph":"s") — emit inside the request's first span.
  void FlowBegin(uint64_t request_id, uint64_t ts_us) const;

  /// Flow step ("ph":"t") — emit inside an intermediate span.
  void FlowStep(uint64_t request_id, uint64_t ts_us) const;

  /// Flow end ("ph":"f", binding to the enclosing slice) — emit inside
  /// the request's final span.
  void FlowEnd(uint64_t request_id, uint64_t ts_us) const;

 private:
  uint64_t ToTrace(uint64_t mono_us) const {
    return mono_us > offset_us_ ? mono_us - offset_us_ : 0;
  }

  TraceRecorder* recorder_ = nullptr;
  uint64_t offset_us_ = 0;  // MonotonicMicros - recorder->NowMicros().
};

}  // namespace karl::telemetry

#endif  // KARL_TELEMETRY_CONTEXT_H_
