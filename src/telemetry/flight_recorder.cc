#include "telemetry/flight_recorder.h"

#include <algorithm>
#include <utility>

namespace karl::telemetry {

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void FlightRecorder::Record(RequestRecord record) {
  const util::MutexLock lock(&mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<RequestRecord> FlightRecorder::Snapshot() const {
  const util::MutexLock lock(&mu_);
  std::vector<RequestRecord> out;
  out.reserve(ring_.size());
  // Oldest first: when the ring has wrapped, next_ points at the oldest
  // slot; before wrapping, the ring is already in arrival order.
  const size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

uint64_t FlightRecorder::total_recorded() const {
  const util::MutexLock lock(&mu_);
  return total_;
}

}  // namespace karl::telemetry
