// Flight recorder: a bounded ring buffer of the last N completed
// requests, kept so "what just happened?" is answerable on a live
// server without tracing enabled — the serving stack's black box.
//
// Recording is lock-cheap (one short mutex hold over a preallocated
// ring slot; no allocation beyond the record's small strings) and
// always on: every admitted request lands here exactly once when its
// response is written (or its connection is found gone). Snapshots are
// taken off the hot path by the `statusz` op and the SIGUSR1 dump.

#ifndef KARL_TELEMETRY_FLIGHT_RECORDER_H_
#define KARL_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/context.h"
#include "util/mutex.h"

namespace karl::telemetry {

/// One completed request, as remembered by the flight recorder.
struct RequestRecord {
  RequestContext ctx;     ///< Id, stage stamps, and engine work.
  std::string kind;       ///< "tkaq" / "ekaq" / "exact".
  bool batch = false;     ///< op=batch (vs a coalesced single).
  uint64_t rows = 0;      ///< Query rows in the request.
  std::string model;      ///< Resolved model served ("" pre-registry).
  std::string peer;       ///< Client address ("" when already gone).
  std::string client_id;  ///< Echoed request "id" token ("" = none).
  bool ok = true;         ///< False when the answer was never written.
};

/// See file comment.
class FlightRecorder {
 public:
  /// `capacity`: number of requests retained (clamped to at least 1).
  explicit FlightRecorder(size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Remembers one completed request, evicting the oldest when full.
  void Record(RequestRecord record);

  /// The retained records, oldest first.
  std::vector<RequestRecord> Snapshot() const;

  /// Requests recorded over the recorder's lifetime (>= retained).
  uint64_t total_recorded() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable util::Mutex mu_;
  std::vector<RequestRecord> ring_ KARL_GUARDED_BY(mu_);
  // Ring write cursor.
  size_t next_ KARL_GUARDED_BY(mu_) = 0;
  uint64_t total_ KARL_GUARDED_BY(mu_) = 0;
};

}  // namespace karl::telemetry

#endif  // KARL_TELEMETRY_FLIGHT_RECORDER_H_
