#include "telemetry/labels.h"

#include <algorithm>

#include "util/check.h"

namespace karl::telemetry {

bool IsValidLabelName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char ch = name[i];
    const bool alpha =
        (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch == '_';
    const bool digit = ch >= '0' && ch <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char ch : value) {
    switch (ch) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(ch);
    }
  }
  return out;
}

LabelSet::LabelSet(
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        pairs) {
  for (const auto& [key, value] : pairs) {
    const size_t before = entries_.size();
    Set(key, value);
    KARL_CHECK(entries_.size() == before + 1)
        << ": duplicate label key '" << std::string(key)
        << "' in LabelSet literal";
  }
}

LabelSet& LabelSet::Set(std::string_view key, std::string_view value) {
  KARL_CHECK(IsValidLabelName(key))
      << ": invalid label name '" << std::string(key) << "'";
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, std::string_view k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) {
    it->second = std::string(value);
    return *this;
  }
  KARL_CHECK(entries_.size() < kMaxLabelsPerSet)
      << ": LabelSet exceeds " << kMaxLabelsPerSet << " keys adding '"
      << std::string(key) << "'";
  entries_.emplace(it, std::string(key), std::string(value));
  return *this;
}

std::string LabelSet::Render() const {
  if (entries_.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ",";
    out += entries_[i].first;
    out += "=\"";
    out += EscapeLabelValue(entries_[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

LabelSet LabelSet::Overflow() const {
  LabelSet sink;
  for (const auto& [key, value] : entries_) {
    (void)value;
    sink.Set(key, kOverflowLabelValue);
  }
  return sink;
}

SeriesNameParts SplitSeriesName(const std::string& series) {
  const size_t brace = series.find('{');
  if (brace == std::string::npos) return {series, ""};
  return {series.substr(0, brace), series.substr(brace)};
}

std::string SeriesWithSuffix(const std::string& series,
                             std::string_view suffix) {
  const SeriesNameParts parts = SplitSeriesName(series);
  return parts.base + std::string(suffix) + parts.labels;
}

std::string SeriesWithLabel(const std::string& series, std::string_view key,
                            std::string_view value) {
  const SeriesNameParts parts = SplitSeriesName(series);
  std::string labels;
  if (parts.labels.empty()) {
    labels = "{";
  } else {
    // Drop the closing brace and continue the list.
    labels = parts.labels.substr(0, parts.labels.size() - 1) + ",";
  }
  labels += std::string(key) + "=\"" + EscapeLabelValue(value) + "\"}";
  return parts.base + labels;
}

}  // namespace karl::telemetry
