// Dimensional metric labels: a small, ordered, cardinality-bounded set of
// key/value pairs that qualifies one metric family into per-dimension
// series ("karl_serving_eval_us{model=\"alpha\"}").
//
// Design constraints, in order:
//   1. The record path stays lock-free: a LabelSet participates only in
//      *lookup* (Registry::GetX(name, labels), mutex-guarded, construction
//      time); the returned handle is the same plain Counter/Gauge/
//      Histogram as the unlabeled path. Callers intern handles per label
//      set — never render a LabelSet per request.
//   2. Cardinality is bounded twice: at most kMaxLabelsPerSet keys per
//      set (the canonical keys are `model`, `op`, `kernel`, `simd_tier`),
//      and at most Registry::kDefaultMaxSeriesPerMetric distinct label
//      sets per family — overflow collapses into a per-family sink series
//      whose values are all `__other__` (see Registry::AdmitSeries).
//   3. Exposition is exact Prometheus text format 0.0.4: label names
//      validated at Set() time ([a-zA-Z_][a-zA-Z0-9_]*), values escaped
//      (\\, \", \n), keys emitted in sorted order so equal sets render
//      identically and series names are canonical map keys.

#ifndef KARL_TELEMETRY_LABELS_H_
#define KARL_TELEMETRY_LABELS_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace karl::telemetry {

/// Hard cap on keys in one LabelSet; Set() aborts past it.
inline constexpr size_t kMaxLabelsPerSet = 4;

/// Value every key takes in a family's cardinality-overflow sink series.
inline constexpr std::string_view kOverflowLabelValue = "__other__";

/// Prometheus label-name charset: [a-zA-Z_][a-zA-Z0-9_]*.
bool IsValidLabelName(std::string_view name);

/// Escapes a label value for the text exposition: backslash, double
/// quote, and newline become \\, \", and \n.
std::string EscapeLabelValue(std::string_view value);

/// An ordered set of at most kMaxLabelsPerSet label key/value pairs.
/// Keys are kept sorted, so two sets with the same pairs render the same
/// series name regardless of insertion order. Values are stored raw and
/// escaped only at Render() time.
class LabelSet {
 public:
  LabelSet() = default;
  /// Aborts on an invalid key name, a duplicate key, or > kMaxLabelsPerSet
  /// pairs — label sets are compile-time-ish configuration, not data.
  LabelSet(std::initializer_list<
           std::pair<std::string_view, std::string_view>>
               pairs);

  /// Inserts `key`=`value`, or replaces the value if `key` is present.
  /// Returns *this so sets can be built fluently.
  LabelSet& Set(std::string_view key, std::string_view value);

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// `{k1="v1",k2="v2"}` with escaped values, or "" when empty. Appending
  /// this to the family name yields the canonical series name.
  std::string Render() const;

  /// Copy with every value replaced by kOverflowLabelValue — the sink
  /// series a family's excess label sets collapse into.
  LabelSet Overflow() const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// A full series name split at the label block. `labels` keeps its braces
/// (`{k="v"}`) and is empty for unlabeled series, so
/// `base + labels == series` always holds.
struct SeriesNameParts {
  std::string base;
  std::string labels;
};
SeriesNameParts SplitSeriesName(const std::string& series);

/// Inserts `suffix` before the label block: ("f{m=\"a\"}", "_sum") ->
/// "f_sum{m=\"a\"}"; ("f", "_sum") -> "f_sum". Prometheus suffixes bind
/// to the metric name, never to the labels.
std::string SeriesWithSuffix(const std::string& series,
                             std::string_view suffix);

/// Appends one more label to a (possibly already labeled) series name:
/// ("f{m=\"a\"}", "quantile", "0.5") -> "f{m=\"a\",quantile=\"0.5\"}".
/// `value` is escaped here.
std::string SeriesWithLabel(const std::string& series, std::string_view key,
                            std::string_view value);

}  // namespace karl::telemetry

#endif  // KARL_TELEMETRY_LABELS_H_
