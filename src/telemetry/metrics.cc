#include "telemetry/metrics.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "telemetry/rolling.h"
#include "util/check.h"

namespace karl::telemetry {

namespace {

// Shortest round-trippable formatting; JSON has no Inf/NaN literals, so
// non-finite values degrade to null.
void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out->append(buffer);
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
          out->append(buffer);
        } else {
          out->push_back(ch);
        }
    }
  }
}

void AtomicAdd(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int HistogramBucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // Non-positives and NaN underflow.
  const double log2v = std::log2(value);
  if (log2v < kHistogramMinPow2) return 0;
  if (log2v >= kHistogramMaxPow2) return kHistogramBuckets - 1;
  const int sub = static_cast<int>(
      std::floor((log2v - kHistogramMinPow2) *
                 static_cast<double>(kHistogramSubBucketsPerOctave)));
  return 1 + std::clamp(sub, 0, kHistogramBuckets - 3);
}

double HistogramBucketLowerBound(int index) {
  if (index <= 0) return 0.0;
  if (index >= kHistogramBuckets - 1) {
    return std::exp2(static_cast<double>(kHistogramMaxPow2));
  }
  return std::exp2(static_cast<double>(kHistogramMinPow2) +
                   static_cast<double>(index - 1) /
                       static_cast<double>(kHistogramSubBucketsPerOctave));
}

double HistogramBucketUpperBound(int index) {
  if (index >= kHistogramBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return HistogramBucketLowerBound(index + 1);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Fractional 1-based rank of the requested order statistic.
  const double target = q * static_cast<double>(count - 1) + 1.0;
  uint64_t cum = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    const uint64_t c = buckets[i];
    if (c == 0) continue;
    if (static_cast<double>(cum) + static_cast<double>(c) >= target) {
      // Interpolate geometrically inside the bucket, trimmed to the
      // observed [min, max] so single-bucket histograms stay tight.
      const double lo = std::max(HistogramBucketLowerBound(i), min);
      const double hi = std::min(HistogramBucketUpperBound(i), max);
      if (!(hi > lo)) return std::clamp(lo, min, max);
      // Position the 1-based in-bucket rank so the bucket's first item
      // maps to `lo` and its last to `hi` (a single item maps to `lo`,
      // which the [min, max] trim has already tightened).
      const double in_bucket = target - static_cast<double>(cum) - 1.0;
      const double frac =
          c > 1 ? std::clamp(in_bucket / static_cast<double>(c - 1), 0.0, 1.0)
                : 0.0;
      const double v = lo > 0.0 ? lo * std::pow(hi / lo, frac)
                                : lo + (hi - lo) * frac;
      return std::clamp(v, min, max);
    }
    cum += c;
  }
  return max;
}

void Histogram::Record(double value) {
  counts_[static_cast<size_t>(HistogramBucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
  count_.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[static_cast<size_t>(i)] =
        counts_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  snap.max = snap.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return snap;
}

Registry::Registry() = default;
Registry::~Registry() = default;

void Registry::RegisterKind(const std::string& name, Kind kind) {
  // Kinds bind to the *family*, so `f` and `f{model="a"}` must agree.
  const std::string base = MetricBaseName(name);
  const auto [it, inserted] = kinds_.emplace(base, kind);
  KARL_CHECK(it->second == kind)
      << ": telemetry metric '" << base << "' reused with a different kind";
}

Counter* Registry::GetCounterSeries(const std::string& series, Kind kind) {
  RegisterKind(series, kind);
  auto& slot = counters_[series];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

std::string Registry::AdmitSeries(const std::string& name,
                                  const LabelSet& labels) {
  KARL_CHECK(name.find('{') == std::string::npos)
      << ": labeled lookup of '" << name
      << "' must pass a bare family name";
  if (labels.empty()) return name;
  const std::string rendered = labels.Render();
  auto& known = family_labels_[name];
  if (std::find(known.begin(), known.end(), rendered) != known.end()) {
    return name + rendered;
  }
  if (known.size() < max_series_per_metric_) {
    known.push_back(rendered);
    return name + rendered;
  }
  // Past the cap: collapse into the family's sink series. The sink does
  // not consume cap budget (it must stay reachable), and every redirected
  // lookup counts — callers intern handles, so a steady-state series
  // costs one increment, not one per record. Asking for the sink by its
  // own labels is not a drop.
  const std::string overflow = labels.Overflow().Render();
  if (rendered != overflow) {
    GetCounterSeries("karl_metric_series_dropped_total", Kind::kCounter)
        ->Increment();
  }
  return name + overflow;
}

Counter* Registry::GetCounter(const std::string& name) {
  const util::MutexLock lock(&mu_);
  return GetCounterSeries(name, Kind::kCounter);
}

Gauge* Registry::GetGauge(const std::string& name) {
  const util::MutexLock lock(&mu_);
  RegisterKind(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  const util::MutexLock lock(&mu_);
  RegisterKind(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

RollingHistogram* Registry::GetRollingHistogram(const std::string& name) {
  const util::MutexLock lock(&mu_);
  RegisterKind(name, Kind::kRollingHistogram);
  auto& slot = rolling_[name];
  if (slot == nullptr) slot = std::make_unique<RollingHistogram>();
  return slot.get();
}

Counter* Registry::GetCounter(const std::string& name,
                              const LabelSet& labels) {
  const util::MutexLock lock(&mu_);
  return GetCounterSeries(AdmitSeries(name, labels), Kind::kCounter);
}

Gauge* Registry::GetGauge(const std::string& name, const LabelSet& labels) {
  const util::MutexLock lock(&mu_);
  const std::string series = AdmitSeries(name, labels);
  RegisterKind(series, Kind::kGauge);
  auto& slot = gauges_[series];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const LabelSet& labels) {
  const util::MutexLock lock(&mu_);
  const std::string series = AdmitSeries(name, labels);
  RegisterKind(series, Kind::kHistogram);
  auto& slot = histograms_[series];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

RollingHistogram* Registry::GetRollingHistogram(const std::string& name,
                                                const LabelSet& labels) {
  const util::MutexLock lock(&mu_);
  const std::string series = AdmitSeries(name, labels);
  RegisterKind(series, Kind::kRollingHistogram);
  auto& slot = rolling_[series];
  if (slot == nullptr) slot = std::make_unique<RollingHistogram>();
  return slot.get();
}

void Registry::SetMaxSeriesPerMetric(size_t cap) {
  const util::MutexLock lock(&mu_);
  max_series_per_metric_ = cap;
}

RegistrySnapshot Registry::Snapshot() const {
  const util::MutexLock lock(&mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snapshot());
  }
  snap.rolling.reserve(rolling_.size());
  for (const auto& [name, rolling] : rolling_) {
    RollingHistogramSnapshot rs;
    rs.cumulative = rolling->CumulativeSnapshot();
    rs.window = rolling->WindowSnapshot();
    rs.window_span_s = RollingHistogram::WindowSpanSeconds();
    snap.rolling.emplace_back(name, rs);
  }
  return snap;
}

Registry& GlobalRegistry() {
  static Registry* const kRegistry = new Registry();  // Never destroyed.
  return *kRegistry;
}

std::string MetricBaseName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

namespace {

// Orders a snapshot section so all series of one family are adjacent
// (the text format requires one contiguous group per metric), labeled
// series in deterministic label order.
template <typename T>
std::vector<std::pair<std::string, T>> SortedByFamily(
    std::vector<std::pair<std::string, T>> section) {
  std::sort(section.begin(), section.end(),
            [](const auto& a, const auto& b) {
              const SeriesNameParts pa = SplitSeriesName(a.first);
              const SeriesNameParts pb = SplitSeriesName(b.first);
              if (pa.base != pb.base) return pa.base < pb.base;
              return pa.labels < pb.labels;
            });
  return section;
}

// One Prometheus summary block for one series (TYPE line only on the
// family's first series): quantile samples with the quantile label merged
// into the series' label block, then _sum and _count with the suffix
// bound to the name.
void AppendSummaryText(std::string* out, const std::string& series,
                       const HistogramSnapshot& h, bool emit_type) {
  if (emit_type) {
    *out += "# TYPE " + MetricBaseName(series) + " summary\n";
  }
  const std::pair<const char*, double> quantiles[] = {
      {"0", h.min},          {"0.5", h.Quantile(0.5)},
      {"0.95", h.Quantile(0.95)}, {"0.99", h.Quantile(0.99)},
      {"1", h.max}};
  for (const auto& [q, value] : quantiles) {
    *out += SeriesWithLabel(series, "quantile", q) + " ";
    AppendNumber(out, value);
    *out += "\n";
  }
  *out += SeriesWithSuffix(series, "_sum") + " ";
  AppendNumber(out, h.sum);
  *out += "\n";
  char line[32];
  std::snprintf(line, sizeof(line), " %llu\n",
                static_cast<unsigned long long>(h.count));
  *out += SeriesWithSuffix(series, "_count") + line;
}

}  // namespace

std::string DumpText(const Registry& registry) {
  const RegistrySnapshot snap = registry.Snapshot();
  std::string out;
  char line[160];
  // `# TYPE` belongs to the family, once, before its first sample; a
  // family's labeled series share one line.
  std::string last_family;
  const auto family_changed = [&last_family](const std::string& series) {
    std::string base = MetricBaseName(series);
    if (base == last_family) return false;
    last_family = std::move(base);
    return true;
  };
  for (const auto& [name, value] : SortedByFamily(snap.counters)) {
    if (family_changed(name)) {
      out += "# TYPE " + MetricBaseName(name) + " counter\n";
    }
    std::snprintf(line, sizeof(line), " %llu\n",
                  static_cast<unsigned long long>(value));
    out += name + line;
  }
  last_family.clear();
  for (const auto& [name, value] : SortedByFamily(snap.gauges)) {
    if (family_changed(name)) {
      out += "# TYPE " + MetricBaseName(name) + " gauge\n";
    }
    out += name + " ";
    AppendNumber(&out, value);
    out += "\n";
  }
  last_family.clear();
  for (const auto& [name, h] : SortedByFamily(snap.histograms)) {
    AppendSummaryText(&out, name, h, family_changed(name));
  }
  // Rolling histograms expose two families: the cumulative summaries
  // under the family name, then every series' last window under
  // `base_window60s`. Emit per family group so samples stay contiguous.
  const auto rolling = SortedByFamily(snap.rolling);
  for (size_t i = 0; i < rolling.size();) {
    const std::string base = MetricBaseName(rolling[i].first);
    size_t end = i;
    while (end < rolling.size() &&
           MetricBaseName(rolling[end].first) == base) {
      ++end;
    }
    for (size_t j = i; j < end; ++j) {
      AppendSummaryText(&out, rolling[j].first, rolling[j].second.cumulative,
                        j == i);
    }
    for (size_t j = i; j < end; ++j) {
      const std::string window_suffix =
          "_window" + std::to_string(rolling[j].second.window_span_s) + "s";
      AppendSummaryText(&out, SeriesWithSuffix(rolling[j].first, window_suffix),
                        rolling[j].second.window, j == i);
    }
    i = end;
  }
  return out;
}

std::string DumpJson(const Registry& registry) {
  const RegistrySnapshot snap = registry.Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(&out, name);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "\": %llu",
                  static_cast<unsigned long long>(value));
    out += buffer;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(&out, name);
    out += "\": ";
    AppendNumber(&out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  // {count, sum, min, max, p50, p95, p99, buckets} — shared between plain
  // histograms, rolling cumulatives, and the nested window objects.
  const auto append_histogram_body = [&out](const HistogramSnapshot& h) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "{\"count\": %llu, \"sum\": ",
                  static_cast<unsigned long long>(h.count));
    out += buffer;
    AppendNumber(&out, h.sum);
    const std::pair<const char*, double> fields[] = {
        {"min", h.min},           {"max", h.max},
        {"p50", h.Quantile(0.5)}, {"p95", h.Quantile(0.95)},
        {"p99", h.Quantile(0.99)}};
    for (const auto& [key, value] : fields) {
      out += std::string(", \"") + key + "\": ";
      AppendNumber(&out, value);
    }
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      const uint64_t c = h.buckets[static_cast<size_t>(i)];
      if (c == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[";
      AppendNumber(&out, HistogramBucketLowerBound(i));
      std::snprintf(buffer, sizeof(buffer), ", %llu]",
                    static_cast<unsigned long long>(c));
      out += buffer;
    }
    out += "]";
  };
  for (const auto& [name, h] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(&out, name);
    out += "\": ";
    append_histogram_body(h);
    out += "}";
  }
  for (const auto& [name, r] : snap.rolling) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendEscaped(&out, name);
    out += "\": ";
    append_histogram_body(r.cumulative);
    out += ", \"window" + std::to_string(r.window_span_s) + "s\": ";
    append_histogram_body(r.window);
    out += "}}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

util::Status WriteMetricsFile(const Registry& registry,
                              const std::string& path) {
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  // Write-to-temp + rename so a concurrent scraper reading `path` always
  // observes a complete old or new file, never a truncated one. The temp
  // name is pid-qualified so concurrent processes scraping into the same
  // path do not clobber each other's partial writes.
  const std::string tmp = path + ".tmp-" + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return util::Status::IOError("cannot open metrics file '" + tmp + "'");
    }
    const std::string body = json ? DumpJson(registry) : DumpText(registry);
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return util::Status::IOError("failed writing metrics file '" + tmp +
                                   "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Status::IOError("cannot rename '" + tmp + "' to '" + path +
                                 "'");
  }
  return util::Status::OK();
}

}  // namespace karl::telemetry
