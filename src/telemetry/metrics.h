// Thread-safe metrics layer: monotonic counters, gauges, and log-bucketed
// latency histograms with quantile estimation, collected in a named
// registry and exported as Prometheus-style text or JSON.
//
// Cost model: metric *lookup* (Registry::GetX) takes a mutex and is meant
// for construction time; the returned handles are stable for the life of
// the registry, and every mutation on them is a handful of relaxed
// atomics — safe from any number of threads, no locks on the hot path.
// The engines reference telemetry through nullable pointers
// (`EngineOptions::metrics` etc.), so the disabled path is a single
// null-pointer test and the default-constructed system never allocates a
// metric at all.

#ifndef KARL_TELEMETRY_METRICS_H_
#define KARL_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/labels.h"
#include "util/mutex.h"
#include "util/status.h"

namespace karl::telemetry {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous level (queue depths, byte counts, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Histogram bucket layout: geometric buckets growing by 2^(1/4) (≈19% per
// bucket, so quantile estimates carry at most ~9% mid-bucket relative
// error), spanning [2^-40, 2^40) ≈ [9.1e-13, 1.1e12) — microsecond
// latencies from sub-nanosecond to days, or any other positive quantity —
// plus an underflow bucket (index 0, everything ≤ 2^-40 including
// non-positives) and an overflow bucket.
inline constexpr int kHistogramSubBucketsPerOctave = 4;
inline constexpr int kHistogramMinPow2 = -40;
inline constexpr int kHistogramMaxPow2 = 40;
inline constexpr int kHistogramBuckets =
    (kHistogramMaxPow2 - kHistogramMinPow2) * kHistogramSubBucketsPerOctave +
    2;

/// Bucket index a value lands in; total order consistent with the value
/// order. Exposed (with the bound functions) so tests can pin the layout.
int HistogramBucketIndex(double value);

/// Inclusive lower bound of bucket `index` (0 for the underflow bucket).
double HistogramBucketLowerBound(int index);

/// Exclusive upper bound of bucket `index` (+inf for the overflow bucket).
double HistogramBucketUpperBound(int index);

/// A point-in-time copy of a histogram's state, with quantile estimation.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0.
  double max = 0.0;

  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Estimates the q-quantile (q in [0, 1]) by geometric interpolation
  /// within the containing bucket, clamped to the exact [min, max].
  /// Returns 0 for an empty histogram.
  double Quantile(double q) const;
};

/// Log-bucketed distribution of a positive quantity. Recording is a few
/// relaxed atomic operations; snapshots and quantiles are taken off the
/// hot path.
class Histogram {
 public:
  void Record(double value);
  HistogramSnapshot Snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Extremes only meaningful while count_ > 0; snapshots report 0 for an
  // empty histogram.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// Defined in telemetry/rolling.h; the registry stores rolling histograms
// by pointer so this header stays free of the time-wheel machinery.
class RollingHistogram;

/// Cumulative + last-window views of one RollingHistogram, copied at a
/// point in time.
struct RollingHistogramSnapshot {
  HistogramSnapshot cumulative;
  HistogramSnapshot window;
  uint64_t window_span_s = 0;
};

/// All metric values of one registry, copied at a point in time. Names are
/// sorted, so exposition output is deterministic.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<std::pair<std::string, RollingHistogramSnapshot>> rolling;
};

/// Named metric store. Get* returns the existing metric or creates it;
/// the returned pointer stays valid for the registry's lifetime. A
/// *family* (the name with any label block stripped) identifies exactly
/// one metric kind — reusing it with a different kind, labeled or not,
/// is a programming error and aborts.
///
/// Labeled lookup: Get*(name, labels) resolves the series
/// `name{k="v",...}`. Distinct label sets per family are capped at
/// kDefaultMaxSeriesPerMetric; a set past the cap is redirected to the
/// family's sink series (every value `__other__`) and counted in
/// `karl_metric_series_dropped_total` — unbounded label values (client
/// ids, paths) degrade gracefully instead of exhausting memory. Lookup
/// takes the registry mutex either way; intern the handle, then record
/// lock-free exactly as with unlabeled metrics.
class Registry {
 public:
  /// Default per-family cap on distinct labeled series.
  static constexpr size_t kDefaultMaxSeriesPerMetric = 64;

  // Both out of line: RollingHistogram is incomplete here, and the
  // member maps' unique_ptrs need the complete type to destroy.
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  /// Histogram that additionally tracks a rolling last-60s window; shows
  /// up in the expositions under `name` (cumulative) and
  /// `name_window60s` (windowed). See telemetry/rolling.h.
  RollingHistogram* GetRollingHistogram(const std::string& name);

  /// Labeled variants: resolve the series `name + labels.Render()`,
  /// subject to the per-family cardinality cap. An empty LabelSet is the
  /// unlabeled series. `name` must be the bare family name (no '{').
  Counter* GetCounter(const std::string& name, const LabelSet& labels);
  Gauge* GetGauge(const std::string& name, const LabelSet& labels);
  Histogram* GetHistogram(const std::string& name, const LabelSet& labels);
  RollingHistogram* GetRollingHistogram(const std::string& name,
                                        const LabelSet& labels);

  /// Lowers (or raises) the per-family series cap. Affects only series
  /// admitted after the call; meant for tests and startup configuration,
  /// not concurrent use with traffic.
  void SetMaxSeriesPerMetric(size_t cap);

  RegistrySnapshot Snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kRollingHistogram };
  // Records the family→kind binding; aborts on a kind clash.
  void RegisterKind(const std::string& name, Kind kind)
      KARL_REQUIRES(mu_);
  // Maps (family, labels) to the series name to store under, applying
  // the cardinality cap and counting redirected lookups.
  std::string AdmitSeries(const std::string& name, const LabelSet& labels)
      KARL_REQUIRES(mu_);
  Counter* GetCounterSeries(const std::string& series, Kind kind)
      KARL_REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::map<std::string, Kind> kinds_ KARL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Counter>> counters_
      KARL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      KARL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      KARL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<RollingHistogram>> rolling_
      KARL_GUARDED_BY(mu_);
  // Rendered label blocks admitted per family (sink block included).
  std::map<std::string, std::vector<std::string>> family_labels_
      KARL_GUARDED_BY(mu_);
  size_t max_series_per_metric_ KARL_GUARDED_BY(mu_) =
      kDefaultMaxSeriesPerMetric;
};

/// The process-wide default registry (what the CLI flags and the bench
/// sidecar expose).
Registry& GlobalRegistry();

/// Metric name with any trailing Prometheus label set ("{...}") removed —
/// what `# TYPE` lines must carry for labeled series such as
/// `karl_build_info{version="...",git_sha="..."}`.
std::string MetricBaseName(const std::string& name);

/// Prometheus-style text exposition: counters and gauges as single
/// samples, histograms as summaries with {quantile="0|0.5|0.95|0.99|1"}
/// plus _sum and _count. Rolling histograms emit the cumulative summary
/// under their name plus a `name_window60s` summary for the last window.
/// Labeled series render with exact label syntax — the quantile label
/// merges into the series' label block (`f{model="a",quantile="0.5"}`),
/// suffixes bind to the name (`f_sum{model="a"}`,
/// `f_window60s{model="a"}`), samples of one family are grouped, and
/// `# TYPE` is emitted once per family.
std::string DumpText(const Registry& registry);

/// JSON exposition: {"counters":{...},"gauges":{...},"histograms":{name:
/// {count,sum,min,max,p50,p95,p99,buckets:[[lower_bound,count],...]}}}.
/// Always valid JSON (non-finite numbers are emitted as null).
std::string DumpJson(const Registry& registry);

/// Writes the registry to `path`: JSON when the path ends in ".json",
/// Prometheus text otherwise.
util::Status WriteMetricsFile(const Registry& registry,
                              const std::string& path);

}  // namespace karl::telemetry

#endif  // KARL_TELEMETRY_METRICS_H_
