#include "telemetry/rolling.h"

#include <algorithm>
#include <limits>

#include "telemetry/context.h"

namespace karl::telemetry {

namespace {

void AtomicAdd(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

RollingHistogram::RollingHistogram()
    : slots_(std::make_unique<Slot[]>(kWheelSlots)) {
  for (int i = 0; i < kWheelSlots; ++i) {
    slots_[static_cast<size_t>(i)].min.store(
        std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    slots_[static_cast<size_t>(i)].max.store(
        -std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  }
}

void RollingHistogram::Record(double value) {
  RecordAt(value, MonotonicMicros());
}

void RollingHistogram::RecordAt(double value, uint64_t now_us) {
  cumulative_.Record(value);
  const uint64_t epoch = now_us / kSubWindowUs;
  Slot& slot = slots_[static_cast<size_t>(epoch % kWheelSlots)];
  if (slot.epoch.load(std::memory_order_acquire) != epoch) {
    Rotate(&slot, epoch);
  }
  slot.counts[static_cast<size_t>(HistogramBucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  AtomicAdd(slot.sum, value);
  AtomicMin(slot.min, value);
  AtomicMax(slot.max, value);
  slot.count.fetch_add(1, std::memory_order_relaxed);
}

void RollingHistogram::Rotate(Slot* slot, uint64_t epoch) {
  const util::MutexLock lock(&rotate_mu_);
  if (slot->epoch.load(std::memory_order_relaxed) == epoch) {
    return;  // Another recorder already rotated this slot.
  }
  for (auto& c : slot->counts) c.store(0, std::memory_order_relaxed);
  slot->count.store(0, std::memory_order_relaxed);
  slot->sum.store(0.0, std::memory_order_relaxed);
  slot->min.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
  slot->max.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
  slot->epoch.store(epoch, std::memory_order_release);
}

HistogramSnapshot RollingHistogram::CumulativeSnapshot() const {
  return cumulative_.Snapshot();
}

HistogramSnapshot RollingHistogram::WindowSnapshot() const {
  return WindowSnapshotAt(MonotonicMicros());
}

HistogramSnapshot RollingHistogram::WindowSnapshotAt(uint64_t now_us) const {
  const uint64_t cur_epoch = now_us / kSubWindowUs;
  const uint64_t lo_epoch =
      cur_epoch >= static_cast<uint64_t>(kMergedSubWindows - 1)
          ? cur_epoch - static_cast<uint64_t>(kMergedSubWindows - 1)
          : 0;
  HistogramSnapshot snap;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < kWheelSlots; ++i) {
    const Slot& slot = slots_[static_cast<size_t>(i)];
    const uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch == Slot::kNeverUsed || epoch < lo_epoch || epoch > cur_epoch) {
      continue;  // Idle or expired sub-window.
    }
    for (int b = 0; b < kHistogramBuckets; ++b) {
      snap.buckets[static_cast<size_t>(b)] +=
          slot.counts[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    }
    const uint64_t c = slot.count.load(std::memory_order_relaxed);
    if (c == 0) continue;
    snap.count += c;
    snap.sum += slot.sum.load(std::memory_order_relaxed);
    min = std::min(min, slot.min.load(std::memory_order_relaxed));
    max = std::max(max, slot.max.load(std::memory_order_relaxed));
  }
  snap.min = snap.count == 0 ? 0.0 : min;
  snap.max = snap.count == 0 ? 0.0 : max;
  return snap;
}

}  // namespace karl::telemetry
