// Rolling-window histogram: a cumulative Histogram paired with a ring of
// bucketed sub-windows rotated on a time wheel, so one metric can answer
// both "since process start" and "over the last ~60 seconds". A
// lifetime-cumulative p95 never forgets the first minute of traffic; the
// windowed view is what alerting and autotuning want.
//
// Layout: the wheel has kWheelSlots slots, each a full bucket array
// stamped with the sub-window epoch (now / kSubWindowUs) it belongs to.
// Recording lands in slot [epoch % kWheelSlots]; the first writer of a
// new epoch clears the slot's previous contents under a rotation mutex
// (taken once per sub-window, never on the steady-state hot path) and
// republishes the epoch. A window snapshot merges the slots whose epoch
// falls inside the last kMergedSubWindows epochs, so the reported span
// covers between (kMergedSubWindows - 1) and kMergedSubWindows
// sub-windows depending on how full the current one is.
//
// Concurrency: every slot field is an atomic mutated with relaxed
// ordering, exactly like Histogram — any number of recorders, no locks
// on the hot path, snapshots from any thread. The rotation race (a
// recorder stalled across a sub-window boundary lands its sample in the
// successor epoch, or a snapshot merges a slot mid-rotation) perturbs
// windowed counts by at most the in-flight samples; the cumulative side
// is exact. That tolerance is the price of a lock-free record path and
// is fine for latency quantiles.

#ifndef KARL_TELEMETRY_ROLLING_H_
#define KARL_TELEMETRY_ROLLING_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

#include "telemetry/metrics.h"
#include "util/mutex.h"

namespace karl::telemetry {

/// See file comment.
class RollingHistogram {
 public:
  /// Sub-window span. 10s sub-windows merged six-at-a-time give the
  /// nominal 60s window reported as `_window60s` in the exposition.
  static constexpr uint64_t kSubWindowUs = 10'000'000;
  /// Sub-windows merged into one window snapshot.
  static constexpr int kMergedSubWindows = 6;
  /// Ring size; > kMergedSubWindows so the slot recycled for a new epoch
  /// is never one still eligible for the current window.
  static constexpr int kWheelSlots = 8;

  RollingHistogram();
  RollingHistogram(const RollingHistogram&) = delete;
  RollingHistogram& operator=(const RollingHistogram&) = delete;

  /// Records into both the cumulative histogram and the current
  /// sub-window (timestamped with telemetry::MonotonicMicros()).
  void Record(double value);

  /// Record with an explicit clock reading — the test seam; production
  /// callers use Record().
  void RecordAt(double value, uint64_t now_us);

  /// Lifetime distribution, identical semantics to Histogram::Snapshot.
  HistogramSnapshot CumulativeSnapshot() const;

  /// Distribution over the last window (≈ kMergedSubWindows sub-windows,
  /// ending now). Empty snapshot when nothing was recorded in-window.
  HistogramSnapshot WindowSnapshot() const;

  /// WindowSnapshot with an explicit clock reading — the test seam.
  HistogramSnapshot WindowSnapshotAt(uint64_t now_us) const;

  /// Nominal window span in seconds (the "60" of `_window60s`).
  static constexpr uint64_t WindowSpanSeconds() {
    return kMergedSubWindows * kSubWindowUs / 1'000'000;
  }

  /// Cumulative sample count.
  uint64_t count() const { return cumulative_.count(); }

 private:
  // One spoke of the wheel. All fields relaxed atomics; `epoch` is
  // store(release)-published after the clear so recorders that observe
  // the new epoch see an empty slot.
  struct Slot {
    static constexpr uint64_t kNeverUsed = ~uint64_t{0};
    std::atomic<uint64_t> epoch{kNeverUsed};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> counts{};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  // +inf sentinel set in ctor/Rotate.
    std::atomic<double> max{0.0};  // -inf sentinel set in ctor/Rotate.
  };

  // Clears `slot` and publishes it as `epoch`. Serialized so exactly one
  // writer resets the slot; on return slot->epoch == epoch.
  void Rotate(Slot* slot, uint64_t epoch);

  Histogram cumulative_;
  // Heap array: Slot holds atomics (immovable), and keeping the wheel
  // out-of-line keeps RollingHistogram itself cheap to place in maps.
  std::unique_ptr<Slot[]> slots_;
  util::Mutex rotate_mu_;
};

}  // namespace karl::telemetry

#endif  // KARL_TELEMETRY_ROLLING_H_
