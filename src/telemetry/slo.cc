#include "telemetry/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "telemetry/context.h"
#include "telemetry/labels.h"
#include "util/log.h"

namespace karl::telemetry {

namespace {

constexpr const char* kKindNames[] = {"latency", "availability"};

// Burn rate = observed bad fraction / allowed bad fraction, capped so
// gauges and JSON stay finite. No traffic burns nothing.
double BurnRate(uint64_t bad, uint64_t total, double target) {
  if (total == 0 || bad == 0) return 0.0;
  const double frac = static_cast<double>(bad) / static_cast<double>(total);
  const double allowed = 1.0 - target;
  if (allowed <= 0.0) return SloEngine::kBurnRateCap;
  return std::min(frac / allowed, SloEngine::kBurnRateCap);
}

// Fraction of the window's error budget still unspent, in [0, 1]. An
// idle window has its whole budget.
double BudgetRemaining(uint64_t bad, uint64_t total, double target) {
  if (total == 0) return 1.0;
  const double allowed = (1.0 - target) * static_cast<double>(total);
  if (allowed <= 0.0) return bad == 0 ? 1.0 : 0.0;
  return std::clamp(1.0 - static_cast<double>(bad) / allowed, 0.0, 1.0);
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
          out->append(buffer);
        } else {
          out->push_back(ch);
        }
    }
  }
}

void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out->append(buffer);
}

}  // namespace

const SloObjective& SloConfig::ForModel(const std::string& model) const {
  const auto it = per_model.find(model);
  return it == per_model.end() ? default_objective : it->second;
}

SloEngine::Tracker::Tracker(const SloObjective& obj) : objective(obj) {
  // Two spare slots past the window so the slot recycled for a new epoch
  // is never one still eligible for the slow window.
  const size_t slots = objective.window_s / (kSubWindowUs / 1'000'000) + 2;
  wheel.resize(slots);
}

SloEngine::SloEngine(SloConfig config, Registry* registry,
                     util::Logger* logger)
    : config_(std::move(config)), registry_(registry), logger_(logger) {}

SloEngine::~SloEngine() = default;

SloEngine::Tracker* SloEngine::GetTracker(const std::string& model) {
  const auto it = trackers_.find(model);
  if (it != trackers_.end()) return it->second.get();
  // Past the model cap, everything lands in the shared sink tracker
  // (which always fits: the cap check admits it via this same path).
  if (trackers_.size() >= config_.max_models &&
      model != kOverflowLabelValue) {
    return GetTracker(std::string(kOverflowLabelValue));
  }
  auto tracker = std::make_unique<Tracker>(config_.ForModel(model));
  Tracker* raw = tracker.get();
  if (registry_ != nullptr) {
    for (size_t k = 0; k < kNumKinds; ++k) {
      const LabelSet base{{"model", model}, {"slo", kKindNames[k]}};
      raw->burn_fast[k] = registry_->GetGauge(
          "karl_slo_burn_rate", LabelSet(base).Set("window", "fast"));
      raw->burn_slow[k] = registry_->GetGauge(
          "karl_slo_burn_rate", LabelSet(base).Set("window", "slow"));
      raw->budget_remaining[k] =
          registry_->GetGauge("karl_slo_error_budget_remaining", base);
    }
  }
  return trackers_.emplace(model, std::move(tracker)).first->second.get();
}

SloEngine::WindowCounts SloEngine::SumWindow(const Tracker& tracker,
                                             uint64_t now_us,
                                             uint64_t span_s) const {
  const uint64_t now_epoch = now_us / kSubWindowUs;
  const uint64_t span_epochs =
      std::max<uint64_t>(1, span_s * 1'000'000 / kSubWindowUs);
  WindowCounts counts;
  for (const Slot& slot : tracker.wheel) {
    if (slot.epoch == Slot::kNeverUsed) continue;
    // In-window: the last span_epochs epochs ending at (and including
    // the partially-filled) now_epoch.
    if (slot.epoch > now_epoch) continue;
    if (slot.epoch + span_epochs <= now_epoch) continue;
    counts.total += slot.total;
    counts.bad[kLatency] += slot.latency_bad;
    counts.bad[kAvailability] += slot.errors;
  }
  return counts;
}

void SloEngine::Evaluate(const std::string& model, Tracker* tracker,
                         uint64_t now_us) {
  const SloObjective& obj = tracker->objective;
  const uint64_t fast_s = std::min<uint64_t>(kFastWindowSeconds, obj.window_s);
  const WindowCounts fast = SumWindow(*tracker, now_us, fast_s);
  const WindowCounts slow = SumWindow(*tracker, now_us, obj.window_s);
  const double targets[kNumKinds] = {obj.latency_target,
                                     obj.availability_target};
  for (size_t k = 0; k < kNumKinds; ++k) {
    const double burn_fast = BurnRate(fast.bad[k], fast.total, targets[k]);
    const double burn_slow = BurnRate(slow.bad[k], slow.total, targets[k]);
    const double budget = BudgetRemaining(slow.bad[k], slow.total, targets[k]);
    tracker->last_burn_fast[k] = burn_fast;
    tracker->last_burn_slow[k] = burn_slow;
    tracker->last_budget[k] = budget;
    if (tracker->burn_fast[k] != nullptr) {
      tracker->burn_fast[k]->Set(burn_fast);
      tracker->burn_slow[k]->Set(burn_slow);
      tracker->budget_remaining[k]->Set(budget);
    }
    const bool burning = burn_fast >= obj.fast_burn_threshold ||
                         burn_slow >= obj.slow_burn_threshold;
    if (burning == tracker->burning[k]) continue;
    tracker->burning[k] = burning;
    if (logger_ == nullptr) continue;
    logger_->Log(
        burning ? util::LogLevel::kWarn : util::LogLevel::kInfo,
        burning ? "slo.burn" : "slo.burn_clear",
        {{"model", model},
         {"slo", kKindNames[k]},
         {"burn_rate_fast", burn_fast},
         {"burn_rate_slow", burn_slow},
         {"fast_burn_threshold", obj.fast_burn_threshold},
         {"slow_burn_threshold", obj.slow_burn_threshold},
         {"budget_remaining", budget},
         {"window_total", slow.total},
         {"window_bad", slow.bad[k]}});
  }
}

void SloEngine::Observe(const std::string& model, double total_us, bool ok) {
  ObserveAt(model, total_us, ok, MonotonicMicros());
}

void SloEngine::ObserveAt(const std::string& model, double total_us, bool ok,
                          uint64_t now_us) {
  const util::MutexLock lock(&mu_);
  Tracker* tracker = GetTracker(model);
  const uint64_t epoch = now_us / kSubWindowUs;
  Slot& slot = tracker->wheel[epoch % tracker->wheel.size()];
  if (slot.epoch != epoch) slot = Slot{.epoch = epoch};
  slot.total += 1;
  if (total_us > tracker->objective.latency_threshold_us) {
    slot.latency_bad += 1;
  }
  if (!ok) slot.errors += 1;
  // Re-evaluate burn on slot rotation — once per 10s per model under
  // load, so edges fire within one sub-window of the crossing even if
  // nothing scrapes.
  if (epoch != tracker->last_epoch) {
    tracker->last_epoch = epoch;
    Evaluate(model, tracker, now_us);
  }
}

void SloEngine::RefreshGauges() { RefreshGaugesAt(MonotonicMicros()); }

void SloEngine::RefreshGaugesAt(uint64_t now_us) {
  const util::MutexLock lock(&mu_);
  for (auto& [model, tracker] : trackers_) {
    Evaluate(model, tracker.get(), now_us);
  }
}

std::string SloEngine::SlozJson() { return SlozJsonAt(MonotonicMicros()); }

std::string SloEngine::SlozJsonAt(uint64_t now_us) {
  RefreshGaugesAt(now_us);
  const util::MutexLock lock(&mu_);
  std::string out = "{\n  \"models\": {";
  bool first_model = true;
  for (const auto& [model, tracker] : trackers_) {
    out += first_model ? "\n" : ",\n";
    first_model = false;
    out += "    \"";
    AppendJsonEscaped(&out, model);
    out += "\": {";
    const SloObjective& obj = tracker->objective;
    const uint64_t fast_s =
        std::min<uint64_t>(kFastWindowSeconds, obj.window_s);
    const WindowCounts fast = SumWindow(*tracker, now_us, fast_s);
    const WindowCounts slow = SumWindow(*tracker, now_us, obj.window_s);
    const double targets[kNumKinds] = {obj.latency_target,
                                       obj.availability_target};
    for (size_t k = 0; k < kNumKinds; ++k) {
      out += k == 0 ? "\n" : ",\n";
      out += std::string("      \"") + kKindNames[k] + "\": {";
      char buffer[96];
      if (k == kLatency) {
        out += "\"threshold_us\": ";
        AppendJsonNumber(&out, obj.latency_threshold_us);
        out += ", ";
      }
      out += "\"target\": ";
      AppendJsonNumber(&out, targets[k]);
      std::snprintf(buffer, sizeof(buffer),
                    ", \"window_s\": %llu, \"window_total\": %llu, "
                    "\"window_bad\": %llu, \"fast_total\": %llu, "
                    "\"fast_bad\": %llu",
                    static_cast<unsigned long long>(obj.window_s),
                    static_cast<unsigned long long>(slow.total),
                    static_cast<unsigned long long>(slow.bad[k]),
                    static_cast<unsigned long long>(fast.total),
                    static_cast<unsigned long long>(fast.bad[k]));
      out += buffer;
      out += ", \"burn_rate_fast\": ";
      AppendJsonNumber(&out, tracker->last_burn_fast[k]);
      out += ", \"burn_rate_slow\": ";
      AppendJsonNumber(&out, tracker->last_burn_slow[k]);
      out += ", \"fast_burn_threshold\": ";
      AppendJsonNumber(&out, obj.fast_burn_threshold);
      out += ", \"slow_burn_threshold\": ";
      AppendJsonNumber(&out, obj.slow_burn_threshold);
      out += ", \"budget_remaining\": ";
      AppendJsonNumber(&out, tracker->last_budget[k]);
      out += std::string(", \"burning\": ") +
             (tracker->burning[k] ? "true" : "false") + "}";
    }
    out += "\n    }";
  }
  out += first_model ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace karl::telemetry
