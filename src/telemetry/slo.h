// Per-model SLO tracking: rolling error budgets with fast/slow burn-rate
// evaluation over the served request stream.
//
// Model: each served model carries two objectives —
//   latency:      at least `latency_target` of requests complete within
//                 `latency_threshold_us`
//   availability: at least `availability_target` of requests succeed
// both measured over a rolling `window_s` error-budget window. A request
// that misses the threshold (or fails) consumes error budget; the budget
// is `1 - target` of the window's traffic.
//
// Burn rate (Google SRE workbook semantics): the ratio of the observed
// bad fraction to the allowed bad fraction over an evaluation window.
// burn == 1 means budget is being consumed exactly at the sustainable
// rate; burn == 14.4 over a 5-minute window means the whole budget would
// be gone in window_s / 14.4. Two windows are evaluated: "fast"
// (min(300s, window_s), catches sharp regressions within minutes) and
// "slow" (the full budget window, catches slow leaks). Crossing either
// configured threshold logs one WARN `slo.burn` line (and one INFO
// `slo.burn_clear` on recovery) — edges, not levels, so a sustained
// burn does not spam the log.
//
// Mechanics: one time wheel per model (10s slots spanning the budget
// window) counting {total, latency_bad, errors}; everything is guarded
// by one engine mutex. Observe() is called once per completed request
// from the server's event-loop thread — a short uncontended lock, never
// on the eval worker hot path. Burn gauges
// (`karl_slo_burn_rate{model,slo,window}`,
// `karl_slo_error_budget_remaining{model,slo}`) and the WARN edge are
// re-evaluated when a model's wheel rotates to a new 10s slot and on
// every SlozJson() render (i.e. every /sloz or pre-scrape refresh), so
// scrapes always see current burn.
//
// Cardinality follows the metrics policy: at most `max_models` tracked
// models; excess models collapse into the `__other__` tracker.

#ifndef KARL_TELEMETRY_SLO_H_
#define KARL_TELEMETRY_SLO_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "util/mutex.h"

namespace karl::util {
class Logger;
}  // namespace karl::util

namespace karl::telemetry {

/// Objectives for one model (or the default for all models).
struct SloObjective {
  /// A request is latency-good when total_us <= this.
  double latency_threshold_us = 100'000.0;
  /// Required fraction of latency-good requests, in (0, 1).
  double latency_target = 0.99;
  /// Required fraction of successful requests, in (0, 1).
  double availability_target = 0.999;
  /// Rolling error-budget window, seconds.
  uint64_t window_s = 3600;
  /// WARN when the fast-window burn rate reaches this.
  double fast_burn_threshold = 14.4;
  /// WARN when the slow-window burn rate reaches this.
  double slow_burn_threshold = 6.0;
};

/// Full SLO configuration: a default objective plus per-model overrides
/// (see server/slo_config.h for the JSON form behind --slo-config).
struct SloConfig {
  SloObjective default_objective;
  std::map<std::string, SloObjective> per_model;
  /// Distinct models tracked before collapsing into `__other__`.
  size_t max_models = 64;

  const SloObjective& ForModel(const std::string& model) const;
};

/// See file comment.
class SloEngine {
 public:
  /// Wheel slot span; matches RollingHistogram's sub-window.
  static constexpr uint64_t kSubWindowUs = 10'000'000;
  /// Fast burn-evaluation window, seconds (clamped to window_s).
  static constexpr uint64_t kFastWindowSeconds = 300;
  /// Burn-rate gauges are clamped here so the exposition stays finite.
  static constexpr double kBurnRateCap = 1e9;

  /// `registry` receives the burn gauges (may be null: tracking and
  /// logging still work). `logger` receives the WARN edges (may be
  /// null). Both non-owning, must outlive the engine.
  SloEngine(SloConfig config, Registry* registry, util::Logger* logger);
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;
  ~SloEngine();

  /// Accounts one completed request against `model`'s objectives.
  void Observe(const std::string& model, double total_us, bool ok);

  /// Observe with an explicit clock reading — the test seam; the clock
  /// domain is telemetry::MonotonicMicros().
  void ObserveAt(const std::string& model, double total_us, bool ok,
                 uint64_t now_us);

  /// Re-evaluates burn rates for every tracked model: updates gauges and
  /// fires WARN/clear edges. Called implicitly by SlozJson().
  void RefreshGauges();
  void RefreshGaugesAt(uint64_t now_us);

  /// JSON document behind /sloz: per model, per objective — config,
  /// window traffic, burn rates, remaining budget fraction, burning
  /// flag. Refreshes gauges as a side effect.
  std::string SlozJson();
  std::string SlozJsonAt(uint64_t now_us);

  const SloConfig& config() const { return config_; }

 private:
  // Objective axes, used to index per-tracker state.
  enum SloKind : size_t { kLatency = 0, kAvailability = 1, kNumKinds = 2 };

  struct Slot {
    static constexpr uint64_t kNeverUsed = ~uint64_t{0};
    uint64_t epoch = kNeverUsed;
    uint64_t total = 0;
    uint64_t latency_bad = 0;
    uint64_t errors = 0;
  };

  struct WindowCounts {
    uint64_t total = 0;
    uint64_t bad[kNumKinds] = {0, 0};
  };

  struct Tracker {
    explicit Tracker(const SloObjective& objective);
    SloObjective objective;
    std::vector<Slot> wheel;
    uint64_t last_epoch = 0;
    // Interned gauges, null without a registry; indexed by SloKind.
    Gauge* burn_fast[kNumKinds] = {nullptr, nullptr};
    Gauge* burn_slow[kNumKinds] = {nullptr, nullptr};
    Gauge* budget_remaining[kNumKinds] = {nullptr, nullptr};
    // Last evaluation, for edge detection and /sloz.
    double last_burn_fast[kNumKinds] = {0.0, 0.0};
    double last_burn_slow[kNumKinds] = {0.0, 0.0};
    double last_budget[kNumKinds] = {1.0, 1.0};
    bool burning[kNumKinds] = {false, false};
  };

  Tracker* GetTracker(const std::string& model) KARL_REQUIRES(mu_);
  WindowCounts SumWindow(const Tracker& tracker, uint64_t now_us,
                         uint64_t span_s) const KARL_REQUIRES(mu_);
  void Evaluate(const std::string& model, Tracker* tracker, uint64_t now_us)
      KARL_REQUIRES(mu_);

  const SloConfig config_;
  Registry* const registry_;
  util::Logger* const logger_;

  mutable util::Mutex mu_;
  std::map<std::string, std::unique_ptr<Tracker>> trackers_
      KARL_GUARDED_BY(mu_);
};

}  // namespace karl::telemetry

#endif  // KARL_TELEMETRY_SLO_H_
