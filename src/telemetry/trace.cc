#include "telemetry/trace.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "telemetry/metrics.h"

namespace karl::telemetry {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
          out->append(buffer);
        } else {
          out->push_back(ch);
        }
    }
  }
}

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out->append(buffer);
}

}  // namespace

TraceRecorder::TraceRecorder(size_t max_events)
    : max_events_(max_events), epoch_(std::chrono::steady_clock::now()) {}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::Add(Event event) {
  const util::MutexLock lock(&mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    if (dropped_counter_ != nullptr) dropped_counter_->Increment();
    return;
  }
  event.tid = TidLocked();
  events_.push_back(std::move(event));
}

void TraceRecorder::AttachMetrics(Registry* registry) {
  const util::MutexLock lock(&mu_);
  dropped_counter_ = registry != nullptr
                         ? registry->GetCounter("karl_trace_dropped_events")
                         : nullptr;
}

int TraceRecorder::TidLocked() {
  const auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(),
                    static_cast<int>(tids_.size()) + 1);
  return it->second;
}

void TraceRecorder::CompleteEvent(std::string name, uint64_t ts_us,
                                  uint64_t dur_us, TraceArgs args) {
  Event event;
  event.name = std::move(name);
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.args = std::move(args);
  Add(std::move(event));
}

void TraceRecorder::CounterEvent(std::string name, uint64_t ts_us,
                                 TraceArgs args) {
  Event event;
  event.name = std::move(name);
  event.phase = 'C';
  event.ts_us = ts_us;
  event.args = std::move(args);
  Add(std::move(event));
}

void TraceRecorder::InstantEvent(std::string name, uint64_t ts_us,
                                 TraceArgs args) {
  Event event;
  event.name = std::move(name);
  event.phase = 'i';
  event.ts_us = ts_us;
  event.args = std::move(args);
  Add(std::move(event));
}

void TraceRecorder::FlowEvent(FlowPhase phase, uint64_t flow_id,
                              uint64_t ts_us) {
  Event event;
  event.name = "req";
  switch (phase) {
    case FlowPhase::kStart:
      event.phase = 's';
      break;
    case FlowPhase::kStep:
      event.phase = 't';
      break;
    case FlowPhase::kEnd:
      event.phase = 'f';
      break;
  }
  event.ts_us = ts_us;
  event.flow_id = flow_id;
  Add(std::move(event));
}

size_t TraceRecorder::size() const {
  const util::MutexLock lock(&mu_);
  return events_.size();
}

size_t TraceRecorder::dropped() const {
  const util::MutexLock lock(&mu_);
  return dropped_;
}

std::string TraceRecorder::ToJson() const {
  const util::MutexLock lock(&mu_);
  std::string out = "{\"traceEvents\": [";
  char buffer[96];
  bool first = true;
  for (const Event& event : events_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"name\": \"";
    AppendEscaped(&out, event.name);
    std::snprintf(buffer, sizeof(buffer),
                  "\", \"ph\": \"%c\", \"ts\": %llu, \"pid\": 1, "
                  "\"tid\": %d",
                  event.phase,
                  static_cast<unsigned long long>(event.ts_us), event.tid);
    out += buffer;
    if (event.phase == 'X') {
      std::snprintf(buffer, sizeof(buffer), ", \"dur\": %llu",
                    static_cast<unsigned long long>(event.dur_us));
      out += buffer;
    }
    if (event.phase == 'i') {
      out += ", \"s\": \"t\"";  // Thread-scoped instant marker.
    }
    if (event.phase == 's' || event.phase == 't' || event.phase == 'f') {
      // Flow events carry the flow id and a category (flows are matched
      // by (cat, name, id)); the end event binds to its enclosing slice.
      std::snprintf(buffer, sizeof(buffer),
                    ", \"cat\": \"req\", \"id\": %llu",
                    static_cast<unsigned long long>(event.flow_id));
      out += buffer;
      if (event.phase == 'f') out += ", \"bp\": \"e\"";
    }
    if (!event.args.empty()) {
      out += ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out += ", ";
        first_arg = false;
        out += "\"";
        AppendEscaped(&out, key);
        out += "\": ";
        AppendNumber(&out, value);
      }
      out += "}";
    }
    out += "}";
  }
  out += first ? "],\n" : "\n],\n";
  std::snprintf(buffer, sizeof(buffer),
                "\"displayTimeUnit\": \"ms\", \"droppedEvents\": %llu}\n",
                static_cast<unsigned long long>(dropped_));
  out += buffer;
  return out;
}

util::Status TraceRecorder::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Status::IOError("cannot open trace file '" + path + "'");
  }
  const std::string body = ToJson();
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  out.flush();
  if (!out) {
    return util::Status::IOError("failed writing trace file '" + path + "'");
  }
  return util::Status::OK();
}

}  // namespace karl::telemetry
