// Per-query trace recorder producing Chrome trace-event JSON ("trace
// event format"), loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// The engines emit three event shapes:
//   - complete events ("ph":"X"): one span per query or rebuild, with
//     duration and summary args (iterations, kernel evals, result);
//   - counter events ("ph":"C"): per-refinement-iteration tracks of
//     lb / ub / gap and cumulative node expansions / kernel evals,
//     rendered by Perfetto as stacked counter tracks;
//   - instant events ("ph":"i"): singular moments such as an index
//     rebuild trigger.
// The serving stack adds flow events ("ph":"s"/"t"/"f" under category
// "req", keyed by the request id): emitted inside the per-stage spans
// of one request on each thread it crosses, they make Perfetto draw a
// connected arrow lane per request across the epoll loop, the
// coalescer dispatcher, and the pool workers (telemetry/context.h).
//
// The recorder is thread-safe (one mutex around an event vector; threads
// are mapped to stable small tids) and bounded: past `max_events` new
// events are counted as dropped instead of stored, so an accidental
// trace of a huge run degrades instead of exhausting memory. Timestamps
// are microseconds on the steady clock since recorder construction.

#ifndef KARL_TELEMETRY_TRACE_H_
#define KARL_TELEMETRY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"

namespace karl::telemetry {

class Counter;
class Registry;

/// Key/value payload attached to a trace event; values are numbers.
using TraceArgs = std::vector<std::pair<std::string, double>>;

/// Bounded, thread-safe Chrome-trace-event collector.
class TraceRecorder {
 public:
  /// `max_events`: hard cap on stored events; later events are dropped
  /// (and counted) rather than stored.
  explicit TraceRecorder(size_t max_events = 1u << 20);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since recorder construction (steady clock) — the `ts`
  /// domain of every event.
  uint64_t NowMicros() const;

  /// Adds a complete ("X") event covering [ts_us, ts_us + dur_us].
  void CompleteEvent(std::string name, uint64_t ts_us, uint64_t dur_us,
                     TraceArgs args);

  /// Adds a counter ("C") event; each arg becomes one counter series.
  void CounterEvent(std::string name, uint64_t ts_us, TraceArgs args);

  /// Adds an instant ("i") event.
  void InstantEvent(std::string name, uint64_t ts_us, TraceArgs args);

  /// Flow-event phases: start ("s"), step ("t"), end ("f").
  enum class FlowPhase { kStart, kStep, kEnd };

  /// Adds one flow event of the "req" flow keyed by `flow_id`. Flow
  /// events bind to the slice enclosing `ts_us` on the calling thread,
  /// so emit them inside the span they should attach to; matching
  /// start/step/end events with one id render as arrows in Perfetto.
  void FlowEvent(FlowPhase phase, uint64_t flow_id, uint64_t ts_us);

  /// Exports the dropped-event count as the `karl_trace_dropped_events`
  /// counter in `registry` (incremented as drops happen, so truncated
  /// traces are visible in metrics too, not only in the trace file).
  /// Call before recording begins; null detaches.
  void AttachMetrics(Registry* registry);

  /// Events stored so far.
  size_t size() const;

  /// Events rejected because the cap was reached.
  size_t dropped() const;

  /// Renders {"traceEvents":[...]} JSON. Always syntactically valid.
  std::string ToJson() const;

  /// Writes ToJson() to `path`.
  util::Status WriteJson(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    char phase = 'i';
    uint64_t ts_us = 0;
    uint64_t dur_us = 0;   // Complete events only.
    uint64_t flow_id = 0;  // Flow events only.
    int tid = 0;
    TraceArgs args;
  };

  void Add(Event event);
  // Stable small id for the calling thread.
  int TidLocked() KARL_REQUIRES(mu_);

  const size_t max_events_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable util::Mutex mu_;
  std::vector<Event> events_ KARL_GUARDED_BY(mu_);
  size_t dropped_ KARL_GUARDED_BY(mu_) = 0;
  std::map<std::thread::id, int> tids_ KARL_GUARDED_BY(mu_);
  Counter* dropped_counter_ = nullptr;  // See AttachMetrics.
};

}  // namespace karl::telemetry

#endif  // KARL_TELEMETRY_TRACE_H_
