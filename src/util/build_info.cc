#include "util/build_info.h"

// Fallbacks keep non-CMake builds (and editors' flycheck) compiling.
#ifndef KARL_BUILD_VERSION
#define KARL_BUILD_VERSION "unknown"
#endif
#ifndef KARL_BUILD_GIT_SHA
#define KARL_BUILD_GIT_SHA "unknown"
#endif
#ifndef KARL_BUILD_TYPE
#define KARL_BUILD_TYPE "unknown"
#endif

namespace karl::util {

const char* BuildVersion() { return KARL_BUILD_VERSION; }

const char* BuildGitSha() { return KARL_BUILD_GIT_SHA; }

const char* BuildType() { return KARL_BUILD_TYPE; }

std::string BuildInfoMetricName() {
  std::string name = "karl_build_info{version=\"";
  name += BuildVersion();
  name += "\",git_sha=\"";
  name += BuildGitSha();
  name += "\",build_type=\"";
  name += BuildType();
  name += "\"}";
  return name;
}

}  // namespace karl::util
