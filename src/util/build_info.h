// Build identity baked in at compile time: semantic version, git commit,
// and CMake build type. The values come from compile definitions set on
// build_info.cc alone (see src/CMakeLists.txt), so touching a flag or the
// git HEAD recompiles one translation unit, not the library.
//
// The canonical consumer is the `karl_build_info` gauge (value 1, labels
// carrying the identity — the standard Prometheus idiom for exposing
// build metadata through a numeric metric), registered by every
// long-running binary at startup and therefore visible in /metrics,
// /varz, and statusz.

#ifndef KARL_UTIL_BUILD_INFO_H_
#define KARL_UTIL_BUILD_INFO_H_

#include <string>

namespace karl::util {

/// Semantic version of the build ("1.0.0"); never empty.
const char* BuildVersion();

/// Short git commit hash at configure time, or "unknown" outside a git
/// checkout.
const char* BuildGitSha();

/// CMake build type ("Release", "Debug", ...), or "unknown".
const char* BuildType();

/// The labeled Prometheus series name for the build-info gauge:
///   karl_build_info{version="...",git_sha="...",build_type="..."}
/// Callers register it with value 1:
///   registry->GetGauge(util::BuildInfoMetricName())->Set(1.0);
std::string BuildInfoMetricName();

}  // namespace karl::util

#endif  // KARL_UTIL_BUILD_INFO_H_
