#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace karl::util {

CheckFailure::CheckFailure(const char* file, int line,
                           const char* condition) {
  stream_ << file << ":" << line << ": KARL_CHECK(" << condition
          << ") failed";
}

CheckFailure::~CheckFailure() { Fail(); }

void CheckFailure::Fail() {
  const std::string message = stream_.str();
  std::fputs(message.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace karl::util
