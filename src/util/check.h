// KARL_CHECK / KARL_DCHECK: invariant checks with formatted messages,
// replacing bare `assert`.
//
//   KARL_CHECK(lb <= ub) << "node " << id << ": lb=" << lb << " ub=" << ub;
//
// KARL_CHECK is always on (release builds included) — use it for
// invariants whose violation means silently wrong query answers.
// KARL_DCHECK compiles to nothing under NDEBUG — use it on hot paths.
// On failure both print "file:line: KARL_CHECK(cond) failed: <message>"
// to stderr and abort(), so sanitizers and death tests see a clean,
// diagnosable crash.
//
// This header is dependency-free (in particular it does NOT include
// util/status.h, which itself uses these macros).

#ifndef KARL_UTIL_CHECK_H_
#define KARL_UTIL_CHECK_H_

#include <sstream>

namespace karl::util {

/// Failure sink for KARL_CHECK. Streams message parts; the destructor
/// prints the assembled diagnostic and aborts. Only ever constructed on
/// the (cold) failure path.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition);

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  /// Aborts the process after emitting the diagnostic. Marked noreturn
  /// indirectly via Fail() so the compiler still generates the normal
  /// end-of-scope call.
  ~CheckFailure();

  /// The message stream; anything << into it lands in the diagnostic.
  std::ostream& stream() { return stream_; }

 private:
  [[noreturn]] void Fail();

  std::ostringstream stream_;
};

}  // namespace karl::util

/// Always-on invariant check with a streamed message.
#define KARL_CHECK(condition)                                        \
  while (!(condition))                                               \
  ::karl::util::CheckFailure(__FILE__, __LINE__, #condition).stream()

/// Debug-only invariant check; no-op (condition not evaluated) under
/// NDEBUG. The dead-stream branch keeps the streamed operands
/// type-checked in all build modes.
#ifdef NDEBUG
#define KARL_DCHECK(condition)                                       \
  while (false && !(condition))                                      \
  ::karl::util::CheckFailure(__FILE__, __LINE__, #condition).stream()
#else
#define KARL_DCHECK(condition) KARL_CHECK(condition)
#endif

#endif  // KARL_UTIL_CHECK_H_
