#include "util/errno.h"

#include <string.h>  // strerror_r (not in <cstring> on all libcs).

namespace karl::util {

std::string ErrnoString(int err) {
  char buf[256];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU variant: returns the message pointer (buf or a static string).
  return strerror_r(err, buf, sizeof(buf));
#else
  // XSI variant: fills buf, nonzero on failure.
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    return "errno " + std::to_string(err);
  }
  return buf;
#endif
}

}  // namespace karl::util
