// Thread-safe errno-to-text conversion.
//
// std::strerror returns a pointer into internal, possibly shared storage
// and is not required to be thread-safe (clang-tidy: concurrency-mt-
// unsafe); every call site in the library goes through ErrnoString
// instead, which uses strerror_r into a caller-local buffer.

#ifndef KARL_UTIL_ERRNO_H_
#define KARL_UTIL_ERRNO_H_

#include <string>

namespace karl::util {

/// The strerror text for `err` (an errno value), via the reentrant
/// strerror_r. Unknown values degrade to "errno <n>" instead of failing.
std::string ErrnoString(int err);

}  // namespace karl::util

#endif  // KARL_UTIL_ERRNO_H_
