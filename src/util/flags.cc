#include "util/flags.h"

#include <cerrno>
#include <cstdlib>

namespace karl::util {

util::Result<ParsedArgs> ParsedArgs::Parse(int argc,
                                           const char* const* argv) {
  ParsedArgs parsed;
  int i = 1;
  while (i < argc) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      if (token.size() == 2) {
        return util::Status::InvalidArgument("bare '--' is not a valid flag");
      }
      const std::string name = token.substr(2);
      // --name=value binds inline; otherwise the value is the next token
      // unless it is another flag or absent.
      if (const size_t eq = name.find('='); eq != std::string::npos) {
        if (eq == 0) {
          return util::Status::InvalidArgument("flag '" + token +
                                               "' has an empty name");
        }
        parsed.flags_[name.substr(0, eq)] = name.substr(eq + 1);
        i += 1;
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        parsed.flags_[name] = argv[i + 1];
        i += 2;
      } else {
        parsed.flags_[name] = "";
        i += 1;
      }
    } else {
      if (parsed.command_.empty() && parsed.positional_.empty()) {
        parsed.command_ = token;
      } else {
        parsed.positional_.push_back(token);
      }
      i += 1;
    }
  }
  return parsed;
}

bool ParsedArgs::Has(const std::string& name) const {
  touched_[name] = true;
  return flags_.count(name) > 0;
}

std::string ParsedArgs::GetString(const std::string& name,
                                  const std::string& fallback) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

util::Result<double> ParsedArgs::GetDouble(const std::string& name,
                                           double fallback) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return util::Status::InvalidArgument("flag --" + name +
                                         " expects a number, got '" +
                                         it->second + "'");
  }
  return value;
}

util::Result<int64_t> ParsedArgs::GetInt(const std::string& name,
                                         int64_t fallback) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return util::Status::InvalidArgument("flag --" + name +
                                         " expects an integer, got '" +
                                         it->second + "'");
  }
  return static_cast<int64_t>(value);
}

std::vector<std::string> ParsedArgs::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, _] : flags_) {
    if (!touched_.count(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace karl::util
