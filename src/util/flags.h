// Minimal command-line flag parsing for the karl_cli tool:
// `subcommand --flag value --bool-flag` conventions, no external deps.

#ifndef KARL_UTIL_FLAGS_H_
#define KARL_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace karl::util {

/// Parsed command line: one optional subcommand, --key value flags, and
/// bare --switches.
class ParsedArgs {
 public:
  /// Parses argv[1..). Flags start with "--" and bind their value either
  /// inline ("--name=value") or from the next token ("--name value"); a
  /// flag followed by another flag (or nothing) is a boolean switch. The
  /// first non-flag token is the subcommand; later non-flag tokens are
  /// positional arguments.
  static util::Result<ParsedArgs> Parse(int argc, const char* const* argv);

  /// The subcommand ("" if none).
  const std::string& command() const { return command_; }

  /// Positional arguments after the subcommand.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True iff --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String flag value or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Numeric flag value; error if present but unparsable.
  util::Result<double> GetDouble(const std::string& name,
                                 double fallback) const;

  /// Integer flag value; error if present but unparsable.
  util::Result<int64_t> GetInt(const std::string& name,
                               int64_t fallback) const;

  /// Flags that were never read by any accessor — typo detection.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;  // name -> value ("" = switch).
  mutable std::map<std::string, bool> touched_;
};

}  // namespace karl::util

#endif  // KARL_UTIL_FLAGS_H_
