#include "util/log.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <ctime>

namespace karl::util {

namespace {

// Escapes a string for a double-quoted context (JSON-compatible, also
// used for quoted text values) — no raw newlines ever reach the line.
void AppendEscaped(std::string* out, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
          out->append(buffer);
        } else {
          out->push_back(ch);
        }
    }
  }
}

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out->append(buffer);
}

// UTC wall-clock timestamp with microseconds, ISO 8601.
void AppendTimestamp(std::string* out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          now.time_since_epoch())
          .count() %
      1000000;
  std::tm tm{};
  gmtime_r(&seconds, &tm);
  // Sized for the compiler's worst-case field widths (full int range),
  // not just the realistic 27-byte output, to stay -Wformat-truncation
  // clean.
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%06dZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(micros));
  out->append(buffer);
}

void AppendFieldValue(std::string* out, const LogField& field, bool ndjson) {
  char buffer[32];
  switch (field.kind) {
    case LogField::Kind::kString:
      out->push_back('"');
      AppendEscaped(out, field.str);
      out->push_back('"');
      break;
    case LogField::Kind::kNumber:
      AppendNumber(out, field.num);
      break;
    case LogField::Kind::kUint:
      std::snprintf(buffer, sizeof(buffer), "%llu",
                    static_cast<unsigned long long>(field.uint));
      out->append(buffer);
      break;
    case LogField::Kind::kInt:
      std::snprintf(buffer, sizeof(buffer), "%lld",
                    static_cast<long long>(field.int_));
      out->append(buffer);
      break;
    case LogField::Kind::kBool:
      out->append(field.flag ? "true" : "false");
      break;
  }
  (void)ndjson;
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

util::Result<LogLevel> ParseLogLevel(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return util::Status::InvalidArgument("unknown log level '" +
                                       std::string(name) +
                                       "' (debug|info|warn|error)");
}

Logger::Logger(std::FILE* stream, Options options)
    : Logger(stream, options, /*owns_stream=*/false) {}

Logger::Logger(std::FILE* stream, Options options, bool owns_stream)
    : stream_(stream),
      owns_stream_(owns_stream),
      options_(options),
      min_level_(options.min_level),
      tokens_(options.rate_limit_burst),
      last_refill_(std::chrono::steady_clock::now()) {}

util::Result<std::unique_ptr<Logger>> Logger::Open(const std::string& path,
                                                   Options options) {
  std::FILE* stream = std::fopen(path.c_str(), "ae");
  if (stream == nullptr) {
    return util::Status::IOError("cannot open log file '" + path + "'");
  }
  return std::unique_ptr<Logger>(
      new Logger(stream, options, /*owns_stream=*/true));
}

Logger::~Logger() {
  if (owns_stream_ && stream_ != nullptr) std::fclose(stream_);
}

void Logger::Log(LogLevel level, std::string_view event,
                 std::vector<LogField> fields) {
  if (!enabled(level)) return;

  uint64_t suppressed_note = 0;
  {
    const MutexLock lock(&mu_);
    if (options_.rate_limit_per_sec > 0.0) {
      const auto now = std::chrono::steady_clock::now();
      const double elapsed =
          std::chrono::duration<double>(now - last_refill_).count();
      last_refill_ = now;
      tokens_ = std::min(options_.rate_limit_burst,
                         tokens_ + elapsed * options_.rate_limit_per_sec);
      if (tokens_ < 1.0) {
        ++suppressed_total_;
        ++suppressed_since_emit_;
        return;
      }
      tokens_ -= 1.0;
    }
    suppressed_note = suppressed_since_emit_;
    suppressed_since_emit_ = 0;
    ++emitted_;
  }
  if (suppressed_note > 0) {
    fields.emplace_back("suppressed", suppressed_note);
  }

  // Format outside the lock; the final write is a single buffered
  // fwrite, so concurrent lines never interleave mid-line.
  std::string line;
  line.reserve(128);
  if (options_.ndjson) {
    line += "{\"ts\":\"";
    AppendTimestamp(&line);
    line += "\",\"level\":\"";
    line += LogLevelName(level);
    line += "\",\"event\":\"";
    AppendEscaped(&line, event);
    line += "\"";
    for (const LogField& field : fields) {
      line += ",\"";
      AppendEscaped(&line, field.key);
      line += "\":";
      AppendFieldValue(&line, field, /*ndjson=*/true);
    }
    line += "}\n";
  } else {
    AppendTimestamp(&line);
    line.push_back(' ');
    std::string level_name(LogLevelName(level));
    for (char& ch : level_name) ch = static_cast<char>(std::toupper(ch));
    line += level_name;
    line.push_back(' ');
    AppendEscaped(&line, event);
    for (const LogField& field : fields) {
      line.push_back(' ');
      AppendEscaped(&line, field.key);
      line.push_back('=');
      AppendFieldValue(&line, field, /*ndjson=*/false);
    }
    line.push_back('\n');
  }

  const MutexLock lock(&mu_);
  std::fwrite(line.data(), 1, line.size(), stream_);
  std::fflush(stream_);
}

uint64_t Logger::suppressed() const {
  const MutexLock lock(&mu_);
  return suppressed_total_;
}

uint64_t Logger::emitted() const {
  const MutexLock lock(&mu_);
  return emitted_;
}

Logger& DefaultLogger() {
  static Logger logger(stderr, Logger::Options{});
  return logger;
}

void Log(Logger* logger, LogLevel level, std::string_view event,
         std::vector<LogField> fields) {
  if (logger == nullptr) return;
  logger->Log(level, event, std::move(fields));
}

}  // namespace karl::util
