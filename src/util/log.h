// Structured, leveled, thread-safe logging with token-bucket rate
// limiting — the diagnostics channel of the serving stack (and anything
// else that outgrows fprintf).
//
// A log line is an event name plus typed key/value fields, rendered
// either as human-readable text
//   2026-08-06T12:00:00.123456Z INFO server.start port=7070 model="x"
// or as NDJSON (one JSON object per line; the access-log format)
//   {"ts":"...","level":"info","event":"server.start","port":7070,...}
// Both renderings escape strings, so a line never contains a raw
// newline — safe to tail, grep, and parse line-by-line.
//
// Concurrency: any number of threads may log to one Logger; the write
// (and the rate-limit bucket) is guarded by a mutex held only for the
// final buffered write, and each line is flushed so crashes and tests
// never lose the tail.
//
// Rate limiting: an optional token bucket (burst + sustained per-second
// rate) drops excess lines instead of blocking the caller; drops are
// counted and reported on the next permitted line as a "suppressed"
// field, so throttled logs are self-describing.

#ifndef KARL_UTIL_LOG_H_
#define KARL_UTIL_LOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"

namespace karl::util {

/// Log severities, ordered; a logger emits levels >= its minimum.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Lowercase level name ("debug" / "info" / "warn" / "error").
std::string_view LogLevelName(LogLevel level);

/// Parses a level name (as accepted by --log-level); error on anything
/// other than debug|info|warn|error.
util::Result<LogLevel> ParseLogLevel(std::string_view name);

/// One typed key/value field of a structured log line.
struct LogField {
  enum class Kind { kString, kNumber, kUint, kInt, kBool };

  LogField(std::string_view key, std::string_view value)
      : key(key), kind(Kind::kString), str(value) {}
  LogField(std::string_view key, const char* value)
      : key(key), kind(Kind::kString), str(value) {}
  LogField(std::string_view key, const std::string& value)
      : key(key), kind(Kind::kString), str(value) {}
  LogField(std::string_view key, double value)
      : key(key), kind(Kind::kNumber), num(value) {}
  LogField(std::string_view key, uint64_t value)
      : key(key), kind(Kind::kUint), uint(value) {}
  LogField(std::string_view key, int64_t value)
      : key(key), kind(Kind::kInt), int_(value) {}
  LogField(std::string_view key, int value)
      : key(key), kind(Kind::kInt), int_(value) {}
  LogField(std::string_view key, bool value)
      : key(key), kind(Kind::kBool), flag(value) {}

  std::string key;
  Kind kind = Kind::kString;
  std::string str;
  double num = 0.0;
  uint64_t uint = 0;
  int64_t int_ = 0;
  bool flag = false;
};

/// See file comment.
class Logger {
 public:
  struct Options {
    /// Lines below this level are dropped before formatting.
    LogLevel min_level = LogLevel::kInfo;
    /// NDJSON rendering instead of text.
    bool ndjson = false;
    /// Token bucket: sustained lines/second; <= 0 disables limiting.
    double rate_limit_per_sec = 0.0;
    /// Token bucket burst capacity (>= 1 when limiting is on).
    double rate_limit_burst = 10.0;
  };

  /// Logs to `stream` (non-owning; e.g. stderr).
  Logger(std::FILE* stream, Options options);

  /// Opens `path` for appending and logs there (owning).
  static util::Result<std::unique_ptr<Logger>> Open(const std::string& path,
                                                    Options options);

  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Emits one structured line; drops it when below the minimum level
  /// or when the rate limiter is out of tokens.
  void Log(LogLevel level, std::string_view event,
           std::vector<LogField> fields = {});

  /// True when `level` would be emitted (cheap pre-check for call
  /// sites that build expensive field lists).
  bool enabled(LogLevel level) const {
    return level >= min_level_.load(std::memory_order_relaxed);
  }

  /// Thread-safe: the level may be raised or lowered while other
  /// threads are logging (an in-flight line keeps the level it saw).
  void set_min_level(LogLevel level) {
    min_level_.store(level, std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return min_level_.load(std::memory_order_relaxed);
  }

  /// Lines dropped by the rate limiter so far.
  uint64_t suppressed() const;

  /// Lines emitted so far.
  uint64_t emitted() const;

 private:
  Logger(std::FILE* stream, Options options, bool owns_stream);

  std::FILE* stream_;  // Written only under mu_ after construction.
  const bool owns_stream_;
  const Options options_;
  // Relaxed atomic: set_min_level may race with enabled()/Log checks by
  // design (a stale read just delays the new level by one line).
  std::atomic<LogLevel> min_level_;

  mutable Mutex mu_;
  // Token bucket state.
  double tokens_ KARL_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point last_refill_ KARL_GUARDED_BY(mu_);
  uint64_t suppressed_total_ KARL_GUARDED_BY(mu_) = 0;
  uint64_t suppressed_since_emit_ KARL_GUARDED_BY(mu_) = 0;
  uint64_t emitted_ KARL_GUARDED_BY(mu_) = 0;
};

/// The process-wide default logger (stderr, text, INFO).
Logger& DefaultLogger();

/// Null-safe convenience: `Log(logger, ...)` is a no-op when `logger`
/// is null — call sites need no "is logging configured" branch.
void Log(Logger* logger, LogLevel level, std::string_view event,
         std::vector<LogField> fields = {});

}  // namespace karl::util

#endif  // KARL_UTIL_LOG_H_
