#include "util/math_util.h"

#include <cmath>

#include "util/check.h"

namespace karl::util {

double Dot(std::span<const double> a, std::span<const double> b) {
  KARL_DCHECK(a.size() == b.size())
      << ": Dot of mismatched lengths " << a.size() << " vs " << b.size();
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double SquaredNorm(std::span<const double> a) {
  double s = 0.0;
  for (const double v : a) s += v * v;
  return s;
}

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  KARL_DCHECK(a.size() == b.size())
      << ": SquaredDistance of mismatched lengths " << a.size() << " vs "
      << b.size();
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

double KahanSum(std::span<const double> values) {
  KahanAccumulator acc;
  for (const double v : values) acc.Add(v);
  return acc.Total();
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return KahanSum(values) / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  if (values.size() < 1) return 0.0;
  const double mu = Mean(values);
  KahanAccumulator acc;
  for (const double v : values) acc.Add((v - mu) * (v - mu));
  return std::sqrt(acc.Total() / static_cast<double>(values.size()));
}

double Clamp(double x, double lo, double hi) {
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

}  // namespace karl::util
