// Small numeric helpers shared across modules: dot products, squared
// distances, numerically stable summation, and simple statistics.

#ifndef KARL_UTIL_MATH_UTIL_H_
#define KARL_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <span>
#include <vector>

namespace karl::util {

/// Dot product of two equal-length vectors.
double Dot(std::span<const double> a, std::span<const double> b);

/// Squared Euclidean norm ||a||^2.
double SquaredNorm(std::span<const double> a);

/// Squared Euclidean distance ||a - b||^2.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

/// Kahan-compensated sum of `values`; stable for long low-magnitude tails.
double KahanSum(std::span<const double> values);

/// Running Kahan accumulator for incremental stable summation.
class KahanAccumulator {
 public:
  /// Adds `x` to the running sum with error compensation.
  void Add(double x) {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  /// The compensated running total.
  double Total() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Arithmetic mean; returns 0 for an empty span.
double Mean(std::span<const double> values);

/// Population standard deviation; returns 0 for spans of size < 1.
double StdDev(std::span<const double> values);

/// Clamps x to [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace karl::util

#endif  // KARL_UTIL_MATH_UTIL_H_
