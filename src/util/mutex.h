// Lock primitives with Clang Thread Safety Analysis annotations — the
// only place in the repository allowed to name std::mutex and friends
// (tools/karl_lint.py enforces this).
//
// Locking contracts live in the type system instead of in comments:
// fields declare their guard with KARL_GUARDED_BY(mu_), functions that
// expect a held lock declare KARL_REQUIRES(mu_), and the clang-tsa
// CMake preset builds with -Wthread-safety -Werror so a violated
// contract is a compile error, not a TSan lottery ticket. Under GCC
// (this container's toolchain) every annotation expands to nothing and
// the wrappers are zero-cost pass-throughs to the standard primitives.
//
// Vocabulary (see DESIGN.md §12 "Lock discipline"):
//   Mutex           exclusive lock; KARL_CAPABILITY("mutex")
//   SharedMutex     reader/writer lock; shared vs exclusive capability
//   MutexLock       scoped exclusive lock of a Mutex
//   ReaderMutexLock / WriterMutexLock
//                   scoped shared / exclusive lock of a SharedMutex
//   CondVar         condition variable waiting on a held Mutex
//
// Debug builds additionally track the exclusive owner thread, so
// Mutex::AssertHeld() / SharedMutex::AssertHeld() abort (KARL_CHECK)
// when called off the owning thread; release builds keep only the
// static annotation. KARL_NO_THREAD_SAFETY_ANALYSIS requires a reason
// string; karl_lint rejects a bare or empty-reason suppression.

#ifndef KARL_UTIL_MUTEX_H_
#define KARL_UTIL_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "util/check.h"

// Annotation spellings: clang's "capability" attribute family
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). GCC accepts
// none of them, so everything compiles away there.
#if defined(__clang__)
#define KARL_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define KARL_THREAD_ANNOTATION_(x)
#endif

/// Declares a type to be a lockable capability (argument: kind name).
#define KARL_CAPABILITY(x) KARL_THREAD_ANNOTATION_(capability(x))
/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define KARL_SCOPED_CAPABILITY KARL_THREAD_ANNOTATION_(scoped_lockable)
/// Field is protected by the given mutex.
#define KARL_GUARDED_BY(x) KARL_THREAD_ANNOTATION_(guarded_by(x))
/// Pointee of the annotated pointer field is protected by the mutex.
#define KARL_PT_GUARDED_BY(x) KARL_THREAD_ANNOTATION_(pt_guarded_by(x))
/// Function acquires the capability (exclusive) and does not release it.
#define KARL_ACQUIRE(...) \
  KARL_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function acquires the capability in shared (reader) mode.
#define KARL_ACQUIRE_SHARED(...) \
  KARL_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
/// Function releases an exclusively held capability.
#define KARL_RELEASE(...) \
  KARL_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function releases a shared-held capability.
#define KARL_RELEASE_SHARED(...) \
  KARL_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/// Function releases a capability held in either mode (scoped-lock
/// destructors, which cannot name the mode statically).
#define KARL_RELEASE_GENERIC(...) \
  KARL_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
/// Function attempts the acquisition; first argument is the success
/// return value.
#define KARL_TRY_ACQUIRE(...) \
  KARL_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
/// Caller must hold the capability exclusively.
#define KARL_REQUIRES(...) \
  KARL_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Caller must hold the capability at least shared.
#define KARL_REQUIRES_SHARED(...) \
  KARL_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention).
#define KARL_EXCLUDES(...) KARL_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Function checks at runtime that the capability is held, and tells
/// the analysis to assume so afterwards.
#define KARL_ASSERT_CAPABILITY(x) \
  KARL_THREAD_ANNOTATION_(assert_capability(x))
#define KARL_ASSERT_SHARED_CAPABILITY(x) \
  KARL_THREAD_ANNOTATION_(assert_shared_capability(x))
/// Function returns a reference to the given capability.
#define KARL_RETURN_CAPABILITY(x) KARL_THREAD_ANNOTATION_(lock_returned(x))
/// Opts a function out of the analysis. The reason string is mandatory
/// (karl_lint enforces non-empty) and should say why the contract
/// cannot be expressed, e.g. lock-free by construction, or an
/// intentionally unbalanced acquire split across functions.
#define KARL_NO_THREAD_SAFETY_ANALYSIS(reason) \
  KARL_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace karl::util {

class CondVar;

/// Exclusive mutex (wraps std::mutex). Debug builds remember the owner
/// thread so AssertHeld() is a real runtime check; release builds keep
/// only the compile-time annotation.
class KARL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KARL_ACQUIRE() {
    mu_.lock();
    DebugSetOwner();
  }

  void Unlock() KARL_RELEASE() {
    DebugClearOwner();
    mu_.unlock();
  }

  /// Returns true (and holds the lock) when the mutex was free.
  bool TryLock() KARL_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    DebugSetOwner();
    return true;
  }

  /// Aborts in debug builds when the calling thread does not hold the
  /// mutex; release builds only inform the static analysis.
  void AssertHeld() const KARL_ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    KARL_CHECK(owner_.load(std::memory_order_relaxed) ==
               std::this_thread::get_id())
        << ": Mutex::AssertHeld() failed — calling thread does not hold "
           "the mutex";
#endif
  }

 private:
  friend class CondVar;

  // Owner bookkeeping is only ever mutated while the mutex is held (or
  // inside CondVar::Wait, which releases and reacquires it), so the
  // atomic is purely to keep the failing AssertHeld read well-defined.
  void DebugSetOwner() {
#ifndef NDEBUG
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }
  void DebugClearOwner() {
#ifndef NDEBUG
    owner_.store(std::thread::id(), std::memory_order_relaxed);
#endif
  }

  std::mutex mu_;
  // Unconditionally present so the class layout does not depend on
  // NDEBUG — a TU compiled in debug mode linking a release-built
  // library (or vice versa) must agree on sizeof(Mutex). Only the
  // bookkeeping is debug-gated.
  std::atomic<std::thread::id> owner_{};
};

/// Reader/writer mutex (wraps std::shared_mutex): any number of
/// concurrent shared holders, or one exclusive holder.
class KARL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() KARL_ACQUIRE() {
    mu_.lock();
    DebugSetOwner();
  }

  void Unlock() KARL_RELEASE() {
    DebugClearOwner();
    mu_.unlock();
  }

  void LockShared() KARL_ACQUIRE_SHARED() {
    mu_.lock_shared();
#ifndef NDEBUG
    readers_.fetch_add(1, std::memory_order_relaxed);
#endif
  }

  void UnlockShared() KARL_RELEASE_SHARED() {
#ifndef NDEBUG
    readers_.fetch_sub(1, std::memory_order_relaxed);
#endif
    mu_.unlock_shared();
  }

  /// Aborts in debug builds when the calling thread is not the
  /// exclusive holder.
  void AssertHeld() const KARL_ASSERT_CAPABILITY(this) {
#ifndef NDEBUG
    KARL_CHECK(owner_.load(std::memory_order_relaxed) ==
               std::this_thread::get_id())
        << ": SharedMutex::AssertHeld() failed — calling thread does not "
           "hold the lock exclusively";
#endif
  }

  /// Aborts in debug builds when no holder (shared or exclusive)
  /// exists. Cannot attribute a shared hold to a specific thread, so
  /// this is a weaker existence check than AssertHeld.
  void AssertReaderHeld() const KARL_ASSERT_SHARED_CAPABILITY(this) {
#ifndef NDEBUG
    KARL_CHECK(readers_.load(std::memory_order_relaxed) > 0 ||
               owner_.load(std::memory_order_relaxed) ==
                   std::this_thread::get_id())
        << ": SharedMutex::AssertReaderHeld() failed — no reader or "
           "exclusive holder";
#endif
  }

 private:
  void DebugSetOwner() {
#ifndef NDEBUG
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
#endif
  }
  void DebugClearOwner() {
#ifndef NDEBUG
    owner_.store(std::thread::id(), std::memory_order_relaxed);
#endif
  }

  std::shared_mutex mu_;
  // Unconditional for layout stability across NDEBUG settings (see
  // Mutex); the stores/checks themselves are debug-gated.
  std::atomic<std::thread::id> owner_{};
  std::atomic<int> readers_{0};
};

/// Scoped exclusive lock of a Mutex.
class KARL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) KARL_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() KARL_RELEASE_GENERIC() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped shared (reader) lock of a SharedMutex.
class KARL_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) KARL_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() KARL_RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped exclusive (writer) lock of a SharedMutex.
class KARL_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) KARL_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() KARL_RELEASE_GENERIC() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable for use with Mutex. Wait takes the held Mutex
/// explicitly, which lets the analysis check the caller really holds it
/// — the classic condition_variable/unique_lock pairing is invisible to
/// the analysis and is what this wrapper replaces.
///
/// Waiting re-checks must loop at the call site:
///   mu_.Lock();
///   while (!ready_) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified (spurious wakeups
  /// possible), and reacquires `*mu` before returning.
  void Wait(Mutex* mu) KARL_REQUIRES(mu) {
    mu->DebugClearOwner();  // The wait releases the mutex.
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Returned holding it; hand ownership back.
    mu->DebugSetOwner();
  }

  /// Wait with a deadline; returns false when `timeout` elapsed without
  /// a notification (the mutex is reacquired either way).
  bool WaitFor(Mutex* mu, std::chrono::microseconds timeout)
      KARL_REQUIRES(mu) {
    mu->DebugClearOwner();
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    mu->DebugSetOwner();
    return status == std::cv_status::no_timeout;
  }

  /// Wakes one waiter.
  void Signal() { cv_.notify_one(); }

  /// Wakes every waiter.
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace karl::util

#endif  // KARL_UTIL_MUTEX_H_
