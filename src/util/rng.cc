#include "util/rng.h"

#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace karl::util {

namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  KARL_DCHECK(n > 0) << ": UniformInt needs a non-empty range";
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return v % n;
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller on two uniforms; u1 bounded away from zero for log().
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  KARL_CHECK(k <= n) << ": cannot sample " << k << " of " << n
                     << " items without replacement";
  // Floyd's algorithm: k set insertions regardless of n.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    const size_t t = static_cast<size_t>(UniformInt(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace karl::util
