// Deterministic pseudo-random number generation.
//
// All data generation and sampling in KARL flows through util::Rng so that
// every experiment is reproducible bit-for-bit from a seed. The generator
// is xoshiro256**, which is fast, has a 256-bit state, and passes BigCrush.

#ifndef KARL_UTIL_RNG_H_
#define KARL_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace karl::util {

/// Deterministic xoshiro256** pseudo-random generator.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit draw.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal draw (Box–Muller, internally cached pair).
  double Gaussian();

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (Floyd's algorithm); result is unsorted. Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace karl::util

#endif  // KARL_UTIL_RNG_H_
