// Status / Result error-handling primitives, in the style of Arrow/RocksDB.
//
// KARL does not throw exceptions across API boundaries. Fallible operations
// return `util::Status` (for void results) or `util::Result<T>` (for value
// results). Both carry a status code plus a human-readable message.

#ifndef KARL_UTIL_STATUS_H_
#define KARL_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.h"

namespace karl::util {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation that produces no value.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy (the common OK case stores nothing
/// but the enum).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not
  /// be kOk; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    KARL_DCHECK(code != StatusCode::kOk)
        << ": error Status constructed with kOk; use the default "
           "constructor for success";
  }

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Outcome of a fallible operation that produces a `T` on success.
///
/// Holds either a value or an error Status. Accessing the value of an
/// errored Result is a programming error (checked by assert in debug
/// builds).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  // Implicit by design: `return value;` is the idiom for every
  // Result-returning function.
  Result(T value)  // NOLINT(runtime/explicit): implicit by design
      : value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status.
  // Implicit by design: `return Status::X()` propagates errors without
  // a wrapping cast.
  Result(Status status)  // NOLINT(runtime/explicit): implicit by design
      : status_(std::move(status)) {
    KARL_DCHECK(!status_.ok())
        << ": Result constructed from an OK status but no value";
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when ok().
  const T& value() const& {
    KARL_DCHECK(ok()) << ": value() on error Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    KARL_DCHECK(ok()) << ": value() on error Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    KARL_DCHECK(ok()) << ": value() on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  /// Moves the contained value out. Must only be called when ok().
  T ValueOrDie() && {
    KARL_CHECK(ok()) << ": ValueOrDie() on error Result: "
                     << status_.ToString();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace karl::util

/// Propagates an error status from an expression that yields a Status.
#define KARL_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::karl::util::Status _st = (expr);           \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // KARL_UTIL_STATUS_H_
