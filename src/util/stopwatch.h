// Monotonic wall-clock stopwatch for throughput measurements.

#ifndef KARL_UTIL_STOPWATCH_H_
#define KARL_UTIL_STOPWATCH_H_

#include <chrono>

namespace karl::util {

/// Measures elapsed wall time on the steady (monotonic) clock.
class Stopwatch {
 public:
  /// Starts timing on construction.
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace karl::util

#endif  // KARL_UTIL_STOPWATCH_H_
