#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "telemetry/metrics.h"
#include "util/check.h"

namespace karl::util {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(&wake_mu_);
    stop_ = true;
  }
  wake_cv_.SignalAll();
  for (auto& thread : threads_) thread.join();
  KARL_DCHECK(pending_.load(std::memory_order_relaxed) == 0)
      << ": thread pool destroyed with undrained tasks";
}

size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void ThreadPool::AttachMetrics(telemetry::Registry* registry) {
  if (registry == nullptr) {
    queue_depth_gauge_ = nullptr;
    active_workers_gauge_ = nullptr;
    return;
  }
  queue_depth_gauge_ = registry->GetGauge("karl_pool_queue_depth");
  active_workers_gauge_ = registry->GetGauge("karl_pool_active_workers");
  queue_depth_gauge_->Set(0.0);
  active_workers_gauge_->Set(0.0);
}

void ThreadPool::Submit(std::function<void()> task) {
  KARL_DCHECK(task != nullptr) << ": null task submitted to thread pool";
  const size_t queue =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    Worker& worker = *workers_[queue];
    const MutexLock lock(&worker.mu);
    worker.tasks.push_back(std::move(task));
  }
  {
    // Increment under wake_mu_ so it cannot slip between a worker's
    // sleep-predicate check and its wait (lost wakeup).
    const MutexLock lock(&wake_mu_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(
        static_cast<double>(pending_.load(std::memory_order_relaxed)));
  }
  wake_cv_.Signal();
}

std::function<void()> ThreadPool::NextTask(size_t self) {
  // Own deque first, newest task first: the task most likely still warm
  // in this core's cache.
  {
    Worker& own = *workers_[self];
    const MutexLock lock(&own.mu);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      return task;
    }
  }
  // Steal oldest-first from siblings, starting after self so victims
  // rotate instead of piling onto worker 0.
  for (size_t i = 1; i < workers_.size(); ++i) {
    Worker& victim = *workers_[(self + i) % workers_.size()];
    const MutexLock lock(&victim.mu);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(size_t self) {
  while (true) {
    if (std::function<void()> task = NextTask(self); task != nullptr) {
      const size_t left = pending_.fetch_sub(1, std::memory_order_acquire) - 1;
      if (queue_depth_gauge_ != nullptr) {
        queue_depth_gauge_->Set(static_cast<double>(left));
      }
      const size_t running = active_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (active_workers_gauge_ != nullptr) {
        active_workers_gauge_->Set(static_cast<double>(running));
      }
      task();
      const size_t now_running =
          active_.fetch_sub(1, std::memory_order_relaxed) - 1;
      if (active_workers_gauge_ != nullptr) {
        active_workers_gauge_->Set(static_cast<double>(now_running));
      }
      continue;
    }
    wake_mu_.Lock();
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) {
      wake_mu_.Unlock();
      return;
    }
    while (!stop_ && pending_.load(std::memory_order_acquire) == 0) {
      wake_cv_.Wait(&wake_mu_);
    }
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) {
      wake_mu_.Unlock();
      return;
    }
    wake_mu_.Unlock();
    // Either shutdown began with tasks still queued (drain them) or new
    // work arrived; loop back and scan the deques again.
  }
}

void ThreadPool::ParallelFor(size_t n, size_t chunk, const LoopBody& body) {
  if (n == 0) return;
  const size_t executors = num_threads() + 1;  // Workers + calling thread.
  if (chunk == 0) {
    chunk = std::max<size_t>(1, n / (executors * 8));
  }

  // Heap-shared loop state: a dispatched helper task may not get CPU
  // time until after this call returned (see the wait below), so the
  // cursor, the body copy, and the bookkeeping must outlive the caller's
  // stack frame. The shared_ptr held by each helper keeps it alive.
  struct LoopState {
    LoopState(size_t n, size_t chunk, const LoopBody& body)
        : n(n), chunk(chunk), body(body) {}

    const size_t n;
    const size_t chunk;
    const LoopBody body;  // Owned copy; helpers may outlive the caller's.
    std::atomic<size_t> next{0};
    Mutex mu;
    CondVar done_cv;
    // Helpers inside RunSlot.
    size_t active KARL_GUARDED_BY(mu) = 0;
    // First exception wins.
    std::exception_ptr error KARL_GUARDED_BY(mu);

    void RunSlot(size_t slot) {
      try {
        for (size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
             begin < n;
             begin = next.fetch_add(chunk, std::memory_order_relaxed)) {
          body(begin, std::min(begin + chunk, n), slot);
        }
      } catch (...) {
        // Cancel the remaining chunks (best effort) and record the
        // first exception for the caller to rethrow.
        next.store(n, std::memory_order_relaxed);
        const MutexLock lock(&mu);
        if (error == nullptr) error = std::current_exception();
      }
    }
  };
  auto state = std::make_shared<LoopState>(n, chunk, body);

  // One loop task per worker, at most one per chunk beyond the caller's.
  const size_t chunks = (n + chunk - 1) / chunk;
  const size_t helpers = std::min(num_threads(), chunks - 1);
  for (size_t slot = 1; slot <= helpers; ++slot) {
    Submit([state, slot] {
      {
        const MutexLock lock(&state->mu);
        ++state->active;
      }
      state->RunSlot(slot);
      const MutexLock lock(&state->mu);
      if (--state->active == 0) state->done_cv.SignalAll();
    });
  }

  state->RunSlot(0);

  // The caller returning from RunSlot(0) means the cursor is exhausted,
  // so every chunk was claimed by the caller or by a *started* helper.
  // Wait only for those started helpers: a helper still sitting in a
  // queue can never claim a chunk and simply no-ops whenever a worker
  // eventually runs it (possibly after this call returned). Waiting on
  // never-started helpers would deadlock nested ParallelFor calls —
  // with every worker blocked in an outer body's inner wait, queued
  // inner helpers would never get a thread.
  state->mu.Lock();
  while (state->active != 0) state->done_cv.Wait(&state->mu);
  const std::exception_ptr error = state->error;
  state->mu.Unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace karl::util
