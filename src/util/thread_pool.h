// Work-stealing thread pool for batch-parallel query execution.
//
// A fixed set of worker threads each own a deque of tasks: a worker pops
// its own deque LIFO (cache-warm), and when empty steals FIFO from a
// sibling (oldest task first, minimising contention with the victim's
// own LIFO end). External submissions are distributed round-robin.
//
// Scheduling model for data-parallel loops: ParallelFor splits [0, n)
// into chunks handed out dynamically from a shared cursor (chunked
// dynamic scheduling), so uneven per-item cost — the norm for KARL
// queries, where refinement work varies per query point — still load-
// balances. The calling thread participates as slot 0, which guarantees
// forward progress even when every worker is busy (and makes nested
// ParallelFor calls from inside a task deadlock-free).
//
// Shutdown is cooperative and draining: the destructor wakes every
// worker, lets them finish all queued tasks (including tasks enqueued by
// running tasks), then joins. Submitting from outside the pool after the
// destructor has begun is undefined.
//
// Exceptions thrown by a ParallelFor body are caught, the remaining
// chunks are cancelled (best effort), and the first exception is
// rethrown on the calling thread once every dispatched task has
// finished. Fire-and-forget Submit tasks must not throw.

#ifndef KARL_UTIL_THREAD_POOL_H_
#define KARL_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace karl::telemetry {
class Gauge;
class Registry;
}  // namespace karl::telemetry

namespace karl::util {

/// Fixed-size work-stealing thread pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains every queued task, then joins all workers.
  ~ThreadPool();

  /// Number of worker threads (excluding callers participating in
  /// ParallelFor).
  size_t num_threads() const { return workers_.size(); }

  /// std::thread::hardware_concurrency(), or 1 when unknown.
  static size_t DefaultThreadCount();

  /// Exports pool-saturation gauges into `registry` (null detaches):
  /// `karl_pool_queue_depth` (tasks enqueued but not yet picked up) and
  /// `karl_pool_active_workers` (workers currently running a task;
  /// callers participating in ParallelFor are not counted). Updates are
  /// single relaxed stores on the task hot path. Attach before
  /// submitting work — not synchronized against in-flight tasks.
  void AttachMetrics(telemetry::Registry* registry);

  /// Enqueues a fire-and-forget task. The task must not throw.
  void Submit(std::function<void()> task);

  /// Loop body for ParallelFor: processes [begin, end). `slot` is a
  /// stable per-executor index in [0, num_threads()] — one executor runs
  /// exactly one slot for the whole call, so slot-indexed accumulators
  /// need no synchronisation.
  using LoopBody = std::function<void(size_t begin, size_t end, size_t slot)>;

  /// Runs body over [0, n) split into chunks of `chunk` iterations
  /// (0 = automatic: ~8 chunks per executor), handed out dynamically.
  /// The calling thread executes slot 0; up to num_threads() workers
  /// take the remaining slots. Blocks until every chunk completed or was
  /// cancelled by a thrown exception, which is rethrown here.
  void ParallelFor(size_t n, size_t chunk, const LoopBody& body);

 private:
  struct Worker {
    Mutex mu;
    std::deque<std::function<void()>> tasks KARL_GUARDED_BY(mu);
  };

  // Pops from the worker's own deque (LIFO) or steals from a sibling
  // (FIFO). Returns an empty function when every deque is empty.
  std::function<void()> NextTask(size_t self);

  void WorkerLoop(size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<size_t> next_queue_{0};  // Round-robin submission cursor.
  std::atomic<size_t> pending_{0};     // Tasks enqueued, not yet popped.
  std::atomic<size_t> active_{0};      // Workers inside a task.
  telemetry::Gauge* queue_depth_gauge_ = nullptr;    // See AttachMetrics.
  telemetry::Gauge* active_workers_gauge_ = nullptr;
  Mutex wake_mu_;
  CondVar wake_cv_;
  bool stop_ KARL_GUARDED_BY(wake_mu_) = false;
};

}  // namespace karl::util

#endif  // KARL_UTIL_THREAD_POOL_H_
