// Concurrency tests for the batch-query engine (core/batch.h): batch
// results must be bit-identical to the serial query loop for every
// kernel, weighting type, thread count and chunk size; per-worker
// EvalStats must merge to exactly the serial totals; and the whole
// surface must be clean under TSan (CI job tsan-batch) with telemetry
// attached.
//
// SIMD note: the serial-vs-batch EXPECT_EQs below stay bit-exact even
// with the vectorized leaf path engaged, because both routes run the
// SAME per-query evaluator code under the one process-wide SIMD tier
// (core/simd) — work distribution never changes per-query arithmetic.
// Only comparisons ACROSS tiers are tolerance-level (see the
// cross-tier test at the bottom, and core/simd/simd.h for the
// contract); BatchIsBitStableUnderEverySimdTier pins the bit-exact
// half per reachable tier.
//
// KARL_TEST_THREADS (default 8) sets the largest pool size exercised.

#include "core/batch.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/dynamic_engine.h"
#include "core/karl.h"
#include "core/simd/simd.h"
#include "data/synthetic.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace karl {
namespace {

using core::BatchEvaluator;
using core::BatchOptions;
using core::EvalStats;
using core::KernelParams;

size_t TestThreads() {
  const char* env = std::getenv("KARL_TEST_THREADS");
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 8;
}

struct BatchCase {
  int kernel_id;  // 0 gaussian, 1 laplacian, 2 poly3, 3 sigmoid
  int weighting;  // 1, 2, 3
};

KernelParams KernelForCase(const BatchCase& bc, size_t d) {
  const double gamma = 1.0 / static_cast<double>(d);
  switch (bc.kernel_id) {
    case 0:
      return KernelParams::Gaussian(8.0);
    case 1:
      return KernelParams::Laplacian(4.0);
    case 2:
      return KernelParams::Polynomial(gamma, 0.1, 3);
    default:
      return KernelParams::Sigmoid(gamma, 0.05);
  }
}

std::vector<double> WeightsForCase(const BatchCase& bc, size_t n,
                                   util::Rng& rng) {
  std::vector<double> w(n);
  for (auto& v : w) {
    switch (bc.weighting) {
      case 1:
        v = 0.7;
        break;
      case 2:
        v = rng.Uniform(0.05, 1.5);
        break;
      default:
        v = rng.Uniform(-1.0, 1.0);
        if (v == 0.0) v = 0.5;
        break;
    }
  }
  return w;
}

data::Matrix MakeQueries(size_t n, size_t d, util::Rng& rng) {
  data::Matrix q(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (double& v : q.MutableRow(i)) v = rng.Uniform(-0.1, 1.1);
  }
  return q;
}

class BatchDeterminismTest : public ::testing::TestWithParam<BatchCase> {};

// The headline contract: for every kernel x weighting combination, the
// batch path with 1, 2 and KARL_TEST_THREADS workers is bit-identical
// (EXPECT_EQ on doubles, no tolerance) to the plain serial query loop.
TEST_P(BatchDeterminismTest, BatchMatchesSerialBitExactly) {
  const BatchCase bc = GetParam();
  util::Rng rng(77 + bc.kernel_id * 10 + bc.weighting);
  const size_t d = 4;
  const data::Matrix pts = data::SampleClustered(300, d, 3, 0.08, rng);
  const auto weights = WeightsForCase(bc, pts.rows(), rng);

  EngineOptions options;
  options.kernel = KernelForCase(bc, d);
  auto engine = Engine::Build(pts, weights, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const data::Matrix queries = MakeQueries(40, d, rng);
  const size_t n = queries.rows();

  // Serial reference via the plain per-query API.
  const double tau = 0.5;
  const double eps = 0.2;
  std::vector<uint8_t> serial_tkaq(n);
  std::vector<double> serial_ekaq(n), serial_exact(n);
  for (size_t i = 0; i < n; ++i) {
    serial_tkaq[i] = engine.value().Tkaq(queries.Row(i), tau) ? 1 : 0;
    if (bc.weighting != 3) {
      serial_ekaq[i] = engine.value().Ekaq(queries.Row(i), eps);
    }
    serial_exact[i] = engine.value().Exact(queries.Row(i));
  }

  for (const size_t threads : {size_t{1}, size_t{2}, TestThreads()}) {
    util::ThreadPool pool(threads);
    const auto tkaq = engine.value().TkaqBatch(queries, tau, &pool);
    const auto exact = engine.value().ExactBatch(queries, &pool);
    ASSERT_EQ(tkaq.size(), n);
    ASSERT_EQ(exact.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(tkaq[i], serial_tkaq[i]) << "threads=" << threads << " i=" << i;
      EXPECT_EQ(exact[i], serial_exact[i])  // Bit-identical, no tolerance.
          << "threads=" << threads << " i=" << i;
    }
    if (bc.weighting != 3) {
      const auto ekaq = engine.value().EkaqBatch(queries, eps, &pool);
      ASSERT_EQ(ekaq.size(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(ekaq[i], serial_ekaq[i])
            << "threads=" << threads << " i=" << i;
      }
    }
  }

  // Null pool: the serial batch path is the same loop too.
  EXPECT_EQ(engine.value().TkaqBatch(queries, tau), serial_tkaq);
  EXPECT_EQ(engine.value().ExactBatch(queries), serial_exact);
}

std::string BatchCaseName(const ::testing::TestParamInfo<BatchCase>& info) {
  static const char* const kKernels[] = {"Gauss", "Laplace", "Poly3",
                                         "Sigmoid"};
  return std::string(kKernels[info.param.kernel_id]) + "W" +
         std::to_string(info.param.weighting);
}

std::vector<BatchCase> MakeBatchCases() {
  std::vector<BatchCase> cases;
  for (int kernel_id = 0; kernel_id < 4; ++kernel_id) {
    for (int weighting = 1; weighting <= 3; ++weighting) {
      cases.push_back(BatchCase{kernel_id, weighting});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKernelsAllWeightings, BatchDeterminismTest,
                         ::testing::ValuesIn(MakeBatchCases()), BatchCaseName);

// Shared fixture for the non-parameterised cases: one Type-II Gaussian
// engine plus a query block.
struct BatchFixture {
  data::Matrix pts;
  std::vector<double> weights;
  data::Matrix queries;
  util::Result<Engine> engine;

  explicit BatchFixture(telemetry::Registry* metrics = nullptr,
                        telemetry::TraceRecorder* tracer = nullptr)
      : engine(Build(metrics, tracer)) {}

 private:
  util::Result<Engine> Build(telemetry::Registry* metrics,
                             telemetry::TraceRecorder* tracer) {
    util::Rng rng(4321);
    pts = data::SampleClustered(400, 5, 3, 0.08, rng);
    weights.resize(pts.rows());
    for (auto& w : weights) w = rng.Uniform(0.05, 1.5);
    queries = MakeQueries(60, 5, rng);
    EngineOptions options;
    options.kernel = KernelParams::Gaussian(6.0);
    options.metrics = metrics;
    options.tracer = tracer;
    return Engine::Build(pts, weights, options);
  }
};

TEST(BatchEvaluatorTest, ChunkSizeNeverChangesResults) {
  BatchFixture fx;
  ASSERT_TRUE(fx.engine.ok()) << fx.engine.status().ToString();
  util::ThreadPool pool(TestThreads());

  const auto reference = fx.engine.value().ExactBatch(fx.queries);
  for (const size_t chunk :
       {size_t{0}, size_t{1}, size_t{3}, size_t{1000}}) {
    BatchOptions options;
    options.pool = &pool;
    options.chunk = chunk;
    const BatchEvaluator batch(fx.engine.value(), options);
    EXPECT_EQ(batch.Exact(fx.queries), reference) << "chunk=" << chunk;
    EXPECT_EQ(batch.Tkaq(fx.queries, 0.5),
              fx.engine.value().TkaqBatch(fx.queries, 0.5))
        << "chunk=" << chunk;
  }
}

// Satellite-3 regression: sharing one plain-integer EvalStats across
// workers was a data race (TSan: concurrent size_t increments from
// Evaluator::QueryThreshold). The fix accumulates into per-slot
// EvalStats merged once per batch — so under TSan this test must be
// silent, and the merged totals must equal the serial totals EXACTLY
// (work counters are integers and every query does identical work
// regardless of which thread runs it).
TEST(BatchEvaluatorTest, MergedStatsEqualSerialStatsExactly) {
  BatchFixture fx;
  ASSERT_TRUE(fx.engine.ok()) << fx.engine.status().ToString();

  EvalStats serial;
  for (size_t i = 0; i < fx.queries.rows(); ++i) {
    (void)fx.engine.value().Tkaq(fx.queries.Row(i), 0.5, &serial);
  }

  for (const size_t threads : {size_t{2}, TestThreads()}) {
    util::ThreadPool pool(threads);
    EvalStats batched;
    (void)fx.engine.value().TkaqBatch(fx.queries, 0.5, &pool, &batched);
    EXPECT_EQ(batched.iterations, serial.iterations) << "threads=" << threads;
    EXPECT_EQ(batched.nodes_expanded, serial.nodes_expanded)
        << "threads=" << threads;
    EXPECT_EQ(batched.kernel_evals, serial.kernel_evals)
        << "threads=" << threads;
  }
}

TEST(BatchEvaluatorTest, InstrumentedBatchUnderConcurrencyIsCoherent) {
  // Registry + tracer attached while the batch fans out: evaluator
  // counters are atomic and the tracer is internally locked, so the
  // totals must come out exact and TSan must stay silent.
  telemetry::Registry registry;
  telemetry::TraceRecorder tracer;
  BatchFixture fx(&registry, &tracer);
  ASSERT_TRUE(fx.engine.ok()) << fx.engine.status().ToString();

  EvalStats serial;
  for (size_t i = 0; i < fx.queries.rows(); ++i) {
    (void)fx.engine.value().Exact(fx.queries.Row(i), &serial);
  }

  util::ThreadPool pool(TestThreads());
  EvalStats batched;
  const auto out = fx.engine.value().ExactBatch(fx.queries, &pool, &batched);
  ASSERT_EQ(out.size(), fx.queries.rows());
  EXPECT_EQ(batched.kernel_evals, serial.kernel_evals);

  EXPECT_EQ(registry.GetCounter("karl_batch_batches_total")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("karl_batch_queries_total")->value(),
            fx.queries.rows());
  EXPECT_EQ(registry.GetHistogram("karl_batch_usec")->count(), 1u);
  EXPECT_EQ(registry.GetGauge("karl_batch_executors")->value(),
            static_cast<double>(pool.num_threads() + 1));
}

TEST(BatchEvaluatorTest, ManyBatchesShareOneEngineAndPool) {
  // N threads x M queries against one shared Engine through one shared
  // pool, repeatedly — the ISSUE's stress shape. Every round must
  // reproduce the reference bit-exactly.
  BatchFixture fx;
  ASSERT_TRUE(fx.engine.ok()) << fx.engine.status().ToString();
  util::ThreadPool pool(TestThreads());
  const auto reference = fx.engine.value().ExactBatch(fx.queries);
  for (int round = 0; round < 25; ++round) {
    ASSERT_EQ(fx.engine.value().ExactBatch(fx.queries, &pool), reference)
        << "round " << round;
  }
}

TEST(BatchEvaluatorTest, ConcurrentCallersOnOneEngine) {
  // Several OS threads each running serial batches against the same
  // Engine: pins the documented thread-safety contract of the const
  // query surface itself (no pool involved, pure shared-read).
  BatchFixture fx;
  ASSERT_TRUE(fx.engine.ok()) << fx.engine.status().ToString();
  const auto reference = fx.engine.value().ExactBatch(fx.queries);

  std::vector<std::thread> callers;
  std::vector<int> mismatches(4, 0);
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&fx, &reference, &mismatches, t] {
      EvalStats stats;  // Thread-private, per the contract.
      const auto out = fx.engine.value().ExactBatch(
          fx.queries, /*pool=*/nullptr, &stats);
      if (out != reference) mismatches[t] = 1;
    });
  }
  for (auto& t : callers) t.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(mismatches[t], 0) << "caller " << t;
}

// Satellite regression for the SIMD PR: under EVERY tier the host can
// run — forced through the core/simd test seam — batch results across
// thread counts and chunk sizes are bit-identical to each other and to
// the serial per-query loop run under the same tier. Vectorization may
// only change results across tiers, never across work distributions.
TEST(BatchEvaluatorTest, BatchIsBitStableUnderEverySimdTier) {
  namespace simd = core::simd;
  BatchFixture fx;
  ASSERT_TRUE(fx.engine.ok()) << fx.engine.status().ToString();

  std::vector<simd::Tier> tiers = {simd::Tier::kScalar};
  if (simd::TierSupported(simd::Tier::kAvx2)) {
    tiers.push_back(simd::Tier::kAvx2);
  }
  if (simd::TierSupported(simd::Tier::kAvx512)) {
    tiers.push_back(simd::Tier::kAvx512);
  }
  const simd::Tier saved = simd::ActiveTier();

  for (const simd::Tier tier : tiers) {
    simd::ForceTier(tier);
    // Serial reference under this tier.
    const size_t n = fx.queries.rows();
    std::vector<double> serial(n);
    for (size_t i = 0; i < n; ++i) {
      serial[i] = fx.engine.value().Exact(fx.queries.Row(i));
    }

    for (const size_t threads : {size_t{1}, size_t{2}, TestThreads()}) {
      util::ThreadPool pool(threads);
      for (const size_t chunk : {size_t{0}, size_t{1}, size_t{7}}) {
        BatchOptions options;
        options.pool = &pool;
        options.chunk = chunk;
        const BatchEvaluator batch(fx.engine.value(), options);
        EXPECT_EQ(batch.Exact(fx.queries), serial)  // Bit-identical.
            << simd::TierName(tier) << " threads=" << threads
            << " chunk=" << chunk;
      }
    }
  }
  simd::ForceTier(saved);
}

// The tolerance-aware half: results ACROSS tiers agree only within the
// core/simd accuracy contract (reordered reductions + vector exp), not
// bit-for-bit — this is the one place vectorization is allowed to move
// a result, and the tolerance here is the documented bound, not a
// loosened test.
TEST(BatchEvaluatorTest, CrossTierBatchResultsAgreeWithinContract) {
  namespace simd = core::simd;
  BatchFixture fx;
  ASSERT_TRUE(fx.engine.ok()) << fx.engine.status().ToString();
  const simd::Tier saved = simd::ActiveTier();

  simd::ForceTier(simd::Tier::kScalar);
  const auto scalar = fx.engine.value().ExactBatch(fx.queries);

  for (const simd::Tier tier : {simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (!simd::TierSupported(tier)) continue;
    simd::ForceTier(tier);
    const auto vec = fx.engine.value().ExactBatch(fx.queries);
    ASSERT_EQ(vec.size(), scalar.size());
    for (size_t i = 0; i < vec.size(); ++i) {
      // Fixture weights are positive, so |exact| is the absolute mass;
      // 4x covers the traversal splitting the sum across leaf ranges.
      EXPECT_NEAR(vec[i], scalar[i],
                  4.0 * simd::kLeafSumRelTolerance * (1.0 + scalar[i]))
          << simd::TierName(tier) << " i=" << i;
    }
  }
  simd::ForceTier(saved);
}

TEST(DynamicBatchTest, BatchMatchesSerialAcrossMutations) {
  // DynamicEngine batch vs serial, bit-exact, before and after churn
  // that crosses a rebuild (delta buffer + tombstones in play).
  util::Rng rng(99);
  const size_t d = 4;
  core::DynamicEngine::Options options;
  options.engine.kernel = KernelParams::Gaussian(5.0);
  options.min_index_size = 64;
  auto engine = core::DynamicEngine::Create(d, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::vector<core::PointId> ids;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> p(d);
    for (auto& v : p) v = rng.Uniform(0.0, 1.0);
    auto id = engine.value()->Insert(p, rng.Uniform(0.1, 1.0));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }

  const data::Matrix queries = MakeQueries(30, d, rng);
  util::ThreadPool pool(TestThreads());

  const auto check = [&](const char* phase) {
    const size_t n = queries.rows();
    std::vector<uint8_t> serial_tkaq(n);
    std::vector<double> serial_ekaq(n), serial_exact(n);
    for (size_t i = 0; i < n; ++i) {
      serial_tkaq[i] = engine.value()->Tkaq(queries.Row(i), 1.0) ? 1 : 0;
      serial_ekaq[i] = engine.value()->Ekaq(queries.Row(i), 0.2);
      serial_exact[i] = engine.value()->Exact(queries.Row(i));
    }
    EXPECT_EQ(engine.value()->TkaqBatch(queries, 1.0, &pool), serial_tkaq)
        << phase;
    EXPECT_EQ(engine.value()->EkaqBatch(queries, 0.2, &pool), serial_ekaq)
        << phase;
    EXPECT_EQ(engine.value()->ExactBatch(queries, &pool), serial_exact)
        << phase;
  };
  check("after inserts");

  // Churn: remove a third, insert replacements — enough delta to force
  // at least one rebuild at the default rebuild fraction.
  for (size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(engine.value()->Remove(ids[i]).ok());
  }
  for (int i = 0; i < 80; ++i) {
    std::vector<double> p(d);
    for (auto& v : p) v = rng.Uniform(0.0, 1.0);
    ASSERT_TRUE(engine.value()->Insert(p, rng.Uniform(0.1, 1.0)).ok());
  }
  check("after churn");
  EXPECT_GE(engine.value()->rebuild_count(), 1u);
}

}  // namespace
}  // namespace karl
