// Bench fixture determinism guard: the workload generators in
// bench_common must be seed-stable — two generations of the same
// workload in one process (and across processes, since every seed is
// derived from the dataset name) produce byte-identical points, weights
// and queries. The batch-scaling benchmark compares --threads=1 vs
// --threads=N throughput on "the same" workload; this test is what
// makes that comparison meaningful.

#include "bench_common.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace karl::bench {
namespace {

// BenchScale()/BenchQueries() cache their environment variables in
// static locals on first call, so the override must be installed before
// any test (or gtest infrastructure) touches them. A file-scope
// initializer runs early enough; 0.02 keeps the scaled datasets at the
// max(1000, n*scale) floor so the test stays fast.
const bool kEnvReady = [] {
  setenv("KARL_BENCH_SCALE", "0.02", /*overwrite=*/1);
  setenv("KARL_BENCH_QUERIES", "20", /*overwrite=*/1);
  return true;
}();

void ExpectWorkloadsIdentical(const Workload& a, const Workload& b) {
  ASSERT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.weighting_type, b.weighting_type);
  // Byte-for-byte: == on doubles, no tolerance anywhere.
  ASSERT_EQ(a.points.rows(), b.points.rows());
  ASSERT_EQ(a.points.cols(), b.points.cols());
  EXPECT_EQ(a.points.values(), b.points.values());
  EXPECT_EQ(a.weights, b.weights);
  ASSERT_EQ(a.queries.rows(), b.queries.rows());
  EXPECT_EQ(a.queries.values(), b.queries.values());
  EXPECT_EQ(a.tau, b.tau);
  EXPECT_EQ(a.mu, b.mu);
  EXPECT_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.kernel.gamma, b.kernel.gamma);
  EXPECT_EQ(a.kernel.beta, b.kernel.beta);
  EXPECT_EQ(a.kernel.degree, b.kernel.degree);
}

TEST(BenchDeterminismTest, EnvOverridesAreActive) {
  ASSERT_TRUE(kEnvReady);
  EXPECT_EQ(BenchScale(), 0.02);
  EXPECT_EQ(BenchQueries(), 20u);
}

TEST(BenchDeterminismTest, TypeIWorkloadIsSeedStable) {
  const Workload a = MakeTypeIWorkload("home", BenchQueries());
  const Workload b = MakeTypeIWorkload("home", BenchQueries());
  ExpectWorkloadsIdentical(a, b);
  EXPECT_EQ(a.weighting_type, 1);
}

TEST(BenchDeterminismTest, TypeIIWorkloadIsSeedStable) {
  const Workload a = MakeTypeIIWorkload("nsl-kdd", BenchQueries());
  const Workload b = MakeTypeIIWorkload("nsl-kdd", BenchQueries());
  ExpectWorkloadsIdentical(a, b);
  EXPECT_EQ(a.weighting_type, 2);
}

TEST(BenchDeterminismTest, TypeIIIWorkloadIsSeedStable) {
  const Workload a = MakeTypeIIIWorkload("ijcnn1", BenchQueries());
  const Workload b = MakeTypeIIIWorkload("ijcnn1", BenchQueries());
  ExpectWorkloadsIdentical(a, b);
  EXPECT_EQ(a.weighting_type, 3);
}

TEST(BenchDeterminismTest, PolynomialWorkloadIsSeedStable) {
  const Workload a = MakePolynomialWorkload("ijcnn1", 2, BenchQueries());
  const Workload b = MakePolynomialWorkload("ijcnn1", 2, BenchQueries());
  ExpectWorkloadsIdentical(a, b);
}

TEST(BenchDeterminismTest, DistinctDatasetsGetDistinctSeeds) {
  // The FNV name-seeding must actually differentiate datasets —
  // identical fixtures across datasets would silently invalidate every
  // cross-dataset table.
  const Workload a = MakeTypeIWorkload("home", BenchQueries());
  const Workload b = MakeTypeIWorkload("susy", BenchQueries());
  EXPECT_NE(a.points.values(), b.points.values());
}

}  // namespace
}  // namespace karl::bench
