// Tests for the bound constructions (§III, §IV-B): validity (bounds really
// sandwich the kernel profile / the aggregate), tightness vs SOTA
// (Lemmas 3–4), and the optimal-tangent theorem (Theorems 1–2).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/bounds.h"
#include "core/evaluator.h"
#include "data/synthetic.h"
#include "index/kd_tree.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace karl::core {
namespace {

// ------------------------- Linear constructions -------------------------

TEST(ExpChordTest, TouchesEndpointsAndDominatesBetween) {
  const double lo = 0.3, hi = 2.1;
  const LinearFn chord = ExpChord(lo, hi);
  EXPECT_NEAR(chord.At(lo), std::exp(-lo), 1e-12);
  EXPECT_NEAR(chord.At(hi), std::exp(-hi), 1e-12);
  for (int i = 0; i <= 100; ++i) {
    const double x = lo + (hi - lo) * i / 100.0;
    EXPECT_GE(chord.At(x), std::exp(-x) - 1e-12);
  }
}

TEST(ExpChordTest, TighterThanConstantSotaBound) {
  // Lemma 3: chord values on (lo, hi] are strictly below exp(−lo).
  const double lo = 0.5, hi = 3.0;
  const LinearFn chord = ExpChord(lo, hi);
  for (int i = 1; i <= 10; ++i) {
    const double x = lo + (hi - lo) * i / 10.0;
    EXPECT_LT(chord.At(x), std::exp(-lo));
  }
}

TEST(ExpTangentTest, TouchesCurveAndStaysBelow) {
  for (const double t : {0.0, 0.5, 1.7, 4.0}) {
    const LinearFn tan = ExpTangent(t);
    EXPECT_NEAR(tan.At(t), std::exp(-t), 1e-12);
    for (int i = 0; i <= 100; ++i) {
      const double x = 5.0 * i / 100.0;
      EXPECT_LE(tan.At(x), std::exp(-x) + 1e-12);
    }
  }
}

TEST(ExpTangentTest, TighterThanConstantSotaBoundOnInterval) {
  // Lemma 4: the tangent at hi dominates exp(−hi) on [lo, hi).
  const double lo = 0.2, hi = 2.0;
  const LinearFn tan = ExpTangent(hi);
  for (int i = 0; i < 10; ++i) {
    const double x = lo + (hi - lo) * i / 10.0;
    EXPECT_GT(tan.At(x), std::exp(-hi));
  }
}

TEST(ProfileChordTest, MatchesEndpoints) {
  const auto k = KernelParams::Polynomial(1.0, 0.0, 3);
  const LinearFn chord = ProfileChord(k, -1.0, 2.0);
  EXPECT_NEAR(chord.At(-1.0), -1.0, 1e-12);
  EXPECT_NEAR(chord.At(2.0), 8.0, 1e-12);
}

TEST(ProfileTangentTest, MatchesValueAndSlope) {
  const auto k = KernelParams::Sigmoid(1.0, 0.0);
  const LinearFn tan = ProfileTangent(k, 0.7);
  EXPECT_NEAR(tan.At(0.7), std::tanh(0.7), 1e-12);
  EXPECT_NEAR(tan.m, 1.0 - std::tanh(0.7) * std::tanh(0.7), 1e-12);
}

// ----------------------------- Curvature map ----------------------------

TEST(CurvatureTest, GaussianAlwaysConvex) {
  const auto k = KernelParams::Gaussian(1.0);
  EXPECT_EQ(ClassifyProfile(k, -5.0, 5.0), Curvature::kConvex);
}

TEST(CurvatureTest, PolynomialByDegreeAndInterval) {
  EXPECT_EQ(ClassifyProfile(KernelParams::Polynomial(1, 0, 1), -1, 1),
            Curvature::kLinear);
  EXPECT_EQ(ClassifyProfile(KernelParams::Polynomial(1, 0, 2), -1, 1),
            Curvature::kConvex);
  EXPECT_EQ(ClassifyProfile(KernelParams::Polynomial(1, 0, 3), 0.1, 1),
            Curvature::kConvex);
  EXPECT_EQ(ClassifyProfile(KernelParams::Polynomial(1, 0, 3), -1, -0.1),
            Curvature::kConcave);
  EXPECT_EQ(ClassifyProfile(KernelParams::Polynomial(1, 0, 3), -1, 1),
            Curvature::kMixedConcaveConvex);
}

TEST(CurvatureTest, SigmoidByInterval) {
  const auto k = KernelParams::Sigmoid(1.0, 0.0);
  EXPECT_EQ(ClassifyProfile(k, -2, -0.5), Curvature::kConvex);
  EXPECT_EQ(ClassifyProfile(k, 0.5, 2), Curvature::kConcave);
  EXPECT_EQ(ClassifyProfile(k, -2, 2), Curvature::kMixedConvexConcave);
}

// ----------------------- PivotLine (Fig. 8) validity ----------------------

struct PivotCase {
  KernelParams kernel;
  double lo, hi;
  const char* name;
};

class PivotLineTest : public ::testing::TestWithParam<PivotCase> {};

TEST_P(PivotLineTest, UpperLineDominatesProfile) {
  const auto& pc = GetParam();
  const bool pivot_right =
      ClassifyProfile(pc.kernel, pc.lo, pc.hi) ==
      Curvature::kMixedConcaveConvex;
  const LinearFn line =
      PivotLine(pc.kernel, pc.lo, pc.hi, pivot_right, /*upper=*/true);
  for (int i = 0; i <= 400; ++i) {
    const double x = pc.lo + (pc.hi - pc.lo) * i / 400.0;
    EXPECT_GE(line.At(x), KernelProfile(pc.kernel, x) - 1e-9)
        << pc.name << " at x=" << x;
  }
}

TEST_P(PivotLineTest, LowerLineStaysBelowProfile) {
  const auto& pc = GetParam();
  const bool pivot_right =
      ClassifyProfile(pc.kernel, pc.lo, pc.hi) ==
      Curvature::kMixedConvexConcave;
  const LinearFn line =
      PivotLine(pc.kernel, pc.lo, pc.hi, pivot_right, /*upper=*/false);
  for (int i = 0; i <= 400; ++i) {
    const double x = pc.lo + (pc.hi - pc.lo) * i / 400.0;
    EXPECT_LE(line.At(x), KernelProfile(pc.kernel, x) + 1e-9)
        << pc.name << " at x=" << x;
  }
}

TEST_P(PivotLineTest, UpperLineTouchesThePivotEndpoint) {
  // The rotate construction anchors at the pivot endpoint and must be
  // exact there (otherwise it could not be the tightest rotation).
  const auto& pc = GetParam();
  const bool pivot_right =
      ClassifyProfile(pc.kernel, pc.lo, pc.hi) ==
      Curvature::kMixedConcaveConvex;
  const LinearFn line =
      PivotLine(pc.kernel, pc.lo, pc.hi, pivot_right, /*upper=*/true);
  const double px = pivot_right ? pc.hi : pc.lo;
  EXPECT_NEAR(line.At(px), KernelProfile(pc.kernel, px), 1e-10) << pc.name;
}

INSTANTIATE_TEST_SUITE_P(
    MixedIntervals, PivotLineTest,
    ::testing::Values(
        PivotCase{KernelParams::Polynomial(1, 0, 3), -1.0, 1.0, "cubic_sym"},
        PivotCase{KernelParams::Polynomial(1, 0, 3), -0.3, 2.0,
                  "cubic_right_heavy"},
        PivotCase{KernelParams::Polynomial(1, 0, 3), -2.0, 0.4,
                  "cubic_left_heavy"},
        PivotCase{KernelParams::Polynomial(1, 0, 5), -1.2, 0.9, "quintic"},
        PivotCase{KernelParams::Sigmoid(1, 0), -2.0, 2.0, "tanh_sym"},
        PivotCase{KernelParams::Sigmoid(1, 0), -0.5, 3.0, "tanh_right"},
        PivotCase{KernelParams::Sigmoid(1, 0), -3.0, 0.5, "tanh_left"}),
    [](const ::testing::TestParamInfo<PivotCase>& info) {
      return info.param.name;
    });

// ------------------- Node bounds: validity vs brute force -----------------

struct NodeBoundsCase {
  KernelParams kernel;
  BoundKind bound_kind;
  const char* name;
};

class NodeBoundsTest : public ::testing::TestWithParam<NodeBoundsCase> {};

TEST_P(NodeBoundsTest, EveryNodeBoundSandwichesBruteForce) {
  const auto& tc = GetParam();
  util::Rng rng(101);
  const data::Matrix pts = data::SampleClustered(400, 6, 3, 0.08, rng);
  std::vector<double> weights(pts.rows());
  for (auto& w : weights) w = rng.Uniform(0.05, 1.5);
  auto tree = index::KdTree::Build(pts, weights, 16).ValueOrDie();

  auto bounds = MakeBoundFunction(tc.kernel, tc.bound_kind).ValueOrDie();

  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> q(6);
    for (auto& v : q) v = rng.Uniform(-0.3, 1.3);
    const QueryContext ctx = QueryContext::Make(q);
    for (size_t id = 0; id < tree->num_nodes(); ++id) {
      const auto& nd = tree->node(id);
      double exact = 0.0;
      for (uint32_t i = nd.begin; i < nd.end; ++i) {
        exact += tree->weights()[i] *
                 KernelValue(tc.kernel, q, tree->points().Row(i));
      }
      double lb = 0.0, ub = 0.0;
      bounds->NodeBounds(*tree, static_cast<index::NodeId>(id), ctx, &lb, &ub);
      const double slack = 1e-7 * (1.0 + std::abs(exact));
      EXPECT_LE(lb, exact + slack) << tc.name << " node " << id;
      EXPECT_GE(ub, exact - slack) << tc.name << " node " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAndBounds, NodeBoundsTest,
    ::testing::Values(
        NodeBoundsCase{KernelParams::Gaussian(4.0), BoundKind::kSota,
                       "sota_gaussian"},
        NodeBoundsCase{KernelParams::Gaussian(4.0), BoundKind::kKarl,
                       "karl_gaussian"},
        NodeBoundsCase{KernelParams::Polynomial(0.5, 0.1, 3),
                       BoundKind::kSota, "sota_poly3"},
        NodeBoundsCase{KernelParams::Polynomial(0.5, 0.1, 3),
                       BoundKind::kKarl, "karl_poly3"},
        NodeBoundsCase{KernelParams::Polynomial(0.5, -0.2, 2),
                       BoundKind::kSota, "sota_poly2"},
        NodeBoundsCase{KernelParams::Polynomial(0.5, -0.2, 2),
                       BoundKind::kKarl, "karl_poly2"},
        NodeBoundsCase{KernelParams::Polynomial(0.4, 0.0, 1),
                       BoundKind::kKarl, "karl_poly1"},
        NodeBoundsCase{KernelParams::Sigmoid(0.8, -0.1), BoundKind::kSota,
                       "sota_sigmoid"},
        NodeBoundsCase{KernelParams::Sigmoid(0.8, -0.1), BoundKind::kKarl,
                       "karl_sigmoid"},
        NodeBoundsCase{KernelParams::Laplacian(2.0), BoundKind::kSota,
                       "sota_laplacian"},
        NodeBoundsCase{KernelParams::Laplacian(2.0), BoundKind::kKarl,
                       "karl_laplacian"},
        NodeBoundsCase{KernelParams::Cauchy(3.0), BoundKind::kSota,
                       "sota_cauchy"},
        NodeBoundsCase{KernelParams::Cauchy(3.0), BoundKind::kKarl,
                       "karl_cauchy"}),
    [](const ::testing::TestParamInfo<NodeBoundsCase>& info) {
      return info.param.name;
    });

// --------------------- KARL tighter than SOTA (Lemmas 3–4) ----------------

TEST(TightnessTest, KarlDistanceKernelsNeverLooserThanSota) {
  util::Rng rng(55);
  const data::Matrix pts = data::SampleClustered(500, 5, 4, 0.06, rng);
  std::vector<double> weights(pts.rows(), 0.7);
  auto tree = index::KdTree::Build(pts, weights, 32).ValueOrDie();

  for (const auto kernel :
       {KernelParams::Gaussian(6.0), KernelParams::Laplacian(2.5),
        KernelParams::Cauchy(4.0)}) {
    auto sota = MakeBoundFunction(kernel, BoundKind::kSota).ValueOrDie();
    auto karl = MakeBoundFunction(kernel, BoundKind::kKarl).ValueOrDie();

    for (int trial = 0; trial < 10; ++trial) {
      std::vector<double> q(5);
      for (auto& v : q) v = rng.Uniform(0.0, 1.0);
      const QueryContext ctx = QueryContext::Make(q);
      for (size_t id = 0; id < tree->num_nodes(); ++id) {
        double slb = 0.0, sub = 0.0, klb = 0.0, kub = 0.0;
        sota->NodeBounds(*tree, static_cast<index::NodeId>(id), ctx, &slb,
                         &sub);
        karl->NodeBounds(*tree, static_cast<index::NodeId>(id), ctx, &klb,
                         &kub);
        EXPECT_GE(klb, slb - 1e-9)
            << KernelTypeToString(kernel.type) << " node " << id;
        EXPECT_LE(kub, sub + 1e-9)
            << KernelTypeToString(kernel.type) << " node " << id;
      }
    }
  }
}

TEST(TightnessTest, KarlStrictlyTighterOnWideNodes) {
  // On the root of a spread-out dataset the linear bounds must win by a
  // clear margin, not just match.
  util::Rng rng(56);
  const data::Matrix pts = data::SampleUniform(1000, 3, 0.0, 1.0, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  auto tree = index::KdTree::Build(pts, weights, 64).ValueOrDie();
  const auto kernel = KernelParams::Gaussian(8.0);
  auto sota = MakeBoundFunction(kernel, BoundKind::kSota).ValueOrDie();
  auto karl = MakeBoundFunction(kernel, BoundKind::kKarl).ValueOrDie();

  const std::vector<double> q{0.5, 0.5, 0.5};
  const QueryContext ctx = QueryContext::Make(q);
  double slb = 0.0, sub = 0.0, klb = 0.0, kub = 0.0;
  sota->NodeBounds(*tree, tree->root(), ctx, &slb, &sub);
  karl->NodeBounds(*tree, tree->root(), ctx, &klb, &kub);
  EXPECT_LT(kub - klb, 0.7 * (sub - slb));
}

TEST(TightnessTest, KarlInnerProductNeverLooserThanSota) {
  // KARL's inner-product bounds clamp against the constant bounds, so
  // they dominate SOTA for the polynomial and sigmoid kernels too.
  util::Rng rng(57);
  const data::Matrix pts = data::SampleClustered(400, 4, 3, 0.07, rng);
  std::vector<double> weights(pts.rows());
  for (auto& w : weights) w = rng.Uniform(0.1, 1.0);
  auto tree = index::KdTree::Build(pts, weights, 16).ValueOrDie();

  for (const auto kernel :
       {KernelParams::Polynomial(0.5, 0.1, 3), KernelParams::Polynomial(0.5, 0.1, 2),
        KernelParams::Sigmoid(1.0, -0.2)}) {
    auto sota = MakeBoundFunction(kernel, BoundKind::kSota).ValueOrDie();
    auto karl = MakeBoundFunction(kernel, BoundKind::kKarl).ValueOrDie();
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<double> q(4);
      for (auto& v : q) v = rng.Uniform(-1.0, 1.0);
      const QueryContext ctx = QueryContext::Make(q);
      for (size_t id = 0; id < tree->num_nodes(); ++id) {
        double slb = 0.0, sub = 0.0, klb = 0.0, kub = 0.0;
        sota->NodeBounds(*tree, static_cast<index::NodeId>(id), ctx, &slb,
                         &sub);
        karl->NodeBounds(*tree, static_cast<index::NodeId>(id), ctx, &klb,
                         &kub);
        EXPECT_GE(klb, slb - 1e-9)
            << KernelTypeToString(kernel.type) << " node " << id;
        EXPECT_LE(kub, sub + 1e-9)
            << KernelTypeToString(kernel.type) << " node " << id;
      }
    }
  }
}

// ----------------------- Optimal tangent (Theorem 1) ----------------------

TEST(OptimalTangentTest, WeightedMeanBeatsOtherTangentPoints) {
  // H(t) = Σ w_i·(tangent_t at x_i) is maximised at t = weighted mean.
  util::Rng rng(77);
  std::vector<double> xs(50), ws(50);
  double sum_wx = 0.0, sum_w = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.Uniform(0.1, 3.0);
    ws[i] = rng.Uniform(0.2, 2.0);
    sum_wx += ws[i] * xs[i];
    sum_w += ws[i];
  }
  const double t_opt = sum_wx / sum_w;

  const auto aggregate = [&](double t) {
    const LinearFn tan = ExpTangent(t);
    double s = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) s += ws[i] * tan.At(xs[i]);
    return s;
  };

  const double best = aggregate(t_opt);
  for (const double dt : {-1.0, -0.3, -0.05, 0.05, 0.3, 1.0}) {
    EXPECT_GE(best, aggregate(t_opt + dt) - 1e-12) << "dt=" << dt;
  }
}

// ----------------------------- Degenerate nodes ---------------------------

TEST(DegenerateTest, SinglePointNodeBoundsAreExact) {
  data::Matrix pts(1, 2, {0.25, 0.75});
  std::vector<double> weights{2.0};
  auto tree = index::KdTree::Build(pts, weights, 4).ValueOrDie();
  const std::vector<double> q{0.5, 0.5};
  const QueryContext ctx = QueryContext::Make(q);

  for (const auto kind : {BoundKind::kSota, BoundKind::kKarl}) {
    for (const auto kernel :
         {KernelParams::Gaussian(2.0), KernelParams::Polynomial(1.0, 0.5, 3),
          KernelParams::Sigmoid(1.0, 0.0)}) {
      auto bounds = MakeBoundFunction(kernel, kind).ValueOrDie();
      double lb = 0.0, ub = 0.0;
      bounds->NodeBounds(*tree, tree->root(), ctx, &lb, &ub);
      const double exact = 2.0 * KernelValue(kernel, q, pts.Row(0));
      EXPECT_NEAR(lb, exact, 1e-9);
      EXPECT_NEAR(ub, exact, 1e-9);
    }
  }
}

TEST(MakeBoundFunctionTest, RejectsInvalidKernel) {
  auto bad = KernelParams::Gaussian(-1.0);
  EXPECT_FALSE(MakeBoundFunction(bad, BoundKind::kKarl).ok());
}

TEST(BoundKindTest, Names) {
  EXPECT_EQ(BoundKindToString(BoundKind::kSota), "SOTA");
  EXPECT_EQ(BoundKindToString(BoundKind::kKarl), "KARL");
}

}  // namespace
}  // namespace karl::core
