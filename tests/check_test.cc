// Death tests for the KARL_CHECK / KARL_DCHECK macro layer (check.h).

#include "util/check.h"

#include <gtest/gtest.h>

namespace karl {
namespace {

TEST(CheckTest, PassingCheckDoesNotAbort) {
  KARL_CHECK(1 + 1 == 2);
  KARL_CHECK(true) << "never rendered";
  SUCCEED();
}

TEST(CheckTest, ConditionIsEvaluatedExactlyOnce) {
  int calls = 0;
  KARL_CHECK(++calls > 0) << "side effects must run once";
  EXPECT_EQ(calls, 1);
}

TEST(CheckDeathTest, FailingCheckAbortsWithConditionText) {
  EXPECT_DEATH(KARL_CHECK(1 == 2), "KARL_CHECK\\(1 == 2\\) failed");
}

TEST(CheckDeathTest, FailingCheckCarriesFormattedMessage) {
  const int node = 17;
  const double lb = 3.5, ub = 1.25;
  EXPECT_DEATH(KARL_CHECK(lb <= ub) << ": node " << node << " lb=" << lb
                                    << " ub=" << ub,
               "KARL_CHECK\\(lb <= ub\\) failed: node 17 lb=3.5 ub=1.25");
}

TEST(CheckDeathTest, FailureMessageNamesFileAndLine) {
  EXPECT_DEATH(KARL_CHECK(false), "check_test.cc:[0-9]+");
}

#ifdef NDEBUG
TEST(CheckTest, DcheckIsFreeInReleaseBuilds) {
  // Under NDEBUG the condition must not even be evaluated.
  int calls = 0;
  KARL_DCHECK((++calls, false)) << "unreachable";
  EXPECT_EQ(calls, 0);
}
#else
TEST(CheckDeathTest, DcheckFiresInDebugBuilds) {
  EXPECT_DEATH(KARL_DCHECK(false) << ": debug-only invariant",
               "KARL_CHECK\\(false\\) failed: debug-only invariant");
}
#endif

}  // namespace
}  // namespace karl
