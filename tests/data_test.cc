// Unit tests for the data layer: Matrix, LIBSVM/CSV I/O, synthetic
// generators, normalisation, PCA.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <numeric>

#include "data/csv_io.h"
#include "data/libsvm_io.h"
#include "data/matrix.h"
#include "data/normalize.h"
#include "data/pca.h"
#include "data/synthetic.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace karl::data {
namespace {

// -------------------------------- Matrix --------------------------------

TEST(MatrixTest, DefaultEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(MatrixTest, ZeroInitialised) {
  Matrix m(3, 4);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixTest, ElementWriteRead) {
  Matrix m(2, 2);
  m(0, 1) = 3.5;
  m(1, 0) = -1.25;
  EXPECT_DOUBLE_EQ(m(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(m(1, 0), -1.25);
}

TEST(MatrixTest, RowViewIsContiguous) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const auto row = m.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

TEST(MatrixTest, AppendRowSetsColsOnFirst) {
  Matrix m;
  const std::vector<double> r{1.0, 2.0};
  m.AppendRow(r);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 2u);
  m.AppendRow(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, SelectRowsPreservesOrder) {
  Matrix m(4, 1, {10, 20, 30, 40});
  const std::vector<size_t> idx{3, 0, 2};
  const Matrix s = m.SelectRows(idx);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_DOUBLE_EQ(s(0, 0), 40.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(s(2, 0), 30.0);
}

TEST(MatrixTest, TruncateColumns) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = m.TruncateColumns(2);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(1, 1), 5.0);
}

// ------------------------------- LIBSVM IO ------------------------------

TEST(LibsvmIoTest, ParsesBasicFile) {
  const std::string text = "+1 1:0.5 3:2.0\n-1 2:1.5\n";
  auto result = ParseLibsvm(text);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& ds = result.value();
  EXPECT_EQ(ds.points.rows(), 2u);
  EXPECT_EQ(ds.points.cols(), 3u);
  EXPECT_DOUBLE_EQ(ds.labels[0], 1.0);
  EXPECT_DOUBLE_EQ(ds.labels[1], -1.0);
  EXPECT_DOUBLE_EQ(ds.points(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(ds.points(0, 1), 0.0);  // Sparse zero.
  EXPECT_DOUBLE_EQ(ds.points(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(ds.points(1, 1), 1.5);
}

TEST(LibsvmIoTest, SkipsBlankAndCommentLines) {
  const std::string text = "# header comment\n\n1 1:1\n   \n2 1:2\n";
  auto result = ParseLibsvm(text);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().points.rows(), 2u);
}

TEST(LibsvmIoTest, FixedDimensionality) {
  auto result = ParseLibsvm("1 1:1\n", 5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().points.cols(), 5u);
}

TEST(LibsvmIoTest, RejectsIndexBeyondFixedDim) {
  auto result = ParseLibsvm("1 7:1\n", 5);
  EXPECT_FALSE(result.ok());
}

TEST(LibsvmIoTest, RejectsMalformedFeature) {
  auto result = ParseLibsvm("1 abc\n");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

TEST(LibsvmIoTest, RejectsMissingLabel) {
  EXPECT_FALSE(ParseLibsvm(":5 1:1\n").ok());
}

TEST(LibsvmIoTest, RejectsZeroIndex) {
  EXPECT_FALSE(ParseLibsvm("1 0:1\n").ok());
}

TEST(LibsvmIoTest, RoundTrip) {
  LabeledDataset ds;
  ds.points = Matrix(2, 3, {0.5, 0.0, 2.0, 0.0, 1.5, 0.0});
  ds.labels = {1.0, -1.0};
  auto result = ParseLibsvm(WriteLibsvm(ds), 3);
  ASSERT_TRUE(result.ok());
  const auto& back = result.value();
  EXPECT_EQ(back.points.rows(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(back.labels[i], ds.labels[i]);
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(back.points(i, j), ds.points(i, j));
    }
  }
}

TEST(LibsvmIoTest, FileRoundTrip) {
  LabeledDataset ds;
  ds.points = Matrix(1, 2, {1.0, -2.0});
  ds.labels = {3.0};
  const std::string path =
      (std::filesystem::temp_directory_path() / "karl_libsvm_test.txt")
          .string();
  ASSERT_TRUE(WriteLibsvmFile(path, ds).ok());
  auto result = ReadLibsvmFile(path, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().points(0, 1), -2.0);
  std::filesystem::remove(path);
}

TEST(LibsvmIoTest, MissingFileIsIOError) {
  auto result = ReadLibsvmFile("/nonexistent/karl/file.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kIOError);
}

// -------------------------------- CSV IO --------------------------------

TEST(CsvIoTest, ParsesNumbers) {
  auto result = ParseCsv("1.5,2.5\n-3,4e2\n");
  ASSERT_TRUE(result.ok());
  const Matrix& m = result.value();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 1), 400.0);
}

TEST(CsvIoTest, SkipsHeader) {
  auto result = ParseCsv("a,b\n1,2\n", 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows(), 1u);
}

TEST(CsvIoTest, RejectsInconsistentWidth) {
  EXPECT_FALSE(ParseCsv("1,2\n3\n").ok());
}

TEST(CsvIoTest, RejectsGarbage) {
  EXPECT_FALSE(ParseCsv("1,x\n").ok());
}

TEST(CsvIoTest, RoundTrip) {
  Matrix m(2, 2, {1.25, -2.5, 3.0, 1e-7});
  auto result = ParseCsv(WriteCsv(m));
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(result.value()(i, j), m(i, j));
    }
  }
}

// ------------------------------- Synthetic ------------------------------

TEST(SyntheticTest, GaussianMixtureShape) {
  util::Rng rng(1);
  std::vector<MixtureComponent> comps(2);
  comps[0] = {{0.0, 0.0}, 0.1, 1.0};
  comps[1] = {{10.0, 10.0}, 0.1, 1.0};
  const Matrix m = SampleGaussianMixture(comps, 500, rng);
  EXPECT_EQ(m.rows(), 500u);
  EXPECT_EQ(m.cols(), 2u);
  // Every point is near one of the two far-apart centres.
  for (size_t i = 0; i < m.rows(); ++i) {
    const double near0 = std::hypot(m(i, 0), m(i, 1));
    const double near1 = std::hypot(m(i, 0) - 10.0, m(i, 1) - 10.0);
    EXPECT_LT(std::min(near0, near1), 2.0);
  }
}

TEST(SyntheticTest, UniformRange) {
  util::Rng rng(2);
  const Matrix m = SampleUniform(200, 3, -1.0, 1.0, rng);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_GE(m(i, j), -1.0);
      EXPECT_LT(m(i, j), 1.0);
    }
  }
}

TEST(SyntheticTest, RegistryHasAllPaperDatasets) {
  for (const char* name :
       {"mnist", "miniboone", "home", "susy", "nsl-kdd", "kdd99", "covtype",
        "ijcnn1", "a9a", "covtype-b"}) {
    auto spec = FindDataset(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_GT(spec.value().n, 0u);
    EXPECT_GT(spec.value().d, 0u);
  }
}

TEST(SyntheticTest, UnknownDatasetIsNotFound) {
  auto spec = FindDataset("not-a-dataset");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), util::StatusCode::kNotFound);
}

TEST(SyntheticTest, DimensionalitiesMatchPaperTable6) {
  EXPECT_EQ(FindDataset("mnist").value().d, 784u);
  EXPECT_EQ(FindDataset("miniboone").value().d, 50u);
  EXPECT_EQ(FindDataset("home").value().d, 10u);
  EXPECT_EQ(FindDataset("susy").value().d, 18u);
  EXPECT_EQ(FindDataset("nsl-kdd").value().d, 41u);
  EXPECT_EQ(FindDataset("a9a").value().d, 123u);
  EXPECT_EQ(FindDataset("covtype-b").value().d, 54u);
}

TEST(SyntheticTest, MakeUciLikeIsDeterministic) {
  auto spec = FindDataset("home").value();
  spec.n = 500;  // Shrink for test speed.
  const Matrix a = MakeUciLike(spec);
  const Matrix b = MakeUciLike(spec);
  ASSERT_EQ(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); i += 37) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_DOUBLE_EQ(a(i, j), b(i, j));
    }
  }
}

TEST(SyntheticTest, MakeUciLikeNormalisedToUnitCube) {
  auto spec = FindDataset("home").value();
  spec.n = 1000;
  const Matrix m = MakeUciLike(spec);
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      EXPECT_GE(m(i, j), 0.0);
      EXPECT_LE(m(i, j), 1.0);
    }
  }
}

TEST(SyntheticTest, TwoClassDatasetBalancedAndLabelled) {
  util::Rng rng(3);
  const LabeledDataset ds = MakeTwoClassDataset(200, 5, 0.8, rng);
  EXPECT_EQ(ds.points.rows(), 200u);
  size_t pos = 0;
  for (const double y : ds.labels) {
    EXPECT_TRUE(y == 1.0 || y == -1.0);
    pos += y > 0;
  }
  EXPECT_EQ(pos, 100u);
}

TEST(SyntheticTest, OneClassDatasetHasOutliers) {
  util::Rng rng(4);
  const LabeledDataset ds = MakeOneClassDataset(100, 20, 4, rng);
  EXPECT_EQ(ds.points.rows(), 120u);
  size_t outliers = 0;
  for (const double y : ds.labels) outliers += y < 0;
  EXPECT_EQ(outliers, 20u);
}

// ------------------------------- Normalize ------------------------------

TEST(NormalizeTest, ScalesToTargetRange) {
  Matrix m(3, 2, {0.0, 10.0, 5.0, 20.0, 10.0, 30.0});
  MinMaxNormalize(&m, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 1.0);
}

TEST(NormalizeTest, SymmetricRange) {
  Matrix m(2, 1, {0.0, 4.0});
  MinMaxNormalize(&m, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(m(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 1.0);
}

TEST(NormalizeTest, ConstantColumnMapsToMidpoint) {
  Matrix m(3, 1, {7.0, 7.0, 7.0});
  MinMaxNormalize(&m, 0.0, 1.0);
  for (size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(m(i, 0), 0.5);
}

TEST(NormalizeTest, ApplyToHeldOutQueries) {
  Matrix train(2, 1, {0.0, 10.0});
  const NormalizationParams params = FitMinMax(train, 0.0, 1.0);
  Matrix queries(1, 1, {5.0});
  ApplyNormalization(params, &queries);
  EXPECT_DOUBLE_EQ(queries(0, 0), 0.5);
}

// ---------------------------------- PCA ---------------------------------

TEST(PcaTest, JacobiDiagonalisesKnownMatrix) {
  // Symmetric 2x2 with eigenvalues 3 and 1 (eigvecs at 45°).
  std::vector<double> m{2.0, 1.0, 1.0, 2.0};
  std::vector<double> eigenvalues, eigenvectors;
  JacobiEigenSymmetric(m, 2, &eigenvalues, &eigenvectors);
  std::sort(eigenvalues.begin(), eigenvalues.end());
  EXPECT_NEAR(eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(eigenvalues[1], 3.0, 1e-10);
}

TEST(PcaTest, JacobiEigenvectorsOrthonormal) {
  util::Rng rng(5);
  const size_t d = 6;
  // Random symmetric matrix.
  std::vector<double> m(d * d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i; j < d; ++j) {
      m[i * d + j] = m[j * d + i] = rng.Uniform(-1.0, 1.0);
    }
  }
  std::vector<double> eigenvalues, v;
  JacobiEigenSymmetric(m, d, &eigenvalues, &v);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < d; ++b) {
      double dot = 0.0;
      for (size_t k = 0; k < d; ++k) dot += v[k * d + a] * v[k * d + b];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(PcaTest, RecoversDominantDirection) {
  // Points spread along (1,1)/√2 with tiny orthogonal noise.
  util::Rng rng(6);
  Matrix m(500, 2);
  for (size_t i = 0; i < 500; ++i) {
    const double t = rng.Gaussian(0.0, 3.0);
    const double noise = rng.Gaussian(0.0, 0.05);
    m(i, 0) = t + noise;
    m(i, 1) = t - noise;
  }
  auto model = PcaModel::Fit(m);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model.value().eigenvalues()[0],
            100.0 * model.value().eigenvalues()[1]);
  // Projection onto 1 component preserves nearly all the variance.
  auto projected = model.value().Project(m, 1);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected.value().cols(), 1u);
}

TEST(PcaTest, ProjectionDimChecks) {
  Matrix m(10, 3);
  for (size_t i = 0; i < 10; ++i) m(i, 0) = static_cast<double>(i);
  auto model = PcaModel::Fit(m);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model.value().Project(m, 4).ok());
  Matrix wrong(2, 2);
  EXPECT_FALSE(model.value().Project(wrong, 1).ok());
}

TEST(PcaTest, EmptyMatrixFails) {
  EXPECT_FALSE(PcaModel::Fit(Matrix()).ok());
}

TEST(PcaTest, EigenvaluesSortedDescending) {
  util::Rng rng(8);
  const Matrix m = SampleUniform(300, 5, 0.0, 1.0, rng);
  auto model = PcaModel::Fit(m);
  ASSERT_TRUE(model.ok());
  const auto& ev = model.value().eigenvalues();
  for (size_t i = 1; i < ev.size(); ++i) EXPECT_GE(ev[i - 1], ev[i]);
}

TEST(PcaTest, FullProjectionPreservesDistances) {
  // Projecting onto ALL components is an isometry (rotation): pairwise
  // distances are preserved.
  util::Rng rng(9);
  const Matrix m = SampleUniform(50, 4, -2.0, 2.0, rng);
  auto model = PcaModel::Fit(m);
  ASSERT_TRUE(model.ok());
  auto proj = model.value().Project(m, 4);
  ASSERT_TRUE(proj.ok());
  const Matrix& p = proj.value();
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = i + 1; j < 10; ++j) {
      EXPECT_NEAR(util::SquaredDistance(m.Row(i), m.Row(j)),
                  util::SquaredDistance(p.Row(i), p.Row(j)), 1e-8);
    }
  }
}

}  // namespace
}  // namespace karl::data
