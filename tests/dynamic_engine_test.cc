// Tests for DynamicEngine: correctness of every query against a brute-
// force model of the live multiset across randomized insert/remove
// churn, rebuild behaviour, and error handling.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/dynamic_engine.h"
#include "core/evaluator.h"
#include "data/synthetic.h"
#include "telemetry/metrics.h"
#include "util/rng.h"

namespace karl::core {
namespace {

DynamicEngine::Options SmallOptions(double gamma = 4.0) {
  DynamicEngine::Options options;
  options.engine.kernel = KernelParams::Gaussian(gamma);
  options.engine.leaf_capacity = 16;
  options.min_index_size = 64;
  options.rebuild_fraction = 0.25;
  return options;
}

// Brute-force mirror of the live multiset.
struct Mirror {
  std::map<PointId, std::pair<std::vector<double>, double>> live;

  double Exact(const KernelParams& kernel, std::span<const double> q) const {
    double f = 0.0;
    for (const auto& [id, pw] : live) {
      f += pw.second * KernelValue(kernel, q, pw.first);
    }
    return f;
  }
};

TEST(DynamicEngineTest, CreateValidation) {
  EXPECT_FALSE(DynamicEngine::Create(0, SmallOptions()).ok());
  auto options = SmallOptions();
  options.rebuild_fraction = 0.0;
  EXPECT_FALSE(DynamicEngine::Create(3, options).ok());
  options = SmallOptions();
  options.engine.kernel.gamma = -1.0;
  EXPECT_FALSE(DynamicEngine::Create(3, options).ok());
  EXPECT_TRUE(DynamicEngine::Create(3, SmallOptions()).ok());
}

TEST(DynamicEngineTest, InsertValidation) {
  auto engine = DynamicEngine::Create(2, SmallOptions()).ValueOrDie();
  const std::vector<double> wrong_dim{1.0, 2.0, 3.0};
  EXPECT_FALSE(engine->Insert(wrong_dim, 1.0).ok());
  const std::vector<double> p{0.5, 0.5};
  EXPECT_FALSE(engine->Insert(p, 0.0).ok());
  EXPECT_TRUE(engine->Insert(p, 1.0).ok());
  EXPECT_EQ(engine->size(), 1u);
}

TEST(DynamicEngineTest, RemoveValidation) {
  auto engine = DynamicEngine::Create(2, SmallOptions()).ValueOrDie();
  const std::vector<double> p{0.5, 0.5};
  const PointId id = engine->Insert(p, 1.0).ValueOrDie();
  EXPECT_FALSE(engine->Remove(id + 100).ok());
  EXPECT_TRUE(engine->Remove(id).ok());
  EXPECT_FALSE(engine->Remove(id).ok());  // Double remove.
  EXPECT_EQ(engine->size(), 0u);
}

TEST(DynamicEngineTest, SmallSetScansExactly) {
  // Below min_index_size everything is answered by scanning.
  auto engine = DynamicEngine::Create(2, SmallOptions()).ValueOrDie();
  util::Rng rng(1);
  Mirror mirror;
  const auto kernel = SmallOptions().engine.kernel;
  for (int i = 0; i < 20; ++i) {
    std::vector<double> p{rng.Uniform(), rng.Uniform()};
    const double w = rng.Uniform(0.1, 1.0);
    const PointId id = engine->Insert(p, w).ValueOrDie();
    mirror.live[id] = {p, w};
  }
  EXPECT_EQ(engine->rebuild_count(), 0u);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> q{rng.Uniform(), rng.Uniform()};
    EXPECT_NEAR(engine->Exact(q), mirror.Exact(kernel, q), 1e-12);
  }
}

TEST(DynamicEngineTest, RandomChurnMatchesBruteForce) {
  auto options = SmallOptions(6.0);
  auto engine = DynamicEngine::Create(3, options).ValueOrDie();
  util::Rng rng(2);
  Mirror mirror;
  const auto& kernel = options.engine.kernel;

  for (int step = 0; step < 1500; ++step) {
    const bool remove = !mirror.live.empty() && rng.Uniform() < 0.3;
    if (remove) {
      // Remove a pseudo-random live id.
      auto it = mirror.live.begin();
      std::advance(it, rng.UniformInt(mirror.live.size()));
      ASSERT_TRUE(engine->Remove(it->first).ok());
      mirror.live.erase(it);
    } else {
      std::vector<double> p{rng.Uniform(), rng.Uniform(), rng.Uniform()};
      const double w = rng.Uniform(0.05, 1.0);
      const PointId id = engine->Insert(p, w).ValueOrDie();
      mirror.live[id] = {p, w};
    }

    if (step % 100 == 99) {
      ASSERT_EQ(engine->size(), mirror.live.size());
      for (int trial = 0; trial < 3; ++trial) {
        const std::vector<double> q{rng.Uniform(), rng.Uniform(),
                                    rng.Uniform()};
        const double truth = mirror.Exact(kernel, q);
        ASSERT_NEAR(engine->Exact(q), truth, 1e-9 * (1.0 + truth))
            << "step " << step;
        if (truth > 1e-9) {
          ASSERT_EQ(engine->Tkaq(q, truth * 0.95), true) << "step " << step;
          ASSERT_EQ(engine->Tkaq(q, truth * 1.05), false) << "step " << step;
          const double approx = engine->Ekaq(q, 0.2);
          ASSERT_NEAR(approx, truth, 0.25 * truth + 1e-9) << "step " << step;
        }
      }
    }
  }
  // Churn at this volume must have triggered index rebuilds.
  EXPECT_GT(engine->rebuild_count(), 1u);
}

TEST(DynamicEngineTest, SignedWeightsSupported) {
  auto options = SmallOptions(3.0);
  options.min_index_size = 32;
  auto engine = DynamicEngine::Create(2, options).ValueOrDie();
  util::Rng rng(3);
  Mirror mirror;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> p{rng.Uniform(), rng.Uniform()};
    const double w = rng.Uniform() < 0.5 ? rng.Uniform(0.1, 1.0)
                                         : -rng.Uniform(0.1, 1.0);
    const PointId id = engine->Insert(p, w).ValueOrDie();
    mirror.live[id] = {p, w};
  }
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> q{rng.Uniform(), rng.Uniform()};
    const double truth = mirror.Exact(options.engine.kernel, q);
    EXPECT_NEAR(engine->Exact(q), truth, 1e-9);
    EXPECT_EQ(engine->Tkaq(q, truth - 0.01), true);
    EXPECT_EQ(engine->Tkaq(q, truth + 0.01), false);
  }
}

TEST(DynamicEngineTest, RebuildShrinksDeltaState) {
  auto options = SmallOptions();
  options.min_index_size = 64;
  auto engine = DynamicEngine::Create(2, options).ValueOrDie();
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> p{rng.Uniform(), rng.Uniform()};
    engine->Insert(p, 1.0).ValueOrDie();
  }
  // After the churn settles, the delta buffer is bounded by the rebuild
  // fraction of the snapshot.
  EXPECT_LE(engine->delta_size(),
            static_cast<size_t>(0.25 * 200) + options.min_index_size);
  EXPECT_GE(engine->rebuild_count(), 1u);
}

TEST(DynamicEngineTest, RemoveEverythingThenQuery) {
  auto engine = DynamicEngine::Create(2, SmallOptions()).ValueOrDie();
  std::vector<PointId> ids;
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> p{rng.Uniform(), rng.Uniform()};
    ids.push_back(engine->Insert(p, 1.0).ValueOrDie());
  }
  for (const PointId id : ids) ASSERT_TRUE(engine->Remove(id).ok());
  EXPECT_EQ(engine->size(), 0u);
  const std::vector<double> q{0.5, 0.5};
  EXPECT_NEAR(engine->Exact(q), 0.0, 1e-9);
  EXPECT_FALSE(engine->Tkaq(q, 0.5));
}

TEST(DynamicEngineTest, EvalStatsAccumulateAcrossQueries) {
  auto options = SmallOptions();
  options.min_index_size = 64;
  auto engine = DynamicEngine::Create(2, options).ValueOrDie();
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> p{rng.Uniform(), rng.Uniform()};
    engine->Insert(p, 1.0).ValueOrDie();
  }
  ASSERT_GE(engine->rebuild_count(), 1u);
  const std::vector<double> q{0.5, 0.5};

  // Exact counts the delta scan plus every indexed point.
  EvalStats exact_stats;
  (void)engine->Exact(q, &exact_stats);
  EXPECT_EQ(exact_stats.kernel_evals, 200u);

  // Tkaq goes through the refinement loop: some work must be recorded,
  // and pruning means at most the full-point-set of evals.
  EvalStats tkaq_stats;
  const double truth = engine->Exact(q);
  (void)engine->Tkaq(q, truth * 0.9, &tkaq_stats);
  EXPECT_GT(tkaq_stats.iterations + tkaq_stats.kernel_evals, 0u);
  EXPECT_LE(tkaq_stats.kernel_evals, 200u);

  // Stats accumulate rather than reset: a second query adds to the same
  // struct.
  EvalStats both = exact_stats;
  (void)engine->Exact(q, &both);
  EXPECT_EQ(both.kernel_evals, 2 * exact_stats.kernel_evals);

  // Ekaq also reports work.
  EvalStats ekaq_stats;
  (void)engine->Ekaq(q, 0.2, &ekaq_stats);
  EXPECT_GT(ekaq_stats.kernel_evals, 0u);

  // Null stats (the default) stays supported.
  (void)engine->Exact(q);
  (void)engine->Tkaq(q, truth);
}

TEST(DynamicEngineTest, TelemetryGaugesTrackDeltaState) {
  telemetry::Registry registry;
  auto options = SmallOptions();
  options.min_index_size = 64;
  options.engine.metrics = &registry;
  auto engine = DynamicEngine::Create(2, options).ValueOrDie();
  util::Rng rng(8);
  std::vector<PointId> ids;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> p{rng.Uniform(), rng.Uniform()};
    ids.push_back(engine->Insert(p, 1.0).ValueOrDie());
  }
  EXPECT_EQ(registry.GetCounter("karl_dynamic_inserts_total")->value(), 200u);
  EXPECT_EQ(registry.GetCounter("karl_dynamic_rebuilds_total")->value(),
            engine->rebuild_count());
  EXPECT_DOUBLE_EQ(registry.GetGauge("karl_dynamic_live_points")->value(),
                   200.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("karl_dynamic_delta_points")->value(),
                   static_cast<double>(engine->delta_size()));
  EXPECT_EQ(registry.GetHistogram("karl_dynamic_rebuild_usec")->count(),
            engine->rebuild_count());

  // Removing an indexed point shows up as a tombstone until the next
  // rebuild folds it in.
  ASSERT_TRUE(engine->Remove(ids[0]).ok());
  EXPECT_EQ(registry.GetCounter("karl_dynamic_removes_total")->value(), 1u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("karl_dynamic_live_points")->value(),
                   199.0);
}

TEST(DynamicEngineTest, LaplacianKernelWorksToo) {
  auto options = SmallOptions();
  options.engine.kernel = KernelParams::Laplacian(2.0);
  auto engine = DynamicEngine::Create(2, options).ValueOrDie();
  util::Rng rng(6);
  Mirror mirror;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> p{rng.Uniform(), rng.Uniform()};
    const PointId id = engine->Insert(p, 0.5).ValueOrDie();
    mirror.live[id] = {p, 0.5};
  }
  const std::vector<double> q{0.4, 0.6};
  const double truth = mirror.Exact(options.engine.kernel, q);
  EXPECT_NEAR(engine->Exact(q), truth, 1e-9);
  EXPECT_EQ(engine->Tkaq(q, truth * 0.9), true);
}

}  // namespace
}  // namespace karl::core
