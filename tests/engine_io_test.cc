// Tests for engine model persistence: byte-exact round trips, query
// equivalence of the restored engine, and corruption handling.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/engine_io.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace karl::core {
namespace {

EngineModel MakeModel(uint64_t seed, KernelParams kernel,
                      index::IndexKind kind = index::IndexKind::kKdTree) {
  util::Rng rng(seed);
  EngineModel model;
  model.points = data::SampleClustered(400, 4, 3, 0.08, rng);
  model.weights.resize(model.points.rows());
  for (auto& w : model.weights) w = rng.Uniform(-1.0, 1.0);
  model.options.kernel = kernel;
  model.options.index_kind = kind;
  model.options.leaf_capacity = 24;
  return model;
}

TEST(EngineIoTest, StreamRoundTripIsExact) {
  const EngineModel model = MakeModel(1, KernelParams::Gaussian(3.0));
  std::stringstream stream;
  ASSERT_TRUE(WriteEngineModel(stream, model).ok());
  auto back = ReadEngineModel(stream);
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  const EngineModel& m = back.value();
  EXPECT_EQ(m.options.kernel.type, model.options.kernel.type);
  EXPECT_DOUBLE_EQ(m.options.kernel.gamma, model.options.kernel.gamma);
  EXPECT_EQ(m.options.index_kind, model.options.index_kind);
  EXPECT_EQ(m.options.leaf_capacity, model.options.leaf_capacity);
  ASSERT_EQ(m.points.rows(), model.points.rows());
  ASSERT_EQ(m.points.cols(), model.points.cols());
  for (size_t i = 0; i < m.points.rows(); i += 17) {
    EXPECT_DOUBLE_EQ(m.weights[i], model.weights[i]);
    for (size_t j = 0; j < m.points.cols(); ++j) {
      EXPECT_DOUBLE_EQ(m.points(i, j), model.points(i, j));
    }
  }
}

TEST(EngineIoTest, AllKernelAndIndexVariantsRoundTrip) {
  for (const auto kernel :
       {KernelParams::Gaussian(2.0), KernelParams::Laplacian(1.5),
        KernelParams::Cauchy(4.0), KernelParams::Polynomial(0.3, 0.7, 5),
        KernelParams::Sigmoid(0.9, -0.4)}) {
    for (const auto kind :
         {index::IndexKind::kKdTree, index::IndexKind::kBallTree}) {
      const EngineModel model = MakeModel(2, kernel, kind);
      std::stringstream stream;
      ASSERT_TRUE(WriteEngineModel(stream, model).ok());
      auto back = ReadEngineModel(stream);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(back.value().options.kernel.type, kernel.type);
      EXPECT_DOUBLE_EQ(back.value().options.kernel.beta, kernel.beta);
      EXPECT_EQ(back.value().options.kernel.degree, kernel.degree);
      EXPECT_EQ(back.value().options.index_kind, kind);
    }
  }
}

TEST(EngineIoTest, RestoredEngineAnswersIdentically) {
  const EngineModel model = MakeModel(3, KernelParams::Gaussian(5.0));
  const std::string path =
      (std::filesystem::temp_directory_path() / "karl_engine_io_test.bin")
          .string();
  ASSERT_TRUE(SaveEngineModel(path, model).ok());

  auto original =
      Engine::Build(model.points, model.weights, model.options).ValueOrDie();
  auto restored = LoadEngine(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  util::Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    EXPECT_DOUBLE_EQ(restored.value().Exact(q), original.Exact(q));
    const double exact = original.Exact(q);
    EXPECT_EQ(restored.value().Tkaq(q, exact + 0.01),
              original.Tkaq(q, exact + 0.01));
  }
  std::filesystem::remove(path);
}

TEST(EngineIoTest, RejectsGarbageAndTruncation) {
  std::stringstream garbage("this is not a karl model");
  EXPECT_FALSE(ReadEngineModel(garbage).ok());

  // Truncate a valid serialisation at several prefixes.
  const EngineModel model = MakeModel(5, KernelParams::Gaussian(1.0));
  std::stringstream full;
  ASSERT_TRUE(WriteEngineModel(full, model).ok());
  const std::string bytes = full.str();
  for (const size_t cut : {size_t{2}, size_t{10}, size_t{40},
                           bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(ReadEngineModel(truncated).ok()) << "cut=" << cut;
  }
}

TEST(EngineIoTest, RejectsCorruptEnumValues) {
  const EngineModel model = MakeModel(6, KernelParams::Gaussian(1.0));
  std::stringstream full;
  ASSERT_TRUE(WriteEngineModel(full, model).ok());
  std::string bytes = full.str();
  bytes[8] = static_cast<char>(0xFF);  // Kernel-type field.
  std::stringstream corrupt(bytes);
  EXPECT_FALSE(ReadEngineModel(corrupt).ok());
}

TEST(EngineIoTest, CorruptFileErrorNamesPath) {
  // A corrupt model file must be diagnosed by path, not just defect.
  const std::string path =
      (std::filesystem::temp_directory_path() / "karl_engine_io_corrupt.bin")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "KARLgarbage";
  }
  auto result = LoadEngineModel(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(path), std::string::npos)
      << result.status().ToString();
  std::filesystem::remove(path);
}

TEST(EngineIoTest, MissingFileIsIOError) {
  auto result = LoadEngineModel("/nonexistent/karl/model.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kIOError);
}

TEST(EngineIoTest, RejectsMismatchedWeights) {
  EngineModel model = MakeModel(7, KernelParams::Gaussian(1.0));
  model.weights.pop_back();
  std::stringstream stream;
  EXPECT_FALSE(WriteEngineModel(stream, model).ok());
}

}  // namespace
}  // namespace karl::core
