// Tests for the karl::Engine facade: weighting detection, Type III
// splitting, the query surface, and option plumbing.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/evaluator.h"
#include "core/karl.h"
#include "data/synthetic.h"
#include "util/rng.h"

namespace karl {
namespace {

using core::BoundKind;
using core::KernelParams;

EngineOptions GaussianOptions(double gamma) {
  EngineOptions options;
  options.kernel = KernelParams::Gaussian(gamma);
  options.leaf_capacity = 16;
  return options;
}

TEST(ClassifyWeightsTest, TypeTaxonomy) {
  EXPECT_EQ(ClassifyWeights(std::vector<double>{1.0, 1.0, 1.0}),
            WeightingType::kTypeI);
  EXPECT_EQ(ClassifyWeights(std::vector<double>{0.5, 1.0, 2.0}),
            WeightingType::kTypeII);
  EXPECT_EQ(ClassifyWeights(std::vector<double>{0.5, -1.0, 2.0}),
            WeightingType::kTypeIII);
}

TEST(ClassifyWeightsTest, Names) {
  EXPECT_EQ(WeightingTypeToString(WeightingType::kTypeI), "I");
  EXPECT_EQ(WeightingTypeToString(WeightingType::kTypeII), "II");
  EXPECT_EQ(WeightingTypeToString(WeightingType::kTypeIII), "III");
}

TEST(EngineTest, BuildRejectsEmptyData) {
  data::Matrix empty;
  std::vector<double> weights;
  EXPECT_FALSE(Engine::Build(empty, weights, GaussianOptions(1.0)).ok());
}

TEST(EngineTest, BuildRejectsMismatchedWeights) {
  data::Matrix pts(3, 2);
  std::vector<double> weights(2, 1.0);
  EXPECT_FALSE(Engine::Build(pts, weights, GaussianOptions(1.0)).ok());
}

TEST(EngineTest, BuildRejectsInvalidKernel) {
  data::Matrix pts(3, 2);
  std::vector<double> weights(3, 1.0);
  EXPECT_FALSE(Engine::Build(pts, weights, GaussianOptions(-1.0)).ok());
}

TEST(EngineTest, BuildRejectsAllNonPositiveWeights) {
  data::Matrix pts(3, 2);
  std::vector<double> weights(3, -1.0);
  EXPECT_FALSE(Engine::Build(pts, weights, GaussianOptions(1.0)).ok());
}

TEST(EngineTest, BuildUniformRejectsNonPositiveWeight) {
  data::Matrix pts(3, 2);
  EXPECT_FALSE(Engine::BuildUniform(pts, 0.0, GaussianOptions(1.0)).ok());
}

TEST(EngineTest, DetectsWeightingTypes) {
  util::Rng rng(1);
  const data::Matrix pts = data::SampleUniform(50, 3, 0.0, 1.0, rng);

  auto e1 = Engine::BuildUniform(pts, 1.0, GaussianOptions(1.0));
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1.value().weighting_type(), WeightingType::kTypeI);
  EXPECT_EQ(e1.value().minus_tree(), nullptr);

  std::vector<double> w2(50);
  for (auto& w : w2) w = rng.Uniform(0.1, 2.0);
  auto e2 = Engine::Build(pts, w2, GaussianOptions(1.0));
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2.value().weighting_type(), WeightingType::kTypeII);
  EXPECT_EQ(e2.value().minus_tree(), nullptr);

  std::vector<double> w3(50);
  for (auto& w : w3) w = rng.Uniform(-1.0, 1.0);
  w3[0] = -0.5;  // Ensure at least one negative.
  auto e3 = Engine::Build(pts, w3, GaussianOptions(1.0));
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(e3.value().weighting_type(), WeightingType::kTypeIII);
  EXPECT_NE(e3.value().minus_tree(), nullptr);
}

TEST(EngineTest, ZeroWeightPointsAreDropped) {
  util::Rng rng(2);
  const data::Matrix pts = data::SampleUniform(20, 2, 0.0, 1.0, rng);
  std::vector<double> weights(20, 1.0);
  weights[3] = 0.0;
  weights[7] = 0.0;
  auto engine = Engine::Build(pts, weights, GaussianOptions(1.0));
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value().plus_tree().points().rows(), 18u);
}

TEST(EngineTest, ExactMatchesBruteForceAllTypes) {
  util::Rng rng(3);
  const data::Matrix pts = data::SampleClustered(200, 4, 3, 0.1, rng);

  std::vector<std::vector<double>> weightings;
  weightings.emplace_back(200, 0.5);  // Type I.
  std::vector<double> w2(200);
  for (auto& w : w2) w = rng.Uniform(0.1, 1.0);
  weightings.push_back(w2);  // Type II.
  std::vector<double> w3(200);
  for (auto& w : w3) w = rng.Uniform(-1.0, 1.0);
  weightings.push_back(w3);  // Type III.

  for (const auto& weights : weightings) {
    auto engine = Engine::Build(pts, weights, GaussianOptions(3.0));
    ASSERT_TRUE(engine.ok());
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<double> q(4);
      for (auto& v : q) v = rng.Uniform(0.0, 1.0);
      const double brute = core::ExactAggregate(
          pts, weights, KernelParams::Gaussian(3.0), q);
      EXPECT_NEAR(engine.value().Exact(q), brute, 1e-9);
    }
  }
}

TEST(EngineTest, TkaqAndEkaqConsistentWithExact) {
  util::Rng rng(4);
  const data::Matrix pts = data::SampleClustered(300, 3, 3, 0.08, rng);
  auto engine = Engine::BuildUniform(pts, 1.0, GaussianOptions(4.0));
  ASSERT_TRUE(engine.ok());

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(3);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const double exact = engine.value().Exact(q);
    EXPECT_TRUE(engine.value().Tkaq(q, exact * 0.9));
    EXPECT_FALSE(engine.value().Tkaq(q, exact * 1.1));
    const double approx = engine.value().Ekaq(q, 0.2);
    EXPECT_GE(approx, 0.8 * exact - 1e-12);
    EXPECT_LE(approx, 1.2 * exact + 1e-12);
  }
}

TEST(EngineTest, BallTreeOptionRespected) {
  util::Rng rng(5);
  const data::Matrix pts = data::SampleUniform(100, 3, 0.0, 1.0, rng);
  EngineOptions options = GaussianOptions(2.0);
  options.index_kind = index::IndexKind::kBallTree;
  auto engine = Engine::BuildUniform(pts, 1.0, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value().plus_tree().kind(), index::IndexKind::kBallTree);
}

TEST(EngineTest, LeafCapacityRespected) {
  util::Rng rng(6);
  const data::Matrix pts = data::SampleUniform(500, 2, 0.0, 1.0, rng);
  EngineOptions options = GaussianOptions(2.0);
  options.leaf_capacity = 10;
  auto engine = Engine::BuildUniform(pts, 1.0, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value().plus_tree().leaf_capacity(), 10u);
}

TEST(EngineTest, SotaBoundOptionRespected) {
  util::Rng rng(7);
  const data::Matrix pts = data::SampleUniform(100, 2, 0.0, 1.0, rng);
  EngineOptions options = GaussianOptions(2.0);
  options.bounds = BoundKind::kSota;
  auto engine = Engine::BuildUniform(pts, 1.0, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value().evaluator().options().bounds, BoundKind::kSota);
  // And it still answers correctly.
  const std::vector<double> q(2, 0.5);
  const double exact = engine.value().Exact(q);
  EXPECT_TRUE(engine.value().Tkaq(q, exact - 0.01));
}

TEST(EngineTest, MemoryUsageGrowsWithData) {
  util::Rng rng(8);
  const data::Matrix small = data::SampleUniform(50, 3, 0.0, 1.0, rng);
  const data::Matrix large = data::SampleUniform(5000, 3, 0.0, 1.0, rng);
  auto e_small = Engine::BuildUniform(small, 1.0, GaussianOptions(1.0));
  auto e_large = Engine::BuildUniform(large, 1.0, GaussianOptions(1.0));
  ASSERT_TRUE(e_small.ok());
  ASSERT_TRUE(e_large.ok());
  EXPECT_GT(e_large.value().MemoryUsageBytes(),
            10 * e_small.value().MemoryUsageBytes());
}

TEST(EngineTest, MoveSemanticsKeepEngineUsable) {
  util::Rng rng(9);
  const data::Matrix pts = data::SampleUniform(100, 2, 0.0, 1.0, rng);
  auto built = Engine::BuildUniform(pts, 1.0, GaussianOptions(2.0));
  ASSERT_TRUE(built.ok());
  Engine engine = std::move(built).ValueOrDie();
  Engine moved = std::move(engine);
  const std::vector<double> q(2, 0.5);
  const double exact = moved.Exact(q);
  EXPECT_TRUE(moved.Tkaq(q, exact * 0.5));
}

TEST(EngineTest, TypeIIIThresholdAroundZero) {
  // Signed aggregates cross zero; TKAQ at τ=0 is the SVM decision case.
  util::Rng rng(10);
  const data::Matrix pts = data::SampleClustered(200, 3, 2, 0.1, rng);
  std::vector<double> weights(200);
  for (auto& w : weights) w = rng.Uniform(-1.0, 1.0);
  auto engine = Engine::Build(pts, weights, GaussianOptions(2.0));
  ASSERT_TRUE(engine.ok());

  size_t above = 0, below = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> q(3);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const double exact = engine.value().Exact(q);
    const bool decision = engine.value().Tkaq(q, 0.0);
    EXPECT_EQ(decision, exact > 0.0);
    (decision ? above : below) += 1;
  }
  // The workload actually exercises both branches.
  EXPECT_GT(above + below, 0u);
}

}  // namespace
}  // namespace karl
