// Tests for the best-first refinement evaluator: TKAQ / eKAQ correctness
// against brute force, level caps, Type-III two-tree interleaving, and
// the convergence trace.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/evaluator.h"
#include "core/traversal_profile.h"
#include "data/synthetic.h"
#include "index/ball_tree.h"
#include "index/kd_tree.h"
#include "util/rng.h"

namespace karl::core {
namespace {

struct Workbench {
  data::Matrix points;
  std::vector<double> weights;
  std::unique_ptr<index::TreeIndex> tree;
};

Workbench MakeBench(size_t n, size_t d, uint64_t seed, bool uniform_weights,
                    size_t leaf_capacity = 16) {
  util::Rng rng(seed);
  Workbench wb;
  wb.points = data::SampleClustered(n, d, 3, 0.07, rng);
  wb.weights.resize(n);
  for (auto& w : wb.weights) w = uniform_weights ? 1.0 : rng.Uniform(0.1, 2.0);
  wb.tree = index::KdTree::Build(wb.points, wb.weights, leaf_capacity)
                .ValueOrDie();
  return wb;
}

TEST(EvaluatorTest, CreateRequiresPlusTree) {
  Evaluator::Options options;
  EXPECT_FALSE(
      Evaluator::Create(nullptr, nullptr, KernelParams::Gaussian(1.0), options)
          .ok());
}

TEST(EvaluatorTest, CreateRejectsInvalidKernel) {
  const auto wb = MakeBench(50, 3, 1, true);
  Evaluator::Options options;
  EXPECT_FALSE(Evaluator::Create(wb.tree.get(), nullptr,
                                 KernelParams::Gaussian(-2.0), options)
                   .ok());
}

TEST(EvaluatorTest, ExactMatchesBruteForce) {
  const auto wb = MakeBench(300, 4, 2, false);
  const auto kernel = KernelParams::Gaussian(3.0);
  Evaluator::Options options;
  auto ev =
      Evaluator::Create(wb.tree.get(), nullptr, kernel, options).ValueOrDie();

  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const double brute = ExactAggregate(wb.points, wb.weights, kernel, q);
    EXPECT_NEAR(ev.QueryExact(q), brute, 1e-9 * (1.0 + std::abs(brute)));
  }
}

class ThresholdCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<BoundKind, bool>> {};

TEST_P(ThresholdCorrectnessTest, AgreesWithBruteForceAcrossThresholds) {
  const auto [bound_kind, uniform] = GetParam();
  const auto wb = MakeBench(400, 5, 4, uniform);
  const auto kernel = KernelParams::Gaussian(5.0);
  Evaluator::Options options;
  options.bounds = bound_kind;
  auto ev =
      Evaluator::Create(wb.tree.get(), nullptr, kernel, options).ValueOrDie();

  util::Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> q(5);
    for (auto& v : q) v = rng.Uniform(-0.2, 1.2);
    const double exact = ExactAggregate(wb.points, wb.weights, kernel, q);
    // Mix relative thresholds around the exact value with fixed ones.
    for (const double tau :
         {exact * 0.5, exact * 0.99, exact * 1.01, exact * 2.0, 1e-6, 50.0}) {
      EXPECT_EQ(ev.QueryThreshold(q, tau), exact > tau)
          << "tau=" << tau << " exact=" << exact;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BothBoundsBothWeightings, ThresholdCorrectnessTest,
    ::testing::Combine(::testing::Values(BoundKind::kSota, BoundKind::kKarl),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(BoundKindToString(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "Uniform" : "Weighted");
    });

class ApproximateCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<BoundKind, double>> {};

TEST_P(ApproximateCorrectnessTest, RelativeErrorWithinEps) {
  const auto [bound_kind, eps] = GetParam();
  const auto wb = MakeBench(400, 4, 6, true);
  const auto kernel = KernelParams::Gaussian(4.0);
  Evaluator::Options options;
  options.bounds = bound_kind;
  auto ev =
      Evaluator::Create(wb.tree.get(), nullptr, kernel, options).ValueOrDie();

  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const double exact = ExactAggregate(wb.points, wb.weights, kernel, q);
    const double approx = ev.QueryApproximate(q, eps);
    EXPECT_GE(approx, (1.0 - eps) * exact - 1e-12);
    EXPECT_LE(approx, (1.0 + eps) * exact + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BoundsTimesEps, ApproximateCorrectnessTest,
    ::testing::Combine(::testing::Values(BoundKind::kSota, BoundKind::kKarl),
                       ::testing::Values(0.05, 0.2, 0.5)),
    [](const auto& info) {
      const int pct = static_cast<int>(std::get<1>(info.param) * 100);
      return std::string(BoundKindToString(std::get<0>(info.param))) + "Eps" +
             std::to_string(pct);
    });

TEST(EvaluatorTest, TypeThreeSignedAggregateCorrect) {
  // Split signed weights across two trees, query through one evaluator.
  util::Rng rng(8);
  const size_t n = 300, d = 4;
  const data::Matrix pts = data::SampleClustered(n, d, 3, 0.1, rng);
  std::vector<double> signed_w(n);
  for (auto& w : signed_w) w = rng.Uniform(-1.0, 1.0);

  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < n; ++i) (signed_w[i] >= 0 ? pos : neg).push_back(i);
  const data::Matrix pp = pts.SelectRows(pos);
  const data::Matrix np = pts.SelectRows(neg);
  std::vector<double> pw, nw;
  for (const size_t i : pos) pw.push_back(signed_w[i]);
  for (const size_t i : neg) nw.push_back(-signed_w[i]);

  auto ptree = index::KdTree::Build(pp, pw, 8).ValueOrDie();
  auto ntree = index::KdTree::Build(np, nw, 8).ValueOrDie();

  const auto kernel = KernelParams::Gaussian(4.0);
  Evaluator::Options options;
  options.bounds = BoundKind::kKarl;
  auto ev = Evaluator::Create(ptree.get(), ntree.get(), kernel, options)
                .ValueOrDie();

  for (int trial = 0; trial < 15; ++trial) {
    std::vector<double> q(d);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const double exact = ExactAggregate(pts, signed_w, kernel, q);
    EXPECT_NEAR(ev.QueryExact(q), exact, 1e-9);
    for (const double tau : {exact - 0.05, exact + 0.05, 0.0}) {
      EXPECT_EQ(ev.QueryThreshold(q, tau), exact > tau) << "tau=" << tau;
    }
  }
}

TEST(EvaluatorTest, DistanceKernelFamilyThresholdAndApproxCorrect) {
  // Laplacian and Cauchy ride the same convex-profile machinery as the
  // Gaussian; verify both bound kinds end to end.
  const auto wb = MakeBench(300, 4, 21, false);
  for (const auto kernel :
       {KernelParams::Laplacian(3.0), KernelParams::Cauchy(5.0)}) {
    for (const auto bound_kind : {BoundKind::kSota, BoundKind::kKarl}) {
      Evaluator::Options options;
      options.bounds = bound_kind;
      auto ev = Evaluator::Create(wb.tree.get(), nullptr, kernel, options)
                    .ValueOrDie();
      util::Rng rng(22);
      for (int trial = 0; trial < 10; ++trial) {
        std::vector<double> q(4);
        for (auto& v : q) v = rng.Uniform(-0.2, 1.2);
        const double exact = ExactAggregate(wb.points, wb.weights, kernel, q);
        EXPECT_EQ(ev.QueryThreshold(q, exact * 0.95), true)
            << KernelTypeToString(kernel.type);
        EXPECT_EQ(ev.QueryThreshold(q, exact * 1.05), false)
            << KernelTypeToString(kernel.type);
        const double approx = ev.QueryApproximate(q, 0.15);
        EXPECT_NEAR(approx, exact, 0.15 * exact + 1e-12);
      }
    }
  }
}

TEST(EvaluatorTest, InnerProductKernelThresholdCorrect) {
  const auto wb = MakeBench(250, 4, 9, false);
  for (const auto kernel :
       {KernelParams::Polynomial(0.5, 0.2, 3), KernelParams::Polynomial(0.5, 0.2, 2),
        KernelParams::Sigmoid(1.0, -0.3)}) {
    for (const auto bound_kind : {BoundKind::kSota, BoundKind::kKarl}) {
      Evaluator::Options options;
      options.bounds = bound_kind;
      auto ev = Evaluator::Create(wb.tree.get(), nullptr, kernel, options)
                    .ValueOrDie();
      util::Rng rng(10);
      for (int trial = 0; trial < 10; ++trial) {
        std::vector<double> q(4);
        for (auto& v : q) v = rng.Uniform(-1.0, 1.0);
        const double exact = ExactAggregate(wb.points, wb.weights, kernel, q);
        for (const double tau : {exact - 0.1, exact + 0.1}) {
          EXPECT_EQ(ev.QueryThreshold(q, tau), exact > tau)
              << KernelTypeToString(kernel.type) << " "
              << BoundKindToString(bound_kind);
        }
      }
    }
  }
}

TEST(EvaluatorTest, LevelCapZeroEqualsFullScan) {
  const auto wb = MakeBench(200, 3, 11, true);
  const auto kernel = KernelParams::Gaussian(2.0);
  Evaluator::Options options;
  options.max_level = 0;  // Root treated as leaf: pure scan.
  auto ev =
      Evaluator::Create(wb.tree.get(), nullptr, kernel, options).ValueOrDie();
  const std::vector<double> q(3, 0.5);
  EvalStats stats;
  const double exact = ExactAggregate(wb.points, wb.weights, kernel, q);
  EXPECT_EQ(ev.QueryThreshold(q, exact * 0.9, &stats), true);
  EXPECT_EQ(stats.kernel_evals, wb.points.rows());
  EXPECT_EQ(stats.nodes_expanded, 0u);
}

TEST(EvaluatorTest, LevelCapsAreCorrectAtEveryLevel) {
  const auto wb = MakeBench(256, 3, 12, true, /*leaf_capacity=*/4);
  const auto kernel = KernelParams::Gaussian(3.0);
  const std::vector<double> q(3, 0.4);
  const double exact = ExactAggregate(wb.points, wb.weights, kernel, q);

  for (int level = 0; level <= static_cast<int>(wb.tree->max_depth());
       ++level) {
    Evaluator::Options options;
    options.max_level = level;
    auto ev = Evaluator::Create(wb.tree.get(), nullptr, kernel, options)
                  .ValueOrDie();
    EXPECT_EQ(ev.QueryThreshold(q, exact * 0.95), true) << "level " << level;
    EXPECT_EQ(ev.QueryThreshold(q, exact * 1.05), false) << "level " << level;
  }
}

TEST(EvaluatorTest, KarlNeedsNoMoreIterationsThanSota) {
  const auto wb = MakeBench(1000, 4, 13, true, 8);
  const auto kernel = KernelParams::Gaussian(6.0);
  util::Rng rng(14);
  size_t sota_total = 0, karl_total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const double exact = ExactAggregate(wb.points, wb.weights, kernel, q);
    const double tau = exact * 1.1;
    for (const auto kind : {BoundKind::kSota, BoundKind::kKarl}) {
      Evaluator::Options options;
      options.bounds = kind;
      auto ev = Evaluator::Create(wb.tree.get(), nullptr, kernel, options)
                    .ValueOrDie();
      EvalStats stats;
      ev.QueryThreshold(q, tau, &stats);
      (kind == BoundKind::kSota ? sota_total : karl_total) +=
          stats.iterations;
    }
  }
  EXPECT_LE(karl_total, sota_total);
}

TEST(EvaluatorTest, TraceIsMonotoneAndConvergent) {
  const auto wb = MakeBench(500, 3, 15, true, 8);
  const auto kernel = KernelParams::Gaussian(5.0);
  Evaluator::Options options;
  auto ev =
      Evaluator::Create(wb.tree.get(), nullptr, kernel, options).ValueOrDie();

  const std::vector<double> q(3, 0.5);
  std::vector<double> lbs, ubs;
  TraceFn trace = [&](size_t, double lb, double ub) {
    lbs.push_back(lb);
    ubs.push_back(ub);
  };
  double lb = 0.0, ub = 0.0;
  ev.RefineToConvergence(q, 100000, &lb, &ub, &trace);

  ASSERT_GT(lbs.size(), 2u);
  const double exact = ExactAggregate(wb.points, wb.weights, kernel, q);
  for (size_t i = 0; i < lbs.size(); ++i) {
    EXPECT_LE(lbs[i], exact + 1e-6);
    EXPECT_GE(ubs[i], exact - 1e-6);
  }
  // Refinement tightens (allow tiny float slack between iterations).
  for (size_t i = 1; i < lbs.size(); ++i) {
    EXPECT_GE(lbs[i], lbs[i - 1] - 1e-7);
    EXPECT_LE(ubs[i], ubs[i - 1] + 1e-7);
  }
  EXPECT_NEAR(lb, exact, 1e-6);
  EXPECT_NEAR(ub, exact, 1e-6);
}

TEST(EvaluatorTest, BallTreeBackendAgrees) {
  util::Rng rng(16);
  const data::Matrix pts = data::SampleClustered(300, 4, 3, 0.08, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  auto ball = index::BallTree::Build(pts, weights, 16).ValueOrDie();
  const auto kernel = KernelParams::Gaussian(4.0);
  Evaluator::Options options;
  auto ev =
      Evaluator::Create(ball.get(), nullptr, kernel, options).ValueOrDie();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const double exact = ExactAggregate(pts, weights, kernel, q);
    EXPECT_EQ(ev.QueryThreshold(q, exact * 0.9), true);
    EXPECT_EQ(ev.QueryThreshold(q, exact * 1.1), false);
    const double approx = ev.QueryApproximate(q, 0.1);
    EXPECT_NEAR(approx, exact, 0.1 * exact + 1e-12);
  }
}

TEST(EvaluatorTest, StatsAccumulateAcrossCalls) {
  const auto wb = MakeBench(200, 3, 17, true);
  const auto kernel = KernelParams::Gaussian(2.0);
  Evaluator::Options options;
  auto ev =
      Evaluator::Create(wb.tree.get(), nullptr, kernel, options).ValueOrDie();
  const std::vector<double> q(3, 0.5);
  EvalStats stats;
  ev.QueryThreshold(q, 1.0, &stats);
  const size_t after_one = stats.iterations + stats.kernel_evals;
  ev.QueryThreshold(q, 1.0, &stats);
  EXPECT_GE(stats.iterations + stats.kernel_evals, 2 * after_one);
}


// Asserts the reconciliation contract documented in traversal_profile.h
// between one query's profile and its (fresh) EvalStats.
void ExpectProfileReconciles(const TraversalProfile& profile,
                             const EvalStats& stats) {
  EXPECT_EQ(profile.iterations, stats.iterations);
  EXPECT_EQ(profile.nodes_expanded, stats.nodes_expanded);
  EXPECT_EQ(profile.kernel_evals, stats.kernel_evals);

  uint64_t visited = 0, expanded = 0, pruned = 0, leaves = 0, kevals = 0;
  for (const TraversalProfile::Level& level : profile.levels) {
    visited += level.visited;
    expanded += level.expanded;
    pruned += level.pruned;
    leaves += level.exact_leaves;
    kevals += level.kernel_evals;
  }
  EXPECT_EQ(expanded, stats.nodes_expanded);
  EXPECT_EQ(kevals, stats.kernel_evals);
  // Every visited node is expanded, pruned, or folded as an exact leaf.
  EXPECT_EQ(visited, expanded + pruned + leaves);

  if (!profile.timeline_truncated) {
    // Entry 0 is the post-admission state, then one entry per iteration.
    EXPECT_EQ(profile.timeline.size(), profile.iterations + 1);
  } else {
    EXPECT_EQ(profile.timeline.size(), TraversalProfile::kMaxTimeline);
  }
  for (const TraversalProfile::Iteration& it : profile.timeline) {
    EXPECT_LE(it.lb, it.ub + 1e-9);
    EXPECT_LE(it.kernel_evals, profile.kernel_evals);
  }
  // The bound interval tightens monotonically along the timeline.
  for (size_t i = 1; i < profile.timeline.size(); ++i) {
    EXPECT_GE(profile.timeline[i].lb, profile.timeline[i - 1].lb - 1e-7);
    EXPECT_LE(profile.timeline[i].ub, profile.timeline[i - 1].ub + 1e-7);
    EXPECT_GE(profile.timeline[i].kernel_evals,
              profile.timeline[i - 1].kernel_evals);
  }
}

class ExplainProfileTest : public ::testing::TestWithParam<BoundKind> {};

TEST_P(ExplainProfileTest, ThresholdProfileReconcilesWithStats) {
  const auto wb = MakeBench(400, 4, 31, false);
  const auto kernel = KernelParams::Gaussian(3.0);
  Evaluator::Options options;
  options.bounds = GetParam();
  auto ev =
      Evaluator::Create(wb.tree.get(), nullptr, kernel, options).ValueOrDie();

  util::Rng rng(32);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const double exact = ExactAggregate(wb.points, wb.weights, kernel, q);
    // Near-threshold queries force deep refinement; far ones stop early.
    for (const double tau : {exact * 0.999, exact * 0.5, exact * 2.0}) {
      EvalStats stats;
      TraversalProfile profile;
      const bool above = ev.QueryThreshold(q, tau, &stats, nullptr, &profile);
      EXPECT_EQ(above, exact > tau);
      EXPECT_EQ(profile.bounds, GetParam());
      ExpectProfileReconciles(profile, stats);

      // Profiling is observational: a profile-free run of the same query
      // does identical work and reaches the identical answer.
      EvalStats bare;
      EXPECT_EQ(ev.QueryThreshold(q, tau, &bare), above);
      EXPECT_EQ(bare.iterations, stats.iterations);
      EXPECT_EQ(bare.nodes_expanded, stats.nodes_expanded);
      EXPECT_EQ(bare.kernel_evals, stats.kernel_evals);
    }
  }
}

TEST_P(ExplainProfileTest, ApproximateProfileReconcilesWithStats) {
  const auto wb = MakeBench(400, 4, 33, true);
  const auto kernel = KernelParams::Gaussian(4.0);
  Evaluator::Options options;
  options.bounds = GetParam();
  auto ev =
      Evaluator::Create(wb.tree.get(), nullptr, kernel, options).ValueOrDie();

  util::Rng rng(34);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    EvalStats stats;
    TraversalProfile profile;
    const double value = ev.QueryApproximate(q, 0.05, &stats, nullptr,
                                             &profile);
    ExpectProfileReconciles(profile, stats);

    EvalStats bare;
    EXPECT_EQ(ev.QueryApproximate(q, 0.05, &bare), value);  // Bit-identical.
    EXPECT_EQ(bare.kernel_evals, stats.kernel_evals);
  }
}

INSTANTIATE_TEST_SUITE_P(BothBounds, ExplainProfileTest,
                         ::testing::Values(BoundKind::kSota, BoundKind::kKarl),
                         [](const auto& info) {
                           return std::string(BoundKindToString(info.param));
                         });

TEST(ExplainProfileTest, TypeThreeProfileMergesBothTreesByDepth) {
  util::Rng rng(35);
  const size_t n = 300, d = 4;
  const data::Matrix pts = data::SampleClustered(n, d, 3, 0.1, rng);
  std::vector<double> signed_w(n);
  for (auto& w : signed_w) w = rng.Uniform(-1.0, 1.0);
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < n; ++i) (signed_w[i] >= 0 ? pos : neg).push_back(i);
  std::vector<double> pw, nw;
  for (const size_t i : pos) pw.push_back(signed_w[i]);
  for (const size_t i : neg) nw.push_back(-signed_w[i]);
  auto ptree =
      index::KdTree::Build(pts.SelectRows(pos), pw, 8).ValueOrDie();
  auto ntree =
      index::KdTree::Build(pts.SelectRows(neg), nw, 8).ValueOrDie();
  Evaluator::Options options;
  auto ev = Evaluator::Create(ptree.get(), ntree.get(),
                              KernelParams::Gaussian(4.0), options)
                .ValueOrDie();

  std::vector<double> q(d, 0.5);
  const double exact = ExactAggregate(pts, signed_w, KernelParams::Gaussian(4.0), q);
  EvalStats stats;
  TraversalProfile profile;
  ev.QueryThreshold(q, exact * 0.999, &stats, nullptr, &profile);
  ExpectProfileReconciles(profile, stats);
  // Both roots were admitted, so depth 0 saw two visits.
  ASSERT_FALSE(profile.levels.empty());
  EXPECT_EQ(profile.levels[0].visited, 2u);
}

TEST(ExplainProfileTest, ProfileClearsBetweenQueries) {
  const auto wb = MakeBench(200, 3, 36, true);
  Evaluator::Options options;
  auto ev = Evaluator::Create(wb.tree.get(), nullptr,
                              KernelParams::Gaussian(2.0), options)
                .ValueOrDie();
  const std::vector<double> q(3, 0.5);
  TraversalProfile profile;
  EvalStats first;
  ev.QueryThreshold(q, 1.0, &first, nullptr, &profile);
  // Reused profile must describe only the second query, not accumulate.
  EvalStats second;
  ev.QueryThreshold(q, 1.0, &second, nullptr, &profile);
  EXPECT_EQ(profile.iterations, second.iterations);
  EXPECT_EQ(profile.kernel_evals, second.kernel_evals);
}

}  // namespace
}  // namespace karl::core
