// Tests for the extension modules beyond the paper's core: sparse (CSR)
// storage, multi-class SVM, kernel regression, and the ablation bound
// variants.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/bounds.h"
#include "core/evaluator.h"
#include "data/sparse_matrix.h"
#include "data/synthetic.h"
#include "index/kd_tree.h"
#include "ml/multiclass.h"
#include "ml/regression.h"
#include "util/rng.h"

namespace karl {
namespace {

using core::BoundKind;
using core::KernelParams;

// ------------------------------ SparseMatrix -----------------------------

data::Matrix SparseTestMatrix() {
  // Mostly-zero matrix with structure.
  data::Matrix m(3, 4);
  m(0, 1) = 2.0;
  m(1, 0) = -1.0;
  m(1, 3) = 0.5;
  return m;  // Row 2 is all zeros.
}

TEST(SparseMatrixTest, FromDenseDropsZeros) {
  const auto sparse = data::SparseMatrix::FromDense(SparseTestMatrix());
  EXPECT_EQ(sparse.rows(), 3u);
  EXPECT_EQ(sparse.cols(), 4u);
  EXPECT_EQ(sparse.num_entries(), 3u);
  EXPECT_EQ(sparse.Row(2).size(), 0u);
}

TEST(SparseMatrixTest, DenseRoundTrip) {
  const auto dense = SparseTestMatrix();
  const auto back = data::SparseMatrix::FromDense(dense).ToDense();
  for (size_t i = 0; i < dense.rows(); ++i) {
    for (size_t j = 0; j < dense.cols(); ++j) {
      EXPECT_DOUBLE_EQ(back(i, j), dense(i, j));
    }
  }
}

TEST(SparseMatrixTest, RowNormsAndDots) {
  const auto sparse = data::SparseMatrix::FromDense(SparseTestMatrix());
  EXPECT_DOUBLE_EQ(sparse.RowSquaredNorm(0), 4.0);
  EXPECT_DOUBLE_EQ(sparse.RowSquaredNorm(1), 1.25);
  const std::vector<double> q{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sparse.DotDense(0, q), 4.0);
  EXPECT_DOUBLE_EQ(sparse.DotDense(1, q), -1.0 + 2.0);
  EXPECT_DOUBLE_EQ(sparse.DotDense(2, q), 0.0);
}

TEST(SparseMatrixTest, SparseAggregateMatchesDenseAllKernels) {
  util::Rng rng(1);
  // Sparse-ish data: zero out most entries.
  data::Matrix dense = data::SampleUniform(100, 8, -1.0, 1.0, rng);
  for (size_t i = 0; i < dense.rows(); ++i) {
    for (size_t j = 0; j < dense.cols(); ++j) {
      if (rng.Uniform() < 0.7) dense(i, j) = 0.0;
    }
  }
  const auto sparse = data::SparseMatrix::FromDense(dense);
  std::vector<double> weights(dense.rows());
  for (auto& w : weights) w = rng.Uniform(-1.0, 1.0);

  for (const auto kernel :
       {KernelParams::Gaussian(2.0), KernelParams::Polynomial(0.5, 0.1, 3),
        KernelParams::Sigmoid(1.0, -0.2)}) {
    for (int trial = 0; trial < 5; ++trial) {
      std::vector<double> q(8);
      for (auto& v : q) v = rng.Uniform(-1.0, 1.0);
      const double dense_f = core::ExactAggregate(dense, weights, kernel, q);
      const double sparse_f =
          core::ExactAggregateSparse(sparse, weights, kernel, q);
      EXPECT_NEAR(sparse_f, dense_f, 1e-9 * (1.0 + std::abs(dense_f)));
    }
  }
}

// ----------------------------- Multiclass SVM ----------------------------

data::LabeledDataset MakeThreeClassDataset(size_t per_class, size_t d,
                                           util::Rng& rng) {
  // Three well-separated blobs with labels 0, 1, 2.
  data::LabeledDataset ds;
  ds.points = data::Matrix(0, d);
  const double centers[3] = {0.15, 0.5, 0.85};
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_class; ++i) {
      std::vector<double> p(d);
      for (auto& v : p) v = rng.Gaussian(centers[c], 0.05);
      ds.points.AppendRow(p);
      ds.labels.push_back(static_cast<double>(c));
    }
  }
  return ds;
}

TEST(MulticlassSvmTest, RejectsDegenerateInputs) {
  const auto kernel = KernelParams::Gaussian(1.0);
  ml::TwoClassSvmParams params;
  data::LabeledDataset empty;
  EXPECT_FALSE(ml::MulticlassSvm::Train(empty, kernel, params).ok());

  data::LabeledDataset one_class;
  one_class.points = data::Matrix(3, 2);
  one_class.labels = {1.0, 1.0, 1.0};
  EXPECT_FALSE(ml::MulticlassSvm::Train(one_class, kernel, params).ok());
}

TEST(MulticlassSvmTest, TrainsPairwiseModels) {
  util::Rng rng(2);
  const auto ds = MakeThreeClassDataset(60, 3, rng);
  auto svm = ml::MulticlassSvm::Train(ds, KernelParams::Gaussian(3.0),
                                      ml::TwoClassSvmParams{});
  ASSERT_TRUE(svm.ok()) << svm.status().ToString();
  EXPECT_EQ(svm.value().classes().size(), 3u);
  EXPECT_EQ(svm.value().models().size(), 3u);  // C(3,2).
}

TEST(MulticlassSvmTest, SeparableDataHighAccuracy) {
  util::Rng rng(3);
  const auto ds = MakeThreeClassDataset(80, 3, rng);
  auto svm = ml::MulticlassSvm::Train(ds, KernelParams::Gaussian(3.0),
                                      ml::TwoClassSvmParams{});
  ASSERT_TRUE(svm.ok());
  EXPECT_GT(svm.value().Accuracy(ds.points, ds.labels), 0.95);
}

TEST(MulticlassSvmTest, FastPredictionMatchesScan) {
  util::Rng rng(4);
  const auto ds = MakeThreeClassDataset(60, 3, rng);
  auto trained = ml::MulticlassSvm::Train(ds, KernelParams::Gaussian(3.0),
                                          ml::TwoClassSvmParams{});
  ASSERT_TRUE(trained.ok());
  ml::MulticlassSvm svm = std::move(trained).ValueOrDie();

  EngineOptions options;
  options.leaf_capacity = 8;
  ASSERT_TRUE(svm.BuildEngines(options).ok());

  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> q(3);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    EXPECT_DOUBLE_EQ(svm.PredictFast(q), svm.PredictScan(q));
  }
}

// ---------------------------- Kernel regression --------------------------

TEST(KernelRegressionTest, RejectsBadInputs) {
  EngineOptions options;
  EXPECT_FALSE(
      ml::KernelRegression::Fit(data::Matrix(), {}, options).ok());
  data::Matrix pts(3, 1, {0.0, 0.5, 1.0});
  std::vector<double> targets(2, 1.0);
  EXPECT_FALSE(ml::KernelRegression::Fit(pts, targets, options).ok());
}

TEST(KernelRegressionTest, ConstantTargetsPredictConstant) {
  util::Rng rng(5);
  const data::Matrix pts = data::SampleUniform(100, 2, 0.0, 1.0, rng);
  const std::vector<double> targets(100, 7.5);
  EngineOptions options;
  auto model = ml::KernelRegression::Fit(pts, targets, options);
  ASSERT_TRUE(model.ok());
  const std::vector<double> q(2, 0.5);
  EXPECT_DOUBLE_EQ(model.value().Predict(q), 7.5);
  EXPECT_DOUBLE_EQ(model.value().PredictExact(q), 7.5);
}

TEST(KernelRegressionTest, RecoversSmoothFunction) {
  // y = sin(2πx0) + x1 on [0,1]^2; NW regression with enough data should
  // track it closely at interior points.
  util::Rng rng(6);
  const size_t n = 4000;
  data::Matrix pts = data::SampleUniform(n, 2, 0.0, 1.0, rng);
  std::vector<double> targets(n);
  for (size_t i = 0; i < n; ++i) {
    targets[i] = std::sin(2.0 * M_PI * pts(i, 0)) + pts(i, 1);
  }
  EngineOptions options;
  auto model = ml::KernelRegression::Fit(pts, targets, options,
                                         /*gamma=*/200.0);
  ASSERT_TRUE(model.ok());

  double max_err = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> q{rng.Uniform(0.1, 0.9), rng.Uniform(0.1, 0.9)};
    const double truth = std::sin(2.0 * M_PI * q[0]) + q[1];
    max_err = std::max(max_err,
                       std::abs(model.value().PredictExact(q) - truth));
  }
  EXPECT_LT(max_err, 0.25);
}

TEST(KernelRegressionTest, ApproximateTracksExact) {
  util::Rng rng(7);
  const size_t n = 2000;
  data::Matrix pts = data::SampleClustered(n, 3, 2, 0.08, rng);
  std::vector<double> targets(n);
  for (size_t i = 0; i < n; ++i) targets[i] = pts(i, 0) * 3.0 - 1.0;
  EngineOptions options;
  auto model = ml::KernelRegression::Fit(pts, targets, options);
  ASSERT_TRUE(model.ok());

  for (int trial = 0; trial < 10; ++trial) {
    const auto qspan = pts.Row(rng.UniformInt(n));
    const std::vector<double> q(qspan.begin(), qspan.end());
    const double exact = model.value().PredictExact(q);
    const double approx = model.value().Predict(q, 0.1);
    // Guarantee is relative to the shifted value (ŷ − y_min).
    const double shifted = exact - model.value().target_shift();
    EXPECT_NEAR(approx, exact, 0.1 * std::abs(shifted) + 1e-9);
  }
}

// --------------------------- Ablation bound kinds ------------------------

TEST(AblationBoundsTest, NamesExist) {
  EXPECT_EQ(core::BoundKindToString(BoundKind::kKarlChordOnly),
            "KARL-chord-only");
  EXPECT_EQ(core::BoundKindToString(BoundKind::kKarlTangentOnly),
            "KARL-tangent-only");
}

TEST(AblationBoundsTest, TightnessOrderingHolds) {
  // Pointwise: SOTA ⊆ chord-only / tangent-only ⊆ full KARL on each side.
  util::Rng rng(8);
  const data::Matrix pts = data::SampleClustered(300, 4, 3, 0.08, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  auto tree = index::KdTree::Build(pts, weights, 16).ValueOrDie();
  const auto kernel = KernelParams::Gaussian(5.0);

  auto sota = core::MakeBoundFunction(kernel, BoundKind::kSota).ValueOrDie();
  auto chord =
      core::MakeBoundFunction(kernel, BoundKind::kKarlChordOnly).ValueOrDie();
  auto tangent = core::MakeBoundFunction(kernel, BoundKind::kKarlTangentOnly)
                     .ValueOrDie();
  auto full = core::MakeBoundFunction(kernel, BoundKind::kKarl).ValueOrDie();

  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const auto ctx = core::QueryContext::Make(q);
    for (size_t id = 0; id < tree->num_nodes(); ++id) {
      double s_lb, s_ub, c_lb, c_ub, t_lb, t_ub, f_lb, f_ub;
      const auto node = static_cast<index::NodeId>(id);
      sota->NodeBounds(*tree, node, ctx, &s_lb, &s_ub);
      chord->NodeBounds(*tree, node, ctx, &c_lb, &c_ub);
      tangent->NodeBounds(*tree, node, ctx, &t_lb, &t_ub);
      full->NodeBounds(*tree, node, ctx, &f_lb, &f_ub);

      // Chord-only: KARL ub, SOTA lb.
      EXPECT_LE(c_ub, s_ub + 1e-9);
      EXPECT_NEAR(c_lb, s_lb, 1e-9 + 1e-9 * std::abs(s_lb));
      // Tangent-only: SOTA ub, KARL lb.
      EXPECT_NEAR(t_ub, s_ub, 1e-9 + 1e-9 * std::abs(s_ub));
      EXPECT_GE(t_lb, s_lb - 1e-9);
      // Full matches the union of the two improvements.
      EXPECT_NEAR(f_ub, c_ub, 1e-9 + 1e-9 * std::abs(c_ub));
      EXPECT_NEAR(f_lb, t_lb, 1e-9 + 1e-9 * std::abs(t_lb));
    }
  }
}

TEST(AblationBoundsTest, QueriesStayCorrectUnderAllVariants) {
  util::Rng rng(9);
  const data::Matrix pts = data::SampleClustered(400, 3, 3, 0.07, rng);
  const auto kernel = KernelParams::Gaussian(4.0);
  std::vector<double> weights(pts.rows(), 1.0);

  for (const auto kind :
       {BoundKind::kKarlChordOnly, BoundKind::kKarlTangentOnly}) {
    EngineOptions options;
    options.kernel = kernel;
    options.bounds = kind;
    auto engine = Engine::Build(pts, weights, options).ValueOrDie();
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<double> q(3);
      for (auto& v : q) v = rng.Uniform(0.0, 1.0);
      const double exact = core::ExactAggregate(pts, weights, kernel, q);
      EXPECT_EQ(engine.Tkaq(q, exact * 0.9), true);
      EXPECT_EQ(engine.Tkaq(q, exact * 1.1), false);
      const double approx = engine.Ekaq(q, 0.2);
      EXPECT_NEAR(approx, exact, 0.2 * exact + 1e-12);
    }
  }
}

}  // namespace
}  // namespace karl
