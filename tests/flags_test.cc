// Unit tests for the command-line flag parser backing karl_cli.

#include <gtest/gtest.h>

#include <vector>

#include "util/flags.h"

namespace karl::util {
namespace {

ParsedArgs ParseVec(const std::vector<const char*>& args) {
  std::vector<const char*> argv{"karl"};
  argv.insert(argv.end(), args.begin(), args.end());
  auto parsed = ParsedArgs::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(parsed.ok());
  return std::move(parsed).ValueOrDie();
}

TEST(FlagsTest, EmptyCommandLine) {
  const auto args = ParseVec({});
  EXPECT_EQ(args.command(), "");
  EXPECT_TRUE(args.positional().empty());
}

TEST(FlagsTest, SubcommandAndPositionals) {
  const auto args = ParseVec({"build", "extra1", "extra2"});
  EXPECT_EQ(args.command(), "build");
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "extra1");
  EXPECT_EQ(args.positional()[1], "extra2");
}

TEST(FlagsTest, StringFlags) {
  const auto args = ParseVec({"build", "--data", "points.csv", "--out",
                              "model.bin"});
  EXPECT_EQ(args.GetString("data"), "points.csv");
  EXPECT_EQ(args.GetString("out"), "model.bin");
  EXPECT_EQ(args.GetString("missing", "fallback"), "fallback");
}

TEST(FlagsTest, BooleanSwitches) {
  const auto args = ParseVec({"query", "--verbose", "--tau", "1.5"});
  EXPECT_TRUE(args.Has("verbose"));
  EXPECT_TRUE(args.Has("tau"));
  EXPECT_FALSE(args.Has("eps"));
}

TEST(FlagsTest, SwitchFollowedByFlag) {
  // --verbose is followed by another flag, so it has no value.
  const auto args = ParseVec({"x", "--verbose", "--gamma", "2.0"});
  EXPECT_EQ(args.GetString("verbose", "unset"), "");
  EXPECT_DOUBLE_EQ(args.GetDouble("gamma", 0.0).value(), 2.0);
}

TEST(FlagsTest, NumericParsing) {
  const auto args = ParseVec({"q", "--tau", "2.5e-3", "--limit", "42"});
  EXPECT_DOUBLE_EQ(args.GetDouble("tau", 0.0).value(), 2.5e-3);
  EXPECT_EQ(args.GetInt("limit", 0).value(), 42);
  EXPECT_DOUBLE_EQ(args.GetDouble("absent", 7.0).value(), 7.0);
  EXPECT_EQ(args.GetInt("absent", -3).value(), -3);
}

TEST(FlagsTest, NumericParseErrors) {
  const auto args = ParseVec({"q", "--tau", "abc", "--limit", "1.5x"});
  EXPECT_FALSE(args.GetDouble("tau", 0.0).ok());
  EXPECT_FALSE(args.GetInt("limit", 0).ok());
}

TEST(FlagsTest, NegativeNumberAsValue) {
  // "-1.5" does not start with "--", so it parses as the flag's value.
  const auto args = ParseVec({"q", "--tau", "-1.5"});
  EXPECT_DOUBLE_EQ(args.GetDouble("tau", 0.0).value(), -1.5);
}

TEST(FlagsTest, InlineEqualsBindsValue) {
  const auto args = ParseVec({"query", "--metrics-out=metrics.json",
                              "--tau=1.5", "--label=a=b"});
  EXPECT_EQ(args.GetString("metrics-out"), "metrics.json");
  EXPECT_DOUBLE_EQ(args.GetDouble("tau", 0.0).value(), 1.5);
  // Only the first '=' splits; the rest belongs to the value.
  EXPECT_EQ(args.GetString("label"), "a=b");
}

TEST(FlagsTest, InlineEqualsEmptyValueIsNotASwitchValue) {
  // "--out=" binds the empty string explicitly and must not consume the
  // following token, which stays positional.
  const auto args = ParseVec({"query", "--out=", "extra"});
  EXPECT_TRUE(args.Has("out"));
  EXPECT_EQ(args.GetString("out", "unset"), "");
  EXPECT_EQ(args.command(), "query");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "extra");
}

TEST(FlagsTest, SpaceAndEqualsFormsAreEquivalent) {
  // `--flag value` and `--flag=value` must parse identically — tools
  // document both and scripts mix them freely.
  const auto spaced =
      ParseVec({"serve", "--model", "m.bin", "--port", "7070", "--eps",
                "0.25"});
  const auto inlined =
      ParseVec({"serve", "--model=m.bin", "--port=7070", "--eps=0.25"});
  for (const auto* args : {&spaced, &inlined}) {
    EXPECT_EQ(args->GetString("model"), "m.bin");
    EXPECT_EQ(args->GetInt("port", 0).value(), 7070);
    EXPECT_DOUBLE_EQ(args->GetDouble("eps", 0.0).value(), 0.25);
  }
}

TEST(FlagsTest, ValuelessTrailingFlag) {
  // A flag at the end of the command line has nothing to consume: it is
  // a switch, not an error, and must not eat a phantom value.
  const auto args = ParseVec({"query", "--tau", "2.0", "--verbose"});
  EXPECT_TRUE(args.Has("verbose"));
  EXPECT_EQ(args.GetString("verbose", "unset"), "");
  EXPECT_DOUBLE_EQ(args.GetDouble("tau", 0.0).value(), 2.0);
  EXPECT_TRUE(args.positional().empty());
}

TEST(FlagsTest, InlineEqualsEmptyNameRejected) {
  std::vector<const char*> argv{"karl", "--=value"};
  auto parsed = ParsedArgs::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(parsed.ok());
}

TEST(FlagsTest, BareDoubleDashRejected) {
  std::vector<const char*> argv{"karl", "--"};
  auto parsed = ParsedArgs::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(parsed.ok());
}

TEST(FlagsTest, UnusedFlagDetection) {
  const auto args = ParseVec({"q", "--tau", "1.0", "--typo-flag", "x"});
  (void)args.GetDouble("tau", 0.0);
  const auto unused = args.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo-flag");
}

TEST(FlagsTest, AllTouchedMeansNoUnused) {
  const auto args = ParseVec({"q", "--a", "1", "--b"});
  (void)args.GetString("a");
  (void)args.Has("b");
  EXPECT_TRUE(args.UnusedFlags().empty());
}

}  // namespace
}  // namespace karl::util
