// Unit tests for the index layer: bounding geometry, kd-tree, ball-tree,
// and the per-node weighted aggregates KARL's bounds consume.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "data/synthetic.h"
#include "index/ball_tree.h"
#include "index/bounding_ball.h"
#include "index/bounding_box.h"
#include "index/kd_tree.h"
#include "util/math_util.h"
#include "util/rng.h"

namespace karl::index {
namespace {

data::Matrix TestPoints() {
  // 6 points in 2-d.
  return data::Matrix(6, 2, {0, 0, 1, 0, 0, 1, 2, 2, 3, 1, 1, 3});
}

// ------------------------------ BoundingBox ------------------------------

TEST(BoundingBoxTest, FitRangeCoversAllPoints) {
  const auto pts = TestPoints();
  const BoundingBox box = BoundingBox::FitRange(pts, 0, pts.rows());
  EXPECT_DOUBLE_EQ(box.lower()[0], 0.0);
  EXPECT_DOUBLE_EQ(box.upper()[0], 3.0);
  EXPECT_DOUBLE_EQ(box.lower()[1], 0.0);
  EXPECT_DOUBLE_EQ(box.upper()[1], 3.0);
  for (size_t i = 0; i < pts.rows(); ++i) EXPECT_TRUE(box.Contains(pts.Row(i)));
}

TEST(BoundingBoxTest, FitSubsetOfRows) {
  const auto pts = TestPoints();
  const std::vector<size_t> rows{0, 1};
  const BoundingBox box = BoundingBox::Fit(pts, rows);
  EXPECT_DOUBLE_EQ(box.upper()[0], 1.0);
  EXPECT_DOUBLE_EQ(box.upper()[1], 0.0);
}

TEST(BoundingBoxTest, MinDistZeroInsideBox) {
  const auto pts = TestPoints();
  const BoundingBox box = BoundingBox::FitRange(pts, 0, pts.rows());
  const std::vector<double> q{1.5, 1.5};
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance(q), 0.0);
  EXPECT_GT(box.MaxSquaredDistance(q), 0.0);
}

TEST(BoundingBoxTest, MinMaxDistOutsideBox) {
  data::Matrix pts(2, 2, {0, 0, 1, 1});
  const BoundingBox box = BoundingBox::FitRange(pts, 0, 2);
  const std::vector<double> q{3.0, 0.0};
  EXPECT_DOUBLE_EQ(box.MinSquaredDistance(q), 4.0);   // To (1,0).
  EXPECT_DOUBLE_EQ(box.MaxSquaredDistance(q), 10.0);  // To (0,1).
}

TEST(BoundingBoxTest, DistBoundsSandwichTruePoints) {
  util::Rng rng(1);
  const data::Matrix pts = data::SampleUniform(100, 4, -2.0, 2.0, rng);
  const BoundingBox box = BoundingBox::FitRange(pts, 0, pts.rows());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(-4.0, 4.0);
    const double min_sq = box.MinSquaredDistance(q);
    const double max_sq = box.MaxSquaredDistance(q);
    for (size_t i = 0; i < pts.rows(); ++i) {
      const double sq = util::SquaredDistance(q, pts.Row(i));
      EXPECT_LE(min_sq, sq + 1e-12);
      EXPECT_GE(max_sq, sq - 1e-12);
    }
  }
}

TEST(BoundingBoxTest, InnerProductBoundsSandwichTruePoints) {
  util::Rng rng(2);
  const data::Matrix pts = data::SampleUniform(100, 3, -1.0, 1.0, rng);
  const BoundingBox box = BoundingBox::FitRange(pts, 0, pts.rows());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(3);
    for (auto& v : q) v = rng.Uniform(-2.0, 2.0);
    double lo = 0.0, hi = 0.0;
    box.InnerProductBounds(q, &lo, &hi);
    for (size_t i = 0; i < pts.rows(); ++i) {
      const double ip = util::Dot(q, pts.Row(i));
      EXPECT_LE(lo, ip + 1e-12);
      EXPECT_GE(hi, ip - 1e-12);
    }
  }
}

TEST(BoundingBoxTest, InnerProductBoundsNegativeQuery) {
  data::Matrix pts(2, 1, {1.0, 3.0});
  const BoundingBox box = BoundingBox::FitRange(pts, 0, 2);
  const std::vector<double> q{-2.0};
  double lo = 0.0, hi = 0.0;
  box.InnerProductBounds(q, &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, -6.0);
  EXPECT_DOUBLE_EQ(hi, -2.0);
}

TEST(BoundingBoxTest, WidestDimension) {
  data::Matrix pts(2, 3, {0, 0, 0, 1, 5, 2});
  const BoundingBox box = BoundingBox::FitRange(pts, 0, 2);
  EXPECT_EQ(box.WidestDimension(), 1u);
}

// ------------------------------ BoundingBall -----------------------------

TEST(BoundingBallTest, CoversAllPoints) {
  const auto pts = TestPoints();
  const BoundingBall ball = BoundingBall::FitRange(pts, 0, pts.rows());
  for (size_t i = 0; i < pts.rows(); ++i) {
    const double dist =
        std::sqrt(util::SquaredDistance(pts.Row(i), ball.center()));
    EXPECT_LE(dist, ball.radius() + 1e-12);
  }
}

TEST(BoundingBallTest, SinglePointHasZeroRadius) {
  data::Matrix pts(1, 2, {3.0, 4.0});
  const BoundingBall ball = BoundingBall::FitRange(pts, 0, 1);
  EXPECT_DOUBLE_EQ(ball.radius(), 0.0);
  const std::vector<double> q{0.0, 0.0};
  EXPECT_DOUBLE_EQ(ball.MinSquaredDistance(q), 25.0);
  EXPECT_DOUBLE_EQ(ball.MaxSquaredDistance(q), 25.0);
}

TEST(BoundingBallTest, DistBoundsSandwichTruePoints) {
  util::Rng rng(3);
  const data::Matrix pts = data::SampleUniform(100, 5, 0.0, 1.0, rng);
  const BoundingBall ball = BoundingBall::FitRange(pts, 0, pts.rows());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(5);
    for (auto& v : q) v = rng.Uniform(-1.0, 2.0);
    const double min_sq = ball.MinSquaredDistance(q);
    const double max_sq = ball.MaxSquaredDistance(q);
    for (size_t i = 0; i < pts.rows(); ++i) {
      const double sq = util::SquaredDistance(q, pts.Row(i));
      EXPECT_LE(min_sq, sq + 1e-9);
      EXPECT_GE(max_sq, sq - 1e-9);
    }
  }
}

TEST(BoundingBallTest, InnerProductBoundsSandwichTruePoints) {
  util::Rng rng(4);
  const data::Matrix pts = data::SampleUniform(100, 3, -1.0, 1.0, rng);
  const BoundingBall ball = BoundingBall::FitRange(pts, 0, pts.rows());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(3);
    for (auto& v : q) v = rng.Uniform(-2.0, 2.0);
    double lo = 0.0, hi = 0.0;
    ball.InnerProductBounds(q, &lo, &hi);
    for (size_t i = 0; i < pts.rows(); ++i) {
      const double ip = util::Dot(q, pts.Row(i));
      EXPECT_LE(lo, ip + 1e-9);
      EXPECT_GE(hi, ip - 1e-9);
    }
  }
}

TEST(BoundingBallTest, MinDistInsideBallIsZero) {
  util::Rng rng(5);
  const data::Matrix pts = data::SampleUniform(50, 2, 0.0, 1.0, rng);
  const BoundingBall ball = BoundingBall::FitRange(pts, 0, pts.rows());
  EXPECT_DOUBLE_EQ(ball.MinSquaredDistance(ball.center()), 0.0);
}

// ----------------------- Tree structure invariants -----------------------

struct TreeCase {
  IndexKind kind;
  size_t leaf_capacity;
};

class TreeInvariantTest : public ::testing::TestWithParam<TreeCase> {
 protected:
  static std::unique_ptr<TreeIndex> BuildTree(const data::Matrix& pts,
                                              std::span<const double> weights,
                                              const TreeCase& tc) {
    if (tc.kind == IndexKind::kKdTree) {
      auto t = KdTree::Build(pts, weights, tc.leaf_capacity);
      EXPECT_TRUE(t.ok());
      return std::move(t).ValueOrDie();
    }
    auto t = BallTree::Build(pts, weights, tc.leaf_capacity);
    EXPECT_TRUE(t.ok());
    return std::move(t).ValueOrDie();
  }
};

TEST_P(TreeInvariantTest, StructureCoversAllPointsExactlyOnce) {
  util::Rng rng(10);
  const data::Matrix pts = data::SampleClustered(300, 4, 3, 0.1, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  const auto tree = BuildTree(pts, weights, GetParam());

  // Root covers everything.
  EXPECT_EQ(tree->node(tree->root()).begin, 0u);
  EXPECT_EQ(tree->node(tree->root()).end, pts.rows());

  // Children partition the parent's range; leaves respect the capacity.
  size_t leaf_points = 0;
  for (size_t id = 0; id < tree->num_nodes(); ++id) {
    const auto& nd = tree->node(id);
    if (nd.is_leaf()) {
      EXPECT_LE(nd.count(), GetParam().leaf_capacity);
      leaf_points += nd.count();
    } else {
      const auto& left = tree->node(nd.left);
      const auto& right = tree->node(nd.right);
      EXPECT_EQ(left.begin, nd.begin);
      EXPECT_EQ(left.end, right.begin);
      EXPECT_EQ(right.end, nd.end);
      EXPECT_GT(left.count(), 0u);
      EXPECT_GT(right.count(), 0u);
      EXPECT_EQ(left.depth, nd.depth + 1);
      EXPECT_EQ(right.depth, nd.depth + 1);
    }
  }
  EXPECT_EQ(leaf_points, pts.rows());
}

TEST_P(TreeInvariantTest, PermutationIsBijective) {
  util::Rng rng(11);
  const data::Matrix pts = data::SampleUniform(128, 3, 0.0, 1.0, rng);
  std::vector<double> weights(pts.rows(), 2.0);
  const auto tree = BuildTree(pts, weights, GetParam());
  std::vector<bool> seen(pts.rows(), false);
  for (const size_t original : tree->original_indices()) {
    ASSERT_LT(original, pts.rows());
    EXPECT_FALSE(seen[original]);
    seen[original] = true;
  }
  // Permuted points match originals.
  for (size_t i = 0; i < pts.rows(); ++i) {
    const size_t orig = tree->original_indices()[i];
    for (size_t j = 0; j < pts.cols(); ++j) {
      EXPECT_DOUBLE_EQ(tree->points()(i, j), pts(orig, j));
    }
  }
}

TEST_P(TreeInvariantTest, NodeRegionsContainTheirPoints) {
  util::Rng rng(12);
  const data::Matrix pts = data::SampleClustered(200, 3, 4, 0.08, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  const auto tree = BuildTree(pts, weights, GetParam());
  std::vector<double> q(3, 0.5);
  for (size_t id = 0; id < tree->num_nodes(); ++id) {
    const auto& nd = tree->node(id);
    double min_sq = 0.0, max_sq = 0.0;
    tree->DistanceBounds(static_cast<NodeId>(id), q, &min_sq, &max_sq);
    for (uint32_t i = nd.begin; i < nd.end; ++i) {
      const double sq = util::SquaredDistance(q, tree->points().Row(i));
      EXPECT_LE(min_sq, sq + 1e-9);
      EXPECT_GE(max_sq, sq - 1e-9);
    }
  }
}

TEST_P(TreeInvariantTest, WeightedAggregatesMatchDirectSums) {
  util::Rng rng(13);
  const data::Matrix pts = data::SampleUniform(150, 4, -1.0, 1.0, rng);
  std::vector<double> weights(pts.rows());
  for (auto& w : weights) w = rng.Uniform(0.1, 2.0);
  const auto tree = BuildTree(pts, weights, GetParam());

  for (size_t id = 0; id < tree->num_nodes(); ++id) {
    const auto& nd = tree->node(id);
    double w_sum = 0.0, b_sum = 0.0;
    std::vector<double> a_sum(pts.cols(), 0.0);
    for (uint32_t i = nd.begin; i < nd.end; ++i) {
      const double w = tree->weights()[i];
      const auto row = tree->points().Row(i);
      w_sum += w;
      b_sum += w * util::SquaredNorm(row);
      for (size_t j = 0; j < row.size(); ++j) a_sum[j] += w * row[j];
    }
    EXPECT_NEAR(tree->weight_sum(static_cast<NodeId>(id)), w_sum, 1e-9);
    EXPECT_NEAR(tree->weighted_sqnorm_sum(static_cast<NodeId>(id)), b_sum,
                1e-9);
    const auto stored = tree->weighted_point_sum(static_cast<NodeId>(id));
    for (size_t j = 0; j < a_sum.size(); ++j) {
      EXPECT_NEAR(stored[j], a_sum[j], 1e-9);
    }
  }
}

TEST_P(TreeInvariantTest, DuplicatePointsStayALeaf) {
  // 50 identical points can never be split; the build must terminate and
  // keep them in one (oversized) leaf.
  data::Matrix pts(50, 2);
  for (size_t i = 0; i < 50; ++i) {
    pts(i, 0) = 1.0;
    pts(i, 1) = 2.0;
  }
  std::vector<double> weights(50, 1.0);
  const auto tree = BuildTree(pts, weights, GetParam());
  EXPECT_EQ(tree->num_nodes(), 1u);
  EXPECT_TRUE(tree->node(0).is_leaf());
}

TEST_P(TreeInvariantTest, MemoryUsageIsPositive) {
  util::Rng rng(14);
  const data::Matrix pts = data::SampleUniform(64, 2, 0.0, 1.0, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  const auto tree = BuildTree(pts, weights, GetParam());
  EXPECT_GT(tree->MemoryUsageBytes(), pts.rows() * 2 * sizeof(double));
}

INSTANTIATE_TEST_SUITE_P(
    AllTreeKinds, TreeInvariantTest,
    ::testing::Values(TreeCase{IndexKind::kKdTree, 1},
                      TreeCase{IndexKind::kKdTree, 8},
                      TreeCase{IndexKind::kKdTree, 64},
                      TreeCase{IndexKind::kBallTree, 1},
                      TreeCase{IndexKind::kBallTree, 8},
                      TreeCase{IndexKind::kBallTree, 64}),
    [](const ::testing::TestParamInfo<TreeCase>& info) {
      return std::string(info.param.kind == IndexKind::kKdTree ? "Kd"
                                                               : "Ball") +
             "Cap" + std::to_string(info.param.leaf_capacity);
    });

// ------------------------------ Build errors -----------------------------

TEST(TreeBuildTest, EmptyInputFails) {
  data::Matrix empty;
  std::vector<double> weights;
  EXPECT_FALSE(KdTree::Build(empty, weights, 8).ok());
  EXPECT_FALSE(BallTree::Build(empty, weights, 8).ok());
}

TEST(TreeBuildTest, WeightCountMismatchFails) {
  data::Matrix pts(3, 1, {1, 2, 3});
  std::vector<double> weights(2, 1.0);
  EXPECT_FALSE(KdTree::Build(pts, weights, 8).ok());
  EXPECT_FALSE(BallTree::Build(pts, weights, 8).ok());
}

TEST(TreeBuildTest, ZeroLeafCapacityFails) {
  data::Matrix pts(3, 1, {1, 2, 3});
  std::vector<double> weights(3, 1.0);
  EXPECT_FALSE(KdTree::Build(pts, weights, 0).ok());
  EXPECT_FALSE(BallTree::Build(pts, weights, 0).ok());
}

TEST(TreeBuildTest, SinglePointTree) {
  data::Matrix pts(1, 2, {0.5, 0.5});
  std::vector<double> weights(1, 3.0);
  auto tree = KdTree::Build(pts, weights, 8);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree.value()->num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.value()->weight_sum(0), 3.0);
}

TEST(TreeBuildTest, KindNames) {
  EXPECT_EQ(IndexKindToString(IndexKind::kKdTree), "kd-tree");
  EXPECT_EQ(IndexKindToString(IndexKind::kBallTree), "ball-tree");
}

TEST(TreeBuildTest, LeafCapacityOneGivesLogDepth) {
  util::Rng rng(20);
  const data::Matrix pts = data::SampleUniform(256, 2, 0.0, 1.0, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  auto tree = KdTree::Build(pts, weights, 1);
  ASSERT_TRUE(tree.ok());
  // Median splits give depth exactly ceil(log2(256)) = 8.
  EXPECT_EQ(tree.value()->max_depth(), 8u);
}

}  // namespace
}  // namespace karl::index
