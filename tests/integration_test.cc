// Cross-module integration tests: full paper pipelines end to end —
// data generation → (training) → index build → tuning → queries, checked
// against brute force at every stage.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dynamic_engine.h"
#include "core/evaluator.h"
#include "core/karl.h"
#include "core/tuning.h"
#include "data/normalize.h"
#include "data/pca.h"
#include "data/synthetic.h"
#include "ml/kde.h"
#include "ml/model_io.h"
#include "ml/svm.h"
#include "util/rng.h"

namespace karl {
namespace {

using core::BoundKind;
using core::KernelParams;

// Type-I pipeline: UCI-like dataset → KDE → eKAQ and TKAQ, KARL vs SOTA
// vs brute force all agree.
TEST(IntegrationTest, TypeOneKdePipeline) {
  auto spec = data::FindDataset("home").ValueOrDie();
  spec.n = 3000;  // Scaled for test speed.
  const data::Matrix pts = data::MakeUciLike(spec);

  EngineOptions options;
  options.leaf_capacity = 32;
  auto model = ml::KdeModel::Fit(pts, options);
  ASSERT_TRUE(model.ok());

  EngineOptions sota_options = options;
  sota_options.bounds = BoundKind::kSota;
  auto sota = ml::KdeModel::Fit(pts, sota_options);
  ASSERT_TRUE(sota.ok());

  util::Rng rng(1);
  const auto qrows = rng.SampleWithoutReplacement(pts.rows(), 20);
  for (const size_t row : qrows) {
    const auto qspan = pts.Row(row);
    const std::vector<double> q(qspan.begin(), qspan.end());
    const double exact = model.value().ExactDensity(q);
    const double karl_est = model.value().Density(q, 0.2);
    const double sota_est = sota.value().Density(q, 0.2);
    EXPECT_NEAR(karl_est, exact, 0.2 * exact + 1e-15);
    EXPECT_NEAR(sota_est, exact, 0.2 * exact + 1e-15);
    EXPECT_EQ(model.value().DensityAbove(q, exact * 0.95), true);
    EXPECT_EQ(sota.value().DensityAbove(q, exact * 0.95), true);
  }
}

// Type-II pipeline: one-class SVM training → engine → TKAQ decisions
// match the sequential-scan SVM prediction on every query.
TEST(IntegrationTest, TypeTwoOneClassPipeline) {
  util::Rng rng(2);
  const auto ds = data::MakeOneClassDataset(300, 60, 5, rng);

  // Train only on the inliers, as an anomaly detector would.
  std::vector<size_t> inlier_rows;
  for (size_t i = 0; i < ds.labels.size(); ++i) {
    if (ds.labels[i] > 0) inlier_rows.push_back(i);
  }
  const data::Matrix train = ds.points.SelectRows(inlier_rows);
  ml::OneClassSvmParams params;
  params.nu = 0.1;
  const auto kernel = KernelParams::Gaussian(1.0 / 5.0);  // LIBSVM default 1/d.
  auto model = ml::TrainOneClassSvm(train, kernel, params);
  ASSERT_TRUE(model.ok());

  EngineOptions options;
  options.leaf_capacity = 16;
  double tau = 0.0;
  auto engine = ml::MakeEngineFromSvm(model.value(), options, &tau);
  ASSERT_TRUE(engine.ok());

  for (size_t i = 0; i < ds.points.rows(); i += 7) {
    const auto q = ds.points.Row(i);
    EXPECT_EQ(engine.value().Tkaq(q, tau),
              ml::SvmDecision(model.value(), q) > 0.0)
        << "row " << i;
  }
}

// Type-III pipeline: 2-class SVM training → save/load → engine → TKAQ
// decisions match scan on train and held-out queries.
TEST(IntegrationTest, TypeThreeTwoClassPipelineWithModelIo) {
  util::Rng rng(3);
  const auto train = data::MakeTwoClassDataset(300, 4, 0.8, rng);
  ml::TwoClassSvmParams params;
  params.c = 5.0;
  auto trained = ml::TrainTwoClassSvm(
      train, KernelParams::Gaussian(1.0 / 4.0), params);
  ASSERT_TRUE(trained.ok());

  // Round-trip the model through its serialised form first.
  auto model = ml::ParseSvmModel(ml::WriteSvmModel(trained.value()));
  ASSERT_TRUE(model.ok());

  EngineOptions options;
  double tau = 0.0;
  auto engine = ml::MakeEngineFromSvm(model.value(), options, &tau);
  ASSERT_TRUE(engine.ok());

  size_t agreements = 0;
  const size_t checks = 60;
  for (size_t i = 0; i < checks; ++i) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(0.0, 1.0);
    const bool engine_dec = engine.value().Tkaq(q, tau);
    const bool scan_dec = ml::SvmDecision(model.value(), q) > 0.0;
    agreements += engine_dec == scan_dec;
  }
  EXPECT_EQ(agreements, checks);
}

// Offline tuning pipeline: the recommended config's engine answers
// queries identically to a default engine (tuning changes speed, never
// answers).
TEST(IntegrationTest, TuningPreservesAnswers) {
  util::Rng rng(4);
  const data::Matrix pts = data::SampleClustered(2000, 3, 4, 0.06, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  const auto qrows = rng.SampleWithoutReplacement(pts.rows(), 30);
  const data::Matrix queries = pts.SelectRows(qrows);

  EngineOptions base;
  base.kernel = KernelParams::Gaussian(8.0);

  core::QuerySpec spec;
  spec.kind = core::QuerySpec::Kind::kThreshold;
  spec.tau = 20.0;
  auto tuned = core::OfflineTune(pts, weights, base, queries, spec,
                                 core::DefaultTuningGrid());
  ASSERT_TRUE(tuned.ok());

  EngineOptions tuned_options = base;
  tuned_options.index_kind = tuned.value().best.kind;
  tuned_options.leaf_capacity = tuned.value().best.leaf_capacity;
  auto tuned_engine = Engine::Build(pts, weights, tuned_options).ValueOrDie();
  auto default_engine = Engine::Build(pts, weights, base).ValueOrDie();

  for (size_t i = 0; i < queries.rows(); ++i) {
    const auto q = queries.Row(i);
    EXPECT_EQ(tuned_engine.Tkaq(q, spec.tau), default_engine.Tkaq(q, spec.tau));
  }
}

// Fig-12 style pipeline: PCA-project a high-dimensional dataset and
// verify queries stay consistent with brute force in the reduced space.
TEST(IntegrationTest, PcaReductionPipeline) {
  util::Rng rng(5);
  const data::Matrix pts = data::SampleClustered(800, 32, 5, 0.05, rng);
  auto pca = data::PcaModel::Fit(pts);
  ASSERT_TRUE(pca.ok());

  for (const size_t k : {4u, 8u, 16u}) {
    auto reduced = pca.value().Project(pts, k);
    ASSERT_TRUE(reduced.ok());
    const data::Matrix& rp = reduced.value();

    EngineOptions options;
    options.kernel = KernelParams::Gaussian(2.0);
    auto engine = Engine::BuildUniform(rp, 1.0, options).ValueOrDie();

    std::vector<double> weights(rp.rows(), 1.0);
    for (int trial = 0; trial < 5; ++trial) {
      const auto qspan = rp.Row(rng.UniformInt(rp.rows()));
      const std::vector<double> q(qspan.begin(), qspan.end());
      const double exact =
          core::ExactAggregate(rp, weights, options.kernel, q);
      EXPECT_EQ(engine.Tkaq(q, exact * 0.9), true);
      EXPECT_EQ(engine.Tkaq(q, exact * 1.1), false);
    }
  }
}

// Polynomial-kernel pipeline over [-1,1]^d data (§V-F).
TEST(IntegrationTest, PolynomialKernelPipeline) {
  util::Rng rng(6);
  auto train = data::MakeTwoClassDataset(250, 4, 0.85, rng);
  data::MinMaxNormalize(&train.points, -1.0, 1.0);
  const auto kernel = KernelParams::Polynomial(1.0 / 4.0, 0.0, 3);
  ml::TwoClassSvmParams params;
  params.c = 5.0;
  auto model = ml::TrainTwoClassSvm(train, kernel, params);
  ASSERT_TRUE(model.ok());

  EngineOptions options;
  double tau = 0.0;
  auto engine = ml::MakeEngineFromSvm(model.value(), options, &tau);
  ASSERT_TRUE(engine.ok());

  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform(-1.0, 1.0);
    EXPECT_EQ(engine.value().Tkaq(q, tau),
              ml::SvmDecision(model.value(), q) > 0.0);
  }
}

// The in-situ path returns the same decisions as an offline engine.
TEST(IntegrationTest, InsituDecisionsMatchOffline) {
  util::Rng rng(7);
  const data::Matrix pts = data::SampleClustered(1500, 3, 3, 0.07, rng);
  std::vector<double> weights(pts.rows(), 1.0);
  const auto kernel = KernelParams::Gaussian(6.0);

  // Level-capped evaluators must agree with the full evaluator for every
  // cap — this is the correctness core of the in-situ tuner.
  EngineOptions options;
  options.kernel = kernel;
  options.leaf_capacity = 4;
  auto engine = Engine::Build(pts, weights, options).ValueOrDie();

  const double tau = 10.0;
  for (const int level : {2, 4, 6}) {
    core::Evaluator::Options eval_options;
    eval_options.max_level = level;
    auto capped = core::Evaluator::Create(&engine.plus_tree(), nullptr,
                                          kernel, eval_options)
                      .ValueOrDie();
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<double> q(3);
      for (auto& v : q) v = rng.Uniform(0.0, 1.0);
      EXPECT_EQ(capped.QueryThreshold(q, tau), engine.Tkaq(q, tau))
          << "level " << level;
    }
  }
}

// Online kernel learning end to end: a stream interleaves model updates
// (inserts of fresh observations, expiry of stale ones) with TKAQ
// queries; the dynamic engine must track brute force throughout.
TEST(IntegrationTest, OnlineLearningStream) {
  core::DynamicEngine::Options options;
  options.engine.kernel = KernelParams::Gaussian(5.0);
  options.engine.leaf_capacity = 16;
  options.min_index_size = 128;
  auto engine = core::DynamicEngine::Create(3, options).ValueOrDie();

  util::Rng rng(11);
  std::vector<std::pair<core::PointId, std::vector<double>>> window;

  for (int step = 0; step < 800; ++step) {
    // Arrival: a new observation near a drifting centre.
    const double drift = 0.3 + 0.4 * (step / 800.0);
    std::vector<double> p{rng.Gaussian(drift, 0.08),
                          rng.Gaussian(0.5, 0.08),
                          rng.Gaussian(1.0 - drift, 0.08)};
    window.emplace_back(engine->Insert(p, 1.0).ValueOrDie(), p);

    // Sliding window of 300: expire the oldest.
    if (window.size() > 300) {
      ASSERT_TRUE(engine->Remove(window.front().first).ok());
      window.erase(window.begin());
    }

    if (step % 97 == 96) {
      // Query the live window and cross-check against brute force.
      std::vector<double> q{drift, 0.5, 1.0 - drift};
      double truth = 0.0;
      for (const auto& [id, point] : window) {
        truth += core::KernelValue(options.engine.kernel, q, point);
      }
      ASSERT_NEAR(engine->Exact(q), truth, 1e-9 * (1.0 + truth));
      ASSERT_EQ(engine->Tkaq(q, truth * 0.9), true) << "step " << step;
      ASSERT_EQ(engine->Tkaq(q, truth * 1.1), false) << "step " << step;
    }
  }
  EXPECT_GE(engine->rebuild_count(), 1u);
  EXPECT_EQ(engine->size(), window.size());
}

// Dataset registry → engines across every benchmark dataset at small n.
TEST(IntegrationTest, AllRegistryDatasetsBuildAndQuery) {
  for (const auto& base_spec : data::BenchmarkDatasets()) {
    data::DatasetSpec spec = base_spec;
    spec.n = 400;
    if (spec.d > 128) continue;  // mnist-like is covered elsewhere.
    const data::Matrix pts = data::MakeUciLike(spec);
    EngineOptions options;
    options.kernel = KernelParams::Gaussian(1.0 / static_cast<double>(spec.d));
    auto engine = Engine::BuildUniform(pts, 1.0, options);
    ASSERT_TRUE(engine.ok()) << spec.name;
    const std::vector<double> q(spec.d, 0.5);
    const double exact = engine.value().Exact(q);
    EXPECT_EQ(engine.value().Tkaq(q, exact * 0.5), exact > exact * 0.5)
        << spec.name;
  }
}

}  // namespace
}  // namespace karl
