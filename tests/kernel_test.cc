// Unit tests for kernel functions and their scalar profiles.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/kernel.h"
#include "util/math_util.h"

namespace karl::core {
namespace {

TEST(KernelParamsTest, Factories) {
  const auto g = KernelParams::Gaussian(0.5);
  EXPECT_EQ(g.type, KernelType::kGaussian);
  EXPECT_DOUBLE_EQ(g.gamma, 0.5);

  const auto p = KernelParams::Polynomial(0.1, 1.0, 3);
  EXPECT_EQ(p.type, KernelType::kPolynomial);
  EXPECT_EQ(p.degree, 3);

  const auto s = KernelParams::Sigmoid(0.2, -0.5);
  EXPECT_EQ(s.type, KernelType::kSigmoid);
  EXPECT_DOUBLE_EQ(s.beta, -0.5);
}

TEST(KernelParamsTest, ValidationRejectsBadGamma) {
  auto p = KernelParams::Gaussian(1.0);
  p.gamma = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p.gamma = -1.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(KernelParamsTest, ValidationRejectsBadDegree) {
  auto p = KernelParams::Polynomial(1.0, 0.0, 0);
  EXPECT_FALSE(p.Validate().ok());
  p.degree = 1;
  EXPECT_TRUE(p.Validate().ok());
}

TEST(IntPowTest, MatchesStdPow) {
  for (const double x : {-2.0, -0.5, 0.0, 0.3, 1.0, 2.5}) {
    for (const int e : {0, 1, 2, 3, 4, 7, 10}) {
      EXPECT_NEAR(IntPow(x, e), std::pow(x, e), 1e-9 * std::abs(std::pow(x, e)) + 1e-12)
          << "x=" << x << " e=" << e;
    }
  }
}

TEST(KernelValueTest, GaussianAtZeroDistanceIsOne) {
  const auto k = KernelParams::Gaussian(2.0);
  const std::vector<double> p{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(KernelValue(k, p, p), 1.0);
}

TEST(KernelValueTest, GaussianKnownValue) {
  const auto k = KernelParams::Gaussian(0.5);
  const std::vector<double> q{0.0, 0.0};
  const std::vector<double> p{1.0, 1.0};
  EXPECT_DOUBLE_EQ(KernelValue(k, q, p), std::exp(-0.5 * 2.0));
}

TEST(KernelValueTest, GaussianSymmetric) {
  const auto k = KernelParams::Gaussian(1.5);
  const std::vector<double> a{0.2, -0.7, 1.1};
  const std::vector<double> b{-0.4, 0.9, 0.3};
  EXPECT_DOUBLE_EQ(KernelValue(k, a, b), KernelValue(k, b, a));
}

TEST(KernelValueTest, GaussianDecaysWithDistance) {
  const auto k = KernelParams::Gaussian(1.0);
  const std::vector<double> q{0.0};
  EXPECT_GT(KernelValue(k, q, std::vector<double>{0.5}),
            KernelValue(k, q, std::vector<double>{1.5}));
}

TEST(KernelValueTest, LaplacianKnownValue) {
  const auto k = KernelParams::Laplacian(2.0);
  const std::vector<double> q{0.0, 0.0};
  const std::vector<double> p{3.0, 4.0};  // dist = 5.
  EXPECT_DOUBLE_EQ(KernelValue(k, q, p), std::exp(-10.0));
}

TEST(KernelValueTest, LaplacianAtZeroDistanceIsOne) {
  const auto k = KernelParams::Laplacian(3.0);
  const std::vector<double> p{1.0, -2.0};
  EXPECT_DOUBLE_EQ(KernelValue(k, p, p), 1.0);
}

TEST(KernelValueTest, CauchyKnownValue) {
  const auto k = KernelParams::Cauchy(0.5);
  const std::vector<double> q{0.0};
  const std::vector<double> p{2.0};  // dist² = 4.
  EXPECT_DOUBLE_EQ(KernelValue(k, q, p), 1.0 / 3.0);
}

TEST(KernelValueTest, CauchyDecaysWithDistance) {
  const auto k = KernelParams::Cauchy(1.0);
  const std::vector<double> q{0.0};
  EXPECT_GT(KernelValue(k, q, std::vector<double>{0.5}),
            KernelValue(k, q, std::vector<double>{2.0}));
}

TEST(KernelProfileTest, DistanceKernelProfilesConsistent) {
  const std::vector<double> q{0.3, -0.8};
  const std::vector<double> p{1.1, 0.4};
  const double sq = util::SquaredDistance(q, p);
  for (const auto k : {KernelParams::Gaussian(1.7),
                       KernelParams::Laplacian(0.9),
                       KernelParams::Cauchy(2.3)}) {
    EXPECT_NEAR(KernelValue(k, q, p),
                KernelProfile(k, DistanceArgScale(k) * sq), 1e-12)
        << KernelTypeToString(k.type);
  }
}

TEST(KernelProfileTest, DistanceDerivativesMatchFiniteDifference) {
  // Positive arguments only: the Laplacian profile is singular at 0.
  for (const auto k :
       {KernelParams::Laplacian(1.0), KernelParams::Cauchy(1.0)}) {
    for (const double x : {0.1, 0.5, 1.3, 3.0}) {
      const double h = 1e-7;
      const double numeric =
          (KernelProfile(k, x + h) - KernelProfile(k, x - h)) / (2.0 * h);
      EXPECT_NEAR(KernelProfileDerivative(k, x), numeric, 1e-5)
          << KernelTypeToString(k.type) << " x=" << x;
    }
  }
}

TEST(KernelProfileTest, DistanceArgScaleConvention) {
  EXPECT_DOUBLE_EQ(DistanceArgScale(KernelParams::Gaussian(3.0)), 3.0);
  EXPECT_DOUBLE_EQ(DistanceArgScale(KernelParams::Laplacian(3.0)), 9.0);
  EXPECT_DOUBLE_EQ(DistanceArgScale(KernelParams::Cauchy(3.0)), 3.0);
}

TEST(KernelValueTest, PolynomialKnownValue) {
  const auto k = KernelParams::Polynomial(2.0, 1.0, 3);
  const std::vector<double> q{1.0, 0.0};
  const std::vector<double> p{0.5, 9.0};
  // (2·0.5 + 1)^3 = 8.
  EXPECT_DOUBLE_EQ(KernelValue(k, q, p), 8.0);
}

TEST(KernelValueTest, PolynomialOddDegreeCanBeNegative) {
  const auto k = KernelParams::Polynomial(1.0, 0.0, 3);
  const std::vector<double> q{1.0};
  const std::vector<double> p{-1.0};
  EXPECT_DOUBLE_EQ(KernelValue(k, q, p), -1.0);
}

TEST(KernelValueTest, PolynomialEvenDegreeNonNegative) {
  const auto k = KernelParams::Polynomial(1.0, 0.0, 2);
  const std::vector<double> q{1.0};
  for (const double v : {-3.0, -0.1, 0.0, 0.5, 2.0}) {
    EXPECT_GE(KernelValue(k, q, std::vector<double>{v}), 0.0);
  }
}

TEST(KernelValueTest, SigmoidKnownValue) {
  const auto k = KernelParams::Sigmoid(1.0, 0.0);
  const std::vector<double> q{2.0};
  const std::vector<double> p{0.5};
  EXPECT_DOUBLE_EQ(KernelValue(k, q, p), std::tanh(1.0));
}

TEST(KernelValueTest, SigmoidBounded) {
  const auto k = KernelParams::Sigmoid(3.0, 1.0);
  const std::vector<double> q{5.0, -5.0};
  const std::vector<double> p{4.0, 4.0};
  const double v = KernelValue(k, q, p);
  EXPECT_GT(v, -1.0);
  EXPECT_LT(v, 1.0);
}

// Profile consistency: KernelValue == KernelProfile(x) with the right x.
TEST(KernelProfileTest, GaussianProfileConsistent) {
  const auto k = KernelParams::Gaussian(0.7);
  const std::vector<double> q{0.1, 0.9};
  const std::vector<double> p{-0.5, 0.4};
  const double x = k.gamma * util::SquaredDistance(q, p);
  EXPECT_DOUBLE_EQ(KernelValue(k, q, p), KernelProfile(k, x));
}

TEST(KernelProfileTest, PolynomialProfileConsistent) {
  const auto k = KernelParams::Polynomial(0.3, 0.2, 4);
  const std::vector<double> q{0.1, 0.9};
  const std::vector<double> p{-0.5, 0.4};
  const double x = k.gamma * util::Dot(q, p) + k.beta;
  EXPECT_DOUBLE_EQ(KernelValue(k, q, p), KernelProfile(k, x));
}

TEST(KernelProfileTest, SigmoidProfileConsistent) {
  const auto k = KernelParams::Sigmoid(0.3, -0.2);
  const std::vector<double> q{1.0, -1.0};
  const std::vector<double> p{0.5, 0.25};
  const double x = k.gamma * util::Dot(q, p) + k.beta;
  EXPECT_DOUBLE_EQ(KernelValue(k, q, p), KernelProfile(k, x));
}

// Derivative checks against central differences.
class ProfileDerivativeTest : public ::testing::TestWithParam<KernelParams> {};

TEST_P(ProfileDerivativeTest, MatchesFiniteDifference) {
  const KernelParams& k = GetParam();
  for (const double x : {-2.0, -0.7, -0.1, 0.0, 0.3, 1.0, 2.5}) {
    const double h = 1e-6;
    const double numeric =
        (KernelProfile(k, x + h) - KernelProfile(k, x - h)) / (2.0 * h);
    EXPECT_NEAR(KernelProfileDerivative(k, x), numeric, 1e-5)
        << KernelTypeToString(k.type) << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, ProfileDerivativeTest,
    ::testing::Values(KernelParams::Gaussian(1.0),
                      KernelParams::Polynomial(1.0, 0.0, 2),
                      KernelParams::Polynomial(1.0, 0.0, 3),
                      KernelParams::Polynomial(1.0, 0.0, 5),
                      KernelParams::Sigmoid(1.0, 0.0)),
    [](const ::testing::TestParamInfo<KernelParams>& info) {
      std::string name(KernelTypeToString(info.param.type));
      if (info.param.type == KernelType::kPolynomial) {
        name += "Deg" + std::to_string(info.param.degree);
      }
      return name;
    });

TEST(KernelTypeTest, Names) {
  EXPECT_EQ(KernelTypeToString(KernelType::kGaussian), "gaussian");
  EXPECT_EQ(KernelTypeToString(KernelType::kPolynomial), "polynomial");
  EXPECT_EQ(KernelTypeToString(KernelType::kSigmoid), "sigmoid");
}

TEST(KernelTypeTest, InnerProductClassification) {
  EXPECT_FALSE(IsInnerProductKernel(KernelType::kGaussian));
  EXPECT_FALSE(IsInnerProductKernel(KernelType::kLaplacian));
  EXPECT_FALSE(IsInnerProductKernel(KernelType::kCauchy));
  EXPECT_TRUE(IsInnerProductKernel(KernelType::kPolynomial));
  EXPECT_TRUE(IsInnerProductKernel(KernelType::kSigmoid));
}

}  // namespace
}  // namespace karl::core
